//! Incremental statistics collection fed by the scan.

use std::collections::HashMap;

use nodb_common::{DataType, Value};

use crate::column::{numeric_proj, ColumnStats};
use crate::histogram::Histogram;
use crate::sketch::{hash_bytes, mix64, KmvSketch};

/// Reservoir capacity; large enough for stable histograms, small enough
/// that the on-the-fly overhead stays in the paper's "small overhead"
/// regime.
const RESERVOIR_CAP: usize = 8_192;
/// KMV size: ~6 % NDV error.
const KMV_K: usize = 256;
/// Number of most-common values retained.
const MCV_CAP: usize = 8;
/// Histogram buckets.
const HIST_BUCKETS: usize = 64;

/// Builds [`ColumnStats`] from values the scan offers.
///
/// Offering is cheap: a hash into the KMV sketch, a min/max comparison and
/// (with decreasing probability) a reservoir insertion. The scan decides
/// *which* rows to offer (it samples a stride of tuples); the builder is
/// agnostic.
#[derive(Debug)]
pub struct StatsBuilder {
    dtype: DataType,
    offered: u64,
    nulls: u64,
    min: Option<Value>,
    max: Option<Value>,
    kmv: KmvSketch,
    reservoir: Vec<Value>,
}

impl StatsBuilder {
    /// New builder for a column of `dtype`.
    pub fn new(dtype: DataType) -> StatsBuilder {
        StatsBuilder {
            dtype,
            offered: 0,
            nulls: 0,
            min: None,
            max: None,
            kmv: KmvSketch::new(KMV_K),
            reservoir: Vec::new(),
        }
    }

    /// Values offered so far.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Offer one sampled value.
    pub fn offer(&mut self, v: &Value) {
        self.offered += 1;
        if v.is_null() {
            self.nulls += 1;
            return;
        }
        self.kmv.offer_hash(value_hash(v));
        match &self.min {
            Some(m) if v.sql_cmp(m) != Some(std::cmp::Ordering::Less) => {}
            _ => self.min = Some(v.clone()),
        }
        match &self.max {
            Some(m) if v.sql_cmp(m) != Some(std::cmp::Ordering::Greater) => {}
            _ => self.max = Some(v.clone()),
        }
        // Deterministic reservoir sampling (Vitter's algorithm R with a
        // hash-derived "random" index).
        if self.reservoir.len() < RESERVOIR_CAP {
            self.reservoir.push(v.clone());
        } else {
            let j =
                (mix64(self.offered.wrapping_mul(0x2545_f491_4f6c_dd1d)) % self.offered) as usize;
            if j < RESERVOIR_CAP {
                self.reservoir[j] = v.clone();
            }
        }
    }

    /// Finalize into [`ColumnStats`].
    ///
    /// `total_rows_hint` is the (estimated) total number of rows in the
    /// table; when provided, the distinct count is extrapolated from the
    /// sample with the GEE estimator (`√(N/n)·f₁ + Σ_{j≥2} f_j`),
    /// otherwise the KMV estimate over the offered values is used as-is.
    pub fn finalize(&self, total_rows_hint: Option<f64>) -> ColumnStats {
        let non_null = self.offered - self.nulls;
        // Value counts over the reservoir for MCVs and GEE f-statistics.
        let mut counts: HashMap<u64, (Value, u64)> = HashMap::new();
        for v in &self.reservoir {
            let e = counts
                .entry(value_hash(v))
                .or_insert_with(|| (v.clone(), 0));
            e.1 += 1;
        }
        let ndv = self.estimate_ndv(&counts, non_null, total_rows_hint);

        // MCVs: top values by reservoir count, only if they repeat.
        let res_len = self.reservoir.len().max(1) as f64;
        let mut by_count: Vec<(&Value, u64)> = counts.values().map(|(v, c)| (v, *c)).collect();
        by_count.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.total_cmp(b.0)));
        let mcv: Vec<(Value, f64)> = by_count
            .iter()
            .take(MCV_CAP)
            .filter(|(_, c)| *c >= 2)
            .map(|(v, c)| ((*v).clone(), *c as f64 / res_len))
            .collect();

        // Histogram over the numeric projection of the reservoir.
        let nums: Vec<f64> = self.reservoir.iter().filter_map(numeric_proj).collect();
        let histogram = Histogram::build(&nums, HIST_BUCKETS);

        ColumnStats {
            dtype: self.dtype,
            rows_sampled: self.offered,
            null_count: self.nulls,
            min: self.min.clone(),
            max: self.max.clone(),
            ndv,
            histogram,
            mcv,
        }
    }

    fn estimate_ndv(
        &self,
        counts: &HashMap<u64, (Value, u64)>,
        non_null: u64,
        total_rows_hint: Option<f64>,
    ) -> f64 {
        let kmv_est = self.kmv.estimate();
        let Some(total) = total_rows_hint else {
            return kmv_est;
        };
        let total_non_null = (total * (non_null as f64 / self.offered.max(1) as f64)).max(1.0);
        let n_res = self.reservoir.len() as f64;
        if n_res == 0.0 {
            return kmv_est;
        }
        let d_res = counts.len() as f64;
        if d_res >= n_res * 0.999 {
            // Every sampled value distinct: key-like column.
            return total_non_null;
        }
        let f1 = counts.values().filter(|(_, c)| *c == 1).count() as f64;
        let gee = (total_non_null / n_res).sqrt() * f1 + (d_res - f1);
        gee.clamp(d_res.min(kmv_est), total_non_null)
    }
}

/// Hash a value to 64 bits for sketching, consistent across numeric
/// widths that compare equal.
fn value_hash(v: &Value) -> u64 {
    match v {
        Value::Null => 0,
        Value::Int32(x) => mix64(*x as i64 as u64),
        Value::Int64(x) => mix64(*x as u64),
        Value::Float64(x) => {
            // Normalize integral floats to hash like their integer peers.
            if x.fract() == 0.0 && x.abs() < 9e15 {
                mix64(*x as i64 as u64)
            } else {
                mix64(x.to_bits())
            }
        }
        Value::Date(d) => mix64(d.0 as i64 as u64 ^ 0xdace_dace),
        Value::Bool(b) => mix64(*b as u64 ^ 0xb001),
        Value::Text(s) => hash_bytes(s.as_bytes()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_max_are_exact_over_offered() {
        let mut b = StatsBuilder::new(DataType::Int32);
        for v in [5, -2, 9, 0] {
            b.offer(&Value::Int32(v));
        }
        let s = b.finalize(None);
        assert_eq!(s.min, Some(Value::Int32(-2)));
        assert_eq!(s.max, Some(Value::Int32(9)));
        assert_eq!(s.rows_sampled, 4);
    }

    #[test]
    fn ndv_exact_for_small_domains() {
        let mut b = StatsBuilder::new(DataType::Int32);
        for i in 0..5000 {
            b.offer(&Value::Int32(i % 7));
        }
        let s = b.finalize(Some(5000.0));
        assert!((s.ndv - 7.0).abs() < 1.0, "ndv={}", s.ndv);
    }

    #[test]
    fn ndv_extrapolates_key_columns() {
        let mut b = StatsBuilder::new(DataType::Int64);
        // Sample of 2k distinct values from a 1M-row key column.
        for i in 0..2000 {
            b.offer(&Value::Int64(i * 499));
        }
        let s = b.finalize(Some(1_000_000.0));
        assert!(s.ndv > 500_000.0, "key-like ndv={}", s.ndv);
    }

    #[test]
    fn mcv_captures_heavy_hitters() {
        let mut b = StatsBuilder::new(DataType::Text);
        for i in 0..3000 {
            let v = match i % 10 {
                0..=4 => "A",
                5..=7 => "B",
                _ => "C",
            };
            b.offer(&Value::Text(v.into()));
        }
        let s = b.finalize(Some(3000.0));
        assert!(!s.mcv.is_empty());
        let top = &s.mcv[0];
        assert_eq!(top.0, Value::Text("A".into()));
        assert!((top.1 - 0.5).abs() < 0.05);
    }

    #[test]
    fn reservoir_is_bounded() {
        let mut b = StatsBuilder::new(DataType::Int32);
        for i in 0..100_000 {
            b.offer(&Value::Int32(i));
        }
        assert!(b.reservoir.len() <= RESERVOIR_CAP);
        let s = b.finalize(Some(100_000.0));
        assert!(s.histogram.is_some());
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut b = StatsBuilder::new(DataType::Int32);
            for i in 0..50_000 {
                b.offer(&Value::Int32(i % 321));
            }
            b.finalize(Some(50_000.0)).ndv
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn integral_floats_hash_like_ints() {
        assert_eq!(
            value_hash(&Value::Float64(42.0)),
            value_hash(&Value::Int64(42))
        );
    }
}
