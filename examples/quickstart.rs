//! Quickstart: query a raw CSV file with SQL, no loading step.
//!
//! ```text
//! cargo run --release -p nodb-core --example quickstart
//! ```
//!
//! The point of NoDB (Alagiannis et al., SIGMOD 2012) is that the
//! data-to-query time is zero: you point the engine at a raw file and the
//! *first* query already runs, while later queries get faster as the
//! engine builds its positional map and cache as a side effect.

use nodb_common::{Schema, TempDir};
use nodb_core::{AccessMode, NoDb, NoDbConfig, Params};
use nodb_csv::{CsvOptions, CsvWriter};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A raw CSV file, exactly as some instrument or script left it.
    let dir = TempDir::new("nodb-quickstart")?;
    let path = dir.file("measurements.csv");
    let mut w = CsvWriter::create(&path, CsvOptions::default())?;
    w.write_fields(&["2024-03-01", "sensor-a", "21.5", "ok"])?;
    w.write_fields(&["2024-03-01", "sensor-b", "19.1", "ok"])?;
    w.write_fields(&["2024-03-02", "sensor-a", "22.4", "ok"])?;
    w.write_fields(&["2024-03-02", "sensor-b", "", "degraded"])?;
    w.write_fields(&["2024-03-03", "sensor-a", "23.0", "ok"])?;
    w.finish()?;

    // Declare the schema (the paper assumes known schemas; discovery is
    // orthogonal) and register the file — this is instant, nothing is
    // read yet.
    let mut db = NoDb::new(NoDbConfig::postgres_raw())?;
    db.register_csv(
        "readings",
        &path,
        Schema::parse("day date, sensor text, temp double, status text")?,
        CsvOptions::default(),
        AccessMode::InSitu,
    )?;

    // First query: runs directly against the raw file.
    let result = db.query(
        "select sensor, count(*) as n, avg(temp) as avg_temp \
         from readings where status = 'ok' \
         group by sensor order by sensor",
    )?;
    println!("{}", result.columns().join(" | "));
    for row in &result.rows {
        println!("{row}");
    }

    // The engine has meanwhile built auxiliary structures:
    let info = db.aux_info("readings")?;
    println!(
        "\npositional map: {} pointers, cache: {} bytes, stats on {} attributes",
        info.posmap_pointers, info.cache_bytes, info.stats_attrs
    );

    // Repeated queries amortize preparation too: prepared once, this
    // statement re-executes with different parameters — no re-parse,
    // no re-bind — and streams rows lazily from the cursor.
    let stmt = db.prepare("select day, temp from readings where sensor = ?")?;
    for sensor in ["sensor-a", "sensor-b"] {
        println!("\n{sensor} readings:");
        for row in stmt.execute(&Params::new().bind(sensor))? {
            println!("{}", row?);
        }
    }
    let m = db.metrics("readings")?;
    println!(
        "\nscan work so far: {} fields tokenized, {} parsed, {} from cache",
        m.fields_tokenized, m.fields_parsed, m.fields_from_cache
    );
    Ok(())
}
