//! Differential proof for the auxiliary-structure memory budgets.
//!
//! Three properties, each load-bearing for the budget feature:
//!
//! 1. **Budgets unset ⇒ nothing changes.** An engine with no budgets
//!    and one with slack budgets (far above the working set) must be
//!    bit-identical on everything observable: rows, the full
//!    [`ScanMetrics`] counter set, and the auxiliary footprint. The
//!    enforcement machinery must be pure overheadless observation until
//!    a budget actually binds.
//! 2. **Budgets set ⇒ answers identical, footprint bounded.** Under
//!    budgets sized at half the measured working set, every query still
//!    returns the exact rows of the unbudgeted engine — in-situ scans
//!    fall back to the raw file for evicted state — while the posmap
//!    and cache stay at or under their caps, across CSV/JSONL × 1/4
//!    scan threads × both I/O substrates.
//! 3. **Eviction is workload-driven, not blind.** With a cache budget
//!    that can hold roughly half the touched columns, the columns a
//!    workload hammers must keep serving from cache while the
//!    one-off column gets evicted (paper §4.3: the cache holds "the
//!    most frequently accessed" data).
//!
//! Plus the config-hygiene gate: malformed `NODB_POSMAP_BUDGET` /
//! `NODB_CACHE_BUDGET` values fail loudly at engine construction.

use std::path::PathBuf;

use nodb::common::{ByteSize, IoBackend, Row, Schema, TempDir, Value};
use nodb::core::{AccessMode, NoDb, NoDbConfig, ScanMetrics};
use nodb::csv::{CsvOptions, CsvWriter};
use nodb::json::{JsonlOptions, JsonlWriter};

const SCHEMA: &str = "id int, grp text, score double, flag bool, note text, big bigint";
const ROWS: usize = 997;

/// Touches every column at least once, with different access shapes:
/// selective scans, aggregation, sort, LIMIT early-exit.
const QUERIES: &[&str] = &[
    "select id, note from t where score > 6.0",
    "select grp, count(*), sum(score), min(big) from t group by grp order by grp",
    "select id, score * 2.0 + 1.0 from t where flag order by id limit 17",
    "select count(*) from t where grp is null or score < 3.0",
    "select distinct grp from t order by grp",
    "select id from t where note like 'with%' order by id",
];

fn t_rows(n: usize) -> Vec<Row> {
    let groups = ["alpha", "beta", "gamma", "delta"];
    let notes = ["plain", "with \"quotes\"", "back\\slash", "caf\u{e9}", ""];
    (0..n)
        .map(|i| {
            let null = |k: usize| i % k == k - 1;
            Row(vec![
                Value::Int32(i as i32),
                if null(13) {
                    Value::Null
                } else {
                    Value::Text(groups[i % groups.len()].into())
                },
                if null(7) {
                    Value::Null
                } else {
                    Value::Float64((i % 100) as f64 / 8.0)
                },
                if null(17) {
                    Value::Null
                } else {
                    Value::Bool(i % 3 == 0)
                },
                if null(5) {
                    Value::Null
                } else {
                    Value::Text(notes[i % notes.len()].into())
                },
                Value::Int64(1_000_000_000_000 + i as i64 * 37),
            ])
        })
        .collect()
}

struct Fixture {
    _td: TempDir,
    t_csv: PathBuf,
    t_jsonl: PathBuf,
    schema: Schema,
}

fn fixture() -> Fixture {
    let td = TempDir::new("nodb-budget-diff").unwrap();
    let schema = Schema::parse(SCHEMA).unwrap();
    let t = t_rows(ROWS);
    let f = Fixture {
        t_csv: td.file("t.csv"),
        t_jsonl: td.file("t.jsonl"),
        schema,
        _td: td,
    };
    let mut w = CsvWriter::create(&f.t_csv, CsvOptions::default()).unwrap();
    for r in &t {
        w.write_row(r).unwrap();
    }
    w.finish().unwrap();
    let mut w = JsonlWriter::create(&f.t_jsonl, &f.schema, JsonlOptions::default()).unwrap();
    for r in &t {
        w.write_row(r).unwrap();
    }
    w.finish().unwrap();
    f
}

fn config(
    scan_threads: usize,
    io: IoBackend,
    posmap_budget: Option<ByteSize>,
    cache_budget: Option<ByteSize>,
) -> NoDbConfig {
    let mut cfg = NoDbConfig::postgres_raw();
    cfg.scan_threads = scan_threads;
    cfg.io_backend = io;
    // Small map blocks so a sub-working-set budget has many chunks to
    // choose victims from (and the 4-thread runs cut real chunks).
    cfg.posmap_block_rows = 128;
    cfg.posmap_budget = posmap_budget;
    cfg.cache_budget = cache_budget;
    cfg
}

fn engine(f: &Fixture, cfg: NoDbConfig, jsonl: bool) -> NoDb {
    let mut db = NoDb::new(cfg).unwrap();
    if jsonl {
        db.register_jsonl("t", &f.t_jsonl, f.schema.clone(), AccessMode::InSitu)
            .unwrap();
    } else {
        db.register_csv(
            "t",
            &f.t_csv,
            f.schema.clone(),
            CsvOptions::default(),
            AccessMode::InSitu,
        )
        .unwrap();
    }
    db
}

/// Everything observable about a table: work counters + aux footprint.
fn observe(db: &NoDb, table: &str) -> (ScanMetrics, usize, u64, usize, usize) {
    let m = db.metrics(table).unwrap();
    let a = db.aux_info(table).unwrap();
    (
        m,
        a.posmap_bytes,
        a.posmap_pointers,
        a.cache_bytes,
        a.stats_attrs,
    )
}

/// Property 1: an engine whose budgets never bind is indistinguishable
/// from one with no budgets at all — rows, every `ScanMetrics` counter,
/// and the aux footprint, cold and warm, across the whole matrix.
#[test]
fn slack_budgets_are_bit_identical_to_no_budgets() {
    let f = fixture();
    let slack = Some(ByteSize::gb(1));
    for jsonl in [false, true] {
        for threads in [1usize, 4] {
            for io in [IoBackend::Read, IoBackend::Mmap] {
                let free = engine(&f, config(threads, io, None, None), jsonl);
                let capped = engine(&f, config(threads, io, slack, slack), jsonl);
                let ctx = format!(
                    "{} threads={threads} io={io:?}",
                    if jsonl { "jsonl" } else { "csv" }
                );
                for pass in ["cold", "warm"] {
                    for q in QUERIES {
                        let want = free.query(q).unwrap();
                        let got = capped.query(q).unwrap();
                        assert_eq!(want.rows, got.rows, "{ctx} {pass}: rows for `{q}`");
                        assert_eq!(
                            observe(&free, "t"),
                            observe(&capped, "t"),
                            "{ctx} {pass}: state after `{q}`"
                        );
                    }
                }
            }
        }
    }
}

/// Property 2: budgets at half the measured working set still answer
/// every query identically while the posmap and cache footprints stay
/// at or under their caps.
#[test]
fn tight_budgets_bound_aux_without_changing_answers() {
    let f = fixture();
    for jsonl in [false, true] {
        for threads in [1usize, 4] {
            for io in [IoBackend::Read, IoBackend::Mmap] {
                let ctx = format!(
                    "{} threads={threads} io={io:?}",
                    if jsonl { "jsonl" } else { "csv" }
                );
                // Reference run measures the unbudgeted working set.
                let free = engine(&f, config(threads, io, None, None), jsonl);
                for q in QUERIES {
                    free.query(q).unwrap();
                }
                let (_, full_pm, _, full_cache, _) = observe(&free, "t");
                assert!(full_pm > 0 && full_cache > 0, "{ctx}: fixture too small");
                let pm_budget = ByteSize((full_pm / 2) as u64);
                let cache_budget = ByteSize((full_cache / 2) as u64);

                let capped = engine(
                    &f,
                    config(threads, io, Some(pm_budget), Some(cache_budget)),
                    jsonl,
                );
                for pass in ["cold", "warm"] {
                    for q in QUERIES {
                        let want = free.query(q).unwrap();
                        let got = capped.query(q).unwrap();
                        assert_eq!(want.rows, got.rows, "{ctx} {pass}: rows for `{q}`");
                        let (_, pm, _, cache, _) = observe(&capped, "t");
                        assert!(
                            pm <= pm_budget.bytes() as usize,
                            "{ctx} {pass}: posmap {pm} B over budget {pm_budget} after `{q}`"
                        );
                        assert!(
                            cache <= cache_budget.bytes() as usize,
                            "{ctx} {pass}: cache {cache} B over budget {cache_budget} after `{q}`"
                        );
                    }
                }
            }
        }
    }
}

/// Property 3: under a cache budget of half the touched working set, a
/// column the workload hammers keeps serving from cache while a column
/// touched once gets evicted — eviction follows workload heat, not
/// blind recency.
#[test]
fn hot_columns_outlive_cold_ones_under_cache_pressure() {
    let f = fixture();
    let hot_q = "select sum(score) from t";
    let cold_q = "select min(big) from t";

    // Measure the two-column working set on an unbudgeted engine.
    let probe = engine(&f, config(1, IoBackend::Read, None, None), false);
    probe.query(hot_q).unwrap();
    probe.query(cold_q).unwrap();
    let (_, _, _, working_set, _) = observe(&probe, "t");
    assert!(working_set > 0, "fixture too small");

    // Budget for roughly one of the two columns.
    let budget = ByteSize((working_set / 2) as u64);
    let db = engine(&f, config(1, IoBackend::Read, None, Some(budget)), false);

    // The workload: hammer `score`, touch `big` once. Heat for `score`
    // ends up far above `big`'s, so enforcement keeps `score` resident.
    for _ in 0..8 {
        db.query(hot_q).unwrap();
    }
    db.query(cold_q).unwrap();

    // Warm probes: delta of cache-served fields for one more run each.
    let before = db.metrics("t").unwrap();
    db.query(hot_q).unwrap();
    let mid = db.metrics("t").unwrap();
    db.query(cold_q).unwrap();
    let after = db.metrics("t").unwrap();

    let hot_from_cache = mid.fields_from_cache - before.fields_from_cache;
    let cold_from_cache = after.fields_from_cache - mid.fields_from_cache;
    assert!(
        hot_from_cache > cold_from_cache,
        "hot column should out-hit the cold one: hot {hot_from_cache} vs cold {cold_from_cache} \
         (budget {budget}, working set {working_set} B)"
    );
    // And the hot column really is warm, not merely warmer than zero.
    assert!(
        hot_from_cache > 0,
        "hot column fell out of cache under a half-working-set budget"
    );
}

/// `NODB_POSMAP_BUDGET` typos fail loudly at engine construction — a
/// broken deployment cannot silently run unbounded. (Env mutation via
/// subprocess so nothing in this binary races it.)
#[test]
fn malformed_posmap_budget_env_fails_at_construction() {
    let text = probe_with_env("NODB_POSMAP_BUDGET", "lots");
    assert!(
        text.contains("invalid NODB_POSMAP_BUDGET"),
        "expected a loud config error, got:\n{text}"
    );
}

/// Same for `NODB_CACHE_BUDGET`.
#[test]
fn malformed_cache_budget_env_fails_at_construction() {
    let text = probe_with_env("NODB_CACHE_BUDGET", "12qb");
    assert!(
        text.contains("invalid NODB_CACHE_BUDGET"),
        "expected a loud config error, got:\n{text}"
    );
}

fn probe_with_env(var: &str, value: &str) -> String {
    // The running test binary re-invokes itself with a poisoned env.
    let out = std::process::Command::new(std::env::current_exe().unwrap())
        .env(var, value)
        .args([
            "--ignored",
            "--exact",
            "env_probe_constructs_engine",
            "--nocapture",
        ])
        .output()
        .unwrap();
    format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    )
}

/// Helper target for the subprocess probes above: constructing an
/// engine under the poisoned environment must error, and we print it.
#[test]
#[ignore]
fn env_probe_constructs_engine() {
    match NoDb::new(NoDbConfig::postgres_raw()) {
        Ok(_) => println!("engine constructed"),
        Err(e) => println!("construction failed: {e}"),
    }
}
