//! Micro-benchmark data generator.
//!
//! The paper's micro-benchmarks (§5.1) use "a raw data file of 11 GB,
//! containing 7.5 × 10⁶ tuples. Each tuple contains 150 attributes with
//! integers distributed randomly in the range [0, 10⁹)". Figure 13 varies
//! the *width* of attributes (16 → 64 characters). [`MicroGen`] reproduces
//! both shapes at arbitrary scale, deterministically from a seed.

use std::path::Path;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nodb_common::{DataType, Field, Result, Schema};

use crate::writer::CsvWriter;
use crate::CsvOptions;

/// Specification of a synthetic micro-benchmark table.
#[derive(Debug, Clone)]
pub struct MicroGen {
    /// Number of tuples.
    pub rows: usize,
    /// Number of attributes per tuple (the paper uses 150).
    pub cols: usize,
    /// RNG seed; identical specs produce identical files.
    pub seed: u64,
    /// Exclusive upper bound for generated integers (the paper uses 10⁹).
    pub max_value: u32,
    /// When set, each value is zero-padded to exactly this many characters
    /// (Figure 13's attribute-width experiment). The schema then declares
    /// the columns as `text`, since the padded form is what a width-N
    /// attribute is.
    pub pad_width: Option<usize>,
}

impl Default for MicroGen {
    fn default() -> Self {
        MicroGen {
            rows: 10_000,
            cols: 150,
            seed: 0x6e6f_6462, // "nodb"
            max_value: 1_000_000_000,
            pad_width: None,
        }
    }
}

impl MicroGen {
    /// Builder-style row count.
    pub fn rows(mut self, rows: usize) -> Self {
        self.rows = rows;
        self
    }

    /// Builder-style column count.
    pub fn cols(mut self, cols: usize) -> Self {
        self.cols = cols;
        self
    }

    /// Builder-style seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style attribute width (Figure 13).
    pub fn pad_width(mut self, width: usize) -> Self {
        self.pad_width = Some(width);
        self
    }

    /// The schema of the generated file: `c0, c1, ... c{cols-1}`, typed
    /// `int` (or `text` when padded).
    pub fn schema(&self) -> Schema {
        let dtype = if self.pad_width.is_some() {
            DataType::Text
        } else {
            DataType::Int32
        };
        Schema::new(
            (0..self.cols)
                .map(|i| Field::new(format!("c{i}"), dtype))
                .collect(),
        )
        .expect("generated names are unique")
    }

    /// Write the file to `path`, returning the number of bytes written.
    pub fn write_to(&self, path: &Path) -> Result<u64> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut w = CsvWriter::create(path, CsvOptions::default())?;
        let mut fields: Vec<String> = vec![String::new(); self.cols];
        for _ in 0..self.rows {
            for f in fields.iter_mut() {
                let v: u32 = rng.gen_range(0..self.max_value);
                f.clear();
                match self.pad_width {
                    Some(w) => {
                        use std::fmt::Write as _;
                        let _ = write!(f, "{v:0w$}");
                    }
                    None => {
                        use std::fmt::Write as _;
                        let _ = write!(f, "{v}");
                    }
                }
            }
            w.write_fields(&fields)?;
        }
        w.finish()?;
        Ok(std::fs::metadata(path)?.len())
    }

    /// Append `extra_rows` more tuples (continuing the RNG stream from a
    /// derived seed), for the paper's append-update scenario (§4.5).
    pub fn append_to(&self, path: &Path, extra_rows: usize) -> Result<()> {
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(0x9e37_79b9));
        let mut w = CsvWriter::append(path, CsvOptions::default())?;
        let mut fields: Vec<String> = vec![String::new(); self.cols];
        for _ in 0..extra_rows {
            for f in fields.iter_mut() {
                let v: u32 = rng.gen_range(0..self.max_value);
                f.clear();
                use std::fmt::Write as _;
                match self.pad_width {
                    Some(w) => {
                        let _ = write!(f, "{v:0w$}");
                    }
                    None => {
                        let _ = write!(f, "{v}");
                    }
                }
            }
            w.write_fields(&fields)?;
        }
        w.finish()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodb_common::TempDir;

    #[test]
    fn generates_requested_shape() {
        let td = TempDir::new("nodb-gen").unwrap();
        let p = td.file("micro.csv");
        let spec = MicroGen::default().rows(25).cols(7).seed(1);
        spec.write_to(&p).unwrap();
        let text = std::fs::read_to_string(&p).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 25);
        for l in &lines {
            assert_eq!(l.split(',').count(), 7);
            for f in l.split(',') {
                let v: u32 = f.parse().unwrap();
                assert!(v < 1_000_000_000);
            }
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let td = TempDir::new("nodb-gen").unwrap();
        let a = td.file("a.csv");
        let b = td.file("b.csv");
        MicroGen::default()
            .rows(10)
            .cols(3)
            .seed(42)
            .write_to(&a)
            .unwrap();
        MicroGen::default()
            .rows(10)
            .cols(3)
            .seed(42)
            .write_to(&b)
            .unwrap();
        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        let c = td.file("c.csv");
        MicroGen::default()
            .rows(10)
            .cols(3)
            .seed(43)
            .write_to(&c)
            .unwrap();
        assert_ne!(std::fs::read(&a).unwrap(), std::fs::read(&c).unwrap());
    }

    #[test]
    fn pad_width_fixes_field_length_and_schema_type() {
        let td = TempDir::new("nodb-gen").unwrap();
        let p = td.file("wide.csv");
        let spec = MicroGen::default().rows(5).cols(4).pad_width(16);
        spec.write_to(&p).unwrap();
        let text = std::fs::read_to_string(&p).unwrap();
        for l in text.lines() {
            for f in l.split(',') {
                assert_eq!(f.len(), 16);
            }
        }
        assert_eq!(spec.schema().field(0).dtype, DataType::Text);
        assert_eq!(MicroGen::default().schema().field(0).dtype, DataType::Int32);
    }

    #[test]
    fn append_adds_rows() {
        let td = TempDir::new("nodb-gen").unwrap();
        let p = td.file("m.csv");
        let spec = MicroGen::default().rows(4).cols(2);
        spec.write_to(&p).unwrap();
        spec.append_to(&p, 3).unwrap();
        let text = std::fs::read_to_string(&p).unwrap();
        assert_eq!(text.lines().count(), 7);
    }
}
