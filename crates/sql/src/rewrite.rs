//! Rewrite-rule pipeline: composable, semantics-preserving plan
//! rewrites that run **between binding and the stats-driven strategy
//! pass**.
//!
//! The binder fixes what cannot change without re-binding (join order,
//! column layouts, the initial scan-filter classification);
//! [`crate::optimizer::refresh_stats`] re-derives everything
//! statistics-driven at every execute. This module is the third leg: a
//! [`RulePipeline`] of ordered [`RewriteRule`]s run to a fixed point
//! over the bound plan, so that
//!
//! * constant subexpressions fold away ([`FoldConstants`]),
//! * boolean structure simplifies — `NOT` pushes through comparisons
//!   and De Morgan, identity/absorbing literals drop out, tautological
//!   conjuncts vanish and contradictions collapse a predicate to FALSE
//!   ([`SimplifyBool`]),
//! * predicates migrate toward the scans, through projections, sorts,
//!   DISTINCT, joins and group-keyed aggregates
//!   ([`PushDownPredicates`]), and
//! * scan projections narrow to the columns the rest of the plan still
//!   needs ([`PruneProjections`]) — selective tuple formation starts
//!   from the smallest possible attribute set.
//!
//! Every rewrite is an *identity on observable behavior*: the same
//! rows, and — because SQL expressions can raise runtime errors
//! (division by zero, overflow, `LIKE` on non-text) — the same errors.
//! Rewrites that would elide or reorder a subexpression require it to
//! be *pure* (incapable of erroring; see `is_pure`); anything else is left in
//! place. Three-valued logic is preserved throughout: `x AND TRUE → x`
//! holds for `x ∈ {TRUE, FALSE, NULL}`, and conjunct-level tautology
//! and contradiction elimination only fires in *predicate position*,
//! where FALSE and NULL both reject.

use std::collections::BTreeSet;

use nodb_common::Value;

use crate::expr::{BinOp, BoundExpr, UnOp};
use crate::plan::LogicalPlan;

/// One rewrite pass. `apply` mutates the plan in place and reports
/// whether anything changed — the pipeline uses that to find its fixed
/// point and to record which rules fired for EXPLAIN.
pub trait RewriteRule {
    /// Stable rule name, surfaced in `ExplainPlan::applied_rules`.
    fn name(&self) -> &'static str;
    /// Rewrite `plan`; return `true` iff the plan changed.
    fn apply(&self, plan: &mut LogicalPlan) -> bool;
}

/// Hard cap on fixed-point sweeps; the standard rules all strictly
/// shrink the plan (fewer nodes, smaller expressions, narrower
/// projections), so this is a backstop against a buggy rule cycling,
/// not a budget real plans reach.
const MAX_SWEEPS: usize = 8;

/// An ordered list of rewrite rules run to a fixed point.
pub struct RulePipeline {
    rules: Vec<Box<dyn RewriteRule>>,
}

impl RulePipeline {
    /// The standard pass order: fold constants so boolean
    /// simplification sees literals, simplify so pushdown sees bare
    /// conjuncts, push predicates down, then prune what projection the
    /// moved predicates no longer pin.
    pub fn standard() -> RulePipeline {
        RulePipeline {
            rules: vec![
                Box::new(FoldConstants),
                Box::new(SimplifyBool),
                Box::new(PushDownPredicates),
                Box::new(PruneProjections),
            ],
        }
    }

    /// A pipeline with no rules (the `enable_rewrite = false` regime).
    pub fn disabled() -> RulePipeline {
        RulePipeline { rules: Vec::new() }
    }

    /// Run every rule in order, repeating until a full sweep changes
    /// nothing. Returns the names of the rules that fired, in first-
    /// application order, without duplicates.
    pub fn run(&self, plan: &mut LogicalPlan) -> Vec<&'static str> {
        let mut applied: Vec<&'static str> = Vec::new();
        for _ in 0..MAX_SWEEPS {
            let mut changed = false;
            for rule in &self.rules {
                if rule.apply(plan) {
                    changed = true;
                    if !applied.contains(&rule.name()) {
                        applied.push(rule.name());
                    }
                }
            }
            if !changed {
                break;
            }
        }
        applied
    }
}

// ----- purity ------------------------------------------------------------

/// Can evaluating `e` ever raise a runtime error? Comparisons, boolean
/// combinators, `IS NULL`, `BETWEEN` and `IN` are total (incomparable
/// values yield NULL, never an error); arithmetic (overflow, division
/// by zero), `LIKE` (non-text operand) and `CASE` (arbitrary branch
/// expressions) are not. Rewrites may only *elide* or *reorder* pure
/// subexpressions.
fn is_pure(e: &BoundExpr) -> bool {
    match e {
        BoundExpr::Col(_) | BoundExpr::Lit(_) | BoundExpr::Param { .. } => true,
        BoundExpr::Binary { op, left, right } => match op {
            BinOp::And | BinOp::Or => is_pure(left) && is_pure(right),
            op if op.is_comparison() => is_pure(left) && is_pure(right),
            _ => false,
        },
        BoundExpr::Unary {
            op: UnOp::Not,
            expr,
        } => is_pure(expr),
        BoundExpr::Unary { op: UnOp::Neg, .. } => false,
        BoundExpr::Like { .. } | BoundExpr::Case { .. } => false,
        BoundExpr::Between {
            expr, low, high, ..
        } => is_pure(expr) && is_pure(low) && is_pure(high),
        BoundExpr::InList { expr, .. } => is_pure(expr),
        BoundExpr::IsNull { expr, .. } => is_pure(expr),
    }
}

// ----- constant folding --------------------------------------------------

/// Fold constant subexpressions to literals. Folding mirrors the
/// executor's evaluation rules exactly and *refuses* to fold anything
/// that would error at runtime (division by zero, integer overflow),
/// so the error still surfaces when the query runs.
pub struct FoldConstants;

impl RewriteRule for FoldConstants {
    fn name(&self) -> &'static str {
        "fold_constants"
    }

    fn apply(&self, plan: &mut LogicalPlan) -> bool {
        rewrite_exprs(plan, &mut |e| fold_expr(e))
    }
}

fn lit(e: &BoundExpr) -> Option<&Value> {
    match e {
        BoundExpr::Lit(v) => Some(v),
        _ => None,
    }
}

/// One bottom-up folding pass over an expression; returns the folded
/// replacement, or `None` when nothing changed.
fn fold_expr(e: &BoundExpr) -> Option<BoundExpr> {
    match e {
        BoundExpr::Binary { op, left, right } => {
            let (l, r) = (lit(left)?, lit(right)?);
            if op.is_comparison() {
                return Some(BoundExpr::Lit(match l.sql_cmp(r) {
                    None => Value::Null,
                    Some(ord) => Value::Bool(match op {
                        BinOp::Eq => ord == std::cmp::Ordering::Equal,
                        BinOp::NotEq => ord != std::cmp::Ordering::Equal,
                        BinOp::Lt => ord == std::cmp::Ordering::Less,
                        BinOp::LtEq => ord != std::cmp::Ordering::Greater,
                        BinOp::Gt => ord == std::cmp::Ordering::Greater,
                        BinOp::GtEq => ord != std::cmp::Ordering::Less,
                        _ => unreachable!("comparison ops only"),
                    }),
                }));
            }
            const_arith(*op, l, r).map(BoundExpr::Lit)
        }
        BoundExpr::Unary {
            op: UnOp::Not,
            expr,
        } => match lit(expr)? {
            Value::Bool(b) => Some(BoundExpr::Lit(Value::Bool(!b))),
            Value::Null => Some(BoundExpr::Lit(Value::Null)),
            _ => None,
        },
        BoundExpr::Unary {
            op: UnOp::Neg,
            expr,
        } => match lit(expr)? {
            Value::Null => Some(BoundExpr::Lit(Value::Null)),
            Value::Int32(x) => x.checked_neg().map(|v| BoundExpr::Lit(Value::Int32(v))),
            Value::Int64(x) => x.checked_neg().map(|v| BoundExpr::Lit(Value::Int64(v))),
            Value::Float64(x) => Some(BoundExpr::Lit(Value::Float64(-x))),
            _ => None,
        },
        BoundExpr::IsNull { expr, negated } => {
            let v = lit(expr)?;
            Some(BoundExpr::Lit(Value::Bool(v.is_null() != *negated)))
        }
        BoundExpr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let (v, lo, hi) = (lit(expr)?, lit(low)?, lit(high)?);
            let ge = v.sql_cmp(lo).map(|o| o != std::cmp::Ordering::Less);
            let le = v.sql_cmp(hi).map(|o| o != std::cmp::Ordering::Greater);
            Some(BoundExpr::Lit(match (ge, le) {
                (Some(a), Some(b)) => Value::Bool((a && b) != *negated),
                _ => Value::Null,
            }))
        }
        BoundExpr::InList {
            expr,
            list,
            negated,
        } => {
            let v = lit(expr)?;
            if v.is_null() {
                return Some(BoundExpr::Lit(Value::Null));
            }
            let mut saw_null = false;
            for cand in list {
                match v.sql_cmp(cand) {
                    Some(std::cmp::Ordering::Equal) => {
                        return Some(BoundExpr::Lit(Value::Bool(!*negated)))
                    }
                    None if cand.is_null() => saw_null = true,
                    _ => {}
                }
            }
            Some(BoundExpr::Lit(if saw_null {
                Value::Null
            } else {
                Value::Bool(*negated)
            }))
        }
        BoundExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            // Only text × text folds; a constant non-text operand would
            // error at runtime and must keep doing so.
            match (lit(expr)?, lit(pattern)?) {
                (Value::Null, _) | (_, Value::Null) => Some(BoundExpr::Lit(Value::Null)),
                (Value::Text(s), Value::Text(p)) => Some(BoundExpr::Lit(Value::Bool(
                    nodb_common::like::like_match(s, p) != *negated,
                ))),
                _ => None,
            }
        }
        BoundExpr::Case {
            branches,
            else_expr,
        } => {
            // Drop branches whose condition is constant-not-TRUE; when
            // the leading remaining condition is constant TRUE, the CASE
            // *is* that branch's result.
            let mut kept: Vec<(BoundExpr, BoundExpr)> = Vec::new();
            let mut changed = false;
            for (c, r) in branches {
                match lit(c) {
                    Some(Value::Bool(true)) if kept.is_empty() => {
                        return Some(r.clone());
                    }
                    Some(Value::Bool(false)) | Some(Value::Null) => {
                        changed = true;
                    }
                    _ => kept.push((c.clone(), r.clone())),
                }
            }
            if kept.is_empty() {
                return Some(match else_expr {
                    Some(e) => (**e).clone(),
                    None => BoundExpr::Lit(Value::Null),
                });
            }
            if changed {
                Some(BoundExpr::Case {
                    branches: kept,
                    else_expr: else_expr.clone(),
                })
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Constant arithmetic, mirroring the executor's coercions exactly:
/// integers stay checked 64-bit, any float operand (or division)
/// widens to `f64`, `Date ± days` stays a date. Returns `None` for
/// anything that would error at runtime so the error is preserved.
fn const_arith(op: BinOp, l: &Value, r: &Value) -> Option<Value> {
    if l.is_null() || r.is_null() {
        return Some(Value::Null);
    }
    if let (Value::Date(d), Some(n)) = (l, r.as_i64()) {
        if !matches!(r, Value::Float64(_)) {
            match op {
                BinOp::Add => return Some(Value::Date(d.add_days(n as i32))),
                BinOp::Sub => {
                    if let Value::Date(d2) = r {
                        return Some(Value::Int64((d.days() - d2.days()) as i64));
                    }
                    return Some(Value::Date(d.add_days(-(n as i32))));
                }
                _ => {}
            }
        }
    }
    let use_float =
        matches!(l, Value::Float64(_)) || matches!(r, Value::Float64(_)) || op == BinOp::Div;
    if use_float {
        let (a, b) = (l.as_f64()?, r.as_f64()?);
        let v = match op {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => {
                if b == 0.0 {
                    // Division by zero errors at runtime; don't fold it
                    // away.
                    return None;
                }
                a / b
            }
            _ => return None,
        };
        Some(Value::Float64(v))
    } else {
        let (a, b) = (l.as_i64()?, r.as_i64()?);
        let v = match op {
            BinOp::Add => a.checked_add(b),
            BinOp::Sub => a.checked_sub(b),
            BinOp::Mul => a.checked_mul(b),
            _ => return None,
        }?;
        Some(Value::Int64(v))
    }
}

// ----- boolean simplification --------------------------------------------

/// Simplify boolean structure: identity/absorbing literals on `AND`/
/// `OR`, `NOT` pushed through negatable nodes (double negation, De
/// Morgan, comparison inversion, `NOT LIKE`/`NOT BETWEEN`/`NOT IN`/
/// `IS NOT NULL` flips), and — in predicate position only — tautology
/// and contradiction elimination over conjunct lists.
pub struct SimplifyBool;

impl RewriteRule for SimplifyBool {
    fn name(&self) -> &'static str {
        "simplify_bool"
    }

    fn apply(&self, plan: &mut LogicalPlan) -> bool {
        let mut changed = rewrite_exprs(plan, &mut |e| simplify_expr(e));
        changed |= simplify_predicates(plan);
        changed
    }
}

/// One top-level simplification step (children are already simplified
/// by the bottom-up driver). Returns `None` when nothing applies.
fn simplify_expr(e: &BoundExpr) -> Option<BoundExpr> {
    match e {
        BoundExpr::Binary {
            op: BinOp::And,
            left,
            right,
        } => match (lit(left), lit(right)) {
            // TRUE is the AND identity for all of {TRUE, FALSE, NULL}.
            (Some(Value::Bool(true)), _) => Some((**right).clone()),
            (_, Some(Value::Bool(true))) => Some((**left).clone()),
            // FALSE on the left short-circuits; on the right it may
            // only absorb a side that cannot error.
            (Some(Value::Bool(false)), _) => Some(BoundExpr::Lit(Value::Bool(false))),
            (_, Some(Value::Bool(false))) if is_pure(left) => {
                Some(BoundExpr::Lit(Value::Bool(false)))
            }
            _ => None,
        },
        BoundExpr::Binary {
            op: BinOp::Or,
            left,
            right,
        } => match (lit(left), lit(right)) {
            (Some(Value::Bool(false)), _) => Some((**right).clone()),
            (_, Some(Value::Bool(false))) => Some((**left).clone()),
            (Some(Value::Bool(true)), _) => Some(BoundExpr::Lit(Value::Bool(true))),
            (_, Some(Value::Bool(true))) if is_pure(left) => {
                Some(BoundExpr::Lit(Value::Bool(true)))
            }
            _ => None,
        },
        BoundExpr::Unary {
            op: UnOp::Not,
            expr,
        } => push_not(expr),
        _ => None,
    }
}

/// Push one `NOT` through its operand. All rewrites here are exact in
/// three-valued logic: a NULL operand stays NULL on both sides.
fn push_not(inner: &BoundExpr) -> Option<BoundExpr> {
    match inner {
        // Double negation.
        BoundExpr::Unary {
            op: UnOp::Not,
            expr,
        } => Some((**expr).clone()),
        // De Morgan.
        BoundExpr::Binary {
            op: op @ (BinOp::And | BinOp::Or),
            left,
            right,
        } => Some(BoundExpr::Binary {
            op: if *op == BinOp::And {
                BinOp::Or
            } else {
                BinOp::And
            },
            left: Box::new(BoundExpr::Unary {
                op: UnOp::Not,
                expr: left.clone(),
            }),
            right: Box::new(BoundExpr::Unary {
                op: UnOp::Not,
                expr: right.clone(),
            }),
        }),
        // Comparison inversion (incomparable operands are NULL under
        // both the original and the inverted operator).
        BoundExpr::Binary { op, left, right } if op.is_comparison() => {
            let inv = match op {
                BinOp::Eq => BinOp::NotEq,
                BinOp::NotEq => BinOp::Eq,
                BinOp::Lt => BinOp::GtEq,
                BinOp::LtEq => BinOp::Gt,
                BinOp::Gt => BinOp::LtEq,
                BinOp::GtEq => BinOp::Lt,
                _ => unreachable!("comparison ops only"),
            };
            Some(BoundExpr::Binary {
                op: inv,
                left: left.clone(),
                right: right.clone(),
            })
        }
        BoundExpr::Like {
            expr,
            pattern,
            negated,
        } => Some(BoundExpr::Like {
            expr: expr.clone(),
            pattern: pattern.clone(),
            negated: !*negated,
        }),
        BoundExpr::Between {
            expr,
            low,
            high,
            negated,
        } => Some(BoundExpr::Between {
            expr: expr.clone(),
            low: low.clone(),
            high: high.clone(),
            negated: !*negated,
        }),
        BoundExpr::InList {
            expr,
            list,
            negated,
        } => Some(BoundExpr::InList {
            expr: expr.clone(),
            list: list.clone(),
            negated: !*negated,
        }),
        BoundExpr::IsNull { expr, negated } => Some(BoundExpr::IsNull {
            expr: expr.clone(),
            negated: !*negated,
        }),
        _ => None,
    }
}

/// Conjunct-level cleanup in predicate position, where FALSE and NULL
/// both reject a row: drop TRUE conjuncts, collapse to FALSE when any
/// conjunct is constant-FALSE/NULL or when two conjuncts contradict —
/// but only when the *other* conjuncts are pure, so no runtime error
/// is elided.
fn simplify_predicates(plan: &mut LogicalPlan) -> bool {
    let mut changed = false;
    match plan {
        LogicalPlan::Scan { filters, .. } => {
            changed |= simplify_conjuncts(filters);
        }
        LogicalPlan::Filter { input, predicate } => {
            let mut conjuncts = Vec::new();
            split_bound_conjuncts(predicate, &mut conjuncts);
            let had = conjuncts.len();
            let collapsed = simplify_conjuncts(&mut conjuncts);
            if collapsed || conjuncts.len() != had {
                *predicate = BoundExpr::conjunction(conjuncts);
                changed = true;
            }
            // A filter reduced to TRUE disappears entirely.
            if matches!(predicate, BoundExpr::Lit(Value::Bool(true))) {
                let child = std::mem::replace(input.as_mut(), placeholder());
                *plan = child;
                changed = true;
                // The replaced node may itself hold predicates.
                changed |= simplify_predicates(plan);
                return changed;
            }
            changed |= simplify_predicates(input);
        }
        LogicalPlan::Join { left, right, .. } => {
            changed |= simplify_predicates(left);
            changed |= simplify_predicates(right);
        }
        LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. }
        | LogicalPlan::Distinct { input } => {
            changed |= simplify_predicates(input);
        }
    }
    changed
}

/// A throwaway node used only as `mem::replace` filler while splicing.
fn placeholder() -> LogicalPlan {
    LogicalPlan::Scan {
        table: String::new(),
        projection: Vec::new(),
        filters: Vec::new(),
        schema: nodb_common::Schema::new(Vec::new()).expect("empty schema"),
        estimated_rows: 0.0,
    }
}

/// Split a bound expression into top-level AND conjuncts.
fn split_bound_conjuncts(e: &BoundExpr, out: &mut Vec<BoundExpr>) {
    match e {
        BoundExpr::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            split_bound_conjuncts(left, out);
            split_bound_conjuncts(right, out);
        }
        other => out.push(other.clone()),
    }
}

/// Simplify a conjunct list in predicate position. Returns `true` when
/// the list changed.
fn simplify_conjuncts(conjuncts: &mut Vec<BoundExpr>) -> bool {
    let mut changed = false;
    // Drop TRUE conjuncts (tautologies) unless that would empty a list
    // that started non-empty — an empty filter list means "no filter",
    // which is the same thing, so dropping is fine for scans; Filter
    // callers rebuild via `conjunction` (empty ⇒ TRUE) and splice the
    // node out.
    let before = conjuncts.len();
    conjuncts.retain(|c| !matches!(c, BoundExpr::Lit(Value::Bool(true))));
    changed |= conjuncts.len() != before;

    let all_pure = conjuncts.iter().all(is_pure);
    if !all_pure {
        return changed;
    }
    // Constant FALSE/NULL conjunct ⇒ the whole predicate rejects.
    let constant_reject = conjuncts.iter().any(|c| {
        matches!(
            c,
            BoundExpr::Lit(Value::Bool(false)) | BoundExpr::Lit(Value::Null)
        )
    });
    if (constant_reject || has_contradiction(conjuncts))
        && (conjuncts.len() != 1 || !matches!(conjuncts[0], BoundExpr::Lit(Value::Bool(false))))
    {
        conjuncts.clear();
        conjuncts.push(BoundExpr::Lit(Value::Bool(false)));
        changed = true;
    }
    changed
}

/// Do two pure conjuncts of the form `#c <op> lit` contradict each
/// other (no value of `#c` can satisfy both)? In predicate position a
/// NULL `#c` already rejects, so the check only needs the non-null
/// ranges.
fn has_contradiction(conjuncts: &[BoundExpr]) -> bool {
    // (col, op, value) triples for simple comparisons, normalized to
    // the column on the left.
    let mut simple: Vec<(usize, BinOp, &Value)> = Vec::new();
    for c in conjuncts {
        if let BoundExpr::Binary { op, left, right } = c {
            if !op.is_comparison() {
                continue;
            }
            match (left.as_ref(), right.as_ref()) {
                (BoundExpr::Col(i), BoundExpr::Lit(v)) if !v.is_null() => {
                    simple.push((*i, *op, v));
                }
                (BoundExpr::Lit(v), BoundExpr::Col(i)) if !v.is_null() => {
                    let flipped = match op {
                        BinOp::Lt => BinOp::Gt,
                        BinOp::LtEq => BinOp::GtEq,
                        BinOp::Gt => BinOp::Lt,
                        BinOp::GtEq => BinOp::LtEq,
                        other => *other,
                    };
                    simple.push((*i, flipped, v));
                }
                _ => {}
            }
        }
    }
    for (i, &(ca, oa, va)) in simple.iter().enumerate() {
        for &(cb, ob, vb) in &simple[i + 1..] {
            if ca != cb {
                continue;
            }
            let Some(ord) = va.sql_cmp(vb) else {
                continue;
            };
            use std::cmp::Ordering::*;
            let conflict = match (oa, ob, ord) {
                // c = a AND c = b with a ≠ b.
                (BinOp::Eq, BinOp::Eq, Less | Greater) => true,
                // c = a AND c < b with a ≥ b (and symmetric shapes).
                (BinOp::Eq, BinOp::Lt, Equal | Greater) => true,
                (BinOp::Lt, BinOp::Eq, Equal | Less) => true,
                (BinOp::Eq, BinOp::LtEq, Greater) => true,
                (BinOp::LtEq, BinOp::Eq, Less) => true,
                (BinOp::Eq, BinOp::Gt, Equal | Less) => true,
                (BinOp::Gt, BinOp::Eq, Equal | Greater) => true,
                (BinOp::Eq, BinOp::GtEq, Less) => true,
                (BinOp::GtEq, BinOp::Eq, Greater) => true,
                // c < a AND c > b needs a > b; c < a AND c ≥ b needs a > b; …
                (BinOp::Lt | BinOp::LtEq, BinOp::Gt | BinOp::GtEq, Less) => true,
                (BinOp::Lt, BinOp::Gt | BinOp::GtEq, Equal) => true,
                (BinOp::LtEq, BinOp::Gt, Equal) => true,
                (BinOp::Gt | BinOp::GtEq, BinOp::Lt | BinOp::LtEq, Greater) => true,
                (BinOp::Gt, BinOp::Lt | BinOp::LtEq, Equal) => true,
                (BinOp::GtEq, BinOp::Lt, Equal) => true,
                _ => false,
            };
            if conflict {
                return true;
            }
        }
    }
    false
}

// ----- predicate pushdown ------------------------------------------------

/// Move residual `Filter` nodes toward the leaves: into scan filter
/// lists, below projections over plain columns, below sorts and
/// DISTINCT, into the matching side of a join, and below group-keyed
/// aggregates (the HAVING-on-keys shape). Conjuncts that cannot move
/// stay exactly where they were.
pub struct PushDownPredicates;

impl RewriteRule for PushDownPredicates {
    fn name(&self) -> &'static str {
        "push_down_predicates"
    }

    fn apply(&self, plan: &mut LogicalPlan) -> bool {
        push_down(plan)
    }
}

fn push_down(plan: &mut LogicalPlan) -> bool {
    let mut changed = false;
    if let LogicalPlan::Filter { input, predicate } = plan {
        match input.as_mut() {
            // Filter over Filter: merge into one conjunction (inner
            // conjuncts first — they evaluated first before the merge).
            LogicalPlan::Filter {
                input: inner_input,
                predicate: inner_pred,
            } => {
                let merged = BoundExpr::and(inner_pred.clone(), predicate.clone());
                let grand = std::mem::replace(inner_input.as_mut(), placeholder());
                *plan = LogicalPlan::Filter {
                    input: Box::new(grand),
                    predicate: merged,
                };
                changed = true;
            }
            // Filter over Scan: the predicate speaks the scan's output
            // ordinals already — append its conjuncts to the pushed-
            // down list.
            LogicalPlan::Scan { filters, .. } => {
                split_bound_conjuncts(predicate, filters);
                let scan = std::mem::replace(input.as_mut(), placeholder());
                *plan = scan;
                changed = true;
            }
            // Filter over Project: when every column the predicate
            // touches projects a plain column (or the predicate is
            // constant), rebase it below the projection.
            LogicalPlan::Project {
                input: proj_input,
                exprs,
                schema,
            } => {
                let mut cols = BTreeSet::new();
                predicate.referenced_columns(&mut cols);
                let rebasable = cols
                    .iter()
                    .all(|&c| matches!(exprs.get(c), Some(BoundExpr::Col(_))));
                if rebasable {
                    let rebased = predicate.map_columns(&|c| match exprs.get(c) {
                        Some(BoundExpr::Col(i)) => *i,
                        _ => unreachable!("rebasable checked"),
                    });
                    let grand = std::mem::replace(proj_input.as_mut(), placeholder());
                    *plan = LogicalPlan::Project {
                        input: Box::new(LogicalPlan::Filter {
                            input: Box::new(grand),
                            predicate: rebased,
                        }),
                        exprs: std::mem::take(exprs),
                        schema: schema.clone(),
                    };
                    changed = true;
                }
            }
            // Filter over Sort / Distinct: swap (both are row-value
            // preserving, so filtering first keeps the same survivors).
            LogicalPlan::Sort {
                input: sort_input,
                keys,
            } => {
                let grand = std::mem::replace(sort_input.as_mut(), placeholder());
                *plan = LogicalPlan::Sort {
                    input: Box::new(LogicalPlan::Filter {
                        input: Box::new(grand),
                        predicate: predicate.clone(),
                    }),
                    keys: std::mem::take(keys),
                };
                changed = true;
            }
            LogicalPlan::Distinct { input: d_input } => {
                let grand = std::mem::replace(d_input.as_mut(), placeholder());
                *plan = LogicalPlan::Distinct {
                    input: Box::new(LogicalPlan::Filter {
                        input: Box::new(grand),
                        predicate: predicate.clone(),
                    }),
                };
                changed = true;
            }
            // Filter over Join: route single-sided conjuncts into the
            // matching input; mixed conjuncts stay above.
            LogicalPlan::Join {
                left, right, kind, ..
            } => {
                let left_n = left.schema().len();
                let mut conjuncts = Vec::new();
                split_bound_conjuncts(predicate, &mut conjuncts);
                let mut to_left = Vec::new();
                let mut to_right = Vec::new();
                let mut stay = Vec::new();
                for c in conjuncts {
                    let mut cols = BTreeSet::new();
                    c.referenced_columns(&mut cols);
                    if cols.iter().all(|&i| i < left_n) {
                        to_left.push(c);
                    } else if matches!(kind, crate::plan::JoinKind::Inner)
                        && cols.iter().all(|&i| i >= left_n)
                    {
                        to_right.push(c.map_columns(&|i| i - left_n));
                    } else {
                        stay.push(c);
                    }
                }
                if !to_left.is_empty() || !to_right.is_empty() {
                    if !to_left.is_empty() {
                        let l = std::mem::replace(left.as_mut(), placeholder());
                        **left = LogicalPlan::Filter {
                            input: Box::new(l),
                            predicate: BoundExpr::conjunction(to_left),
                        };
                    }
                    if !to_right.is_empty() {
                        let r = std::mem::replace(right.as_mut(), placeholder());
                        **right = LogicalPlan::Filter {
                            input: Box::new(r),
                            predicate: BoundExpr::conjunction(to_right),
                        };
                    }
                    let join = std::mem::replace(input.as_mut(), placeholder());
                    if stay.is_empty() {
                        *plan = join;
                    } else {
                        *plan = LogicalPlan::Filter {
                            input: Box::new(join),
                            predicate: BoundExpr::conjunction(stay),
                        };
                    }
                    changed = true;
                }
            }
            // Filter over a group-keyed Aggregate: pure conjuncts that
            // only touch group-key outputs filter the groups iff they
            // filter the input rows — push them below. (A global
            // aggregate emits its row unconditionally; never push.)
            LogicalPlan::Aggregate {
                input: agg_input,
                group,
                ..
            } => {
                if !group.is_empty() {
                    let mut conjuncts = Vec::new();
                    split_bound_conjuncts(predicate, &mut conjuncts);
                    let key_count = group.len();
                    let (push, stay): (Vec<_>, Vec<_>) = conjuncts.into_iter().partition(|c| {
                        let mut cols = BTreeSet::new();
                        c.referenced_columns(&mut cols);
                        is_pure(c) && cols.iter().all(|&i| i < key_count)
                    });
                    if !push.is_empty() {
                        let rebased = push
                            .into_iter()
                            .map(|c| c.map_columns(&|i| group[i]))
                            .collect::<Vec<_>>();
                        let grand = std::mem::replace(agg_input.as_mut(), placeholder());
                        **agg_input = LogicalPlan::Filter {
                            input: Box::new(grand),
                            predicate: BoundExpr::conjunction(rebased),
                        };
                        let agg = std::mem::replace(input.as_mut(), placeholder());
                        if stay.is_empty() {
                            *plan = agg;
                        } else {
                            *plan = LogicalPlan::Filter {
                                input: Box::new(agg),
                                predicate: BoundExpr::conjunction(stay),
                            };
                        }
                        changed = true;
                    }
                }
            }
            // Filter over Limit must not move (it would change which
            // rows the limit keeps).
            LogicalPlan::Limit { .. } => {}
        }
    }
    // Recurse into whatever children the (possibly rewritten) node has.
    match plan {
        LogicalPlan::Scan { .. } => {}
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. }
        | LogicalPlan::Distinct { input } => {
            changed |= push_down(input);
        }
        LogicalPlan::Join { left, right, .. } => {
            changed |= push_down(left);
            changed |= push_down(right);
        }
    }
    changed
}

// ----- projection pruning ------------------------------------------------

/// Narrow scan projections to the columns the plan above still uses.
/// The binder already projects only referenced columns, so this fires
/// when an earlier rewrite removed the last reference (a folded-away
/// filter, a pushed predicate) — keeping selective tuple formation
/// minimal after the other rules have run.
pub struct PruneProjections;

impl RewriteRule for PruneProjections {
    fn name(&self) -> &'static str {
        "prune_projections"
    }

    fn apply(&self, plan: &mut LogicalPlan) -> bool {
        // The root's output layout is the query's result shape: every
        // column is required.
        let mut changed = false;
        prune(plan, None, &mut changed);
        changed
    }
}

/// Prune `plan` given the set of output ordinals its parent needs
/// (`None` = all of them). Returns `Some(mapping)` — old output
/// ordinal → new — when this subtree's output layout changed, `None`
/// when it is untouched. Callers must remap any expressions bound to
/// this node's output through the mapping. `changed` is set when any
/// node in the subtree mutated, including ones (Project, Aggregate)
/// that absorb a child's mapping without altering their own layout.
fn prune(
    plan: &mut LogicalPlan,
    required: Option<&BTreeSet<usize>>,
    changed: &mut bool,
) -> Option<Vec<usize>> {
    match plan {
        LogicalPlan::Scan {
            projection,
            filters,
            schema,
            ..
        } => {
            let req = required?;
            let mut used: BTreeSet<usize> = req.clone();
            for f in filters.iter() {
                f.referenced_columns(&mut used);
            }
            if used.len() == projection.len() {
                return None;
            }
            // Keep used ordinals in their current (ascending-attribute)
            // order; build old → new.
            let kept: Vec<usize> = (0..projection.len()).filter(|i| used.contains(i)).collect();
            let Ok(narrowed) = schema.project(&kept) else {
                return None;
            };
            let mut mapping = vec![usize::MAX; projection.len()];
            for (new, &old) in kept.iter().enumerate() {
                mapping[old] = new;
            }
            *projection = kept.iter().map(|&i| projection[i]).collect();
            *schema = narrowed;
            let remap = |i: usize| mapping[i];
            for f in filters.iter_mut() {
                *f = f.map_columns(&remap);
            }
            *changed = true;
            Some(mapping)
        }
        LogicalPlan::Filter { input, predicate } => {
            let child_req = required.map(|req| {
                let mut r = req.clone();
                predicate.referenced_columns(&mut r);
                r
            });
            let mapping = prune(input, child_req.as_ref(), changed)?;
            *predicate = predicate.map_columns(&|i| mapping[i]);
            Some(mapping)
        }
        LogicalPlan::Project { input, exprs, .. } => {
            let mut used = BTreeSet::new();
            for e in exprs.iter() {
                e.referenced_columns(&mut used);
            }
            let mapping = prune(input, Some(&used), changed)?;
            for e in exprs.iter_mut() {
                *e = e.map_columns(&|i| mapping[i]);
            }
            // The projection's own output layout is unchanged.
            None
        }
        LogicalPlan::Aggregate {
            input, group, aggs, ..
        } => {
            let mut used: BTreeSet<usize> = group.iter().copied().collect();
            for a in aggs.iter() {
                if let Some(arg) = &a.arg {
                    arg.referenced_columns(&mut used);
                }
            }
            let mapping = prune(input, Some(&used), changed)?;
            for g in group.iter_mut() {
                *g = mapping[*g];
            }
            for a in aggs.iter_mut() {
                if let Some(arg) = &mut a.arg {
                    *arg = arg.map_columns(&|i| mapping[i]);
                }
            }
            None
        }
        LogicalPlan::Sort { input, keys } => {
            let child_req = required.map(|req| {
                let mut r = req.clone();
                for k in keys.iter() {
                    r.insert(k.col);
                }
                r
            });
            let mapping = prune(input, child_req.as_ref(), changed)?;
            for k in keys.iter_mut() {
                k.col = mapping[k.col];
            }
            Some(mapping)
        }
        LogicalPlan::Limit { input, .. } => prune(input, required, changed),
        LogicalPlan::Distinct { input } => {
            // DISTINCT deduplicates whole output rows: dropping a column
            // could merge rows, so everything below stays required.
            prune(input, None, changed);
            None
        }
        LogicalPlan::Join {
            left,
            right,
            on,
            residual,
            kind,
            schema,
            ..
        } => {
            let req = required?;
            let left_n = left.schema().len();
            let mut l_req: BTreeSet<usize> = BTreeSet::new();
            let mut r_req: BTreeSet<usize> = BTreeSet::new();
            for &i in req {
                if i < left_n {
                    l_req.insert(i);
                } else {
                    r_req.insert(i - left_n);
                }
            }
            for &(lc, rc) in on.iter() {
                l_req.insert(lc);
                r_req.insert(rc);
            }
            if let Some(r) = residual {
                let mut all = BTreeSet::new();
                r.referenced_columns(&mut all);
                for i in all {
                    if i < left_n {
                        l_req.insert(i);
                    } else {
                        r_req.insert(i - left_n);
                    }
                }
            }
            let lm = prune(left, Some(&l_req), changed);
            let rm = prune(right, Some(&r_req), changed);
            if lm.is_none() && rm.is_none() {
                return None;
            }
            let new_left_n = left.schema().len();
            let lmap = |i: usize| lm.as_ref().map_or(i, |m| m[i]);
            let rmap = |i: usize| rm.as_ref().map_or(i, |m| m[i]);
            for (lc, rc) in on.iter_mut() {
                *lc = lmap(*lc);
                *rc = rmap(*rc);
            }
            let full = |i: usize| {
                if i < left_n {
                    lmap(i)
                } else {
                    new_left_n + rmap(i - left_n)
                }
            };
            if let Some(r) = residual {
                *r = r.map_columns(&full);
            }
            // Rebuild the output schema and the parent-facing mapping.
            let out_len = match kind {
                crate::plan::JoinKind::Inner => new_left_n + right.schema().len(),
                crate::plan::JoinKind::Semi | crate::plan::JoinKind::Anti => new_left_n,
            };
            let old_out_len = schema.len();
            let mut mapping = vec![usize::MAX; old_out_len];
            for (old, slot) in mapping.iter_mut().enumerate() {
                let side_kept = if old < left_n {
                    lm.as_ref().is_none_or(|m| m[old] != usize::MAX)
                } else {
                    rm.as_ref().is_none_or(|m| m[old - left_n] != usize::MAX)
                };
                if side_kept {
                    let v = full(old);
                    if v < out_len {
                        *slot = v;
                    }
                }
            }
            let mut fields = Vec::with_capacity(out_len);
            for f in left.schema().fields() {
                fields.push(f.clone());
            }
            if matches!(kind, crate::plan::JoinKind::Inner) {
                for f in right.schema().fields() {
                    fields.push(f.clone());
                }
            }
            // Binder-built join schemas carry alias-qualified names, so
            // a subset of them stays duplicate-free.
            *schema = nodb_common::Schema::new(fields).expect("pruned join schema");
            Some(mapping)
        }
    }
}

// ----- expression-walk driver --------------------------------------------

/// Apply `f` bottom-up over every expression in the plan; `f` returns
/// `Some(replacement)` when a node folds. Returns whether anything
/// changed.
fn rewrite_exprs(
    plan: &mut LogicalPlan,
    f: &mut impl FnMut(&BoundExpr) -> Option<BoundExpr>,
) -> bool {
    let mut changed = false;
    let mut apply = |e: &mut BoundExpr| {
        changed |= rewrite_expr(e, f);
    };
    match plan {
        LogicalPlan::Scan { filters, .. } => {
            for e in filters {
                apply(e);
            }
        }
        LogicalPlan::Filter { predicate, .. } => apply(predicate),
        LogicalPlan::Join { residual, .. } => {
            if let Some(r) = residual {
                apply(r);
            }
        }
        LogicalPlan::Aggregate { aggs, .. } => {
            for a in aggs {
                if let Some(arg) = &mut a.arg {
                    apply(arg);
                }
            }
        }
        LogicalPlan::Project { exprs, .. } => {
            for e in exprs {
                apply(e);
            }
        }
        LogicalPlan::Sort { .. } | LogicalPlan::Limit { .. } | LogicalPlan::Distinct { .. } => {}
    }
    match plan {
        LogicalPlan::Scan { .. } => {}
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. }
        | LogicalPlan::Distinct { input } => {
            changed |= rewrite_exprs(input, f);
        }
        LogicalPlan::Join { left, right, .. } => {
            changed |= rewrite_exprs(left, f);
            changed |= rewrite_exprs(right, f);
        }
    }
    changed
}

/// Bottom-up rewrite of one expression tree.
fn rewrite_expr(e: &mut BoundExpr, f: &mut impl FnMut(&BoundExpr) -> Option<BoundExpr>) -> bool {
    let mut changed = false;
    match e {
        BoundExpr::Col(_) | BoundExpr::Lit(_) | BoundExpr::Param { .. } => {}
        BoundExpr::Binary { left, right, .. } => {
            changed |= rewrite_expr(left, f);
            changed |= rewrite_expr(right, f);
        }
        BoundExpr::Unary { expr, .. } => changed |= rewrite_expr(expr, f),
        BoundExpr::Like { expr, pattern, .. } => {
            changed |= rewrite_expr(expr, f);
            changed |= rewrite_expr(pattern, f);
        }
        BoundExpr::Between {
            expr, low, high, ..
        } => {
            changed |= rewrite_expr(expr, f);
            changed |= rewrite_expr(low, f);
            changed |= rewrite_expr(high, f);
        }
        BoundExpr::InList { expr, .. } | BoundExpr::IsNull { expr, .. } => {
            changed |= rewrite_expr(expr, f);
        }
        BoundExpr::Case {
            branches,
            else_expr,
        } => {
            for (c, r) in branches.iter_mut() {
                changed |= rewrite_expr(c, f);
                changed |= rewrite_expr(r, f);
            }
            if let Some(el) = else_expr {
                changed |= rewrite_expr(el, f);
            }
        }
    }
    if let Some(new) = f(e) {
        *e = new;
        changed = true;
        // The replacement may enable another fold at this node (e.g.
        // NOT pushed through an AND exposes NOT-of-comparison children).
        while let Some(again) = f(e) {
            *e = again;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodb_common::{DataType, Schema};

    fn col(i: usize) -> BoundExpr {
        BoundExpr::Col(i)
    }

    fn int(v: i64) -> BoundExpr {
        BoundExpr::Lit(Value::Int64(v))
    }

    fn bin(op: BinOp, l: BoundExpr, r: BoundExpr) -> BoundExpr {
        BoundExpr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    fn not(e: BoundExpr) -> BoundExpr {
        BoundExpr::Unary {
            op: UnOp::Not,
            expr: Box::new(e),
        }
    }

    fn scan_with(filters: Vec<BoundExpr>, width: usize) -> LogicalPlan {
        let fields: Vec<(String, DataType)> = (0..width)
            .map(|i| (format!("c{i}"), DataType::Int64))
            .collect();
        let pairs: Vec<(&str, DataType)> = fields.iter().map(|(n, d)| (n.as_str(), *d)).collect();
        LogicalPlan::Scan {
            table: "t".into(),
            projection: (0..width).collect(),
            filters,
            schema: Schema::from_pairs(&pairs).unwrap(),
            estimated_rows: 100.0,
        }
    }

    fn run(plan: &mut LogicalPlan) -> Vec<&'static str> {
        RulePipeline::standard().run(plan)
    }

    #[test]
    fn folds_constant_comparison_and_arith() {
        let mut plan = scan_with(
            vec![bin(BinOp::Lt, col(0), bin(BinOp::Add, int(2), int(3)))],
            2,
        );
        let applied = run(&mut plan);
        assert!(applied.contains(&"fold_constants"), "{applied:?}");
        match &plan {
            LogicalPlan::Scan { filters, .. } => {
                assert_eq!(filters[0].to_string(), "(#0 < 5)");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn division_by_zero_never_folds() {
        let e = bin(BinOp::Div, int(1), int(0));
        assert!(fold_expr(&e).is_none());
        let of = bin(BinOp::Mul, int(i64::MAX), int(2));
        assert!(fold_expr(&of).is_none());
    }

    #[test]
    fn tautology_drops_and_contradiction_collapses() {
        // WHERE c0 < 5 AND 1 = 1 → the tautology disappears.
        let mut plan = scan_with(
            vec![
                bin(BinOp::Lt, col(0), int(5)),
                bin(BinOp::Eq, int(1), int(1)),
            ],
            1,
        );
        run(&mut plan);
        match &plan {
            LogicalPlan::Scan { filters, .. } => {
                assert_eq!(filters.len(), 1);
                assert_eq!(filters[0].to_string(), "(#0 < 5)");
            }
            other => panic!("unexpected {other:?}"),
        }
        // WHERE c0 < 5 AND c0 > 9 → FALSE.
        let mut plan = scan_with(
            vec![
                bin(BinOp::Lt, col(0), int(5)),
                bin(BinOp::Gt, col(0), int(9)),
            ],
            1,
        );
        run(&mut plan);
        match &plan {
            LogicalPlan::Scan { filters, .. } => {
                assert_eq!(filters.as_slice(), &[BoundExpr::Lit(Value::Bool(false))]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn not_pushes_through_comparisons_and_demorgan() {
        // NOT (a < 5 AND b = 3)  →  a >= 5 OR b <> 3.
        let e = not(bin(
            BinOp::And,
            bin(BinOp::Lt, col(0), int(5)),
            bin(BinOp::Eq, col(1), int(3)),
        ));
        let mut plan = scan_with(vec![e], 2);
        run(&mut plan);
        match &plan {
            LogicalPlan::Scan { filters, .. } => {
                assert_eq!(filters[0].to_string(), "((#0 >= 5) OR (#1 <> 3))");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn double_negation_and_negated_flips() {
        let mut plan = scan_with(
            vec![
                not(not(bin(BinOp::Eq, col(0), int(1)))),
                not(BoundExpr::IsNull {
                    expr: Box::new(col(0)),
                    negated: false,
                }),
            ],
            1,
        );
        run(&mut plan);
        match &plan {
            LogicalPlan::Scan { filters, .. } => {
                assert_eq!(filters[0].to_string(), "(#0 = 1)");
                assert_eq!(filters[1].to_string(), "#0 IS NOT NULL");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn true_filter_node_is_spliced_out() {
        let scan = scan_with(vec![], 1);
        let mut plan = LogicalPlan::Filter {
            input: Box::new(scan),
            predicate: bin(BinOp::Eq, int(7), int(7)),
        };
        let applied = run(&mut plan);
        assert!(matches!(plan, LogicalPlan::Scan { .. }), "{plan:?}");
        assert!(applied.contains(&"simplify_bool"), "{applied:?}");
    }

    #[test]
    fn filter_over_scan_pushes_into_filter_list() {
        let scan = scan_with(vec![bin(BinOp::Gt, col(1), int(0))], 2);
        let mut plan = LogicalPlan::Filter {
            input: Box::new(scan),
            predicate: bin(BinOp::Lt, col(0), int(9)),
        };
        let applied = run(&mut plan);
        assert!(applied.contains(&"push_down_predicates"), "{applied:?}");
        match &plan {
            LogicalPlan::Scan { filters, .. } => {
                assert_eq!(filters.len(), 2);
                assert_eq!(filters[1].to_string(), "(#0 < 9)");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn filter_pushes_below_sort_and_project() {
        let scan = scan_with(vec![], 2);
        let project = LogicalPlan::Project {
            input: Box::new(scan),
            exprs: vec![col(1), col(0)],
            schema: Schema::from_pairs(&[("b", DataType::Int64), ("a", DataType::Int64)]).unwrap(),
        };
        let sort = LogicalPlan::Sort {
            input: Box::new(project),
            keys: vec![crate::plan::SortKey {
                col: 0,
                desc: false,
            }],
        };
        let mut plan = LogicalPlan::Filter {
            input: Box::new(sort),
            predicate: bin(BinOp::Gt, col(0), int(3)),
        };
        run(&mut plan);
        // The predicate lands in the scan's filter list, rebased through
        // the projection's column swap (#0 above = #1 below).
        let rendered = plan.explain();
        assert!(
            rendered.contains("filters=[(#1 > 3)]"),
            "pushdown missed:\n{rendered}"
        );
        assert!(!rendered.contains("Filter"), "{rendered}");
    }

    #[test]
    fn join_filter_routes_to_sides() {
        let left = scan_with(vec![], 2);
        let right = scan_with(vec![], 2);
        let schema = Schema::from_pairs(&[
            ("a", DataType::Int64),
            ("b", DataType::Int64),
            ("c", DataType::Int64),
            ("d", DataType::Int64),
        ])
        .unwrap();
        let join = LogicalPlan::Join {
            left: Box::new(left),
            right: Box::new(right),
            on: vec![(0, 0)],
            residual: None,
            kind: crate::plan::JoinKind::Inner,
            schema,
            estimated_rows: 100.0,
        };
        let mut plan = LogicalPlan::Filter {
            input: Box::new(join),
            predicate: bin(
                BinOp::And,
                bin(BinOp::Lt, col(1), int(5)),
                bin(BinOp::Gt, col(3), int(7)),
            ),
        };
        run(&mut plan);
        let rendered = plan.explain();
        assert!(rendered.contains("filters=[(#1 < 5)]"), "{rendered}");
        assert!(rendered.contains("filters=[(#1 > 7)]"), "{rendered}");
    }

    #[test]
    fn having_on_group_keys_pushes_below_aggregate() {
        let scan = scan_with(vec![], 2);
        let agg = LogicalPlan::Aggregate {
            input: Box::new(scan),
            group: vec![1],
            aggs: vec![crate::expr::AggExpr {
                func: crate::expr::AggFunc::Count,
                arg: None,
            }],
            strategy: crate::plan::AggStrategy::Hash,
            schema: Schema::from_pairs(&[("b", DataType::Int64), ("n", DataType::Int64)]).unwrap(),
        };
        let mut plan = LogicalPlan::Filter {
            input: Box::new(agg),
            predicate: bin(BinOp::Eq, col(0), int(4)),
        };
        run(&mut plan);
        let rendered = plan.explain();
        // The key predicate lands on the scan (rebased to input ordinal
        // 1), projection pruning then narrows the scan to that single
        // attribute, and the aggregate keeps its shape.
        assert!(rendered.contains("Scan t proj=[1]"), "{rendered}");
        assert!(rendered.contains("filters=[(#0 = 4)]"), "{rendered}");
        assert!(rendered.contains("HashAggregate"), "{rendered}");
    }

    #[test]
    fn pruning_narrows_scan_after_filter_vanishes() {
        // SELECT sum(c0) with a tautological filter on c2: once the
        // filter folds away, c2 leaves the scan projection.
        let scan = scan_with(vec![bin(BinOp::Eq, col(2), col(2))], 3);
        // `c2 = c2` is NOT a tautology under NULLs, so it must survive;
        // use a constant tautology instead to trigger pruning.
        let _ = scan;
        let scan = scan_with(vec![bin(BinOp::Lt, int(1), int(5))], 3);
        let mut plan = LogicalPlan::Aggregate {
            input: Box::new(scan),
            group: vec![],
            aggs: vec![crate::expr::AggExpr {
                func: crate::expr::AggFunc::Sum,
                arg: Some(col(0)),
            }],
            strategy: crate::plan::AggStrategy::Plain,
            schema: Schema::from_pairs(&[("s", DataType::Int64)]).unwrap(),
        };
        let applied = run(&mut plan);
        assert!(applied.contains(&"prune_projections"), "{applied:?}");
        match &plan {
            LogicalPlan::Aggregate { input, aggs, .. } => {
                match input.as_ref() {
                    LogicalPlan::Scan {
                        projection,
                        filters,
                        ..
                    } => {
                        assert_eq!(projection.as_slice(), &[0]);
                        assert!(filters.is_empty(), "{filters:?}");
                    }
                    other => panic!("unexpected {other:?}"),
                }
                assert_eq!(aggs[0].arg.as_ref().unwrap().to_string(), "#0");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn impure_conjuncts_keep_constant_false_from_collapsing() {
        // (c0 / c1 > 1) AND FALSE — the division can error, so the
        // whole predicate must NOT collapse to FALSE.
        let div = bin(BinOp::Gt, bin(BinOp::Div, col(0), col(1)), int(1));
        let mut conjuncts = vec![div.clone(), BoundExpr::Lit(Value::Bool(false))];
        simplify_conjuncts(&mut conjuncts);
        assert_eq!(conjuncts.len(), 2, "{conjuncts:?}");
        // All-pure version collapses.
        let mut conjuncts = vec![
            bin(BinOp::Gt, col(0), int(1)),
            BoundExpr::Lit(Value::Bool(false)),
        ];
        simplify_conjuncts(&mut conjuncts);
        assert_eq!(conjuncts.as_slice(), &[BoundExpr::Lit(Value::Bool(false))]);
    }

    #[test]
    fn pipeline_reaches_fixed_point_and_reports_rules() {
        let mut plan = scan_with(vec![], 1);
        assert!(run(&mut plan).is_empty());
        let mut plan = scan_with(vec![not(bin(BinOp::Lt, col(0), int(5)))], 1);
        let applied = run(&mut plan);
        assert_eq!(applied, vec!["simplify_bool"]);
    }
}
