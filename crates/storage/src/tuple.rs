//! Binary tuple codec.
//!
//! Loaded engines store rows as: `header padding` (emulating the host's
//! per-tuple bookkeeping — PostgreSQL's HeapTupleHeader is 23+ bytes,
//! which is a real source of its larger tables), a null bitmap, then the
//! values (fixed-width numerics, length-prefixed text).

use nodb_common::{DataType, Date, NoDbError, Result, Row, Schema, Value};

/// Encode a row. `header_bytes` zeros are prepended (profile-dependent).
pub fn encode(row: &Row, schema: &Schema, header_bytes: usize, out: &mut Vec<u8>) -> Result<()> {
    out.clear();
    out.resize(header_bytes, 0);
    let n = schema.len();
    let bitmap_at = out.len();
    out.resize(bitmap_at + n.div_ceil(8), 0);
    for (i, (v, f)) in row.values().iter().zip(schema.fields()).enumerate() {
        if v.is_null() {
            out[bitmap_at + i / 8] |= 1 << (i % 8);
            continue;
        }
        match (f.dtype, v) {
            (DataType::Int32, Value::Int32(x)) => out.extend_from_slice(&x.to_le_bytes()),
            (DataType::Int64, Value::Int64(x)) => out.extend_from_slice(&x.to_le_bytes()),
            (DataType::Float64, Value::Float64(x)) => out.extend_from_slice(&x.to_le_bytes()),
            (DataType::Date, Value::Date(d)) => out.extend_from_slice(&d.0.to_le_bytes()),
            (DataType::Bool, Value::Bool(b)) => out.push(*b as u8),
            (DataType::Text, Value::Text(s)) => {
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            (dt, v) => {
                return Err(NoDbError::internal(format!(
                    "value {v} does not match column type {dt}"
                )))
            }
        }
    }
    Ok(())
}

/// Decode the `projection` columns (ascending table ordinals) of an
/// encoded tuple.
pub fn decode_projected(
    bytes: &[u8],
    schema: &Schema,
    header_bytes: usize,
    projection: &[usize],
) -> Result<Row> {
    let n = schema.len();
    let bitmap = &bytes[header_bytes..header_bytes + n.div_ceil(8)];
    let mut pos = header_bytes + n.div_ceil(8);
    let mut out = Row::with_capacity(projection.len());
    let mut want = projection.iter().peekable();
    for (i, f) in schema.fields().iter().enumerate() {
        let is_null = bitmap[i / 8] & (1 << (i % 8)) != 0;
        let wanted = want.peek() == Some(&&i);
        if is_null {
            if wanted {
                out.push(Value::Null);
                want.next();
            }
            continue;
        }
        let val_len = match f.dtype {
            DataType::Int32 | DataType::Date => 4,
            DataType::Int64 | DataType::Float64 => 8,
            DataType::Bool => 1,
            DataType::Text => {
                let len = u32::from_le_bytes(
                    bytes[pos..pos + 4]
                        .try_into()
                        .map_err(|_| NoDbError::internal("truncated tuple"))?,
                ) as usize;
                4 + len
            }
        };
        if wanted {
            let v = &bytes[pos..pos + val_len];
            let value = match f.dtype {
                DataType::Int32 => Value::Int32(i32::from_le_bytes(
                    v.try_into().map_err(|_| NoDbError::internal("bad i32"))?,
                )),
                DataType::Date => Value::Date(Date(i32::from_le_bytes(
                    v.try_into().map_err(|_| NoDbError::internal("bad date"))?,
                ))),
                DataType::Int64 => Value::Int64(i64::from_le_bytes(
                    v.try_into().map_err(|_| NoDbError::internal("bad i64"))?,
                )),
                DataType::Float64 => Value::Float64(f64::from_le_bytes(
                    v.try_into().map_err(|_| NoDbError::internal("bad f64"))?,
                )),
                DataType::Bool => Value::Bool(v[0] != 0),
                DataType::Text => Value::Text(String::from_utf8_lossy(&v[4..]).into_owned()),
            };
            out.push(value);
            want.next();
        }
        pos += val_len;
    }
    if want.peek().is_some() {
        return Err(NoDbError::internal("projection index beyond schema"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn schema() -> Schema {
        Schema::parse("a int, b text, c double, d date, e bool, f bigint").unwrap()
    }

    fn sample() -> Row {
        Row(vec![
            Value::Int32(-42),
            Value::Text("hello world".into()),
            Value::Float64(2.75),
            Value::Date(Date(9000)),
            Value::Bool(true),
            Value::Int64(1 << 40),
        ])
    }

    #[test]
    fn full_roundtrip() {
        let s = schema();
        let mut buf = Vec::new();
        encode(&sample(), &s, 24, &mut buf).unwrap();
        let row = decode_projected(&buf, &s, 24, &[0, 1, 2, 3, 4, 5]).unwrap();
        assert_eq!(row, sample());
    }

    #[test]
    fn projected_decode_skips_unneeded() {
        let s = schema();
        let mut buf = Vec::new();
        encode(&sample(), &s, 8, &mut buf).unwrap();
        let row = decode_projected(&buf, &s, 8, &[1, 4]).unwrap();
        assert_eq!(
            row,
            Row(vec![Value::Text("hello world".into()), Value::Bool(true)])
        );
        let row = decode_projected(&buf, &s, 8, &[]).unwrap();
        assert!(row.is_empty());
    }

    #[test]
    fn nulls_roundtrip() {
        let s = schema();
        let r = Row(vec![
            Value::Null,
            Value::Null,
            Value::Float64(1.0),
            Value::Null,
            Value::Null,
            Value::Null,
        ]);
        let mut buf = Vec::new();
        encode(&r, &s, 24, &mut buf).unwrap();
        let row = decode_projected(&buf, &s, 24, &[0, 2, 5]).unwrap();
        assert_eq!(
            row,
            Row(vec![Value::Null, Value::Float64(1.0), Value::Null])
        );
    }

    #[test]
    fn header_bytes_affect_size_only() {
        let s = schema();
        let mut small = Vec::new();
        let mut big = Vec::new();
        encode(&sample(), &s, 8, &mut small).unwrap();
        encode(&sample(), &s, 24, &mut big).unwrap();
        assert_eq!(big.len() - small.len(), 16);
        assert_eq!(
            decode_projected(&small, &s, 8, &[0]).unwrap(),
            decode_projected(&big, &s, 24, &[0]).unwrap()
        );
    }

    #[test]
    fn type_mismatch_is_an_error() {
        let s = Schema::parse("a int").unwrap();
        let mut buf = Vec::new();
        assert!(encode(&Row(vec![Value::Text("x".into())]), &s, 0, &mut buf).is_err());
    }

    proptest! {
        #[test]
        fn random_rows_roundtrip(
            a in any::<i32>(),
            b in "[a-zA-Z0-9 ]{0,40}",
            c in any::<i32>().prop_map(|x| x as f64 / 7.0),
            d in -100_000i32..100_000,
            e in any::<bool>(),
            f in any::<i64>(),
            null_mask in 0u8..64,
        ) {
            let s = schema();
            let mut vals = vec![
                Value::Int32(a),
                Value::Text(b),
                Value::Float64(c),
                Value::Date(Date(d)),
                Value::Bool(e),
                Value::Int64(f),
            ];
            for (i, v) in vals.iter_mut().enumerate() {
                if null_mask & (1 << i) != 0 {
                    *v = Value::Null;
                }
            }
            let row = Row(vals);
            let mut buf = Vec::new();
            encode(&row, &s, 16, &mut buf).unwrap();
            let back = decode_projected(&buf, &s, 16, &[0, 1, 2, 3, 4, 5]).unwrap();
            prop_assert_eq!(back, row);
        }
    }
}
