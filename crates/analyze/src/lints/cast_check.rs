//! Lossy-`as`-cast arm: in the designated offset-arithmetic files (the
//! wire protocol's frame encoding, the positional map's offset stores)
//! an `as` cast to a narrower integer type silently truncates. Each such
//! cast must either be replaced with checked `try_into` + a typed error,
//! or carry a `// CAST:` comment proving the value fits (within 3 lines
//! above or on the site's line).

use std::collections::BTreeSet;

use crate::lexer::{in_spans, test_spans};
use crate::report::Finding;
use crate::scan_util::{line_text, tokens};
use crate::SourceFile;

/// Integer targets that are narrowing on the 64-bit platforms CI runs.
const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Run the cast arm over one designated file.
pub fn run(sf: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let toks = tokens(&sf.lexed.mask);
    let tests = test_spans(&sf.lexed.mask);
    let cast_lines: BTreeSet<usize> = sf.lexed.comment_lines_with("CAST:").into_iter().collect();
    for (i, t) in toks.iter().enumerate() {
        if t.text != "as" || in_spans(&tests, t.line) {
            continue;
        }
        let Some(target) = toks.get(i + 1).map(|t| t.text) else {
            continue;
        };
        if !NARROW.contains(&target) {
            continue;
        }
        let justified = (t.line.saturating_sub(3)..=t.line).any(|l| cast_lines.contains(&l));
        if !justified {
            findings.push(Finding {
                lint: "cast",
                file: sf.rel.clone(),
                line: t.line,
                message: format!(
                    "potentially lossy `as {target}` in offset/length arithmetic — \
                     use `{target}::try_from(…)` with a typed error, or justify \
                     with a `// CAST:` comment"
                ),
                waiver_key: Some(line_text(&sf.src, t.line)),
            });
        }
    }
    findings
}
