//! Shell-command parsing (kept separate from I/O for testability).

/// One shell action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Register a file as a table.
    Register {
        /// Table name.
        name: String,
        /// File path.
        path: String,
        /// Schema description for CSV (`None` for FITS).
        schema: Option<String>,
        /// Field delimiter.
        delimiter: u8,
    },
    /// Show work counters.
    Metrics {
        /// Table name.
        table: String,
    },
    /// Show the full resource-accounting view: scan metrics, phase
    /// timings, auxiliary footprints and per-column workload heat.
    Stats {
        /// Table name.
        table: String,
    },
    /// Show a plan.
    Explain {
        /// Query text.
        sql: String,
    },
    /// Run SQL.
    Sql {
        /// Query text.
        sql: String,
    },
    /// Toggle (or set) per-statement wall-clock reporting.
    Timing {
        /// `Some(on)` for `\timing on|off`, `None` for a bare toggle.
        setting: Option<bool>,
    },
    /// Attach to a running `nodb-server`; subsequent SQL runs remotely.
    Connect {
        /// `host:port` for TCP or `unix:PATH` for a unix-domain socket.
        target: String,
    },
    /// Detach from the server and run SQL locally again.
    Disconnect,
    /// Print help.
    Help,
    /// Exit.
    Quit,
}

/// Split a line respecting double-quoted segments.
fn tokens(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut quoted = false;
    for ch in line.chars() {
        match ch {
            '"' => quoted = !quoted,
            c if c.is_whitespace() && !quoted => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Parse one input line into a [`Command`].
pub fn parse_line(input: &str) -> Result<Command, String> {
    let input = input.trim();
    if let Some(rest) = input.strip_prefix('\\') {
        let toks = tokens(rest);
        match toks.first().map(|s| s.as_str()) {
            Some("register") => {
                if toks.len() < 3 {
                    return Err("usage: \\register NAME PATH [\"col type, ...\"]".into());
                }
                let schema = toks.get(3).cloned();
                if !toks[2].ends_with(".fits") && schema.is_none() {
                    return Err("CSV registration needs a schema string".into());
                }
                Ok(Command::Register {
                    name: toks[1].clone(),
                    path: toks[2].clone(),
                    schema,
                    delimiter: b',',
                })
            }
            Some("sep") => {
                if toks.len() < 5 {
                    return Err(
                        "usage: \\sep NAME PATH 'D' \"col type, ...\" (D = delimiter char)".into(),
                    );
                }
                let d = toks[3].trim_matches('\'');
                if d.len() != 1 {
                    return Err("delimiter must be a single character".into());
                }
                Ok(Command::Register {
                    name: toks[1].clone(),
                    path: toks[2].clone(),
                    schema: Some(toks[4].clone()),
                    delimiter: d.as_bytes()[0],
                })
            }
            Some("metrics") => match toks.get(1) {
                Some(t) => Ok(Command::Metrics { table: t.clone() }),
                None => Err("usage: \\metrics NAME".into()),
            },
            Some("stats") => match toks.get(1) {
                Some(t) => Ok(Command::Stats { table: t.clone() }),
                None => Err("usage: \\stats NAME".into()),
            },
            Some("explain") => {
                let sql = rest.trim_start_matches("explain").trim();
                if sql.is_empty() {
                    return Err("usage: \\explain SELECT ...".into());
                }
                Ok(Command::Explain {
                    sql: sql.trim_end_matches(';').to_string(),
                })
            }
            Some("timing") => match toks.get(1).map(|s| s.as_str()) {
                None => Ok(Command::Timing { setting: None }),
                Some("on") => Ok(Command::Timing {
                    setting: Some(true),
                }),
                Some("off") => Ok(Command::Timing {
                    setting: Some(false),
                }),
                Some(other) => Err(format!("usage: \\timing [on|off] (got `{other}`)")),
            },
            Some("connect") => match toks.get(1) {
                Some(t) => Ok(Command::Connect { target: t.clone() }),
                None => Err("usage: \\connect HOST:PORT | unix:PATH".into()),
            },
            Some("disconnect") => Ok(Command::Disconnect),
            Some("help") => Ok(Command::Help),
            Some("quit") | Some("q") | Some("exit") => Ok(Command::Quit),
            other => Err(format!("unknown command {other:?} (\\help lists commands)")),
        }
    } else {
        Ok(Command::Sql {
            sql: input.trim_end_matches(';').to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_register_with_quoted_schema() {
        let c = parse_line("\\register t data.csv \"a int, b text\"").unwrap();
        assert_eq!(
            c,
            Command::Register {
                name: "t".into(),
                path: "data.csv".into(),
                schema: Some("a int, b text".into()),
                delimiter: b',',
            }
        );
    }

    #[test]
    fn parses_fits_register_without_schema() {
        let c = parse_line("\\register sky cat.fits").unwrap();
        assert!(matches!(c, Command::Register { schema: None, .. }));
        // ... but CSV without schema is rejected.
        assert!(parse_line("\\register t data.csv").is_err());
    }

    #[test]
    fn parses_jsonl_register_with_schema() {
        let c = parse_line("\\register ev events.jsonl \"id int, msg text\"").unwrap();
        assert!(matches!(
            c,
            Command::Register {
                schema: Some(_),
                ..
            }
        ));
        // JSONL is schema-declared too: no schema, no registration.
        assert!(parse_line("\\register ev events.jsonl").is_err());
    }

    #[test]
    fn parses_sep_with_pipe() {
        let c = parse_line("\\sep li lineitem.tbl '|' \"a int, b text\"").unwrap();
        match c {
            Command::Register { delimiter, .. } => assert_eq!(delimiter, b'|'),
            other => panic!("{other:?}"),
        }
        assert!(parse_line("\\sep li lineitem.tbl '||' \"a int\"").is_err());
    }

    #[test]
    fn parses_sql_and_strips_semicolon() {
        let c = parse_line("select 1 from t;").unwrap();
        assert_eq!(
            c,
            Command::Sql {
                sql: "select 1 from t".into()
            }
        );
    }

    #[test]
    fn parses_timing_toggle() {
        assert_eq!(
            parse_line("\\timing").unwrap(),
            Command::Timing { setting: None }
        );
        assert_eq!(
            parse_line("\\timing on").unwrap(),
            Command::Timing {
                setting: Some(true)
            }
        );
        assert_eq!(
            parse_line("\\timing off").unwrap(),
            Command::Timing {
                setting: Some(false)
            }
        );
        assert!(parse_line("\\timing maybe").is_err());
    }

    #[test]
    fn parses_connect_and_disconnect() {
        assert_eq!(
            parse_line("\\connect 127.0.0.1:5433").unwrap(),
            Command::Connect {
                target: "127.0.0.1:5433".into()
            }
        );
        assert_eq!(
            parse_line("\\connect unix:/tmp/nodb.sock").unwrap(),
            Command::Connect {
                target: "unix:/tmp/nodb.sock".into()
            }
        );
        assert!(parse_line("\\connect").is_err());
        assert_eq!(parse_line("\\disconnect").unwrap(), Command::Disconnect);
    }

    #[test]
    fn parses_meta_commands() {
        assert_eq!(parse_line("\\quit").unwrap(), Command::Quit);
        assert_eq!(parse_line("\\help").unwrap(), Command::Help);
        assert_eq!(
            parse_line("\\metrics t").unwrap(),
            Command::Metrics { table: "t".into() }
        );
        assert!(matches!(
            parse_line("\\explain select a from t;").unwrap(),
            Command::Explain { .. }
        ));
        assert!(parse_line("\\metrics").is_err());
        assert!(parse_line("\\bogus").is_err());
    }

    #[test]
    fn parses_stats() {
        assert_eq!(
            parse_line("\\stats events").unwrap(),
            Command::Stats {
                table: "events".into()
            }
        );
        assert!(parse_line("\\stats").is_err());
    }
}
