//! `any::<T>()` — canonical strategies for primitive types.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, RngCore};

use crate::strategy::Strategy;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: fmt::Debug + Sized {
    /// Draws one value from the type's full domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut StdRng) -> char {
        // Printable ASCII keeps generated text CSV-friendly while still
        // exercising every code path the workspace's tests care about.
        (rng.gen_range(0x20u32..0x7f) as u8) as char
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        // Finite doubles over a wide exponent range.
        let mantissa = rng.gen_range(-1.0f64..1.0);
        let exp = rng.gen_range(-60i32..60);
        mantissa * (2.0f64).powi(exp)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}
