//! The dbgen-style generator.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nodb_common::{Date, NoDbError, Result, Schema};
use nodb_csv::{CsvOptions, CsvWriter};

use crate::text::*;

/// First order date in the spec.
const STARTDATE: &str = "1992-01-01";
/// Spec's CURRENTDATE used for return flags and line status.
const CURRENTDATE: &str = "1995-06-17";
/// Days in the order-date range [1992-01-01, 1998-08-02].
const ORDERDATE_SPAN: i32 = 2406;

/// Deterministic TPC-H generator at a given scale factor.
#[derive(Debug, Clone)]
pub struct TpchGen {
    /// Scale factor (1.0 ≈ 1 GB of raw data; the paper uses 10).
    pub scale: f64,
    /// Base RNG seed; same seed + scale ⇒ identical files.
    pub seed: u64,
}

impl Default for TpchGen {
    fn default() -> Self {
        TpchGen {
            scale: 0.01,
            seed: 0x7063_6874, // "tpch"
        }
    }
}

impl TpchGen {
    /// New generator.
    pub fn new(scale: f64, seed: u64) -> TpchGen {
        TpchGen { scale, seed }
    }

    /// All table names, generation order (lineitem is produced together
    /// with orders).
    pub fn table_names() -> [&'static str; 8] {
        [
            "region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem",
        ]
    }

    /// Schema of a TPC-H table.
    pub fn schema(table: &str) -> Result<Schema> {
        let desc = match table {
            "lineitem" => {
                "l_orderkey bigint, l_partkey int, l_suppkey int, l_linenumber int, \
                 l_quantity double, l_extendedprice double, l_discount double, l_tax double, \
                 l_returnflag text, l_linestatus text, l_shipdate date, l_commitdate date, \
                 l_receiptdate date, l_shipinstruct text, l_shipmode text, l_comment text"
            }
            "orders" => {
                "o_orderkey bigint, o_custkey int, o_orderstatus text, o_totalprice double, \
                 o_orderdate date, o_orderpriority text, o_clerk text, o_shippriority int, \
                 o_comment text"
            }
            "customer" => {
                "c_custkey int, c_name text, c_address text, c_nationkey int, c_phone text, \
                 c_acctbal double, c_mktsegment text, c_comment text"
            }
            "part" => {
                "p_partkey int, p_name text, p_mfgr text, p_brand text, p_type text, \
                 p_size int, p_container text, p_retailprice double, p_comment text"
            }
            "supplier" => {
                "s_suppkey int, s_name text, s_address text, s_nationkey int, s_phone text, \
                 s_acctbal double, s_comment text"
            }
            "partsupp" => {
                "ps_partkey int, ps_suppkey int, ps_availqty int, ps_supplycost double, \
                 ps_comment text"
            }
            "nation" => "n_nationkey int, n_name text, n_regionkey int, n_comment text",
            "region" => "r_regionkey int, r_name text, r_comment text",
            other => return Err(NoDbError::catalog(format!("unknown TPC-H table `{other}`"))),
        };
        Schema::parse(desc)
    }

    fn count(&self, base: u64) -> u64 {
        ((base as f64 * self.scale).round() as u64).max(1)
    }

    /// Row counts at this scale (lineitem is approximate: 1–7 lines per
    /// order).
    pub fn row_counts(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("region", 5),
            ("nation", 25),
            ("supplier", self.count(10_000)),
            ("customer", self.count(150_000)),
            ("part", self.count(200_000)),
            ("partsupp", self.count(200_000) * 4),
            ("orders", self.count(1_500_000)),
            ("lineitem", self.count(1_500_000) * 4),
        ]
    }

    /// Generate every table into `dir` (as `{table}.tbl`, pipe-delimited),
    /// returning `(table, path)` pairs.
    pub fn generate_all(&self, dir: &Path) -> Result<Vec<(String, PathBuf)>> {
        std::fs::create_dir_all(dir)?;
        let mut out = Vec::new();
        for t in Self::table_names() {
            if t == "lineitem" {
                continue; // written together with orders
            }
            let p = self.generate(t, dir)?;
            out.push((t.to_string(), p));
        }
        out.push(("lineitem".to_string(), dir.join("lineitem.tbl")));
        Ok(out)
    }

    /// Generate one table into `dir`. Generating `orders` also writes
    /// `lineitem.tbl` (their dates are interdependent); generating
    /// `lineitem` delegates to `orders`.
    pub fn generate(&self, table: &str, dir: &Path) -> Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{table}.tbl"));
        match table {
            "region" => self.gen_region(&path)?,
            "nation" => self.gen_nation(&path)?,
            "supplier" => self.gen_supplier(&path)?,
            "customer" => self.gen_customer(&path)?,
            "part" => self.gen_part(&path)?,
            "partsupp" => self.gen_partsupp(&path)?,
            "orders" => self.gen_orders_and_lineitem(dir)?,
            "lineitem" => {
                self.gen_orders_and_lineitem(dir)?;
                return Ok(dir.join("lineitem.tbl"));
            }
            other => return Err(NoDbError::catalog(format!("unknown TPC-H table `{other}`"))),
        }
        Ok(path)
    }

    fn rng_for(&self, table: &str) -> StdRng {
        let mut h = self.seed;
        for b in table.bytes() {
            h = h.wrapping_mul(0x100000001b3).wrapping_add(b as u64);
        }
        StdRng::seed_from_u64(h)
    }

    fn gen_region(&self, path: &Path) -> Result<()> {
        let mut rng = self.rng_for("region");
        let mut w = CsvWriter::create(path, CsvOptions::pipe())?;
        for (i, name) in REGIONS.iter().enumerate() {
            w.write_fields(&[i.to_string(), (*name).to_string(), comment(&mut rng, 4, 8)])?;
        }
        w.finish()?;
        Ok(())
    }

    fn gen_nation(&self, path: &Path) -> Result<()> {
        let mut rng = self.rng_for("nation");
        let mut w = CsvWriter::create(path, CsvOptions::pipe())?;
        for (i, (name, region)) in NATIONS.iter().enumerate() {
            w.write_fields(&[
                i.to_string(),
                (*name).to_string(),
                region.to_string(),
                comment(&mut rng, 4, 10),
            ])?;
        }
        w.finish()?;
        Ok(())
    }

    fn gen_supplier(&self, path: &Path) -> Result<()> {
        let mut rng = self.rng_for("supplier");
        let n = self.count(10_000);
        let mut w = CsvWriter::create(path, CsvOptions::pipe())?;
        for k in 1..=n {
            let nation = rng.gen_range(0..25);
            w.write_fields(&[
                k.to_string(),
                format!("Supplier#{k:09}"),
                address(&mut rng),
                nation.to_string(),
                phone(&mut rng, nation),
                money(rng.gen_range(-99_999i64..=999_999)),
                comment(&mut rng, 5, 12),
            ])?;
        }
        w.finish()?;
        Ok(())
    }

    fn gen_customer(&self, path: &Path) -> Result<()> {
        let mut rng = self.rng_for("customer");
        let n = self.count(150_000);
        let mut w = CsvWriter::create(path, CsvOptions::pipe())?;
        for k in 1..=n {
            let nation = rng.gen_range(0..25);
            w.write_fields(&[
                k.to_string(),
                format!("Customer#{k:09}"),
                address(&mut rng),
                nation.to_string(),
                phone(&mut rng, nation),
                money(rng.gen_range(-99_999i64..=999_999)),
                SEGMENTS[rng.gen_range(0..SEGMENTS.len())].to_string(),
                comment(&mut rng, 6, 14),
            ])?;
        }
        w.finish()?;
        Ok(())
    }

    fn gen_part(&self, path: &Path) -> Result<()> {
        let mut rng = self.rng_for("part");
        let n = self.count(200_000);
        let mut w = CsvWriter::create(path, CsvOptions::pipe())?;
        for k in 1..=n {
            let name = part_name(&mut rng);
            let m = rng.gen_range(1..=5);
            let brand = format!("Brand#{}{}", m, rng.gen_range(1..=5));
            let ptype = format!(
                "{} {} {}",
                TYPE_S1[rng.gen_range(0..TYPE_S1.len())],
                TYPE_S2[rng.gen_range(0..TYPE_S2.len())],
                TYPE_S3[rng.gen_range(0..TYPE_S3.len())]
            );
            let container = format!(
                "{} {}",
                CONTAINER_S1[rng.gen_range(0..CONTAINER_S1.len())],
                CONTAINER_S2[rng.gen_range(0..CONTAINER_S2.len())]
            );
            w.write_fields(&[
                k.to_string(),
                name,
                format!("Manufacturer#{m}"),
                brand,
                ptype,
                rng.gen_range(1..=50).to_string(),
                container,
                money(retail_price_cents(k) as i64),
                comment(&mut rng, 3, 8),
            ])?;
        }
        w.finish()?;
        Ok(())
    }

    fn gen_partsupp(&self, path: &Path) -> Result<()> {
        let mut rng = self.rng_for("partsupp");
        let parts = self.count(200_000);
        let suppliers = self.count(10_000);
        let mut w = CsvWriter::create(path, CsvOptions::pipe())?;
        for p in 1..=parts {
            for i in 0..4u64 {
                // Spec's supplier spreading formula.
                let s = (p + i * ((suppliers / 4) + (p - 1) / suppliers)) % suppliers + 1;
                w.write_fields(&[
                    p.to_string(),
                    s.to_string(),
                    rng.gen_range(1..=9999).to_string(),
                    money(rng.gen_range(100i64..=100_000)),
                    comment(&mut rng, 8, 20),
                ])?;
            }
        }
        w.finish()?;
        Ok(())
    }

    fn gen_orders_and_lineitem(&self, dir: &Path) -> Result<()> {
        let mut rng = self.rng_for("orders");
        let n_orders = self.count(1_500_000);
        let n_cust = self.count(150_000);
        let n_part = self.count(200_000);
        let n_supp = self.count(10_000);
        let start = Date::parse(STARTDATE).expect("valid const");
        let current = Date::parse(CURRENTDATE).expect("valid const");

        let mut ow = CsvWriter::create(&dir.join("orders.tbl"), CsvOptions::pipe())?;
        let mut lw = CsvWriter::create(&dir.join("lineitem.tbl"), CsvOptions::pipe())?;
        for ok in 1..=n_orders {
            let custkey = rng.gen_range(1..=n_cust);
            let orderdate = start.add_days(rng.gen_range(0..ORDERDATE_SPAN - 151));
            let n_lines = rng.gen_range(1..=7u32);
            let mut total_cents: i64 = 0;
            let mut any_open = false;
            let mut all_filled = true;
            let mut lines: Vec<Vec<String>> = Vec::with_capacity(n_lines as usize);
            for ln in 1..=n_lines {
                let partkey = rng.gen_range(1..=n_part);
                let suppkey = rng.gen_range(1..=n_supp);
                let quantity = rng.gen_range(1..=50i64);
                let price_cents = retail_price_cents(partkey) as i64 * quantity;
                let discount = rng.gen_range(0..=10i64); // percent
                let tax = rng.gen_range(0..=8i64); // percent
                let shipdate = orderdate.add_days(rng.gen_range(1..=121));
                let commitdate = orderdate.add_days(rng.gen_range(30..=90));
                let receiptdate = shipdate.add_days(rng.gen_range(1..=30));
                let returnflag = if receiptdate <= current {
                    if rng.gen_bool(0.5) {
                        "R"
                    } else {
                        "A"
                    }
                } else {
                    "N"
                };
                let linestatus = if shipdate > current {
                    any_open = true;
                    all_filled = false;
                    "O"
                } else {
                    "F"
                };
                total_cents += price_cents * (100 - discount) / 100 * (100 + tax) / 100;
                lines.push(vec![
                    ok.to_string(),
                    partkey.to_string(),
                    suppkey.to_string(),
                    ln.to_string(),
                    quantity.to_string(),
                    money(price_cents),
                    format!("0.{discount:02}"),
                    format!("0.{tax:02}"),
                    returnflag.to_string(),
                    linestatus.to_string(),
                    shipdate.to_string(),
                    commitdate.to_string(),
                    receiptdate.to_string(),
                    INSTRUCTIONS[rng.gen_range(0..INSTRUCTIONS.len())].to_string(),
                    MODES[rng.gen_range(0..MODES.len())].to_string(),
                    comment(&mut rng, 2, 6),
                ]);
            }
            let status = if all_filled {
                "F"
            } else if any_open && lines.len() > 1 {
                "P"
            } else {
                "O"
            };
            ow.write_fields(&[
                ok.to_string(),
                custkey.to_string(),
                status.to_string(),
                money(total_cents),
                orderdate.to_string(),
                PRIORITIES[rng.gen_range(0..PRIORITIES.len())].to_string(),
                format!("Clerk#{:09}", rng.gen_range(1..=1000u32)),
                "0".to_string(),
                comment(&mut rng, 4, 12),
            ])?;
            for l in &lines {
                lw.write_fields(l)?;
            }
        }
        ow.finish()?;
        lw.finish()?;
        Ok(())
    }
}

/// Spec formula: `p_retailprice = (90000 + ((partkey/10) mod 20001)
/// + 100·(partkey mod 1000)) / 100`, here in cents.
fn retail_price_cents(partkey: u64) -> u64 {
    90_000 + ((partkey / 10) % 20_001) + 100 * (partkey % 1_000)
}

fn money(cents: i64) -> String {
    let sign = if cents < 0 { "-" } else { "" };
    let c = cents.abs();
    format!("{sign}{}.{:02}", c / 100, c % 100)
}

fn comment(rng: &mut StdRng, min_words: usize, max_words: usize) -> String {
    let n = rng.gen_range(min_words..=max_words);
    let mut s = String::new();
    for i in 0..n {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(COMMENT_WORDS[rng.gen_range(0..COMMENT_WORDS.len())]);
    }
    s
}

fn part_name(rng: &mut StdRng) -> String {
    let mut s = String::new();
    for i in 0..5 {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(PART_WORDS[rng.gen_range(0..PART_WORDS.len())]);
    }
    s
}

fn address(rng: &mut StdRng) -> String {
    let len = rng.gen_range(10..=30);
    let mut s = String::with_capacity(len);
    for _ in 0..len {
        let c = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJ0123456789 "[rng.gen_range(0..47)];
        s.push(c as char);
    }
    s.trim().to_string()
}

fn phone(rng: &mut StdRng, nation: i32) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{}-{:03}-{:03}-{:04}",
        10 + nation,
        rng.gen_range(100..1000),
        rng.gen_range(100..1000),
        rng.gen_range(1000..10000)
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodb_common::TempDir;

    #[test]
    fn schemas_have_spec_column_counts() {
        assert_eq!(TpchGen::schema("lineitem").unwrap().len(), 16);
        assert_eq!(TpchGen::schema("orders").unwrap().len(), 9);
        assert_eq!(TpchGen::schema("customer").unwrap().len(), 8);
        assert_eq!(TpchGen::schema("part").unwrap().len(), 9);
        assert_eq!(TpchGen::schema("supplier").unwrap().len(), 7);
        assert_eq!(TpchGen::schema("partsupp").unwrap().len(), 5);
        assert_eq!(TpchGen::schema("nation").unwrap().len(), 4);
        assert_eq!(TpchGen::schema("region").unwrap().len(), 3);
        assert!(TpchGen::schema("bogus").is_err());
    }

    #[test]
    fn generates_expected_row_counts() {
        let td = TempDir::new("tpch").unwrap();
        let g = TpchGen::new(0.001, 42);
        g.generate_all(td.path()).unwrap();
        let count = |t: &str| {
            std::fs::read_to_string(td.path().join(format!("{t}.tbl")))
                .unwrap()
                .lines()
                .count()
        };
        assert_eq!(count("region"), 5);
        assert_eq!(count("nation"), 25);
        assert_eq!(count("supplier"), 10);
        assert_eq!(count("customer"), 150);
        assert_eq!(count("part"), 200);
        assert_eq!(count("partsupp"), 800);
        assert_eq!(count("orders"), 1500);
        let li = count("lineitem");
        assert!((1500..=10_500).contains(&li), "lineitem rows {li}");
    }

    #[test]
    fn field_counts_match_schema() {
        let td = TempDir::new("tpch").unwrap();
        let g = TpchGen::new(0.001, 42);
        g.generate_all(td.path()).unwrap();
        for t in TpchGen::table_names() {
            let schema = TpchGen::schema(t).unwrap();
            let text = std::fs::read_to_string(td.path().join(format!("{t}.tbl"))).unwrap();
            for line in text.lines().take(50) {
                assert_eq!(
                    line.split('|').count(),
                    schema.len(),
                    "table {t} line `{line}`"
                );
            }
        }
    }

    #[test]
    fn deterministic_output() {
        let td = TempDir::new("tpch").unwrap();
        let a = td.path().join("a");
        let b = td.path().join("b");
        TpchGen::new(0.001, 7).generate("part", &a).unwrap();
        TpchGen::new(0.001, 7).generate("part", &b).unwrap();
        assert_eq!(
            std::fs::read(a.join("part.tbl")).unwrap(),
            std::fs::read(b.join("part.tbl")).unwrap()
        );
        let c = td.path().join("c");
        TpchGen::new(0.001, 8).generate("part", &c).unwrap();
        assert_ne!(
            std::fs::read(a.join("part.tbl")).unwrap(),
            std::fs::read(c.join("part.tbl")).unwrap()
        );
    }

    #[test]
    fn domains_match_spec() {
        let td = TempDir::new("tpch").unwrap();
        let g = TpchGen::new(0.001, 42);
        g.generate_all(td.path()).unwrap();
        let part = std::fs::read_to_string(td.path().join("part.tbl")).unwrap();
        let mut promo = 0;
        for line in part.lines() {
            let f: Vec<&str> = line.split('|').collect();
            assert!(f[3].starts_with("Brand#"));
            if f[4].starts_with("PROMO") {
                promo += 1;
            }
            let size: i32 = f[5].parse().unwrap();
            assert!((1..=50).contains(&size));
        }
        assert!(promo > 0, "PROMO parts must exist for Q14");
        let li = std::fs::read_to_string(td.path().join("lineitem.tbl")).unwrap();
        let mut r = 0;
        let mut mail_ship = 0;
        for line in li.lines() {
            let f: Vec<&str> = line.split('|').collect();
            assert!(matches!(f[8], "R" | "A" | "N"));
            assert!(matches!(f[9], "O" | "F"));
            if f[8] == "R" {
                r += 1;
            }
            if matches!(f[14], "MAIL" | "SHIP") {
                mail_ship += 1;
            }
            // shipdate within [1992, 1999)
            assert!(f[10] >= "1992-01-01" && f[10] < "1999-01-01", "{}", f[10]);
        }
        assert!(r > 0, "R return flags must exist for Q10");
        assert!(mail_ship > 0, "MAIL/SHIP modes must exist for Q12");
    }

    #[test]
    fn retail_price_formula() {
        assert_eq!(retail_price_cents(1), 90_000 + 100);
        assert_eq!(money(90_100), "901.00");
        assert_eq!(money(-150), "-1.50");
    }
}
