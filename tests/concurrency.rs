//! Concurrency guarantees of the lock-split table runtime: `NoDb::query`
//! takes `&self` and is safe to call from any number of threads at once,
//! whether the table is cold (concurrent scans race to build the
//! auxiliary structures) or warm (scans read the positional map and
//! cache under shared locks). Results must always be what a
//! single-threaded engine produces, and after a warm-up the work
//! counters must match the single-threaded run bit-for-bit.

use std::path::PathBuf;
use std::sync::Arc;

use nodb_common::{Row, Schema, TempDir};
use nodb_core::{AccessMode, NoDb, NoDbConfig};
use nodb_csv::{CsvOptions, MicroGen};
use nodb_json::JsonlGen;

fn micro(rows: usize, cols: usize) -> (TempDir, PathBuf, Schema) {
    let td = TempDir::new("nodb-conc").unwrap();
    let p = td.file("t.csv");
    let spec = MicroGen::default().rows(rows).cols(cols).seed(11);
    spec.write_to(&p).unwrap();
    let schema = spec.schema();
    (td, p, schema)
}

/// The JSONL twin of [`micro`]: same seed ⇒ same logical table.
fn micro_jsonl(rows: usize, cols: usize) -> (TempDir, PathBuf, Schema) {
    let td = TempDir::new("nodb-conc").unwrap();
    let p = td.file("t.jsonl");
    let spec = JsonlGen::default().rows(rows).cols(cols).seed(11);
    spec.write_to(&p).unwrap();
    let schema = spec.schema();
    (td, p, schema)
}

fn engine(cfg: NoDbConfig, p: &std::path::Path, s: &Schema) -> NoDb {
    let mut db = NoDb::new(cfg).unwrap();
    db.register_csv("t", p, s.clone(), CsvOptions::default(), AccessMode::InSitu)
        .unwrap();
    db
}

fn engine_jsonl(cfg: NoDbConfig, p: &std::path::Path, s: &Schema) -> NoDb {
    let mut db = NoDb::new(cfg).unwrap();
    db.register_jsonl("t", p, s.clone(), AccessMode::InSitu)
        .unwrap();
    db
}

/// The mixed per-thread workload: projections, filters and aggregates.
/// The attribute sets are pairwise identical-or-disjoint on purpose: the
/// positional map's re-combination rule (§4.2) re-collects a chunk when a
/// query's attributes span *different* chunks, so overlapping sets would
/// keep re-collecting forever in an order-dependent way and no
/// single-threaded metric baseline could exist. Disjoint sets reach a
/// steady state where warm metrics are exactly additive.
const WORKLOAD: [&str; 6] = [
    "select c0, c5 from t where c2 < 500000000",
    "select c1 from t",
    "select count(*) from t",
    "select sum(c3), min(c4), max(c4) from t",
    "select c6 from t where c7 > 250000000",
    "select count(*) from t where c8 < 250000000 or c9 > 750000000",
];

/// N threads hammer one *cold* table with mixed queries; every result
/// must equal the single-threaded reference. This exercises concurrent
/// sequential scans racing to build the EOL index, map and cache.
#[test]
fn concurrent_cold_queries_match_reference() {
    let (_td, p, schema) = micro(3000, 10);
    let reference = engine(NoDbConfig::postgres_raw(), &p, &schema);
    let expected: Vec<Vec<Row>> = WORKLOAD
        .iter()
        .map(|q| reference.query(q).unwrap().rows)
        .collect();

    let shared = Arc::new(engine(NoDbConfig::postgres_raw(), &p, &schema));
    std::thread::scope(|s| {
        for t in 0..8 {
            let shared = Arc::clone(&shared);
            let expected = &expected;
            s.spawn(move || {
                // Each thread starts at a different query so the cold
                // race takes different shapes.
                for i in 0..WORKLOAD.len() {
                    let qi = (t + i) % WORKLOAD.len();
                    let got = shared.query(WORKLOAD[qi]).unwrap();
                    assert_eq!(got.rows, expected[qi], "thread {t}, `{}`", WORKLOAD[qi]);
                }
            });
        }
    });
    // The aux structures the race built serve a correct final answer.
    let r = shared.query("select count(*) from t").unwrap();
    assert_eq!(
        r.rows,
        reference.query("select count(*) from t").unwrap().rows
    );
}

/// After a warm-up, N threads × M rounds of mixed queries produce
/// results *and* cumulative scan metrics identical to the same sequence
/// run single-threaded: warm reads are pure shared-lock cache/map hits,
/// so the counters are order-independent. The warm-up is two passes —
/// the first builds the structures, the second fills the cache holes
/// that selective parsing left — so the concurrent rounds start from the
/// steady state.
#[test]
fn concurrent_warm_queries_match_single_threaded_bit_for_bit() {
    const THREADS: usize = 6;
    const ROUNDS: usize = 3;
    const WARMUP: usize = 2;
    let (_td, p, schema) = micro(2000, 10);

    // Reference: warm-up + THREADS × ROUNDS sequential repetitions.
    let reference = engine(NoDbConfig::postgres_raw(), &p, &schema);
    let mut expected: Vec<Vec<Row>> = Vec::new();
    for q in WORKLOAD {
        expected.push(reference.query(q).unwrap().rows);
    }
    for _ in 0..WARMUP - 1 {
        for q in WORKLOAD {
            reference.query(q).unwrap();
        }
    }
    for _ in 0..THREADS * ROUNDS {
        for q in WORKLOAD {
            reference.query(q).unwrap();
        }
    }
    let expected_metrics = reference.metrics("t").unwrap();

    // Concurrent engine: same warm-up, then the repetitions in parallel.
    let shared = Arc::new(engine(NoDbConfig::postgres_raw(), &p, &schema));
    for _ in 0..WARMUP {
        for q in WORKLOAD {
            shared.query(q).unwrap();
        }
    }
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let shared = Arc::clone(&shared);
            let expected = &expected;
            s.spawn(move || {
                for _ in 0..ROUNDS {
                    for (qi, q) in WORKLOAD.iter().enumerate() {
                        let got = shared.query(q).unwrap();
                        assert_eq!(got.rows, expected[qi], "thread {t}, `{q}`");
                    }
                }
            });
        }
    });
    let got_metrics = shared.metrics("t").unwrap();
    assert_eq!(
        got_metrics, expected_metrics,
        "warm concurrent execution must do exactly the single-threaded work"
    );
}

/// Parallel cold scans (scan_threads > 1) *combined with* concurrent
/// queries: chunked workers inside each scan, many scans at once.
#[test]
fn concurrent_queries_with_parallel_scans() {
    let (_td, p, schema) = micro(4000, 10);
    let reference = engine(NoDbConfig::postgres_raw(), &p, &schema);
    let expected: Vec<Vec<Row>> = WORKLOAD
        .iter()
        .map(|q| reference.query(q).unwrap().rows)
        .collect();

    let mut cfg = NoDbConfig::postgres_raw();
    cfg.scan_threads = 4;
    let shared = Arc::new(engine(cfg, &p, &schema));
    std::thread::scope(|s| {
        for t in 0..4 {
            let shared = Arc::clone(&shared);
            let expected = &expected;
            s.spawn(move || {
                for i in 0..WORKLOAD.len() {
                    let qi = (t + i) % WORKLOAD.len();
                    let got = shared.query(WORKLOAD[qi]).unwrap();
                    assert_eq!(got.rows, expected[qi], "thread {t}, `{}`", WORKLOAD[qi]);
                }
            });
        }
    });
    // Once warm, the totals stabilize: two more passes add cache-served
    // work only.
    let m1 = shared.metrics("t").unwrap();
    for q in WORKLOAD {
        shared.query(q).unwrap();
    }
    let m2 = shared.metrics("t").unwrap();
    assert_eq!(
        m2.fields_parsed, m1.fields_parsed,
        "warm pass re-parses nothing"
    );
    assert_eq!(m2.bytes_tokenized, m1.bytes_tokenized);
}

/// The format-generic scan keeps PR 2's parallel-scan guarantees for
/// JSONL. Two engines over the same JSONL file — `scan_threads` 1 and 4
/// — run the whole workload from cold; rows must equal the CSV twin's
/// reference and the cumulative work counters of the two JSONL engines
/// must match bit-for-bit (chunked cold scans do exactly the
/// single-threaded work, merged in file order).
#[test]
fn jsonl_parallel_scan_parity_with_single_threaded() {
    let (_tdc, pc, schema_csv) = micro(3000, 10);
    let (_tdj, pj, schema) = micro_jsonl(3000, 10);
    let reference = engine(NoDbConfig::postgres_raw(), &pc, &schema_csv);

    let mut engines = Vec::new();
    for scan_threads in [1usize, 4] {
        let mut cfg = NoDbConfig::postgres_raw();
        cfg.scan_threads = scan_threads;
        engines.push(engine_jsonl(cfg, &pj, &schema));
    }
    // Cold + warm pass on each engine, checked against the CSV reference.
    for round in 0..2 {
        for (qi, q) in WORKLOAD.iter().enumerate() {
            let want = reference.query(q).unwrap().rows;
            for (ei, db) in engines.iter().enumerate() {
                let got = db.query(q).unwrap();
                assert_eq!(got.rows, want, "round {round}, engine {ei}, query {qi}");
            }
        }
    }
    let m1 = engines[0].metrics("t").unwrap();
    let m4 = engines[1].metrics("t").unwrap();
    assert_eq!(
        m1, m4,
        "1-thread and 4-thread JSONL scans must do identical work"
    );
}

/// Cold race on a JSONL table: 8 threads hammer one shared engine with
/// chunk-parallel scans racing to build the EOL index, positional map
/// and cache; every result must equal the single-threaded reference.
#[test]
fn jsonl_concurrent_cold_queries_match_reference() {
    let (_td, p, schema) = micro_jsonl(3000, 10);
    let reference = engine_jsonl(NoDbConfig::postgres_raw(), &p, &schema);
    let expected: Vec<Vec<Row>> = WORKLOAD
        .iter()
        .map(|q| reference.query(q).unwrap().rows)
        .collect();

    let mut cfg = NoDbConfig::postgres_raw();
    cfg.scan_threads = 4;
    let shared = Arc::new(engine_jsonl(cfg, &p, &schema));
    std::thread::scope(|s| {
        for t in 0..8 {
            let shared = Arc::clone(&shared);
            let expected = &expected;
            s.spawn(move || {
                for i in 0..WORKLOAD.len() {
                    let qi = (t + i) % WORKLOAD.len();
                    let got = shared.query(WORKLOAD[qi]).unwrap();
                    assert_eq!(got.rows, expected[qi], "thread {t}, `{}`", WORKLOAD[qi]);
                }
            });
        }
    });
    // Once warm, another pass is pure map/cache reads: no re-parsing.
    let m1 = shared.metrics("t").unwrap();
    for q in WORKLOAD {
        shared.query(q).unwrap();
    }
    let m2 = shared.metrics("t").unwrap();
    assert_eq!(
        m2.fields_parsed, m1.fields_parsed,
        "warm pass re-parses nothing"
    );
}

/// Dropping auxiliary structures while other threads query must never
/// produce wrong rows — worst case a scan rebuilds from scratch. Run
/// both single-threaded and chunk-parallel scans: a drop landing
/// between a parallel scan's fan-out and its merge must not mark the
/// freshly-emptied EOL index complete (which would freeze the row count
/// at 0 for every later query).
#[test]
fn drop_aux_under_concurrent_queries_is_safe() {
    let (_td, p, schema) = micro(1500, 6);
    let reference = engine(NoDbConfig::postgres_raw(), &p, &schema);
    let expected = reference.query("select count(*) from t").unwrap().rows;

    for scan_threads in [1usize, 4] {
        let mut cfg = NoDbConfig::postgres_raw();
        cfg.scan_threads = scan_threads;
        let shared = Arc::new(engine(cfg, &p, &schema));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let shared = Arc::clone(&shared);
                let expected = &expected;
                s.spawn(move || {
                    for _ in 0..6 {
                        let got = shared.query("select count(*) from t").unwrap();
                        assert_eq!(&got.rows, expected, "{scan_threads} scan threads");
                    }
                });
            }
            let dropper = Arc::clone(&shared);
            s.spawn(move || {
                for _ in 0..6 {
                    dropper.drop_aux("t").unwrap();
                    std::thread::yield_now();
                }
            });
        });
        // The index left behind answers correctly afterwards too.
        let got = shared.query("select count(*) from t").unwrap();
        assert_eq!(&got.rows, &expected, "{scan_threads} scan threads, after");
    }
}
