//! The lint arms. Each arm is a pure function from lexed sources (plus
//! policy) to [`Finding`](crate::report::Finding)s; the orchestration in
//! [`crate::run`] decides which files each arm sees and applies waivers.

pub mod atomic_order;
pub mod cast_check;
pub mod knob_check;
pub mod lock_order;
pub mod panic_path;
pub mod unsafe_audit;
