//! Clean fixture: exercises every lint arm's *happy* path — justified
//! unsafe, DAG-ordered locks, commented Relaxed, panic-free hot code,
//! commented narrowing cast, registered knob — and must produce zero
//! findings when every arm is pointed at this file.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub struct Runtime {
    pub posmap: Mutex<u32>,
    pub stats: Mutex<u32>,
    pub counter: AtomicU64,
}

/// Locks acquired in DAG order (posmap before stats), released in scope.
pub fn ordered(rt: &Runtime) -> u32 {
    let p = rt.posmap.lock().unwrap_or_else(|e| e.into_inner());
    let s = rt.stats.lock().unwrap_or_else(|e| e.into_inner());
    *p + *s
}

pub fn counted(rt: &Runtime) {
    // ORDERING: monotonic observability counter; no memory is published
    // through it, so Relaxed is sufficient.
    rt.counter.fetch_add(1, Ordering::Relaxed);
}

/// SAFETY: reads one byte from a slice whose length was just checked.
pub fn first_byte(buf: &[u8]) -> Option<u8> {
    if buf.is_empty() {
        return None;
    }
    // SAFETY: the emptiness check above guarantees index 0 is in bounds.
    Some(unsafe { *buf.get_unchecked(0) })
}

pub fn narrow(x: usize) -> u16 {
    // CAST: callers pass block-local row ordinals < 4096, which fit u16.
    x as u16
}

pub fn knob() -> Option<String> {
    std::env::var("NODB_FIX").ok()
}

#[cfg(test)]
mod tests {
    #[test]
    fn hot_path_rules_do_not_apply_here() {
        let v = [1u8];
        assert_eq!(v[0], 1);
        let x: Option<u8> = Some(3);
        assert_eq!(x.unwrap(), 3);
    }
}
