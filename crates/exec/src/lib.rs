//! Volcano-style execution engine.
//!
//! PostgresRaw keeps its host's executor untouched — "each tuple is then
//! passed one-by-one through the operators of a query plan" (§3). This
//! crate is that executor: pull-based operators exchanging [`Row`]s, plus
//! the physical planner that lowers a [`nodb_sql::LogicalPlan`] onto
//! whatever leaf scans a [`TableProvider`] supplies.
//!
//! The same operator tree therefore runs over
//! * in-situ raw-file scans (PostgresRaw),
//! * straw-man external-file scans, and
//! * conventional heap-file scans,
//!
//! which is exactly the controlled comparison the paper's evaluation
//! depends on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod build;
pub mod eval;
pub mod key;
pub mod ops;

pub use batch::{ValueBatch, DEFAULT_BATCH_ROWS};
pub use build::{build_plan, build_plan_with_params, ExecCatalog, TableProvider};
pub use eval::{eval, eval_batch, eval_predicate, eval_predicate_batch};
pub use key::GroupKey;
pub use ops::{BoxOp, DistinctOp, Operator, RowsOp};

use nodb_common::{Result, Row};

/// Drain an operator into a vector (convenience for tests and engines).
pub fn run_to_vec(mut op: BoxOp) -> Result<Vec<Row>> {
    let mut out = Vec::new();
    while let Some(r) = op.next_row()? {
        out.push(r);
    }
    Ok(out)
}

/// A lazy [`Iterator`] view over an operator tree: each `next` pulls
/// exactly one row through the Volcano pipeline, so consumers that stop
/// early (a `LIMIT`, a UI page, an abandoned cursor) never pay for rows
/// they do not read.
///
/// The cursor is *fused*: after the operator reports exhaustion or an
/// error, the tree is dropped eagerly (releasing scan readers, mappings
/// and staged state) and every later `next` returns `None`.
///
/// With [`RowCursor::with_batch`] the cursor instead pulls
/// [`ValueBatch`]es of up to `batch_rows` rows and hands them out row by
/// row, so the whole tree runs its vectorized path while the consumer
/// API stays the same. Early drops still release the tree without
/// pulling further batches.
pub struct RowCursor {
    op: Option<BoxOp>,
    batch_rows: usize,
    buf: std::vec::IntoIter<Row>,
}

impl RowCursor {
    /// Wrap an operator tree (row-at-a-time pulls).
    pub fn new(op: BoxOp) -> RowCursor {
        RowCursor {
            op: Some(op),
            batch_rows: 0,
            buf: Vec::new().into_iter(),
        }
    }

    /// Wrap an operator tree, pulling batches of up to `batch_rows` rows
    /// (0 falls back to row-at-a-time pulls).
    pub fn with_batch(op: BoxOp, batch_rows: usize) -> RowCursor {
        RowCursor {
            op: Some(op),
            batch_rows,
            buf: Vec::new().into_iter(),
        }
    }

    /// Has the underlying operator tree finished (or failed)?
    pub fn is_done(&self) -> bool {
        self.op.is_none() && self.buf.len() == 0
    }
}

impl Iterator for RowCursor {
    type Item = Result<Row>;

    fn next(&mut self) -> Option<Result<Row>> {
        if let Some(r) = self.buf.next() {
            return Some(Ok(r));
        }
        let op = self.op.as_mut()?;
        if self.batch_rows > 0 {
            match op.next_batch(self.batch_rows) {
                Ok(Some(b)) => {
                    self.buf = b.into_rows().into_iter();
                    // Batches are never empty by contract.
                    self.buf.next().map(Ok)
                }
                Ok(None) => {
                    self.op = None;
                    None
                }
                Err(e) => {
                    self.op = None;
                    Some(Err(e))
                }
            }
        } else {
            match op.next_row() {
                Ok(Some(r)) => Some(Ok(r)),
                Ok(None) => {
                    self.op = None;
                    None
                }
                Err(e) => {
                    self.op = None;
                    Some(Err(e))
                }
            }
        }
    }
}
