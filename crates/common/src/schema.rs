//! Relation schemas: ordered, named, typed attributes.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::{NoDbError, Result};
use crate::types::DataType;

/// One attribute of a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Attribute name (matched case-insensitively during planning).
    pub name: String,
    /// Logical type.
    pub dtype: DataType,
}

impl Field {
    /// Construct a field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Field {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered collection of [`Field`]s with case-insensitive name lookup.
///
/// The paper assumes the user declares the schema of each in-situ table up
/// front ("automated schema discovery is … orthogonal", §3.1); this type is
/// that declaration.
#[derive(Debug, Clone)]
pub struct Schema {
    fields: Arc<Vec<Field>>,
    by_name: Arc<HashMap<String, usize>>,
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        self.fields == other.fields
    }
}

impl Schema {
    /// Build a schema from fields. Duplicate names (case-insensitive) are
    /// rejected.
    pub fn new(fields: Vec<Field>) -> Result<Schema> {
        let mut by_name = HashMap::with_capacity(fields.len());
        for (i, f) in fields.iter().enumerate() {
            if by_name.insert(f.name.to_ascii_lowercase(), i).is_some() {
                return Err(NoDbError::catalog(format!(
                    "duplicate column name `{}`",
                    f.name
                )));
            }
        }
        Ok(Schema {
            fields: Arc::new(fields),
            by_name: Arc::new(by_name),
        })
    }

    /// Convenience builder from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Result<Schema> {
        Schema::new(
            pairs
                .iter()
                .map(|(n, t)| Field::new(*n, *t))
                .collect::<Vec<_>>(),
        )
    }

    /// Parse a compact schema description like
    /// `"a int, b text, c date"`.
    pub fn parse(desc: &str) -> Result<Schema> {
        let mut fields = Vec::new();
        for part in desc.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let mut it = part.split_whitespace();
            let name = it
                .next()
                .ok_or_else(|| NoDbError::catalog("missing column name"))?;
            let ty = it
                .next()
                .ok_or_else(|| NoDbError::catalog(format!("missing type for `{name}`")))?;
            if it.next().is_some() {
                return Err(NoDbError::catalog(format!(
                    "unexpected tokens after type in `{part}`"
                )));
            }
            fields.push(Field::new(name, DataType::parse(ty)?));
        }
        Schema::new(fields)
    }

    /// The fields, in attribute order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Field at ordinal `i`.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Ordinal of the column named `name` (case-insensitive).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.by_name.get(&name.to_ascii_lowercase()).copied()
    }

    /// Like [`Schema::index_of`] but returns a planning error mentioning
    /// the name.
    pub fn resolve(&self, name: &str) -> Result<usize> {
        self.index_of(name)
            .ok_or_else(|| NoDbError::plan(format!("unknown column `{name}`")))
    }

    /// A new schema containing only the given ordinals, in that order.
    pub fn project(&self, indices: &[usize]) -> Result<Schema> {
        let fields = indices
            .iter()
            .map(|&i| {
                self.fields.get(i).cloned().ok_or_else(|| {
                    NoDbError::internal(format!("projection index {i} out of range"))
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Schema::new(fields)
    }

    /// The column types, in attribute order.
    pub fn types(&self) -> Vec<DataType> {
        self.fields.iter().map(|f| f.dtype).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_case_insensitive() {
        let s = Schema::parse("L_ShipDate date, l_quantity double").unwrap();
        assert_eq!(s.index_of("l_shipdate"), Some(0));
        assert_eq!(s.index_of("L_QUANTITY"), Some(1));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn duplicate_names_rejected() {
        assert!(Schema::parse("a int, A text").is_err());
    }

    #[test]
    fn parse_rejects_malformed_descriptions() {
        assert!(Schema::parse("a").is_err());
        assert!(Schema::parse("a int extra").is_err());
        assert!(Schema::parse("a blob").is_err());
    }

    #[test]
    fn projection_reorders_fields() {
        let s = Schema::parse("a int, b text, c date").unwrap();
        let p = s.project(&[2, 0]).unwrap();
        assert_eq!(p.field(0).name, "c");
        assert_eq!(p.field(1).name, "a");
        assert!(s.project(&[9]).is_err());
    }

    #[test]
    fn resolve_reports_unknown_columns() {
        let s = Schema::parse("a int").unwrap();
        let err = s.resolve("zz").unwrap_err().to_string();
        assert!(err.contains("zz"), "{err}");
    }
}
