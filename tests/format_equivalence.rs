//! Differential proof that the format-generic scan core treats CSV and
//! JSON Lines as *the same table*: the identical logical rows are written
//! in both physical layouts, every query of a shared corpus (filters,
//! aggregates, joins, LIMIT, EXISTS) runs against both, and results must
//! match row for row — cold, warm, after `drop_aux`, re-warmed, single-
//! and multi-threaded. Beyond results, the adaptive machinery must
//! *behave* identically: positional-map/cache hit counters and pointer
//! counts are format-independent, because the map stores positions and
//! the cache stores converted values, neither of which depends on how
//! bytes were laid out.
//!
//! Also covered here (error-path normalization): malformed records in
//! either format must surface `nodb-common` parse errors that name the
//! file, the row (when known) and the byte offset of the record.

use std::path::{Path, PathBuf};

use nodb::common::{Row, Schema, TempDir, Value};
use nodb::core::{AccessMode, NoDb, NoDbConfig, ScanMetrics};
use nodb::csv::{CsvOptions, CsvWriter};
use nodb::json::{JsonlOptions, JsonlWriter};

const T_SCHEMA: &str = "id int, grp text, score double, flag bool, day date, note text, big bigint";
const U_SCHEMA: &str = "uid int, bonus int";

/// The shared query corpus: every shape the engine supports, hitting
/// overlapping attribute sets so the positional map re-combines chunks
/// and the cache fills incrementally.
const QUERIES: &[&str] = &[
    "select id, note from t where score > 6.0",
    "select grp, count(*), sum(score) from t group by grp order by grp",
    "select count(*) from t",
    "select id, flag, day from t order by id limit 13",
    "select min(score), max(score), sum(big) from t where id >= 100",
    "select count(*) from t where note is null",
    "select id, bonus from t join u on id = uid where bonus > 50 order by id, bonus",
    "select count(*) from t where exists (select * from u where uid = id)",
    "select grp, count(*) from t where grp = 'beta' and score < 9.0 group by grp order by grp",
];

/// Deterministic mixed-type rows with NULLs sprinkled into every column.
/// Text stays free of delimiters/newlines (a CSV physical limitation);
/// everything else — quotes, backslashes, tabs, unicode — is fair game
/// and exercises JSON escaping against CSV verbatim bytes.
fn t_rows(n: usize) -> Vec<Row> {
    let groups = ["alpha", "beta", "gamma", "delta"];
    let notes = [
        "plain",
        "with \"quotes\"",
        "back\\slash",
        "tab\there",
        "caf\u{e9} \u{2603}",
        "",
    ];
    (0..n)
        .map(|i| {
            let null = |k: usize| i % k == k - 1;
            Row(vec![
                Value::Int32(i as i32),
                if null(13) {
                    Value::Null
                } else {
                    Value::Text(groups[i % groups.len()].into())
                },
                if null(7) {
                    Value::Null
                } else {
                    Value::Float64((i % 100) as f64 / 8.0)
                },
                if null(17) {
                    Value::Null
                } else {
                    Value::Bool(i % 3 == 0)
                },
                if null(11) {
                    Value::Null
                } else {
                    Value::Date(
                        nodb::common::Date::parse(&format!("2020-01-{:02}", 1 + i % 28)).unwrap(),
                    )
                },
                if null(5) {
                    Value::Null
                } else {
                    Value::Text(notes[i % notes.len()].into())
                },
                Value::Int64(1_000_000_000_000 + i as i64 * 37),
            ])
        })
        .collect()
}

fn u_rows(n: usize) -> Vec<Row> {
    (0..n)
        .map(|i| {
            Row(vec![
                Value::Int32((i * 2) as i32), // joins with every even t.id
                Value::Int32((i % 120) as i32),
            ])
        })
        .collect()
}

fn write_csv(path: &Path, schema: &Schema, rows: &[Row]) {
    let _ = schema;
    let mut w = CsvWriter::create(path, CsvOptions::default()).unwrap();
    for r in rows {
        w.write_row(r).unwrap();
    }
    w.finish().unwrap();
}

fn write_jsonl(path: &Path, schema: &Schema, rows: &[Row], opts: JsonlOptions) {
    let mut w = JsonlWriter::create(path, schema, opts).unwrap();
    for r in rows {
        w.write_row(r).unwrap();
    }
    w.finish().unwrap();
}

struct Fixture {
    _td: TempDir,
    t_csv: PathBuf,
    t_jsonl: PathBuf,
    t_jsonl_sparse: PathBuf,
    u_csv: PathBuf,
    u_jsonl: PathBuf,
    t_schema: Schema,
    u_schema: Schema,
}

fn fixture(rows: usize) -> Fixture {
    let td = TempDir::new("nodb-fmt-eq").unwrap();
    let t_schema = Schema::parse(T_SCHEMA).unwrap();
    let u_schema = Schema::parse(U_SCHEMA).unwrap();
    let t = t_rows(rows);
    let u = u_rows(rows / 2);
    let f = Fixture {
        t_csv: td.file("t.csv"),
        t_jsonl: td.file("t.jsonl"),
        t_jsonl_sparse: td.file("t_sparse.jsonl"),
        u_csv: td.file("u.csv"),
        u_jsonl: td.file("u.jsonl"),
        t_schema,
        u_schema,
        _td: td,
    };
    write_csv(&f.t_csv, &f.t_schema, &t);
    write_jsonl(&f.t_jsonl, &f.t_schema, &t, JsonlOptions::default());
    // The same rows with NULL keys *omitted* instead of explicit `null`.
    write_jsonl(
        &f.t_jsonl_sparse,
        &f.t_schema,
        &t,
        JsonlOptions { omit_nulls: true },
    );
    write_csv(&f.u_csv, &f.u_schema, &u);
    write_jsonl(&f.u_jsonl, &f.u_schema, &u, JsonlOptions::default());
    f
}

fn config(scan_threads: usize) -> NoDbConfig {
    let mut cfg = NoDbConfig::postgres_raw();
    cfg.scan_threads = scan_threads;
    // Small blocks so the corpus spans many positional-map blocks and the
    // parallel merge cuts real block-aligned chunks.
    cfg.posmap_block_rows = 256;
    cfg
}

fn csv_engine(f: &Fixture, scan_threads: usize) -> NoDb {
    let mut db = NoDb::new(config(scan_threads)).unwrap();
    db.register_csv(
        "t",
        &f.t_csv,
        f.t_schema.clone(),
        CsvOptions::default(),
        AccessMode::InSitu,
    )
    .unwrap();
    db.register_csv(
        "u",
        &f.u_csv,
        f.u_schema.clone(),
        CsvOptions::default(),
        AccessMode::InSitu,
    )
    .unwrap();
    db
}

fn jsonl_engine(f: &Fixture, scan_threads: usize, sparse: bool) -> NoDb {
    let mut db = NoDb::new(config(scan_threads)).unwrap();
    let t_path = if sparse {
        &f.t_jsonl_sparse
    } else {
        &f.t_jsonl
    };
    db.register_jsonl("t", t_path, f.t_schema.clone(), AccessMode::InSitu)
        .unwrap();
    db.register_jsonl("u", &f.u_jsonl, f.u_schema.clone(), AccessMode::InSitu)
        .unwrap();
    db
}

fn run_corpus(label: &str, csv: &NoDb, jsonl: &NoDb) {
    for q in QUERIES {
        let a = csv.query(q).unwrap();
        let b = jsonl.query(q).unwrap();
        assert_eq!(a.rows, b.rows, "{label}: `{q}`");
    }
}

/// The format-independent slice of the work counters: how many values
/// came from the map, an anchor, the cache, and conversion. (Byte/field
/// tokenization totals legitimately differ — JSONL lines are longer and
/// carry keys.)
fn hit_behavior(m: &ScanMetrics) -> (u64, u64, u64, u64, u64) {
    (
        m.scans,
        m.rows_emitted,
        m.fields_parsed,
        m.fields_from_cache,
        m.fields_via_map,
    )
}

fn assert_same_behavior(label: &str, csv: &NoDb, jsonl: &NoDb) {
    for table in ["t", "u"] {
        let mc = csv.metrics(table).unwrap();
        let mj = jsonl.metrics(table).unwrap();
        assert_eq!(
            hit_behavior(&mc),
            hit_behavior(&mj),
            "{label}: `{table}` (scans, rows, parsed, from_cache, via_map)"
        );
        assert_eq!(
            mc.fields_via_anchor, mj.fields_via_anchor,
            "{label}: `{table}` anchor jumps"
        );
        let ac = csv.aux_info(table).unwrap();
        let aj = jsonl.aux_info(table).unwrap();
        assert_eq!(
            ac.posmap_pointers, aj.posmap_pointers,
            "{label}: `{table}` positional pointers"
        );
        assert_eq!(ac.stats_attrs, aj.stats_attrs, "{label}: `{table}` stats");
    }
}

/// The tentpole acceptance test: CSV and JSONL produce identical results
/// and identical adaptive behavior across the whole lifecycle — cold →
/// warm → drop_aux → re-warm — with single-threaded and chunk-parallel
/// cold scans.
#[test]
fn csv_and_jsonl_agree_across_the_adaptivity_lifecycle() {
    let f = fixture(1000);
    for threads in [1usize, 4] {
        let csv = csv_engine(&f, threads);
        let jsonl = jsonl_engine(&f, threads, false);

        run_corpus("cold", &csv, &jsonl);
        run_corpus("warm", &csv, &jsonl);
        assert_same_behavior(&format!("warm/{threads}t"), &csv, &jsonl);

        csv.drop_aux("t").unwrap();
        csv.drop_aux("u").unwrap();
        jsonl.drop_aux("t").unwrap();
        jsonl.drop_aux("u").unwrap();

        run_corpus("re-cold", &csv, &jsonl);
        run_corpus("re-warm", &csv, &jsonl);
        assert_same_behavior(&format!("re-warm/{threads}t"), &csv, &jsonl);
    }
}

/// Omitting null keys from the objects must read back exactly like
/// explicit `"key": null` — and, transitively, like CSV.
#[test]
fn omitted_null_keys_match_explicit_nulls() {
    let f = fixture(400);
    let explicit = jsonl_engine(&f, 1, false);
    let sparse = jsonl_engine(&f, 2, true);
    for q in QUERIES {
        let a = explicit.query(q).unwrap();
        let b = sparse.query(q).unwrap();
        assert_eq!(a.rows, b.rows, "sparse vs explicit nulls: `{q}`");
    }
    // Warm pass too: missing-key knowledge lives in the positional map.
    for q in QUERIES {
        assert_eq!(
            explicit.query(q).unwrap().rows,
            sparse.query(q).unwrap().rows,
            "warm sparse vs explicit nulls: `{q}`"
        );
    }
}

/// ExternalFiles (the no-aux straw man) also runs both formats.
#[test]
fn external_files_mode_serves_jsonl() {
    let f = fixture(300);
    let mut db = NoDb::new(NoDbConfig::baseline()).unwrap();
    db.register_jsonl(
        "t",
        &f.t_jsonl,
        f.t_schema.clone(),
        AccessMode::ExternalFiles,
    )
    .unwrap();
    let mut csv = NoDb::new(NoDbConfig::baseline()).unwrap();
    csv.register_csv(
        "t",
        &f.t_csv,
        f.t_schema.clone(),
        CsvOptions::default(),
        AccessMode::ExternalFiles,
    )
    .unwrap();
    for q in &QUERIES[..6] {
        assert_eq!(
            csv.query(q).unwrap().rows,
            db.query(q).unwrap().rows,
            "external files: `{q}`"
        );
    }
}

/// Loaded mode is CSV-only; JSONL registration must say so up front.
#[test]
fn jsonl_rejects_loaded_mode() {
    let f = fixture(10);
    let mut db = NoDb::new(NoDbConfig::postgres_raw()).unwrap();
    let err = db
        .register_jsonl("t", &f.t_jsonl, f.t_schema.clone(), AccessMode::Loaded)
        .unwrap_err();
    assert!(err.to_string().contains("Loaded"), "{err}");
}

// ----- error-path normalization (file / row / byte diagnostics) ----------

#[test]
fn malformed_csv_reports_file_row_and_byte() {
    let td = TempDir::new("nodb-fmt-err").unwrap();
    let p = td.file("bad.csv");
    // Row 1 (starting at byte 4) has one field; the query needs two.
    std::fs::write(&p, "1,a\n2\n3,c\n").unwrap();
    let mut db = NoDb::new(NoDbConfig::postgres_raw()).unwrap();
    db.register_csv(
        "t",
        &p,
        Schema::parse("a int, b text").unwrap(),
        CsvOptions::default(),
        AccessMode::InSitu,
    )
    .unwrap();
    let err = db.query("select a, b from t").unwrap_err().to_string();
    assert!(err.contains("bad.csv"), "{err}");
    assert!(err.contains("row 1"), "{err}");
    assert!(err.contains("byte 4"), "{err}");
    assert!(err.contains("need at least 2"), "{err}");
}

#[test]
fn malformed_jsonl_reports_file_row_and_byte() {
    let td = TempDir::new("nodb-fmt-err").unwrap();
    let p = td.file("bad.jsonl");
    // Row 1 starts at byte 8 and is truncated mid-object.
    std::fs::write(&p, "{\"a\":1}\n{\"a\": \n{\"a\":3}\n").unwrap();
    let mut db = NoDb::new(NoDbConfig::postgres_raw()).unwrap();
    db.register_jsonl("t", &p, Schema::parse("a int").unwrap(), AccessMode::InSitu)
        .unwrap();
    let err = db.query("select a from t").unwrap_err().to_string();
    assert!(err.contains("bad.jsonl"), "{err}");
    assert!(err.contains("row 1"), "{err}");
    assert!(err.contains("byte 8"), "{err}");
}

#[test]
fn unconvertible_values_name_the_column_in_both_formats() {
    let td = TempDir::new("nodb-fmt-err").unwrap();
    let cp = td.file("bad.csv");
    std::fs::write(&cp, "1\nxyz\n").unwrap();
    let jp = td.file("bad.jsonl");
    std::fs::write(&jp, "{\"a\":1}\n{\"a\":\"xyz\"}\n").unwrap();
    let mut db = NoDb::new(NoDbConfig::postgres_raw()).unwrap();
    let schema = Schema::parse("a int").unwrap();
    db.register_csv(
        "tc",
        &cp,
        schema.clone(),
        CsvOptions::default(),
        AccessMode::InSitu,
    )
    .unwrap();
    db.register_jsonl("tj", &jp, schema, AccessMode::InSitu)
        .unwrap();
    for (table, file) in [("tc", "bad.csv"), ("tj", "bad.jsonl")] {
        let err = db
            .query(&format!("select a from {table}"))
            .unwrap_err()
            .to_string();
        assert!(err.contains(file), "{err}");
        assert!(err.contains("column `a`"), "{err}");
        assert!(err.contains("row 1"), "{err}");
        assert!(err.contains("bad int"), "{err}");
    }
}

/// Parallel chunk workers do not know global row ids; their diagnostics
/// still name the file and the record's byte offset.
#[test]
fn chunked_scan_errors_carry_file_and_byte() {
    let td = TempDir::new("nodb-fmt-err").unwrap();
    let p = td.file("bad.jsonl");
    let mut body = String::new();
    for i in 0..500 {
        body.push_str(&format!("{{\"a\":{i}}}\n"));
    }
    body.push_str("{\"a\": oops}\n");
    std::fs::write(&p, body).unwrap();
    let mut cfg = NoDbConfig::postgres_raw();
    cfg.scan_threads = 4;
    let mut db = NoDb::new(cfg).unwrap();
    db.register_jsonl("t", &p, Schema::parse("a int").unwrap(), AccessMode::InSitu)
        .unwrap();
    let err = db.query("select a from t").unwrap_err().to_string();
    assert!(err.contains("bad.jsonl"), "{err}");
    assert!(err.contains("byte"), "{err}");
}
