//! Finalized per-attribute statistics and selectivity estimation.

use nodb_common::like::{like_match, literal_prefix};
use nodb_common::{DataType, Value};

use crate::histogram::Histogram;
use crate::{DEFAULT_EQ_SEL, DEFAULT_INEQ_SEL, DEFAULT_LIKE_SEL};

/// Statistics for one attribute, built from a sample by
/// [`crate::StatsBuilder`].
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Attribute type.
    pub dtype: DataType,
    /// Values offered to the builder (the sample size).
    pub rows_sampled: u64,
    /// NULLs among them.
    pub null_count: u64,
    /// Exact minimum over the sample.
    pub min: Option<Value>,
    /// Exact maximum over the sample.
    pub max: Option<Value>,
    /// Estimated number of distinct values in the full column.
    pub ndv: f64,
    /// Equi-width histogram over the numeric projection.
    pub histogram: Option<Histogram>,
    /// Most common values with their sample frequency (fraction of
    /// non-null sampled rows).
    pub mcv: Vec<(Value, f64)>,
}

/// Numeric projection used by histograms and range estimation.
pub(crate) fn numeric_proj(v: &Value) -> Option<f64> {
    match v {
        Value::Date(d) => Some(d.days() as f64),
        Value::Bool(b) => Some(*b as i32 as f64),
        other => other.as_f64(),
    }
}

impl ColumnStats {
    /// Fraction of rows that are NULL in the sample.
    pub fn null_fraction(&self) -> f64 {
        if self.rows_sampled == 0 {
            0.0
        } else {
            self.null_count as f64 / self.rows_sampled as f64
        }
    }

    fn non_null_fraction(&self) -> f64 {
        1.0 - self.null_fraction()
    }

    fn mcv_mass(&self) -> f64 {
        self.mcv.iter().map(|(_, f)| f).sum()
    }

    /// Selectivity of `col = v`.
    pub fn selectivity_eq(&self, v: &Value) -> f64 {
        if v.is_null() || self.rows_sampled == 0 {
            return 0.0;
        }
        if let Some((_, f)) = self
            .mcv
            .iter()
            .find(|(m, _)| m.sql_cmp(v) == Some(std::cmp::Ordering::Equal))
        {
            return (f * self.non_null_fraction()).clamp(0.0, 1.0);
        }
        // Out-of-range values select nothing.
        if let (Some(min), Some(max)) = (&self.min, &self.max) {
            if v.sql_cmp(min) == Some(std::cmp::Ordering::Less)
                || v.sql_cmp(max) == Some(std::cmp::Ordering::Greater)
            {
                return 0.0;
            }
        }
        let rest_values = (self.ndv - self.mcv.len() as f64).max(1.0);
        let rest_mass = (1.0 - self.mcv_mass()).max(0.0);
        ((rest_mass / rest_values) * self.non_null_fraction()).clamp(0.0, 1.0)
    }

    /// Selectivity of a (half-)open range `low < col < high` (bound
    /// inclusivity is approximated continuously, as PostgreSQL does for
    /// histogram buckets).
    pub fn selectivity_range(&self, low: Option<&Value>, high: Option<&Value>) -> f64 {
        let lo = low.and_then(numeric_proj);
        let hi = high.and_then(numeric_proj);
        if (low.is_some() && lo.is_none()) || (high.is_some() && hi.is_none()) {
            // Non-numeric bound (e.g. text range): no histogram support.
            return DEFAULT_INEQ_SEL;
        }
        match &self.histogram {
            Some(h) => (h.fraction_between(lo, hi) * self.non_null_fraction()).clamp(0.0, 1.0),
            None => DEFAULT_INEQ_SEL,
        }
    }

    /// Selectivity of `col LIKE pattern`, using MCVs when available plus a
    /// small default for the unseen remainder.
    pub fn selectivity_like(&self, pattern: &str) -> f64 {
        if self.rows_sampled == 0 {
            return DEFAULT_LIKE_SEL;
        }
        let matched_mass: f64 = self
            .mcv
            .iter()
            .filter(|(v, _)| v.as_str().is_some_and(|s| like_match(s, pattern)))
            .map(|(_, f)| f)
            .sum();
        let rest = (1.0 - self.mcv_mass()).max(0.0);
        let prefix = literal_prefix(pattern);
        let rest_sel = if prefix.is_empty() {
            DEFAULT_INEQ_SEL
        } else {
            DEFAULT_LIKE_SEL
        };
        ((matched_mass + rest * rest_sel) * self.non_null_fraction()).clamp(0.0, 1.0)
    }

    /// Estimated distinct values, floored at 1.
    pub fn distinct(&self) -> f64 {
        self.ndv.max(1.0)
    }
}

/// Default equality selectivity re-exported for callers without stats.
pub fn default_eq() -> f64 {
    DEFAULT_EQ_SEL
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::StatsBuilder;

    fn uniform_int_stats(n: i32, hint: Option<f64>) -> ColumnStats {
        let mut b = StatsBuilder::new(DataType::Int32);
        for i in 0..n {
            b.offer(&Value::Int32(i % 100));
        }
        b.finalize(hint)
    }

    #[test]
    fn eq_selectivity_near_uniform_inverse_ndv() {
        let s = uniform_int_stats(10_000, Some(10_000.0));
        let sel = s.selectivity_eq(&Value::Int32(42));
        assert!((sel - 0.01).abs() < 0.01, "sel={sel}");
        assert_eq!(s.selectivity_eq(&Value::Null), 0.0);
        // Out of range.
        assert_eq!(s.selectivity_eq(&Value::Int32(5000)), 0.0);
    }

    #[test]
    fn range_selectivity_tracks_histogram() {
        let s = uniform_int_stats(10_000, Some(10_000.0));
        let sel = s.selectivity_range(None, Some(&Value::Int32(50)));
        assert!((sel - 0.5).abs() < 0.08, "sel={sel}");
        let sel = s.selectivity_range(Some(&Value::Int32(25)), Some(&Value::Int32(75)));
        assert!((sel - 0.5).abs() < 0.08, "sel={sel}");
    }

    #[test]
    fn like_uses_mcvs_for_text() {
        let mut b = StatsBuilder::new(DataType::Text);
        for i in 0..1000 {
            let s = if i % 5 == 0 { "PROMO X" } else { "STD Y" };
            b.offer(&Value::Text(s.into()));
        }
        let st = b.finalize(Some(1000.0));
        let sel = st.selectivity_like("PROMO%");
        assert!(
            (0.1..=0.4).contains(&sel),
            "PROMO%-selectivity {sel} should be near 0.2"
        );
        assert!(st.selectivity_like("ZZZ%") < sel);
    }

    #[test]
    fn null_fraction_counts() {
        let mut b = StatsBuilder::new(DataType::Int32);
        for i in 0..10 {
            if i % 2 == 0 {
                b.offer(&Value::Null);
            } else {
                b.offer(&Value::Int32(i));
            }
        }
        let s = b.finalize(None);
        assert_eq!(s.null_fraction(), 0.5);
    }
}
