//! Cross-system figures (paper §5.1.4 and §6): Figures 7, 8a, 8b and 13.

use std::path::Path;

use nodb_common::Result;
use nodb_core::{AccessMode, NoDb, NoDbConfig};
use nodb_csv::CsvOptions;
use nodb_storage::EngineProfile;

use crate::data::micro_file;
use crate::figures::{micro_engine, sel_proj_query};
use crate::report::{secs, Report};
use crate::{time, Scale};

/// The paper's Figure 7/8 9-query sequence: Q1 = 100 % selectivity,
/// 100 % projectivity; Q2–Q5 drop selectivity to 20 %; Q6–Q9 drop
/// projectivity to 20 %.
fn nine_query_sequence(cols: usize) -> Vec<String> {
    let mut v = vec![sel_proj_query(cols, 1.0, 1.0)];
    for sel in [0.8, 0.6, 0.4, 0.2] {
        v.push(sel_proj_query(cols, sel, 1.0));
    }
    for proj in [0.8, 0.6, 0.4, 0.2] {
        v.push(sel_proj_query(cols, 1.0, proj));
    }
    v
}

fn loaded_engine(
    profile: EngineProfile,
    path: &std::path::Path,
    schema: &nodb_common::Schema,
) -> (NoDb, f64) {
    let mut cfg = NoDbConfig::postgres_raw();
    cfg.loaded_profile = profile;
    let mut db = NoDb::new(cfg).expect("engine");
    db.register_csv(
        "t",
        path,
        schema.clone(),
        CsvOptions::default(),
        AccessMode::Loaded,
    )
    .expect("register");
    let (_, load_s) = time(|| db.load_table("t").expect("load"));
    (db, load_s)
}

/// Figure 7: cumulative time for the 9-query sequence across systems,
/// loading included for the loaded engines. Expected shape: external
/// files are an order of magnitude worse; PostgresRaw has the best
/// data-to-query story; loaded engines pay their load bar first.
pub fn fig7(scale: Scale, out: &Path) -> Result<()> {
    let (path, schema) = micro_file(scale.micro_rows(), scale.micro_cols(), None)?;
    let queries = nine_query_sequence(scale.micro_cols());

    let mut report = Report::new(
        "fig7",
        "cumulative seconds after each query (load included where applicable)",
        &[
            "system", "load_s", "q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8", "q9", "total_s",
        ],
        out,
    );

    let run_system = |name: &str, db: &NoDb, load_s: f64, report: &mut Report| {
        let mut cum = load_s;
        let mut cells = vec![name.to_string(), secs(load_s)];
        for q in &queries {
            let (_, t) = time(|| db.query(q).expect("query"));
            cum += t;
            cells.push(secs(cum));
        }
        cells.push(secs(cum));
        report.row(&cells);
    };

    // External files (straw man; stands in for both MySQL CSV engine and
    // DBMS X external files — see DESIGN.md §3).
    let ext = micro_engine(
        NoDbConfig::baseline(),
        &path,
        &schema,
        AccessMode::ExternalFiles,
    );
    run_system("external_files", &ext, 0.0, &mut report);

    // Loaded comparators.
    for profile in [
        EngineProfile::MySqlLike,
        EngineProfile::DbmsXLike,
        EngineProfile::PostgresLike,
    ] {
        let (db, load_s) = loaded_engine(profile, &path, &schema);
        let name = match profile {
            EngineProfile::MySqlLike => "mysql_loaded",
            EngineProfile::DbmsXLike => "dbmsx_loaded",
            EngineProfile::PostgresLike => "postgresql_loaded",
        };
        run_system(name, &db, load_s, &mut report);
    }

    // PostgresRaw PM+C: no load bar at all.
    let raw = micro_engine(
        NoDbConfig::postgres_raw(),
        &path,
        &schema,
        AccessMode::InSitu,
    );
    run_system("postgresraw_pm_c", &raw, 0.0, &mut report);

    report.finish()?;
    Ok(())
}

fn sweep(
    figure: &'static str,
    title: &'static str,
    points: &[(f64, f64, &'static str)],
    scale: Scale,
    out: &Path,
) -> Result<()> {
    let (path, schema) = micro_file(scale.micro_rows(), scale.micro_cols(), None)?;
    let mut report = Report::new(
        figure,
        title,
        &[
            "query",
            "label",
            "postgresraw_s",
            "postgresql_s",
            "dbmsx_s",
            "mysql_s",
        ],
        out,
    );
    // Loaded engines, loading cost excluded, cold buffer pools per query
    // (the paper: "buffer caches are cold, however").
    let loaded: Vec<(NoDb, &str)> = [
        EngineProfile::PostgresLike,
        EngineProfile::DbmsXLike,
        EngineProfile::MySqlLike,
    ]
    .into_iter()
    .map(|p| {
        let (db, _) = loaded_engine(p, &path, &schema);
        let name = match p {
            EngineProfile::PostgresLike => "postgresql",
            EngineProfile::DbmsXLike => "dbmsx",
            EngineProfile::MySqlLike => "mysql",
        };
        (db, name)
    })
    .collect();
    let raw = micro_engine(
        NoDbConfig::postgres_raw(),
        &path,
        &schema,
        AccessMode::InSitu,
    );

    for (qi, (sel, proj, label)) in points.iter().enumerate() {
        let sql = sel_proj_query(scale.micro_cols(), *sel, *proj);
        let (_, t_raw) = time(|| raw.query(&sql).expect("query"));
        let mut cells = vec![format!("Q{}", qi + 1), label.to_string(), secs(t_raw)];
        for (db, _) in &loaded {
            db.clear_buffers();
            let (_, t) = time(|| db.query(&sql).expect("query"));
            cells.push(secs(t));
        }
        report.row(&cells);
    }
    report.finish()?;
    Ok(())
}

/// Figure 8a: individual query times as selectivity drops 100 % → 1 %
/// (projectivity fixed at 100 %). The first query is PostgresRaw's worst
/// case (empty map and cache); it then outperforms the loaded engines.
pub fn fig8a(scale: Scale, out: &Path) -> Result<()> {
    sweep(
        "fig8a",
        "query time vs selectivity (projectivity 100 %)",
        &[
            (1.0, 1.0, "100%"),
            (1.0, 1.0, "100%"),
            (0.8, 1.0, "80%"),
            (0.6, 1.0, "60%"),
            (0.4, 1.0, "40%"),
            (0.2, 1.0, "20%"),
            (0.01, 1.0, "1%"),
        ],
        scale,
        out,
    )
}

/// Figure 8b: individual query times as projectivity drops 100 % → 10 %
/// (selectivity fixed at 100 %).
pub fn fig8b(scale: Scale, out: &Path) -> Result<()> {
    sweep(
        "fig8b",
        "query time vs projectivity (selectivity 100 %)",
        &[
            (1.0, 1.0, "100%"),
            (1.0, 1.0, "100%"),
            (1.0, 0.8, "80%"),
            (1.0, 0.6, "60%"),
            (1.0, 0.5, "50%"),
            (1.0, 0.4, "40%"),
            (1.0, 0.2, "20%"),
            (1.0, 0.1, "10%"),
        ],
        scale,
        out,
    )
}

/// Figure 13: widen every attribute from 16 to 64 characters. The loaded
/// engine degrades catastrophically (rows stop fitting in slotted pages
/// and take the per-tuple overflow path); PostgresRaw merely reads
/// proportionally more bytes. Paper: PostgreSQL slows 20–70×, PostgresRaw
/// ≤ 6×.
pub fn fig13(scale: Scale, out: &Path) -> Result<()> {
    // Fewer rows: wide rows are big (150 cols × 64 B ≈ 10 KB each).
    let rows = (scale.micro_rows() / 4).max(1000);
    let cols = scale.micro_cols();
    let mut report = Report::new(
        "fig13",
        "9-query sequence at attribute width 16 vs 64",
        &["system", "width", "q", "time_s"],
        out,
    );
    for width in [16usize, 64] {
        let (path, schema) = micro_file(rows, cols, Some(width))?;
        // Queries: text columns don't aggregate; count qualifying rows
        // over a prefix filter instead, with shrinking projectivity via
        // max(c_k) over text (lexicographic max exercises the width).
        let queries: Vec<String> = {
            let mut v = Vec::new();
            for (sel, proj) in [
                (1.0, 1.0),
                (0.8, 1.0),
                (0.6, 1.0),
                (0.4, 1.0),
                (0.2, 1.0),
                (1.0, 0.8),
                (1.0, 0.6),
                (1.0, 0.4),
                (1.0, 0.2),
            ] {
                let cutoff = format!("{:0w$}", (sel * 1e9) as u64, w = width);
                let n_proj = ((cols - 1) as f64 * proj).round().max(1.0) as usize;
                let aggs = (1..=n_proj)
                    .map(|c| format!("max(c{c})"))
                    .collect::<Vec<_>>()
                    .join(", ");
                v.push(format!("select {aggs} from t where c0 < '{cutoff}'"));
            }
            v
        };

        let (pg, _) = loaded_engine(EngineProfile::PostgresLike, &path, &schema);
        for (qi, q) in queries.iter().enumerate() {
            pg.clear_buffers();
            let (_, t) = time(|| pg.query(q).expect("query"));
            report.row(&[
                "postgresql".into(),
                width.to_string(),
                format!("Q{}", qi + 1),
                secs(t),
            ]);
        }
        let raw = micro_engine(
            NoDbConfig::postgres_raw(),
            &path,
            &schema,
            AccessMode::InSitu,
        );
        for (qi, q) in queries.iter().enumerate() {
            let (_, t) = time(|| raw.query(q).expect("query"));
            report.row(&[
                "postgresraw".into(),
                width.to_string(),
                format!("Q{}", qi + 1),
                secs(t),
            ]);
        }
    }
    report.finish()?;
    Ok(())
}
