//! Physical operators: pull-based, one tuple per `next_row` call — or one
//! column-major [`ValueBatch`] per `next_batch` call on the vectorized
//! path (both paths produce bit-identical rows).

use std::collections::HashMap;

use nodb_common::{NoDbError, Result, Row, Value};
use nodb_sql::expr::AggExpr;
use nodb_sql::{AggFunc, BoundExpr, JoinKind, SortKey};

use crate::batch::ValueBatch;
use crate::eval::{eval, eval_batch, eval_predicate, eval_predicate_batch};
use crate::key::GroupKey;

/// The operator interface: a stream of rows, pullable one tuple or one
/// column-major batch at a time.
pub trait Operator {
    /// The next output tuple, or `None` when exhausted.
    fn next_row(&mut self) -> Result<Option<Row>>;

    /// The next batch of up to `max_rows` rows (≥ 1), or `None` when
    /// exhausted. Batches carry exactly the rows `next_row` would have
    /// produced, in order; a batch is never empty.
    ///
    /// The default adapter pulls rows one by one and transposes — any
    /// operator works under a batching consumer, while the hot operators
    /// (scan, filter, project, limit, the aggregations) override this
    /// with tight per-column loops. Callers should pick one pull style
    /// per operator tree and stick to it.
    fn next_batch(&mut self, max_rows: usize) -> Result<Option<ValueBatch>> {
        let max = max_rows.max(1);
        let mut rows = Vec::new();
        while rows.len() < max {
            match self.next_row()? {
                Some(r) => rows.push(r),
                None => break,
            }
        }
        if rows.is_empty() {
            Ok(None)
        } else {
            Ok(Some(ValueBatch::from_rows(rows)))
        }
    }
}

/// Boxed operator.
pub type BoxOp = Box<dyn Operator>;

/// A fixed in-memory rowset (tests, cached results).
pub struct RowsOp {
    iter: std::vec::IntoIter<Row>,
}

impl RowsOp {
    /// Wrap a vector of rows.
    pub fn new(rows: Vec<Row>) -> RowsOp {
        RowsOp {
            iter: rows.into_iter(),
        }
    }
}

impl Operator for RowsOp {
    fn next_row(&mut self) -> Result<Option<Row>> {
        Ok(self.iter.next())
    }
}

/// Filter: passes rows whose predicate evaluates to TRUE.
pub struct FilterOp {
    input: BoxOp,
    predicate: BoundExpr,
}

impl FilterOp {
    /// Create a filter.
    pub fn new(input: BoxOp, predicate: BoundExpr) -> FilterOp {
        FilterOp { input, predicate }
    }
}

impl Operator for FilterOp {
    fn next_row(&mut self) -> Result<Option<Row>> {
        while let Some(r) = self.input.next_row()? {
            if eval_predicate(&self.predicate, &r)? {
                return Ok(Some(r));
            }
        }
        Ok(None)
    }

    fn next_batch(&mut self, max_rows: usize) -> Result<Option<ValueBatch>> {
        loop {
            let Some(batch) = self.input.next_batch(max_rows)? else {
                return Ok(None);
            };
            let keep = eval_predicate_batch(&self.predicate, &batch)?;
            let kept = keep.iter().filter(|&&k| k).count();
            if kept == 0 {
                continue; // fully filtered batch: pull the next one
            }
            if kept == batch.num_rows() {
                return Ok(Some(batch));
            }
            return Ok(Some(batch.retain_rows(&keep, kept)));
        }
    }
}

/// Projection: computes expressions over each input row.
pub struct ProjectOp {
    input: BoxOp,
    exprs: Vec<BoundExpr>,
}

impl ProjectOp {
    /// Create a projection.
    pub fn new(input: BoxOp, exprs: Vec<BoundExpr>) -> ProjectOp {
        ProjectOp { input, exprs }
    }
}

impl Operator for ProjectOp {
    fn next_row(&mut self) -> Result<Option<Row>> {
        match self.input.next_row()? {
            None => Ok(None),
            Some(r) => {
                let mut out = Row::with_capacity(self.exprs.len());
                for e in &self.exprs {
                    out.push(eval(e, &r)?);
                }
                Ok(Some(out))
            }
        }
    }

    fn next_batch(&mut self, max_rows: usize) -> Result<Option<ValueBatch>> {
        match self.input.next_batch(max_rows)? {
            None => Ok(None),
            Some(batch) => {
                let cols = self
                    .exprs
                    .iter()
                    .map(|e| eval_batch(e, &batch))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Some(ValueBatch::from_cols(cols, batch.num_rows())))
            }
        }
    }
}

/// Limit: stops after `n` rows.
pub struct LimitOp {
    input: BoxOp,
    remaining: u64,
}

impl LimitOp {
    /// Create a limit.
    pub fn new(input: BoxOp, n: u64) -> LimitOp {
        LimitOp {
            input,
            remaining: n,
        }
    }
}

impl Operator for LimitOp {
    fn next_row(&mut self) -> Result<Option<Row>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.input.next_row()? {
            None => Ok(None),
            Some(r) => {
                self.remaining -= 1;
                Ok(Some(r))
            }
        }
    }

    fn next_batch(&mut self, max_rows: usize) -> Result<Option<ValueBatch>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        // Ask for no more than the limit still allows, so the source does
        // no more block-granular scan work than the row path would.
        let want = max_rows.min(usize::try_from(self.remaining).unwrap_or(usize::MAX));
        match self.input.next_batch(want)? {
            None => Ok(None),
            Some(mut batch) => {
                if (batch.num_rows() as u64) > self.remaining {
                    batch.truncate(self.remaining as usize);
                }
                self.remaining -= batch.num_rows() as u64;
                Ok(Some(batch))
            }
        }
    }
}

/// Sort: fully materializes, then emits in key order (NULLs first).
pub struct SortOp {
    input: Option<BoxOp>,
    keys: Vec<SortKey>,
    sorted: Option<std::vec::IntoIter<Row>>,
}

impl SortOp {
    /// Create a sort.
    pub fn new(input: BoxOp, keys: Vec<SortKey>) -> SortOp {
        SortOp {
            input: Some(input),
            keys,
            sorted: None,
        }
    }
}

impl Operator for SortOp {
    fn next_row(&mut self) -> Result<Option<Row>> {
        if self.sorted.is_none() {
            let mut input = self.input.take().expect("sort input consumed once");
            let mut rows = Vec::new();
            while let Some(r) = input.next_row()? {
                rows.push(r);
            }
            let keys = self.keys.clone();
            rows.sort_by(|a, b| {
                for k in &keys {
                    let ord = a.get(k.col).total_cmp(b.get(k.col));
                    let ord = if k.desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            self.sorted = Some(rows.into_iter());
        }
        Ok(self.sorted.as_mut().expect("initialized above").next())
    }
}

/// Hash join.
///
/// * `Inner`: builds a hash table on the **left** child (the planner puts
///   the smaller side left when it has statistics), probes with the right,
///   emits `left ++ right`.
/// * `Semi`/`Anti`: builds on the **right** child (the EXISTS inner
///   relation), probes with left rows, emits the left row on (no) match.
///
/// With an empty key list every row lands in one bucket, degrading to a
/// (filtered) cross product — the planner only does this when a query has
/// no equi-join predicate.
pub struct HashJoinOp {
    left: Option<BoxOp>,
    right: Option<BoxOp>,
    on: Vec<(usize, usize)>,
    residual: Option<BoundExpr>,
    kind: JoinKind,
    table: Option<HashMap<GroupKey, Vec<Row>>>,
    /// Pending inner-join outputs for the current probe row.
    pending: Vec<Row>,
}

impl HashJoinOp {
    /// Create a hash join.
    pub fn new(
        left: BoxOp,
        right: BoxOp,
        on: Vec<(usize, usize)>,
        residual: Option<BoundExpr>,
        kind: JoinKind,
    ) -> HashJoinOp {
        HashJoinOp {
            left: Some(left),
            right: Some(right),
            on,
            residual,
            kind,
            table: None,
            pending: Vec::new(),
        }
    }

    fn build(&mut self) -> Result<()> {
        let mut table: HashMap<GroupKey, Vec<Row>> = HashMap::new();
        let (mut src, key_side): (BoxOp, Side) = match self.kind {
            JoinKind::Inner => (self.left.take().expect("build once"), Side::Left),
            JoinKind::Semi | JoinKind::Anti => {
                (self.right.take().expect("build once"), Side::Right)
            }
        };
        while let Some(r) = src.next_row()? {
            let key = self.key_of(&r, key_side);
            if key.has_null() {
                continue; // NULL keys never match
            }
            table.entry(key).or_default().push(r);
        }
        self.table = Some(table);
        Ok(())
    }

    fn key_of(&self, row: &Row, side: Side) -> GroupKey {
        GroupKey::from_values(self.on.iter().map(|&(l, r)| {
            let i = match side {
                Side::Left => l,
                Side::Right => r,
            };
            row.get(i)
        }))
    }
}

#[derive(Clone, Copy)]
enum Side {
    Left,
    Right,
}

impl Operator for HashJoinOp {
    fn next_row(&mut self) -> Result<Option<Row>> {
        if self.table.is_none() {
            self.build()?;
        }
        match self.kind {
            JoinKind::Inner => loop {
                if let Some(r) = self.pending.pop() {
                    return Ok(Some(r));
                }
                let probe = self
                    .right
                    .as_mut()
                    .expect("probe side present for inner join")
                    .next_row()?;
                let Some(probe) = probe else {
                    return Ok(None);
                };
                let key = self.key_of(&probe, Side::Right);
                if key.has_null() {
                    continue;
                }
                if let Some(matches) = self.table.as_ref().expect("built").get(&key) {
                    for b in matches {
                        let out = b.clone().concat(&probe);
                        let ok = match &self.residual {
                            Some(p) => eval_predicate(p, &out)?,
                            None => true,
                        };
                        if ok {
                            self.pending.push(out);
                        }
                    }
                }
            },
            JoinKind::Semi | JoinKind::Anti => {
                let anti = self.kind == JoinKind::Anti;
                loop {
                    let probe = self
                        .left
                        .as_mut()
                        .expect("probe side present for semi join")
                        .next_row()?;
                    let Some(probe) = probe else {
                        return Ok(None);
                    };
                    let key = self.key_of(&probe, Side::Left);
                    let matched = if key.has_null() {
                        false
                    } else {
                        match self.table.as_ref().expect("built").get(&key) {
                            None => false,
                            Some(matches) => match &self.residual {
                                None => !matches.is_empty(),
                                Some(p) => {
                                    let mut any = false;
                                    for m in matches {
                                        let joined = probe.clone().concat(m);
                                        if eval_predicate(p, &joined)? {
                                            any = true;
                                            break;
                                        }
                                    }
                                    any
                                }
                            },
                        }
                    };
                    if matched != anti {
                        return Ok(Some(probe));
                    }
                }
            }
        }
    }
}

/// Streaming duplicate elimination over whole rows (SELECT DISTINCT).
pub struct DistinctOp {
    input: BoxOp,
    seen: std::collections::HashSet<GroupKey>,
}

impl DistinctOp {
    /// Create a distinct operator.
    pub fn new(input: BoxOp) -> DistinctOp {
        DistinctOp {
            input,
            seen: std::collections::HashSet::new(),
        }
    }
}

impl Operator for DistinctOp {
    fn next_row(&mut self) -> Result<Option<Row>> {
        while let Some(r) = self.input.next_row()? {
            let key = GroupKey::from_values(r.values().iter());
            if self.seen.insert(key) {
                return Ok(Some(r));
            }
        }
        Ok(None)
    }
}

// ----- aggregation ------------------------------------------------------

/// One running aggregate state.
#[derive(Debug, Clone)]
enum Acc {
    Count(i64),
    Sum {
        i: i64,
        f: f64,
        is_float: bool,
        seen: bool,
    },
    Avg {
        sum: f64,
        n: i64,
    },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl Acc {
    fn new(func: AggFunc) -> Acc {
        match func {
            AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => Acc::Sum {
                i: 0,
                f: 0.0,
                is_float: false,
                seen: false,
            },
            AggFunc::Avg => Acc::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
        }
    }

    /// `arg = None` means COUNT(*) (count the row unconditionally).
    fn update(&mut self, arg: Option<&Value>) -> Result<()> {
        match self {
            Acc::Count(n) => {
                match arg {
                    None => *n += 1,
                    Some(v) if !v.is_null() => *n += 1,
                    _ => {}
                }
                Ok(())
            }
            Acc::Sum {
                i,
                f,
                is_float,
                seen,
            } => {
                let Some(v) = arg else {
                    return Err(NoDbError::execution("SUM requires an argument"));
                };
                match v {
                    Value::Null => {}
                    Value::Int32(x) => {
                        *i += *x as i64;
                        *f += *x as f64;
                        *seen = true;
                    }
                    Value::Int64(x) => {
                        *i += x;
                        *f += *x as f64;
                        *seen = true;
                    }
                    Value::Float64(x) => {
                        *f += x;
                        *is_float = true;
                        *seen = true;
                    }
                    other => {
                        return Err(NoDbError::execution(format!("SUM of non-number {other}")))
                    }
                }
                Ok(())
            }
            Acc::Avg { sum, n } => {
                let Some(v) = arg else {
                    return Err(NoDbError::execution("AVG requires an argument"));
                };
                if let Some(x) = v.as_f64() {
                    *sum += x;
                    *n += 1;
                } else if !v.is_null() {
                    return Err(NoDbError::execution(format!("AVG of non-number {v}")));
                }
                Ok(())
            }
            Acc::Min(cur) => {
                if let Some(v) = arg {
                    if !v.is_null()
                        && cur
                            .as_ref()
                            .is_none_or(|c| v.sql_cmp(c) == Some(std::cmp::Ordering::Less))
                    {
                        *cur = Some(v.clone());
                    }
                }
                Ok(())
            }
            Acc::Max(cur) => {
                if let Some(v) = arg {
                    if !v.is_null()
                        && cur
                            .as_ref()
                            .is_none_or(|c| v.sql_cmp(c) == Some(std::cmp::Ordering::Greater))
                    {
                        *cur = Some(v.clone());
                    }
                }
                Ok(())
            }
        }
    }

    fn finalize(self) -> Value {
        match self {
            Acc::Count(n) => Value::Int64(n),
            Acc::Sum {
                i,
                f,
                is_float,
                seen,
            } => {
                if !seen {
                    Value::Null
                } else if is_float {
                    Value::Float64(f)
                } else {
                    Value::Int64(i)
                }
            }
            Acc::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float64(sum / n as f64)
                }
            }
            Acc::Min(v) => v.unwrap_or(Value::Null),
            Acc::Max(v) => v.unwrap_or(Value::Null),
        }
    }
}

fn update_accs(accs: &mut [Acc], aggs: &[AggExpr], row: &Row) -> Result<()> {
    for (acc, agg) in accs.iter_mut().zip(aggs) {
        match &agg.arg {
            None => acc.update(None)?,
            Some(e) => {
                let v = eval(e, row)?;
                acc.update(Some(&v))?;
            }
        }
    }
    Ok(())
}

/// Argument columns for a batch: one evaluated column per aggregate with
/// an argument (`None` = COUNT(*)). Each accumulator then consumes its
/// column in row order, so float accumulation order — and therefore every
/// result bit — matches the row-at-a-time path.
fn eval_agg_args(aggs: &[AggExpr], batch: &ValueBatch) -> Result<Vec<Option<Vec<Value>>>> {
    aggs.iter()
        .map(|a| a.arg.as_ref().map(|e| eval_batch(e, batch)).transpose())
        .collect()
}

/// Fold one batch into a plain (ungrouped) accumulator set.
fn update_accs_batch(accs: &mut [Acc], args: &[Option<Vec<Value>>], n_rows: usize) -> Result<()> {
    for (acc, arg) in accs.iter_mut().zip(args) {
        match arg {
            None => {
                for _ in 0..n_rows {
                    acc.update(None)?;
                }
            }
            Some(col) => {
                for v in col {
                    acc.update(Some(v))?;
                }
            }
        }
    }
    Ok(())
}

/// Hash aggregation: one hash-table pass, groups emitted in first-seen
/// order.
pub struct HashAggOp {
    input: Option<BoxOp>,
    group: Vec<usize>,
    aggs: Vec<AggExpr>,
    batch_rows: usize,
    out: Option<std::vec::IntoIter<Row>>,
}

impl HashAggOp {
    /// Create a hash aggregation (row-at-a-time input drain).
    pub fn new(input: BoxOp, group: Vec<usize>, aggs: Vec<AggExpr>) -> HashAggOp {
        HashAggOp {
            input: Some(input),
            group,
            aggs,
            batch_rows: 0,
            out: None,
        }
    }

    /// Drain the input in batches of `n` rows (0 keeps the row drain);
    /// aggregate arguments are then evaluated one column per batch.
    pub fn batched(mut self, n: usize) -> HashAggOp {
        self.batch_rows = n;
        self
    }
}

impl Operator for HashAggOp {
    fn next_row(&mut self) -> Result<Option<Row>> {
        if self.out.is_none() {
            let mut input = self.input.take().expect("agg input consumed once");
            let mut index: HashMap<GroupKey, usize> = HashMap::new();
            let mut groups: Vec<(Vec<Value>, Vec<Acc>)> = Vec::new();
            if self.batch_rows > 0 {
                while let Some(b) = input.next_batch(self.batch_rows)? {
                    let args = eval_agg_args(&self.aggs, &b)?;
                    for r in 0..b.num_rows() {
                        let key = GroupKey::from_values(self.group.iter().map(|&i| &b.col(i)[r]));
                        let slot = match index.get(&key) {
                            Some(&s) => s,
                            None => {
                                let key_vals: Vec<Value> =
                                    self.group.iter().map(|&i| b.col(i)[r].clone()).collect();
                                let accs: Vec<Acc> =
                                    self.aggs.iter().map(|a| Acc::new(a.func)).collect();
                                groups.push((key_vals, accs));
                                index.insert(key, groups.len() - 1);
                                groups.len() - 1
                            }
                        };
                        for (acc, arg) in groups[slot].1.iter_mut().zip(&args) {
                            acc.update(arg.as_ref().map(|col| &col[r]))?;
                        }
                    }
                }
            } else {
                while let Some(r) = input.next_row()? {
                    let key = GroupKey::from_values(self.group.iter().map(|&i| r.get(i)));
                    let slot = match index.get(&key) {
                        Some(&s) => s,
                        None => {
                            let key_vals: Vec<Value> =
                                self.group.iter().map(|&i| r.get(i).clone()).collect();
                            let accs: Vec<Acc> =
                                self.aggs.iter().map(|a| Acc::new(a.func)).collect();
                            groups.push((key_vals, accs));
                            index.insert(key, groups.len() - 1);
                            groups.len() - 1
                        }
                    };
                    update_accs(&mut groups[slot].1, &self.aggs, &r)?;
                }
            }
            let rows: Vec<Row> = groups
                .into_iter()
                .map(|(mut keys, accs)| {
                    keys.extend(accs.into_iter().map(Acc::finalize));
                    Row(keys)
                })
                .collect();
            self.out = Some(rows.into_iter());
        }
        Ok(self.out.as_mut().expect("initialized above").next())
    }
}

/// Sort-based aggregation: materializes and sorts the input by the group
/// keys, then aggregates adjacent runs.
///
/// This is what a planner must fall back to when it cannot bound the
/// number of groups — the "without statistics" plan of Figure 12. The
/// sort is genuine work, which is exactly why the statistics-informed
/// hash plan beats it.
pub struct SortAggOp {
    input: Option<BoxOp>,
    group: Vec<usize>,
    aggs: Vec<AggExpr>,
    batch_rows: usize,
    out: Option<std::vec::IntoIter<Row>>,
}

impl SortAggOp {
    /// Create a sort aggregation (row-at-a-time input drain).
    pub fn new(input: BoxOp, group: Vec<usize>, aggs: Vec<AggExpr>) -> SortAggOp {
        SortAggOp {
            input: Some(input),
            group,
            aggs,
            batch_rows: 0,
            out: None,
        }
    }

    /// Drain the input in batches of `n` rows (0 keeps the row drain).
    pub fn batched(mut self, n: usize) -> SortAggOp {
        self.batch_rows = n;
        self
    }
}

impl Operator for SortAggOp {
    fn next_row(&mut self) -> Result<Option<Row>> {
        if self.out.is_none() {
            let mut input = self.input.take().expect("agg input consumed once");
            let mut rows = Vec::new();
            if self.batch_rows > 0 {
                while let Some(b) = input.next_batch(self.batch_rows)? {
                    rows.extend(b.into_rows());
                }
            } else {
                while let Some(r) = input.next_row()? {
                    rows.push(r);
                }
            }
            let group = self.group.clone();
            rows.sort_by(|a, b| {
                for &g in &group {
                    let ord = a.get(g).total_cmp(b.get(g));
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            let mut out = Vec::new();
            let mut run_key: Option<GroupKey> = None;
            let mut key_vals: Vec<Value> = Vec::new();
            let mut accs: Vec<Acc> = Vec::new();
            for r in rows {
                let key = GroupKey::from_values(self.group.iter().map(|&i| r.get(i)));
                if run_key.as_ref() != Some(&key) {
                    if run_key.is_some() {
                        let mut vals = std::mem::take(&mut key_vals);
                        vals.extend(std::mem::take(&mut accs).into_iter().map(Acc::finalize));
                        out.push(Row(vals));
                    }
                    run_key = Some(key);
                    key_vals = self.group.iter().map(|&i| r.get(i).clone()).collect();
                    accs = self.aggs.iter().map(|a| Acc::new(a.func)).collect();
                }
                update_accs(&mut accs, &self.aggs, &r)?;
            }
            if run_key.is_some() {
                let mut vals = key_vals;
                vals.extend(accs.into_iter().map(Acc::finalize));
                out.push(Row(vals));
            }
            self.out = Some(out.into_iter());
        }
        Ok(self.out.as_mut().expect("initialized above").next())
    }
}

/// Aggregation without GROUP BY: always exactly one output row, even for
/// empty input (`COUNT(*) = 0`, other aggregates NULL).
pub struct PlainAggOp {
    input: Option<BoxOp>,
    aggs: Vec<AggExpr>,
    batch_rows: usize,
    done: bool,
}

impl PlainAggOp {
    /// Create a plain aggregation (row-at-a-time input drain).
    pub fn new(input: BoxOp, aggs: Vec<AggExpr>) -> PlainAggOp {
        PlainAggOp {
            input: Some(input),
            aggs,
            batch_rows: 0,
            done: false,
        }
    }

    /// Drain the input in batches of `n` rows (0 keeps the row drain);
    /// aggregate arguments are then evaluated one column per batch.
    pub fn batched(mut self, n: usize) -> PlainAggOp {
        self.batch_rows = n;
        self
    }
}

impl Operator for PlainAggOp {
    fn next_row(&mut self) -> Result<Option<Row>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let mut input = self.input.take().expect("agg input consumed once");
        let mut accs: Vec<Acc> = self.aggs.iter().map(|a| Acc::new(a.func)).collect();
        if self.batch_rows > 0 {
            while let Some(b) = input.next_batch(self.batch_rows)? {
                let args = eval_agg_args(&self.aggs, &b)?;
                update_accs_batch(&mut accs, &args, b.num_rows())?;
            }
        } else {
            while let Some(r) = input.next_row()? {
                update_accs(&mut accs, &self.aggs, &r)?;
            }
        }
        Ok(Some(Row(accs.into_iter().map(Acc::finalize).collect())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodb_sql::BinOp;

    fn ints(rows: &[&[i64]]) -> BoxOp {
        Box::new(RowsOp::new(
            rows.iter()
                .map(|r| Row(r.iter().map(|&v| Value::Int64(v)).collect()))
                .collect(),
        ))
    }

    fn drain(mut op: impl Operator) -> Vec<Row> {
        let mut out = Vec::new();
        while let Some(r) = op.next_row().unwrap() {
            out.push(r);
        }
        out
    }

    fn col(i: usize) -> BoundExpr {
        BoundExpr::Col(i)
    }

    #[test]
    fn filter_and_project_and_limit() {
        let pred = BoundExpr::Binary {
            op: BinOp::Gt,
            left: Box::new(col(0)),
            right: Box::new(BoundExpr::Lit(Value::Int64(1))),
        };
        let f = FilterOp::new(ints(&[&[1, 10], &[2, 20], &[3, 30]]), pred);
        let p = ProjectOp::new(Box::new(f), vec![col(1)]);
        let l = LimitOp::new(Box::new(p), 1);
        let rows = drain(l);
        assert_eq!(rows, vec![Row(vec![Value::Int64(20)])]);
    }

    #[test]
    fn sort_orders_with_desc_and_nulls_first() {
        let input = Box::new(RowsOp::new(vec![
            Row(vec![Value::Int64(2)]),
            Row(vec![Value::Null]),
            Row(vec![Value::Int64(1)]),
        ]));
        let rows = drain(SortOp::new(
            input,
            vec![SortKey {
                col: 0,
                desc: false,
            }],
        ));
        assert_eq!(rows[0], Row(vec![Value::Null]));
        assert_eq!(rows[2], Row(vec![Value::Int64(2)]));
        let input = Box::new(RowsOp::new(vec![
            Row(vec![Value::Int64(2)]),
            Row(vec![Value::Int64(1)]),
        ]));
        let rows = drain(SortOp::new(input, vec![SortKey { col: 0, desc: true }]));
        assert_eq!(rows[0], Row(vec![Value::Int64(2)]));
    }

    #[test]
    fn inner_hash_join_matches_keys() {
        // left: (k, a), right: (k, b); join on k.
        let left = ints(&[&[1, 100], &[2, 200], &[3, 300]]);
        let right = ints(&[&[2, 21], &[2, 22], &[4, 41]]);
        let j = HashJoinOp::new(left, right, vec![(0, 0)], None, JoinKind::Inner);
        let mut rows = drain(j);
        rows.sort_by(|a, b| a.get(3).total_cmp(b.get(3)));
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0],
            Row(vec![
                Value::Int64(2),
                Value::Int64(200),
                Value::Int64(2),
                Value::Int64(21)
            ])
        );
    }

    #[test]
    fn inner_join_respects_residual() {
        let left = ints(&[&[1, 10]]);
        let right = ints(&[&[1, 5], &[1, 20]]);
        // residual: left.a < right.b  (ordinals 1 and 3 in concat layout)
        let residual = BoundExpr::Binary {
            op: BinOp::Lt,
            left: Box::new(col(1)),
            right: Box::new(col(3)),
        };
        let j = HashJoinOp::new(left, right, vec![(0, 0)], Some(residual), JoinKind::Inner);
        let rows = drain(j);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(3), &Value::Int64(20));
    }

    #[test]
    fn null_join_keys_never_match() {
        let left = Box::new(RowsOp::new(vec![Row(vec![Value::Null, Value::Int64(1)])]));
        let right = ints(&[&[1, 2]]);
        let j = HashJoinOp::new(left, right, vec![(0, 0)], None, JoinKind::Inner);
        assert!(drain(j).is_empty());
    }

    #[test]
    fn semi_and_anti_join() {
        let outer = ints(&[&[1], &[2], &[3]]);
        let inner = ints(&[&[2], &[2], &[9]]);
        let semi = HashJoinOp::new(outer, inner, vec![(0, 0)], None, JoinKind::Semi);
        let rows = drain(semi);
        assert_eq!(rows, vec![Row(vec![Value::Int64(2)])]);

        let outer = ints(&[&[1], &[2], &[3]]);
        let inner = ints(&[&[2]]);
        let anti = HashJoinOp::new(outer, inner, vec![(0, 0)], None, JoinKind::Anti);
        let rows = drain(anti);
        assert_eq!(
            rows,
            vec![Row(vec![Value::Int64(1)]), Row(vec![Value::Int64(3)])]
        );
    }

    #[test]
    fn cross_join_with_empty_keys() {
        let left = ints(&[&[1], &[2]]);
        let right = ints(&[&[10], &[20]]);
        let j = HashJoinOp::new(left, right, vec![], None, JoinKind::Inner);
        assert_eq!(drain(j).len(), 4);
    }

    fn agg(func: AggFunc, arg: Option<usize>) -> AggExpr {
        AggExpr {
            func,
            arg: arg.map(BoundExpr::Col),
        }
    }

    #[test]
    fn hash_and_sort_agg_agree() {
        let data: &[&[i64]] = &[&[1, 10], &[2, 20], &[1, 30], &[2, 40], &[1, 50]];
        let aggs = vec![
            agg(AggFunc::Count, None),
            agg(AggFunc::Sum, Some(1)),
            agg(AggFunc::Avg, Some(1)),
            agg(AggFunc::Min, Some(1)),
            agg(AggFunc::Max, Some(1)),
        ];
        let mut h = drain(HashAggOp::new(ints(data), vec![0], aggs.clone()));
        let mut s = drain(SortAggOp::new(ints(data), vec![0], aggs));
        h.sort_by(|a, b| a.get(0).total_cmp(b.get(0)));
        s.sort_by(|a, b| a.get(0).total_cmp(b.get(0)));
        assert_eq!(h, s);
        assert_eq!(
            h[0],
            Row(vec![
                Value::Int64(1),
                Value::Int64(3),
                Value::Int64(90),
                Value::Float64(30.0),
                Value::Int64(10),
                Value::Int64(50),
            ])
        );
    }

    #[test]
    fn plain_agg_on_empty_input_yields_one_row() {
        let aggs = vec![agg(AggFunc::Count, None), agg(AggFunc::Sum, Some(0))];
        let rows = drain(PlainAggOp::new(ints(&[]), aggs));
        assert_eq!(rows, vec![Row(vec![Value::Int64(0), Value::Null])]);
    }

    #[test]
    fn grouped_agg_on_empty_input_yields_no_rows() {
        let aggs = vec![agg(AggFunc::Count, None)];
        assert!(drain(HashAggOp::new(ints(&[]), vec![0], aggs.clone())).is_empty());
        assert!(drain(SortAggOp::new(ints(&[]), vec![0], aggs)).is_empty());
    }

    #[test]
    fn count_ignores_nulls_with_arg() {
        let input = Box::new(RowsOp::new(vec![
            Row(vec![Value::Int64(1)]),
            Row(vec![Value::Null]),
            Row(vec![Value::Int64(3)]),
        ]));
        let rows = drain(PlainAggOp::new(
            input,
            vec![agg(AggFunc::Count, Some(0)), agg(AggFunc::Count, None)],
        ));
        assert_eq!(rows[0], Row(vec![Value::Int64(2), Value::Int64(3)]));
    }

    #[test]
    fn sum_switches_to_float_when_needed() {
        let input = Box::new(RowsOp::new(vec![
            Row(vec![Value::Int64(1)]),
            Row(vec![Value::Float64(0.5)]),
        ]));
        let rows = drain(PlainAggOp::new(input, vec![agg(AggFunc::Sum, Some(0))]));
        assert_eq!(rows[0], Row(vec![Value::Float64(1.5)]));
    }
}

#[cfg(test)]
mod distinct_tests {
    use super::*;

    #[test]
    fn distinct_keeps_first_occurrence_order() {
        let rows = vec![
            Row(vec![Value::Int64(2)]),
            Row(vec![Value::Int64(1)]),
            Row(vec![Value::Int64(2)]),
            Row(vec![Value::Null]),
            Row(vec![Value::Null]),
            Row(vec![Value::Int64(1)]),
        ];
        let mut op = DistinctOp::new(Box::new(RowsOp::new(rows)));
        let mut out = Vec::new();
        while let Some(r) = op.next_row().unwrap() {
            out.push(r);
        }
        assert_eq!(
            out,
            vec![
                Row(vec![Value::Int64(2)]),
                Row(vec![Value::Int64(1)]),
                Row(vec![Value::Null]),
            ]
        );
    }

    #[test]
    fn distinct_normalizes_numeric_widths() {
        let rows = vec![
            Row(vec![Value::Int32(7)]),
            Row(vec![Value::Int64(7)]),
            Row(vec![Value::Float64(7.0)]),
        ];
        let mut op = DistinctOp::new(Box::new(RowsOp::new(rows)));
        let mut n = 0;
        while op.next_row().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 1, "7 == 7i64 == 7.0 group together");
    }
}
