//! Volcano-style execution engine.
//!
//! PostgresRaw keeps its host's executor untouched — "each tuple is then
//! passed one-by-one through the operators of a query plan" (§3). This
//! crate is that executor: pull-based operators exchanging [`Row`]s, plus
//! the physical planner that lowers a [`nodb_sql::LogicalPlan`] onto
//! whatever leaf scans a [`TableProvider`] supplies.
//!
//! The same operator tree therefore runs over
//! * in-situ raw-file scans (PostgresRaw),
//! * straw-man external-file scans, and
//! * conventional heap-file scans,
//!
//! which is exactly the controlled comparison the paper's evaluation
//! depends on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod eval;
pub mod key;
pub mod ops;

pub use build::{build_plan, ExecCatalog, TableProvider};
pub use eval::{eval, eval_predicate};
pub use key::GroupKey;
pub use ops::{BoxOp, DistinctOp, Operator, RowsOp};

use nodb_common::{Result, Row};

/// Drain an operator into a vector (convenience for tests and engines).
pub fn run_to_vec(mut op: BoxOp) -> Result<Vec<Row>> {
    let mut out = Vec::new();
    while let Some(r) = op.next_row()? {
        out.push(r);
    }
    Ok(out)
}
