//! JSON Lines substrate for the NoDB reproduction.
//!
//! NoDB's thesis is that the engine should query raw files *where they
//! live* — and raw files are not only CSV. This crate teaches the engine
//! JSON Lines (one JSON object per line, a.k.a. NDJSON), the second
//! format behind the format-generic scan core:
//!
//! * [`tokenize`] — the keyed-record tokenizer implementing
//!   [`nodb_common::LineFormat`]: locate schema-declared top-level keys'
//!   value tokens (in any order, tolerating missing keys), convert them
//!   with the shared coercion rules, and navigate via the positional map.
//! * [`writer`] — a buffered JSONL writer (escaping inverse of the
//!   tokenizer), used by tests and generators.
//! * [`generate`] — the JSONL twin of `nodb_csv::MicroGen`, producing the
//!   same logical rows from the same seed in JSONL layout.
//!
//! Because records are still lines, everything the engine learned for CSV
//! applies unchanged: the end-of-line index, line-aligned chunk splitting
//! for parallel cold scans, positional-map chunks of value offsets, the
//! binary cache and on-the-fly statistics. See `NoDb::register_jsonl` in
//! `nodb-core` for the engine-level entry point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generate;
pub mod tokenize;
pub mod writer;

pub use generate::JsonlGen;
pub use tokenize::JsonFormat;
pub use writer::{JsonlOptions, JsonlWriter};
