//! Seeded violations for the `panic-path` arm (this file is configured
//! as a hot-path module): `unwrap`, `expect`, a panicking macro, and a
//! fixed-offset slice index — four findings. The `#[cfg(test)]` module
//! must stay exempt.

pub fn four_panics(buf: &[u8], opt: Option<u32>) -> u32 {
    let first = buf[0];
    if first == 0 {
        panic!("zero");
    }
    let a = opt.unwrap();
    let b = std::str::from_utf8(buf).expect("utf8");
    a + b.len() as u32
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
