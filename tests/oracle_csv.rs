//! Oracle tests on adversarial CSV content: the in-situ engine (with all
//! auxiliary structures active) must agree with a trivial
//! read-split-parse oracle for arbitrary field contents — empty fields
//! (NULLs), mixed widths, negative numbers, dates and text.

use proptest::prelude::*;

use nodb_common::{Date, Schema, TempDir, Value};
use nodb_core::{AccessMode, NoDb, NoDbConfig};
use nodb_csv::CsvOptions;

/// A generated cell value, rendered to CSV text.
#[derive(Debug, Clone)]
enum Cell {
    Null,
    Int(i64),
    Float(i32), // rendered as x/8.0 for exact float roundtrip
    Text(String),
    Date(i32),
}

impl Cell {
    fn render(&self) -> String {
        match self {
            Cell::Null => String::new(),
            Cell::Int(v) => v.to_string(),
            Cell::Float(x) => format!("{}", *x as f64 / 8.0),
            Cell::Text(s) => s.clone(),
            Cell::Date(d) => Date(*d).to_string(),
        }
    }

    fn value(&self) -> Value {
        match self {
            Cell::Null => Value::Null,
            Cell::Int(v) => Value::Int64(*v),
            Cell::Float(x) => Value::Float64(*x as f64 / 8.0),
            Cell::Text(s) => Value::Text(s.clone()),
            Cell::Date(d) => Value::Date(Date(*d)),
        }
    }
}

fn cell_strategy(col: usize) -> impl Strategy<Value = Cell> {
    // Column type is fixed by ordinal: int, float, text, date round-robin.
    match col % 4 {
        0 => prop_oneof![
            1 => Just(Cell::Null),
            5 => any::<i64>().prop_map(Cell::Int),
        ]
        .boxed(),
        1 => prop_oneof![
            1 => Just(Cell::Null),
            5 => any::<i32>().prop_map(Cell::Float),
        ]
        .boxed(),
        2 => prop_oneof![
            1 => Just(Cell::Null),
            5 => "[ -~]{0,20}".prop_filter("no delimiters/quotes", |s| {
                !s.contains(',') && !s.contains('\n') && !s.contains('\r')
                    && s.trim() == s && !s.is_empty()
            }).prop_map(Cell::Text),
        ]
        .boxed(),
        _ => prop_oneof![
            1 => Just(Cell::Null),
            5 => (-100_000i32..100_000).prop_map(Cell::Date),
        ]
        .boxed(),
    }
}

fn table_strategy() -> impl Strategy<Value = Vec<Vec<Cell>>> {
    (2usize..6).prop_flat_map(|cols| {
        proptest::collection::vec((0..cols).map(cell_strategy).collect::<Vec<_>>(), 1..60)
    })
}

fn schema_for(cols: usize) -> Schema {
    let desc: Vec<String> = (0..cols)
        .map(|c| {
            let ty = match c % 4 {
                0 => "bigint",
                1 => "double",
                2 => "text",
                _ => "date",
            };
            format!("c{c} {ty}")
        })
        .collect();
    Schema::parse(&desc.join(", ")).expect("valid schema")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn engine_matches_naive_oracle(table in table_strategy()) {
        let cols = table[0].len();
        let td = TempDir::new("nodb-oracle").unwrap();
        let path = td.file("t.csv");
        let text: String = table
            .iter()
            .map(|row| {
                row.iter().map(Cell::render).collect::<Vec<_>>().join(",")
            })
            .collect::<Vec<_>>()
            .join("\n");
        std::fs::write(&path, format!("{text}\n")).unwrap();

        let mut db = NoDb::new(NoDbConfig::postgres_raw()).unwrap();
        db.register_csv("t", &path, schema_for(cols), CsvOptions::default(), AccessMode::InSitu)
            .unwrap();

        // Full projection, twice (cold + warm), against the oracle.
        let select: Vec<String> = (0..cols).map(|c| format!("c{c}")).collect();
        let sql = format!("select {} from t", select.join(", "));
        for pass in ["cold", "warm"] {
            let got = db.query(&sql).unwrap();
            prop_assert_eq!(got.rows.len(), table.len(), "{} row count", pass);
            for (r, row) in got.rows.iter().enumerate() {
                for (c, v) in row.values().iter().enumerate() {
                    let want = table[r][c].value();
                    prop_assert_eq!(
                        v, &want,
                        "{} pass, row {}, col {}", pass, r, c
                    );
                }
            }
        }

        // Single-column projections hit the anchored/tokenize paths.
        for c in 0..cols {
            let got = db.query(&format!("select c{c} from t")).unwrap();
            for (r, row) in got.rows.iter().enumerate() {
                prop_assert_eq!(row.get(0), &table[r][c].value(), "col {} row {}", c, r);
            }
        }

        // IS NULL count agrees with the generated NULLs.
        let nulls_want = table.iter().filter(|r| r[0].value().is_null()).count();
        let got = db
            .query("select count(*) from t where c0 is null")
            .unwrap();
        prop_assert_eq!(got.rows[0].get(0), &Value::Int64(nulls_want as i64));
    }
}
