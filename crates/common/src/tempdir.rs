//! A tiny self-cleaning temporary directory, so tests and benches do not
//! need an external `tempfile` dependency.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory under the system temp root that is removed on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create a fresh directory with the given prefix.
    pub fn new(prefix: &str) -> std::io::Result<TempDir> {
        let pid = std::process::id();
        loop {
            // ORDERING: uniqueness only needs each thread to observe a
            // distinct counter value, which fetch_add guarantees at any
            // ordering; no other memory is published through it.
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.subsec_nanos())
                .unwrap_or(0);
            let path = std::env::temp_dir().join(format!("{prefix}-{pid}-{n}-{nanos}"));
            match std::fs::create_dir(&path) {
                Ok(()) => return Ok(TempDir { path }),
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A path for a file inside the directory.
    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes_directory() {
        let kept_path;
        {
            let td = TempDir::new("nodb-test").unwrap();
            kept_path = td.path().to_path_buf();
            assert!(kept_path.is_dir());
            std::fs::write(td.file("x.txt"), b"hello").unwrap();
        }
        assert!(!kept_path.exists());
    }

    #[test]
    fn two_tempdirs_do_not_collide() {
        let a = TempDir::new("nodb-test").unwrap();
        let b = TempDir::new("nodb-test").unwrap();
        assert_ne!(a.path(), b.path());
    }
}
