//! TPC-H figures (paper §5.2 and §5.4): Figures 9, 10 and 12.

use std::path::Path;

use nodb_common::Result;
use nodb_core::{AccessMode, NoDb, NoDbConfig};
use nodb_csv::CsvOptions;
use nodb_tpch::{queries, TpchGen};

use crate::data::tpch_dir;
use crate::report::{secs, Report};
use crate::{time, Scale};

fn tpch_engine(dir: &Path, cfg: NoDbConfig, mode: AccessMode) -> NoDb {
    let mut db = NoDb::new(cfg).expect("engine");
    for t in TpchGen::table_names() {
        db.register_csv(
            t,
            &dir.join(format!("{t}.tbl")),
            TpchGen::schema(t).expect("schema"),
            CsvOptions::pipe(),
            mode,
        )
        .expect("register");
    }
    db
}

fn load_all(db: &mut NoDb) -> f64 {
    let mut total = 0.0;
    for t in TpchGen::table_names() {
        let (_, s) = time(|| db.load_table(t).expect("load"));
        total += s;
    }
    total
}

/// Figure 9: Q10 and Q14 from a completely cold start, *including* data
/// loading for PostgreSQL. PostgresRaw answers both queries before the
/// loaded engine finishes loading; PM+C is slightly slower than PM on
/// this first touch (cache-population overhead), as in the paper.
pub fn fig9(scale: Scale, out: &Path) -> Result<()> {
    let dir = tpch_dir(scale.tpch_sf())?;
    let mut report = Report::new(
        "fig9",
        "cold-start TPC-H: loading + Q10 + Q14",
        &["system", "load_s", "q10_s", "q14_s", "total_s"],
        out,
    );

    // PostgreSQL: load everything, then query.
    let mut pg = tpch_engine(&dir, NoDbConfig::postgres_raw(), AccessMode::Loaded);
    let load_s = load_all(&mut pg);
    let (_, q10) = time(|| pg.query(queries::Q10).expect("q10"));
    let (_, q14) = time(|| pg.query(queries::Q14).expect("q14"));
    report.row(&[
        "postgresql".into(),
        secs(load_s),
        secs(q10),
        secs(q14),
        secs(load_s + q10 + q14),
    ]);

    // PostgresRaw PM+C and PM: no loading at all.
    for (name, cfg) in [
        ("postgresraw_pm_c", NoDbConfig::postgres_raw()),
        ("postgresraw_pm", NoDbConfig::pm_only()),
    ] {
        let db = tpch_engine(&dir, cfg, AccessMode::InSitu);
        let (_, q10) = time(|| db.query(queries::Q10).expect("q10"));
        let (_, q14) = time(|| db.query(queries::Q14).expect("q14"));
        report.row(&[
            name.into(),
            secs(0.0),
            secs(q10),
            secs(q14),
            secs(q10 + q14),
        ]);
    }
    report.finish()?;
    Ok(())
}

/// Figure 10: the full warm query set. Each engine first runs the whole
/// set once (warm-up mirrors the paper's "now that PostgreSQL and
/// PostgresRaw are warm"), then reports per-query times. Expected shape:
/// PM alone always loses to PostgreSQL; PM+C wins most queries.
pub fn fig10(scale: Scale, out: &Path) -> Result<()> {
    let dir = tpch_dir(scale.tpch_sf())?;
    let set = queries::all();
    let mut report = Report::new(
        "fig10",
        "warm TPC-H query times",
        &[
            "query",
            "postgresraw_pm_c_s",
            "postgresraw_pm_s",
            "postgresql_s",
        ],
        out,
    );
    let mut pg = tpch_engine(&dir, NoDbConfig::postgres_raw(), AccessMode::Loaded);
    load_all(&mut pg);
    let pmc = tpch_engine(&dir, NoDbConfig::postgres_raw(), AccessMode::InSitu);
    let pm = tpch_engine(&dir, NoDbConfig::pm_only(), AccessMode::InSitu);
    // Warm-up pass.
    for (_, sql) in &set {
        pg.query(sql).expect("warm pg");
        pmc.query(sql).expect("warm pmc");
        pm.query(sql).expect("warm pm");
    }
    for (id, sql) in &set {
        let (_, t_pmc) = time(|| pmc.query(sql).expect("q"));
        let (_, t_pm) = time(|| pm.query(sql).expect("q"));
        let (_, t_pg) = time(|| pg.query(sql).expect("q"));
        report.row(&[id.to_string(), secs(t_pmc), secs(t_pm), secs(t_pg)]);
    }
    report.finish()?;
    Ok(())
}

/// Figure 12: four instances of TPC-H Q1 (as the qgen parameter
/// variation produces), with on-the-fly statistics enabled vs disabled.
/// With statistics the optimizer picks hash aggregation after the first
/// query; without, it must sort — the paper reports ~3× slower queries
/// and a small collection overhead on the first one.
pub fn fig12(scale: Scale, out: &Path) -> Result<()> {
    let dir = tpch_dir(scale.tpch_sf())?;
    // Q1 instances: DELTA ∈ {60, 90, 120} days, then 90 again.
    let instance =
        |delta: u32| queries::Q1.replace("interval '90' day", &format!("interval '{delta}' day"));
    let instances = [instance(60), instance(90), instance(120), instance(90)];

    let mut report = Report::new(
        "fig12",
        "4 instances of TPC-H Q1: with vs without statistics",
        &[
            "instance",
            "with_stats_s",
            "plan_with",
            "without_stats_s",
            "plan_without",
        ],
        out,
    );
    let with = tpch_engine(&dir, NoDbConfig::postgres_raw(), AccessMode::InSitu);
    let mut cfg_no = NoDbConfig::postgres_raw();
    cfg_no.enable_stats = false;
    let without = tpch_engine(&dir, cfg_no, AccessMode::InSitu);

    for (i, sql) in instances.iter().enumerate() {
        let (_, t_with) = time(|| with.query(sql).expect("q"));
        let (_, t_without) = time(|| without.query(sql).expect("q"));
        let agg = |db: &NoDb| {
            let plan = db.explain(sql).expect("plan");
            if plan.contains("HashAggregate") {
                "hash"
            } else if plan.contains("SortAggregate") {
                "sort"
            } else {
                "plain"
            }
        };
        report.row(&[
            format!("Q1_{}", (b'a' + i as u8) as char),
            secs(t_with),
            agg(&with).to_string(),
            secs(t_without),
            agg(&without).to_string(),
        ]);
    }
    report.finish()?;
    Ok(())
}
