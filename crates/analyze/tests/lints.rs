//! Fixture-corpus tests: every lint arm must catch its seeded
//! violation, the clean tree must pass with zero findings, and the
//! waiver machinery must suppress justified exceptions while flagging
//! stale ones.

use std::path::{Path, PathBuf};

use nodb_analyze::config::Config;
use nodb_analyze::report::Report;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run(name: &str, tweak: impl FnOnce(&mut Config)) -> Report {
    let mut cfg = Config::for_fixture(&fixture(name));
    tweak(&mut cfg);
    nodb_analyze::run(&cfg, &[]).expect("lint run")
}

fn lints_of(report: &Report) -> Vec<&'static str> {
    report.findings.iter().map(|f| f.lint).collect()
}

#[test]
fn clean_fixture_passes_every_arm() {
    let report = run("clean", |cfg| {
        cfg.hot_files = vec!["src/lib.rs".into()];
        cfg.cast_files = vec!["src/lib.rs".into()];
        cfg.knob_envs = vec!["NODB_FIX".into()];
    });
    assert!(
        report.is_clean(),
        "expected a clean run, got: {:#?}",
        report.findings
    );
    assert_eq!(report.files_scanned, 1);
}

#[test]
fn unsafe_without_safety_comment_or_audit_entry_is_caught() {
    let report = run("unsafe_bad", |_| {});
    let unsafe_findings: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.lint == "unsafe")
        .collect();
    assert_eq!(unsafe_findings.len(), 2, "{:#?}", report.findings);
    assert!(
        unsafe_findings.iter().any(|f| f.message.contains("SAFETY")),
        "missing-SAFETY finding: {unsafe_findings:#?}"
    );
    assert!(
        unsafe_findings
            .iter()
            .any(|f| f.message.contains("unaudited")),
        "unaudited finding: {unsafe_findings:#?}"
    );
}

#[test]
fn lock_dag_inversion_and_reacquisition_are_caught() {
    let report = run("lock_bad", |_| {});
    let locks: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.lint == "lock-order")
        .collect();
    assert_eq!(locks.len(), 2, "{:#?}", report.findings);
    assert!(
        locks
            .iter()
            .any(|f| f.message.contains("posmap") && f.message.contains("stats")),
        "inversion finding: {locks:#?}"
    );
    assert!(
        locks.iter().any(|f| f.message.contains("self-deadlock")),
        "reacquisition finding: {locks:#?}"
    );
}

#[test]
fn unjustified_relaxed_ordering_is_caught() {
    let report = run("atomic_bad", |_| {});
    assert_eq!(
        lints_of(&report),
        vec!["atomic-ordering"],
        "{:#?}",
        report.findings
    );
    // The ORDERING:-commented load two functions down must not fire.
    assert_eq!(report.findings[0].line, 7, "{:#?}", report.findings);
}

#[test]
fn hot_path_panics_are_caught() {
    let report = run("panic_bad", |cfg| {
        cfg.hot_files = vec!["src/lib.rs".into()];
    });
    let panics: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.lint == "panic-path")
        .collect();
    // unwrap, expect, panic! and the buf[0] literal index; the unwrap
    // inside #[cfg(test)] stays exempt.
    assert_eq!(panics.len(), 4, "{:#?}", report.findings);
}

#[test]
fn unexplained_narrowing_cast_is_caught() {
    let report = run("cast_bad", |cfg| {
        cfg.cast_files = vec!["src/lib.rs".into()];
    });
    assert_eq!(lints_of(&report), vec!["cast"], "{:#?}", report.findings);
    // Only the bare `x as u16`; the widening cast and the CAST:-
    // commented one stay quiet.
    assert_eq!(report.findings[0].line, 5, "{:#?}", report.findings);
}

#[test]
fn unregistered_knob_env_var_is_caught() {
    let report = run("knob_bad", |cfg| {
        cfg.knob_envs = vec!["NODB_FIX".into()];
    });
    assert_eq!(lints_of(&report), vec!["knob"], "{:#?}", report.findings);
    assert!(
        report.findings[0].message.contains("NODB_NOT_REGISTERED"),
        "{:#?}",
        report.findings
    );
}

#[test]
fn waivers_suppress_justified_findings_and_stale_waivers_fire() {
    let report = run("waivers", |cfg| {
        cfg.cast_files = vec!["src/lib.rs".into()];
    });
    assert_eq!(report.waived.len(), 1, "{:#?}", report.waived);
    assert!(
        report.findings.iter().all(|f| f.lint != "cast"),
        "the waived cast finding resurfaced: {:#?}",
        report.findings
    );
    let stale: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.lint == "waiver")
        .collect();
    assert_eq!(stale.len(), 1, "{:#?}", report.findings);
    assert!(stale[0].message.contains("stale"), "{stale:#?}");
}

#[test]
fn lint_filter_restricts_the_run() {
    let cfg = {
        let mut c = Config::for_fixture(&fixture("panic_bad"));
        c.hot_files = vec!["src/lib.rs".into()];
        c
    };
    let only = vec!["cast".to_string()];
    let report = nodb_analyze::run(&cfg, &only).expect("lint run");
    assert!(report.is_clean(), "{:#?}", report.findings);
}
