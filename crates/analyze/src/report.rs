//! Findings and run reports.

use std::fmt;
use std::path::PathBuf;

/// One lint violation (or allowlist-hygiene problem).
#[derive(Debug, Clone)]
pub struct Finding {
    /// Lint arm that produced this finding (`unsafe`, `lock-order`,
    /// `atomic-ordering`, `panic-path`, `cast`, `knob`, `waiver`).
    pub lint: &'static str,
    /// File the finding is in, relative to the tree root.
    pub file: PathBuf,
    /// 1-based line (0 for whole-file findings).
    pub line: usize,
    /// Human-readable description with the fix/waive instructions.
    pub message: String,
    /// Key a waiver entry must carry to suppress this finding (the
    /// trimmed source line for most arms; `None` for findings that can
    /// never be waived, e.g. unsafe-audit and waiver-hygiene problems).
    pub waiver_key: Option<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}:{}: {}",
            self.lint,
            self.file.display(),
            self.line,
            self.message
        )
    }
}

/// Outcome of a full lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Unwaived findings — any entry here fails the run.
    pub findings: Vec<Finding>,
    /// Findings suppressed by a justified waiver, kept for `--verbose`.
    pub waived: Vec<(Finding, String)>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the tree passes (no unwaived findings).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}
