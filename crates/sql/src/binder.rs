//! Binder: turns a parsed [`SelectStmt`] into an optimized
//! [`LogicalPlan`].
//!
//! Planning and optimization are interleaved: predicate classification,
//! projection pruning, join ordering and strategy choices all happen while
//! the plan is assembled, because each decision changes the column layout
//! the next one binds against.

use std::collections::BTreeSet;

use nodb_common::{DataType, Field, NoDbError, Result, Schema, Value};
use nodb_stats::TableStats;

use crate::ast::*;
use crate::expr::{AggExpr, AggFunc, BinOp, BoundExpr, UnOp};
use crate::optimizer::{
    conjunct_selectivity, factor_or, join_cardinality, split_conjuncts, NoStats, ScanStatsLookup,
    DEFAULT_NDV, DEFAULT_TABLE_ROWS, HASH_AGG_GROUP_LIMIT,
};
use crate::plan::{AggStrategy, JoinKind, LogicalPlan, SortKey};

/// What the planner needs to know about registered tables.
pub trait CatalogView {
    /// Schema of `table` (error when unknown).
    fn schema_of(&self, table: &str) -> Result<Schema>;
    /// Current statistics for `table`, if any were collected.
    fn stats_of(&self, table: &str) -> Option<TableStats>;
}

/// Planner knobs.
#[derive(Debug, Clone)]
pub struct PlannerOptions {
    /// Consult statistics for join ordering, build-side choice and
    /// aggregation strategy. Off = the paper's "w/o statistics" regime
    /// (Figure 12): as-written join order, pessimistic sort aggregation.
    pub use_stats: bool,
    /// Run the [`crate::rewrite::RulePipeline`] after binding. Off =
    /// the bound plan executes exactly as written, which also disables
    /// the scan layer's raw-slice predicate fast path downstream.
    pub rewrite: bool,
}

impl Default for PlannerOptions {
    fn default() -> Self {
        PlannerOptions {
            use_stats: true,
            rewrite: true,
        }
    }
}

/// Bind and optimize a statement.
pub fn bind(
    stmt: &SelectStmt,
    catalog: &dyn CatalogView,
    options: &PlannerOptions,
) -> Result<LogicalPlan> {
    Binder {
        catalog,
        options,
        tables: Vec::new(),
        param_types: Vec::new(),
    }
    .run(stmt)
}

struct BoundTable {
    alias: String,
    schema: Schema,
    stats: Option<TableStats>,
    name: String,
}

/// One equi-join conjunct, as `((table, column), (table, column))`.
type EquiEdge = ((usize, usize), (usize, usize));

struct Rel {
    plan: LogicalPlan,
    layout: Vec<(usize, usize)>,
    tables: BTreeSet<usize>,
    est: f64,
}

struct ExistsSpec {
    inner_table: String,
    inner_schema: Schema,
    inner_stats: Option<TableStats>,
    /// (outer (t, col), inner col ordinal in inner schema).
    on: Vec<((usize, usize), usize)>,
    /// Inner-only conjuncts (AST, bound later against the inner scan).
    inner_filters: Vec<AstExpr>,
    negated: bool,
}

struct Binder<'a> {
    catalog: &'a dyn CatalogView,
    options: &'a PlannerOptions,
    tables: Vec<BoundTable>,
    /// Parameter types inferred from context before scalar binding
    /// (`param_types[idx]` is `None` when no surrounding column or
    /// literal gave a hint).
    param_types: Vec<Option<DataType>>,
}

impl Binder<'_> {
    fn run(mut self, stmt: &SelectStmt) -> Result<LogicalPlan> {
        if stmt.from.is_empty() {
            return Err(NoDbError::plan("FROM clause is required"));
        }
        // 1. Resolve FROM tables.
        for tr in &stmt.from {
            let schema = self.catalog.schema_of(&tr.name)?;
            let alias = tr.alias.clone().unwrap_or_else(|| tr.name.clone());
            if self.tables.iter().any(|t| t.alias == alias) {
                return Err(NoDbError::plan(format!("duplicate table alias `{alias}`")));
            }
            let stats = if self.options.use_stats {
                self.catalog.stats_of(&tr.name)
            } else {
                None
            };
            self.tables.push(BoundTable {
                alias,
                schema,
                stats,
                name: tr.name.clone(),
            });
        }
        // 1b. Infer parameter types from context (needs the resolved
        //     tables, must precede any scalar binding).
        self.infer_stmt_param_types(stmt)?;

        // 2. Expand the projection list.
        let mut projections: Vec<(AstExpr, Option<String>)> = Vec::new();
        for item in &stmt.projections {
            match item {
                SelectItem::Wildcard => {
                    for (ti, t) in self.tables.iter().enumerate() {
                        for f in t.schema.fields() {
                            projections.push((
                                AstExpr::Column {
                                    table: Some(self.tables[ti].alias.clone()),
                                    name: f.name.to_ascii_lowercase(),
                                },
                                Some(f.name.clone()),
                            ));
                        }
                    }
                }
                SelectItem::Expr { expr, alias } => projections.push((expr.clone(), alias.clone())),
            }
        }
        if projections.is_empty() {
            return Err(NoDbError::plan("empty select list"));
        }

        // 3. Split WHERE into conjuncts; factor OR-of-conjunctions.
        let mut raw_conjuncts = Vec::new();
        if let Some(w) = &stmt.where_clause {
            split_conjuncts(w, &mut raw_conjuncts);
        }
        let mut conjuncts: Vec<AstExpr> = Vec::new();
        for c in raw_conjuncts {
            conjuncts.extend(factor_or(&c));
        }

        // 4. Extract EXISTS specs.
        let mut exists_specs: Vec<ExistsSpec> = Vec::new();
        let mut plain_conjuncts: Vec<AstExpr> = Vec::new();
        for c in conjuncts {
            match c {
                AstExpr::Exists { subquery, negated } => {
                    exists_specs.push(self.exists_spec(&subquery, negated)?);
                }
                AstExpr::Not(inner) => match *inner {
                    AstExpr::Exists { subquery, negated } => {
                        exists_specs.push(self.exists_spec(&subquery, !negated)?);
                    }
                    other => plain_conjuncts.push(AstExpr::Not(Box::new(other))),
                },
                other => plain_conjuncts.push(other),
            }
        }

        // 5. Column usage per table (drives projection pruning).
        let mut used: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); self.tables.len()];
        for (e, _) in &projections {
            self.collect_usage(e, &mut used)?;
        }
        for e in &plain_conjuncts {
            self.collect_usage(e, &mut used)?;
        }
        for e in &stmt.group_by {
            self.collect_usage(e, &mut used)?;
        }
        if let Some(h) = &stmt.having {
            self.collect_usage(h, &mut used)?;
        }
        for ob in &stmt.order_by {
            // Order-by may reference output aliases; only mark genuine
            // columns.
            let _ = self.collect_usage(&ob.expr, &mut used);
        }
        for spec in &exists_specs {
            for ((t, c), _) in &spec.on {
                used[*t].insert(*c);
            }
        }

        // 6. Classify conjuncts: per-table filters, equi-join edges,
        //    residuals.
        let mut scan_filters: Vec<Vec<AstExpr>> = vec![Vec::new(); self.tables.len()];
        let mut edges: Vec<((usize, usize), (usize, usize))> = Vec::new();
        let mut residuals: Vec<AstExpr> = Vec::new();
        for c in plain_conjuncts {
            if c.contains_agg() {
                return Err(NoDbError::plan("aggregates are not allowed in WHERE"));
            }
            let mut tset = BTreeSet::new();
            self.tables_of(&c, &mut tset)?;
            match tset.len() {
                1 => {
                    let t = *tset.iter().next().expect("len 1");
                    scan_filters[t].push(c);
                }
                2 => {
                    if let Some(edge) = self.as_equi_edge(&c)? {
                        edges.push(edge);
                    } else {
                        residuals.push(c);
                    }
                }
                // 0 (constant) or >2 tables: residual, bound once enough
                // tables are joined (constants bind at the very end).
                _ => residuals.push(c),
            }
        }

        // 7. Build scans.
        let mut rels: Vec<Rel> = Vec::new();
        for (t, bt) in self.tables.iter().enumerate() {
            let projection: Vec<usize> = used[t].iter().copied().collect();
            let resolver = |table: Option<&str>, name: &str| -> Result<usize> {
                let (rt, rc) = self.resolve_required(table, name)?;
                if rt != t {
                    return Err(NoDbError::internal("cross-table filter on scan"));
                }
                projection
                    .iter()
                    .position(|&c| c == rc)
                    .ok_or_else(|| NoDbError::internal("filter column not projected"))
            };
            let filters: Vec<BoundExpr> = scan_filters[t]
                .iter()
                .map(|f| self.bind_scalar(f, &resolver))
                .collect::<Result<_>>()?;
            let schema = bt.schema.project(&projection)?;
            let est = {
                let base = bt
                    .stats
                    .as_ref()
                    .and_then(|s| s.row_count())
                    .map_or(DEFAULT_TABLE_ROWS, |r| r as f64);
                let sel = match bt.stats.as_ref() {
                    Some(st) => conjunct_selectivity(
                        &filters,
                        &ScanStatsLookup {
                            stats: st,
                            projection: &projection,
                        },
                    ),
                    None => conjunct_selectivity(&filters, &NoStats),
                };
                (base * sel).max(1.0)
            };
            rels.push(Rel {
                layout: projection.iter().map(|&c| (t, c)).collect(),
                tables: std::iter::once(t).collect(),
                plan: LogicalPlan::Scan {
                    table: bt.name.clone(),
                    projection,
                    filters,
                    schema,
                    estimated_rows: est,
                },
                est,
            });
        }

        // 8. Join tree.
        let mut tree = self.build_join_tree(rels, &edges, &mut residuals)?;
        if !residuals.is_empty() {
            // Residuals not attachable (constant predicates): bind against
            // the final layout.
            for r in std::mem::take(&mut residuals) {
                let layout = tree.layout.clone();
                let resolver = self.layout_resolver(&layout);
                let predicate = self.bind_scalar(&r, &resolver)?;
                tree.plan = LogicalPlan::Filter {
                    input: Box::new(tree.plan),
                    predicate,
                };
            }
        }

        // 9. Semi/anti joins for EXISTS.
        for spec in exists_specs {
            tree = self.apply_exists(tree, spec)?;
        }

        // 10/11. Aggregate + Project.
        let has_agg = !stmt.group_by.is_empty()
            || stmt.having.is_some()
            || projections.iter().any(|(e, _)| e.contains_agg());
        let (plan_below_sort, out_names, proj_asts) = if has_agg {
            self.plan_aggregate(tree, stmt, &projections)?
        } else {
            let layout = tree.layout.clone();
            let resolver = self.layout_resolver(&layout);
            let mut exprs = Vec::with_capacity(projections.len());
            for (e, _) in &projections {
                exprs.push(self.bind_scalar(e, &resolver)?);
            }
            let input_types = tree.plan.schema().types();
            let names = self.output_names(&projections);
            let schema = named_schema(&names, &exprs, &input_types)?;
            let proj_asts: Vec<AstExpr> = projections.iter().map(|(e, _)| e.clone()).collect();
            (
                LogicalPlan::Project {
                    input: Box::new(tree.plan),
                    exprs,
                    schema,
                },
                names,
                proj_asts,
            )
        };

        // 12. DISTINCT (over complete output rows), then Sort.
        let mut plan = plan_below_sort;
        if stmt.distinct {
            plan = LogicalPlan::Distinct {
                input: Box::new(plan),
            };
        }
        if !stmt.order_by.is_empty() {
            let mut keys = Vec::with_capacity(stmt.order_by.len());
            for ob in &stmt.order_by {
                let col = self.resolve_order_key(&ob.expr, &out_names, &proj_asts)?;
                keys.push(SortKey { col, desc: ob.desc });
            }
            plan = LogicalPlan::Sort {
                input: Box::new(plan),
                keys,
            };
        }

        // 13. Limit.
        if let Some(n) = stmt.limit {
            plan = LogicalPlan::Limit {
                input: Box::new(plan),
                n,
            };
        }
        Ok(plan)
    }

    // ----- parameter typing --------------------------------------------

    /// Infer parameter types before binding: a parameter compared with
    /// (or arithmetically combined with) a column or literal takes that
    /// side's type, LIKE operands are text, BETWEEN/IN members share the
    /// tested expression's type. Parameters in positions with no usable
    /// context stay untyped (`None`) — their execute-time values pass
    /// through unchecked.
    ///
    /// Validates `$N` contiguity first ([`SelectStmt::param_count`]),
    /// which also bounds the slot vector allocated below — `bind` may
    /// be reached without a prior count check (e.g. EXPLAIN paths), so
    /// a lone `$4000000000` must fail here, not allocate.
    fn infer_stmt_param_types(&mut self, stmt: &SelectStmt) -> Result<()> {
        let n = stmt.param_count()?;
        if n == 0 {
            return Ok(());
        }
        let mut types = vec![None; n];
        self.walk_stmt_params(stmt, None, &mut types);
        self.param_types = types;
        Ok(())
    }

    fn walk_stmt_params(
        &self,
        stmt: &SelectStmt,
        inner: Option<&Schema>,
        out: &mut [Option<DataType>],
    ) {
        for item in &stmt.projections {
            if let SelectItem::Expr { expr, .. } = item {
                self.assign_param_types(expr, None, inner, out);
            }
        }
        if let Some(w) = &stmt.where_clause {
            self.assign_param_types(w, None, inner, out);
        }
        for g in &stmt.group_by {
            self.assign_param_types(g, None, inner, out);
        }
        if let Some(h) = &stmt.having {
            self.assign_param_types(h, None, inner, out);
        }
        for ob in &stmt.order_by {
            self.assign_param_types(&ob.expr, None, inner, out);
        }
    }

    /// Shallow type probe: columns and literals have a known type,
    /// everything else contributes no hint. Unqualified names resolve
    /// against an EXISTS subquery's inner schema first.
    fn probe_type(&self, e: &AstExpr, inner: Option<&Schema>) -> Option<DataType> {
        match e {
            AstExpr::Column { table, name } => {
                if table.is_none() {
                    if let Some(s) = inner {
                        if let Some(c) = s.index_of(name) {
                            return Some(s.field(c).dtype);
                        }
                    }
                }
                match self.try_resolve(table.as_deref(), name) {
                    Ok(Some((t, c))) => Some(self.tables[t].schema.field(c).dtype),
                    _ => None,
                }
            }
            AstExpr::Literal(v) => v.data_type(),
            AstExpr::Neg(x) => self.probe_type(x, inner),
            _ => None,
        }
    }

    fn assign_param_types(
        &self,
        e: &AstExpr,
        hint: Option<DataType>,
        inner: Option<&Schema>,
        out: &mut [Option<DataType>],
    ) {
        match e {
            AstExpr::Param(i) => {
                if let Some(slot) = out.get_mut(*i) {
                    if slot.is_none() {
                        *slot = hint;
                    }
                }
            }
            AstExpr::Column { .. } | AstExpr::Literal(_) | AstExpr::Interval { .. } => {}
            AstExpr::Binary { op, left, right } => {
                // Comparisons and arithmetic type a parameter from the
                // opposite side; AND/OR sides are independent predicates.
                let (lh, rh) = match op {
                    AstBinOp::And | AstBinOp::Or => (None, None),
                    _ => (self.probe_type(right, inner), self.probe_type(left, inner)),
                };
                self.assign_param_types(left, lh, inner, out);
                self.assign_param_types(right, rh, inner, out);
            }
            AstExpr::Not(x) => self.assign_param_types(x, None, inner, out),
            AstExpr::Neg(x) => self.assign_param_types(x, hint, inner, out),
            AstExpr::Like { expr, pattern, .. } => {
                self.assign_param_types(expr, Some(DataType::Text), inner, out);
                self.assign_param_types(pattern, Some(DataType::Text), inner, out);
            }
            AstExpr::Between {
                expr, low, high, ..
            } => {
                let t = self
                    .probe_type(expr, inner)
                    .or_else(|| self.probe_type(low, inner))
                    .or_else(|| self.probe_type(high, inner));
                self.assign_param_types(expr, t, inner, out);
                self.assign_param_types(low, t, inner, out);
                self.assign_param_types(high, t, inner, out);
            }
            AstExpr::InList { expr, list, .. } => {
                let t = list.iter().find_map(|i| self.probe_type(i, inner));
                self.assign_param_types(expr, t, inner, out);
                let et = self.probe_type(expr, inner);
                for i in list {
                    self.assign_param_types(i, et, inner, out);
                }
            }
            AstExpr::Case {
                branches,
                else_expr,
            } => {
                for (c, r) in branches {
                    self.assign_param_types(c, None, inner, out);
                    self.assign_param_types(r, None, inner, out);
                }
                if let Some(x) = else_expr {
                    self.assign_param_types(x, None, inner, out);
                }
            }
            AstExpr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    self.assign_param_types(a, None, inner, out);
                }
            }
            AstExpr::Exists { subquery, .. } => {
                let inner_schema = subquery
                    .from
                    .first()
                    .and_then(|tr| self.catalog.schema_of(&tr.name).ok());
                self.walk_stmt_params(subquery, inner_schema.as_ref().or(inner), out);
            }
            AstExpr::IsNull { expr, .. } => self.assign_param_types(expr, None, inner, out),
        }
    }

    // ----- name resolution ---------------------------------------------

    /// Resolve a column to `(table idx, column idx)`, or `None` when the
    /// name is unknown (callers decide whether that is an error).
    fn try_resolve(&self, table: Option<&str>, name: &str) -> Result<Option<(usize, usize)>> {
        match table {
            Some(q) => {
                let Some(t) = self.tables.iter().position(|bt| bt.alias == q) else {
                    return Ok(None);
                };
                Ok(self.tables[t].schema.index_of(name).map(|c| (t, c)))
            }
            None => {
                let mut found = None;
                for (t, bt) in self.tables.iter().enumerate() {
                    if let Some(c) = bt.schema.index_of(name) {
                        if found.is_some() {
                            return Err(NoDbError::plan(format!("ambiguous column `{name}`")));
                        }
                        found = Some((t, c));
                    }
                }
                Ok(found)
            }
        }
    }

    fn resolve_required(&self, table: Option<&str>, name: &str) -> Result<(usize, usize)> {
        self.try_resolve(table, name)?.ok_or_else(|| {
            NoDbError::plan(format!(
                "unknown column `{}{name}`",
                table.map(|t| format!("{t}.")).unwrap_or_default()
            ))
        })
    }

    fn layout_resolver<'b>(
        &'b self,
        layout: &'b [(usize, usize)],
    ) -> impl Fn(Option<&str>, &str) -> Result<usize> + 'b {
        move |table, name| {
            let (t, c) = self.resolve_required(table, name)?;
            layout
                .iter()
                .position(|&(lt, lc)| lt == t && lc == c)
                .ok_or_else(|| NoDbError::internal(format!("column `{name}` missing from layout")))
        }
    }

    /// Record which base-table columns an expression touches.
    fn collect_usage(&self, e: &AstExpr, used: &mut [BTreeSet<usize>]) -> Result<()> {
        match e {
            AstExpr::Column { table, name } => {
                if let Some((t, c)) = self.try_resolve(table.as_deref(), name)? {
                    used[t].insert(c);
                }
                Ok(())
            }
            AstExpr::Literal(_) | AstExpr::Param(_) | AstExpr::Interval { .. } => Ok(()),
            AstExpr::Binary { left, right, .. } => {
                self.collect_usage(left, used)?;
                self.collect_usage(right, used)
            }
            AstExpr::Not(x) | AstExpr::Neg(x) => self.collect_usage(x, used),
            AstExpr::Like { expr, pattern, .. } => {
                self.collect_usage(expr, used)?;
                self.collect_usage(pattern, used)
            }
            AstExpr::Between {
                expr, low, high, ..
            } => {
                self.collect_usage(expr, used)?;
                self.collect_usage(low, used)?;
                self.collect_usage(high, used)
            }
            AstExpr::InList { expr, list, .. } => {
                self.collect_usage(expr, used)?;
                for i in list {
                    self.collect_usage(i, used)?;
                }
                Ok(())
            }
            AstExpr::Case {
                branches,
                else_expr,
            } => {
                for (c, r) in branches {
                    self.collect_usage(c, used)?;
                    self.collect_usage(r, used)?;
                }
                if let Some(x) = else_expr {
                    self.collect_usage(x, used)?;
                }
                Ok(())
            }
            AstExpr::Agg { arg, .. } => match arg {
                Some(a) => self.collect_usage(a, used),
                None => Ok(()),
            },
            AstExpr::Exists { .. } => Ok(()),
            AstExpr::IsNull { expr, .. } => self.collect_usage(expr, used),
        }
    }

    /// The set of FROM tables an expression references.
    fn tables_of(&self, e: &AstExpr, out: &mut BTreeSet<usize>) -> Result<()> {
        let mut used: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); self.tables.len()];
        self.collect_usage(e, &mut used)?;
        for (t, s) in used.iter().enumerate() {
            if !s.is_empty() {
                out.insert(t);
            }
        }
        Ok(())
    }

    /// Is this conjunct `colA = colB` across two different tables?
    fn as_equi_edge(&self, e: &AstExpr) -> Result<Option<EquiEdge>> {
        if let AstExpr::Binary {
            op: AstBinOp::Eq,
            left,
            right,
        } = e
        {
            if let (
                AstExpr::Column {
                    table: ta,
                    name: na,
                },
                AstExpr::Column {
                    table: tb,
                    name: nb,
                },
            ) = (left.as_ref(), right.as_ref())
            {
                let a = self.resolve_required(ta.as_deref(), na)?;
                let b = self.resolve_required(tb.as_deref(), nb)?;
                if a.0 != b.0 {
                    return Ok(Some((a, b)));
                }
            }
        }
        Ok(None)
    }

    // ----- join tree ----------------------------------------------------

    fn build_join_tree(
        &self,
        mut rels: Vec<Rel>,
        edges: &[EquiEdge],
        residuals: &mut Vec<AstExpr>,
    ) -> Result<Rel> {
        if rels.len() == 1 {
            let mut only = rels.pop().expect("len 1");
            self.attach_residuals(&mut only, residuals)?;
            return Ok(only);
        }
        // Pick starting relation.
        let start = if self.options.use_stats {
            rels.iter()
                .enumerate()
                .min_by(|a, b| a.1.est.total_cmp(&b.1.est))
                .map(|(i, _)| i)
                .expect("non-empty")
        } else {
            0
        };
        let mut current = rels.remove(start);
        self.attach_residuals(&mut current, residuals)?;
        while !rels.is_empty() {
            // Candidates connected to the current tree by an edge.
            let connected: Vec<usize> = rels
                .iter()
                .enumerate()
                .filter(|(_, r)| {
                    edges.iter().any(|(a, b)| {
                        (current.tables.contains(&a.0) && r.tables.contains(&b.0))
                            || (current.tables.contains(&b.0) && r.tables.contains(&a.0))
                    })
                })
                .map(|(i, _)| i)
                .collect();
            let pick = if self.options.use_stats {
                let pool = if connected.is_empty() {
                    (0..rels.len()).collect::<Vec<_>>()
                } else {
                    connected
                };
                pool.into_iter()
                    .min_by(|&a, &b| {
                        let ca = self.join_est(&current, &rels[a], edges);
                        let cb = self.join_est(&current, &rels[b], edges);
                        ca.total_cmp(&cb)
                    })
                    .expect("non-empty pool")
            } else if let Some(&first) = connected.first() {
                first
            } else {
                0
            };
            let next = rels.remove(pick);
            current = self.join_pair(current, next, edges)?;
            self.attach_residuals(&mut current, residuals)?;
        }
        Ok(current)
    }

    fn key_ndv(&self, (t, c): (usize, usize)) -> f64 {
        self.tables[t]
            .stats
            .as_ref()
            .and_then(|s| s.column(c as u32).map(|cs| cs.distinct()))
            .unwrap_or(DEFAULT_NDV)
    }

    fn join_est(&self, a: &Rel, b: &Rel, edges: &[EquiEdge]) -> f64 {
        let mut ndvs = Vec::new();
        for (x, y) in edges {
            if a.tables.contains(&x.0) && b.tables.contains(&y.0) {
                ndvs.push((self.key_ndv(*x), self.key_ndv(*y)));
            } else if a.tables.contains(&y.0) && b.tables.contains(&x.0) {
                ndvs.push((self.key_ndv(*y), self.key_ndv(*x)));
            }
        }
        join_cardinality(a.est, b.est, &ndvs)
    }

    fn join_pair(&self, a: Rel, b: Rel, edges: &[EquiEdge]) -> Result<Rel> {
        // Hash joins build on the left input: put the smaller side left
        // when statistics are available; otherwise keep the accumulated
        // tree on the left (the uninformed default the paper penalizes).
        let (build, probe) = if self.options.use_stats && b.est < a.est {
            (b, a)
        } else {
            (a, b)
        };
        let est = self.join_est(&build, &probe, edges);
        let mut on = Vec::new();
        for (x, y) in edges {
            let (bx, px) = (
                build.tables.contains(&x.0) && probe.tables.contains(&y.0),
                build.tables.contains(&y.0) && probe.tables.contains(&x.0),
            );
            if bx {
                on.push((
                    layout_pos(&build.layout, *x)?,
                    layout_pos(&probe.layout, *y)?,
                ));
            } else if px {
                on.push((
                    layout_pos(&build.layout, *y)?,
                    layout_pos(&probe.layout, *x)?,
                ));
            }
        }
        let mut layout = build.layout.clone();
        layout.extend_from_slice(&probe.layout);
        let mut tables = build.tables.clone();
        tables.extend(probe.tables.iter().copied());
        let schema = self.layout_schema(&layout)?;
        Ok(Rel {
            plan: LogicalPlan::Join {
                left: Box::new(build.plan),
                right: Box::new(probe.plan),
                on,
                residual: None,
                kind: JoinKind::Inner,
                schema,
                estimated_rows: est,
            },
            layout,
            tables,
            est,
        })
    }

    /// Attach any residual conjunct fully covered by `rel`'s tables.
    fn attach_residuals(&self, rel: &mut Rel, residuals: &mut Vec<AstExpr>) -> Result<()> {
        let mut keep = Vec::new();
        for r in std::mem::take(residuals) {
            let mut tset = BTreeSet::new();
            self.tables_of(&r, &mut tset)?;
            if tset.is_subset(&rel.tables) && !tset.is_empty() {
                let resolver = self.layout_resolver(&rel.layout);
                let predicate = self.bind_scalar(&r, &resolver)?;
                let plan = std::mem::replace(
                    &mut rel.plan,
                    LogicalPlan::Limit {
                        input: Box::new(LogicalPlan::Scan {
                            table: String::new(),
                            projection: vec![],
                            filters: vec![],
                            schema: Schema::new(vec![])?,
                            estimated_rows: 0.0,
                        }),
                        n: 0,
                    },
                );
                rel.plan = LogicalPlan::Filter {
                    input: Box::new(plan),
                    predicate,
                };
            } else {
                keep.push(r);
            }
        }
        *residuals = keep;
        Ok(())
    }

    fn layout_schema(&self, layout: &[(usize, usize)]) -> Result<Schema> {
        let fields = layout
            .iter()
            .map(|&(t, c)| {
                let f = self.tables[t].schema.field(c);
                Field::new(format!("{}.{}", self.tables[t].alias, f.name), f.dtype)
            })
            .collect();
        Schema::new(fields)
    }

    // ----- EXISTS -------------------------------------------------------

    fn exists_spec(&self, sub: &SelectStmt, negated: bool) -> Result<ExistsSpec> {
        if sub.from.len() != 1 {
            return Err(NoDbError::plan(
                "EXISTS subqueries must reference exactly one table",
            ));
        }
        let inner_name = sub.from[0].name.clone();
        let inner_schema = self.catalog.schema_of(&inner_name)?;
        let inner_stats = if self.options.use_stats {
            self.catalog.stats_of(&inner_name)
        } else {
            None
        };
        let mut on = Vec::new();
        let mut inner_filters = Vec::new();
        let mut conjuncts = Vec::new();
        if let Some(w) = &sub.where_clause {
            split_conjuncts(w, &mut conjuncts);
        }
        for c in conjuncts {
            // Try: inner-col = outer-col correlation.
            if let AstExpr::Binary {
                op: AstBinOp::Eq,
                left,
                right,
            } = &c
            {
                let l = self.classify_sub_column(left, &inner_schema)?;
                let r = self.classify_sub_column(right, &inner_schema)?;
                match (l, r) {
                    (SubCol::Inner(ic), SubCol::Outer(oc)) => {
                        on.push((oc, ic));
                        continue;
                    }
                    (SubCol::Outer(oc), SubCol::Inner(ic)) => {
                        on.push((oc, ic));
                        continue;
                    }
                    _ => {}
                }
            }
            // Otherwise the conjunct must be inner-only.
            if self.is_inner_only(&c, &inner_schema)? {
                inner_filters.push(c);
            } else {
                return Err(NoDbError::plan(
                    "unsupported correlated predicate in EXISTS (only inner-col = outer-col \
                     equality plus inner-only filters are supported)",
                ));
            }
        }
        if on.is_empty() {
            return Err(NoDbError::plan(
                "uncorrelated EXISTS subqueries are not supported",
            ));
        }
        Ok(ExistsSpec {
            inner_table: inner_name,
            inner_schema,
            inner_stats,
            on,
            inner_filters,
            negated,
        })
    }

    fn classify_sub_column(&self, e: &AstExpr, inner: &Schema) -> Result<SubCol> {
        if let AstExpr::Column { table, name } = e {
            if table.is_none() {
                if let Some(c) = inner.index_of(name) {
                    return Ok(SubCol::Inner(c));
                }
            }
            if let Some((t, c)) = self.try_resolve(table.as_deref(), name)? {
                return Ok(SubCol::Outer((t, c)));
            }
            return Err(NoDbError::plan(format!(
                "unknown column `{name}` in EXISTS subquery"
            )));
        }
        Ok(SubCol::Neither)
    }

    fn is_inner_only(&self, e: &AstExpr, inner: &Schema) -> Result<bool> {
        match e {
            AstExpr::Column { table, name } => {
                Ok(table.is_none() && inner.index_of(name).is_some())
            }
            AstExpr::Literal(_) | AstExpr::Param(_) | AstExpr::Interval { .. } => Ok(true),
            AstExpr::Binary { left, right, .. } => {
                Ok(self.is_inner_only(left, inner)? && self.is_inner_only(right, inner)?)
            }
            AstExpr::Not(x) | AstExpr::Neg(x) => self.is_inner_only(x, inner),
            AstExpr::Like { expr, pattern, .. } => {
                Ok(self.is_inner_only(expr, inner)? && self.is_inner_only(pattern, inner)?)
            }
            AstExpr::Between {
                expr, low, high, ..
            } => Ok(self.is_inner_only(expr, inner)?
                && self.is_inner_only(low, inner)?
                && self.is_inner_only(high, inner)?),
            AstExpr::InList { expr, list, .. } => {
                if !self.is_inner_only(expr, inner)? {
                    return Ok(false);
                }
                for i in list {
                    if !self.is_inner_only(i, inner)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            AstExpr::Case {
                branches,
                else_expr,
            } => {
                for (c, r) in branches {
                    if !self.is_inner_only(c, inner)? || !self.is_inner_only(r, inner)? {
                        return Ok(false);
                    }
                }
                match else_expr {
                    Some(x) => self.is_inner_only(x, inner),
                    None => Ok(true),
                }
            }
            AstExpr::IsNull { expr, .. } => self.is_inner_only(expr, inner),
            AstExpr::Agg { .. } | AstExpr::Exists { .. } => Ok(false),
        }
    }

    fn apply_exists(&self, outer: Rel, spec: ExistsSpec) -> Result<Rel> {
        // Inner scan projection: correlation columns + filter columns.
        let mut used: BTreeSet<usize> = spec.on.iter().map(|&(_, ic)| ic).collect();
        for f in &spec.inner_filters {
            collect_schema_usage(f, &spec.inner_schema, &mut used);
        }
        let projection: Vec<usize> = used.into_iter().collect();
        let resolver = |_table: Option<&str>, name: &str| -> Result<usize> {
            let c = spec.inner_schema.resolve(name)?;
            projection
                .iter()
                .position(|&p| p == c)
                .ok_or_else(|| NoDbError::internal("inner filter column not projected"))
        };
        let filters: Vec<BoundExpr> = spec
            .inner_filters
            .iter()
            .map(|f| self.bind_scalar(f, &resolver))
            .collect::<Result<_>>()?;
        let schema = spec.inner_schema.project(&projection)?;
        let est = {
            let base = spec
                .inner_stats
                .as_ref()
                .and_then(|s| s.row_count())
                .map_or(DEFAULT_TABLE_ROWS, |r| r as f64);
            base * conjunct_selectivity(&filters, &NoStats)
        };
        let inner_plan = LogicalPlan::Scan {
            table: spec.inner_table,
            projection: projection.clone(),
            filters,
            schema,
            estimated_rows: est,
        };
        let mut on = Vec::new();
        for (oc, ic) in &spec.on {
            on.push((
                layout_pos(&outer.layout, *oc)?,
                projection
                    .iter()
                    .position(|&p| p == *ic)
                    .ok_or_else(|| NoDbError::internal("correlation column missing"))?,
            ));
        }
        let kind = if spec.negated {
            JoinKind::Anti
        } else {
            JoinKind::Semi
        };
        let schema = self.layout_schema(&outer.layout)?;
        let est_out = (outer.est * 0.5).max(1.0);
        Ok(Rel {
            plan: LogicalPlan::Join {
                left: Box::new(outer.plan),
                right: Box::new(inner_plan),
                on,
                residual: None,
                kind,
                schema,
                estimated_rows: est_out,
            },
            layout: outer.layout,
            tables: outer.tables,
            est: est_out,
        })
    }

    // ----- aggregation ---------------------------------------------------

    #[allow(clippy::type_complexity)]
    fn plan_aggregate(
        &self,
        tree: Rel,
        stmt: &SelectStmt,
        projections: &[(AstExpr, Option<String>)],
    ) -> Result<(LogicalPlan, Vec<String>, Vec<AstExpr>)> {
        let layout = tree.layout.clone();
        let resolver = self.layout_resolver(&layout);
        // Group keys must be plain columns (the TPC-H subset never groups
        // on computed expressions).
        let mut group: Vec<usize> = Vec::new();
        for g in &stmt.group_by {
            match g {
                AstExpr::Column { table, name } => {
                    group.push(resolver(table.as_deref(), name)?);
                }
                other => {
                    return Err(NoDbError::plan(format!(
                        "GROUP BY supports plain columns only, got {other:?}"
                    )))
                }
            }
        }
        // Collect aggregate calls (dedup structurally) and rewrite the
        // select expressions over [group keys ++ agg results].
        let mut agg_asts: Vec<AstExpr> = Vec::new();
        let mut aggs: Vec<AggExpr> = Vec::new();
        let mut out_exprs = Vec::with_capacity(projections.len());
        for (e, _) in projections {
            out_exprs.push(self.rewrite_agg_expr(
                e,
                &stmt.group_by,
                group.len(),
                &mut agg_asts,
                &mut aggs,
                &resolver,
            )?);
        }

        let input_types = tree.plan.schema().types();
        // Aggregate output schema.
        let mut fields = Vec::new();
        for (i, &g) in group.iter().enumerate() {
            let f = tree.plan.schema().field(g);
            fields.push(Field::new(format!("g{i}.{}", f.name), f.dtype));
        }
        for (i, a) in aggs.iter().enumerate() {
            fields.push(Field::new(format!("agg{i}"), a.output_type(&input_types)));
        }
        let agg_schema = Schema::new(fields)?;

        // Strategy (the Figure 12 mechanism).
        let strategy = if group.is_empty() {
            AggStrategy::Plain
        } else if self.options.use_stats {
            let mut groups = 1.0f64;
            for &g in &group {
                let (t, c) = layout[g];
                let ndv = self.tables[t]
                    .stats
                    .as_ref()
                    .and_then(|s| s.column(c as u32).map(|cs| cs.distinct()))
                    .unwrap_or(DEFAULT_NDV);
                groups *= ndv.max(1.0);
            }
            let groups = groups.min(tree.est.max(1.0));
            if groups <= HASH_AGG_GROUP_LIMIT {
                AggStrategy::Hash
            } else {
                AggStrategy::Sort
            }
        } else {
            // Without statistics the group count is unknown; fall back to
            // sort aggregation (safe for any cardinality, slower for few
            // groups — exactly the penalty Figure 12 shows).
            AggStrategy::Sort
        };

        let mut agg_plan = LogicalPlan::Aggregate {
            input: Box::new(tree.plan),
            group,
            aggs: aggs.clone(),
            strategy,
            schema: agg_schema.clone(),
        };
        // HAVING filters groups: it binds exactly like a select
        // expression (group keys + aggregate slots) and sits between the
        // aggregation and the projection.
        if let Some(h) = &stmt.having {
            let n_group = match &agg_plan {
                LogicalPlan::Aggregate { group, .. } => group.len(),
                _ => 0,
            };
            let predicate = self.rewrite_agg_expr(
                h,
                &stmt.group_by,
                n_group,
                &mut agg_asts,
                &mut aggs,
                &resolver,
            )?;
            // HAVING may introduce aggregates not in the SELECT list;
            // rebuild the aggregate node if so.
            if let LogicalPlan::Aggregate {
                aggs: plan_aggs,
                schema,
                ..
            } = &mut agg_plan
            {
                if aggs.len() > plan_aggs.len() {
                    let input_types: Vec<nodb_common::DataType> = layout
                        .iter()
                        .map(|&(t, c)| self.tables[t].schema.field(c).dtype)
                        .collect();
                    let mut fields = schema.fields().to_vec();
                    for a in aggs.iter().skip(plan_aggs.len()) {
                        fields.push(Field::new(
                            format!("agg{}", fields.len()),
                            a.output_type(&input_types),
                        ));
                    }
                    *schema = Schema::new(fields)?;
                    *plan_aggs = aggs.clone();
                }
            }
            agg_plan = LogicalPlan::Filter {
                input: Box::new(agg_plan),
                predicate,
            };
        }

        let agg_types = match &agg_plan {
            LogicalPlan::Filter { input, .. } => input.schema().types(),
            other => other.schema().types(),
        };
        let names = self.output_names(projections);
        let out_schema = named_schema(&names, &out_exprs, &agg_types)?;
        let proj_asts: Vec<AstExpr> = projections.iter().map(|(e, _)| e.clone()).collect();
        Ok((
            LogicalPlan::Project {
                input: Box::new(agg_plan),
                exprs: out_exprs,
                schema: out_schema,
            },
            names,
            proj_asts,
        ))
    }

    /// Rewrite a select expression over the aggregate's output layout.
    #[allow(clippy::too_many_arguments)]
    fn rewrite_agg_expr(
        &self,
        e: &AstExpr,
        group_asts: &[AstExpr],
        n_group: usize,
        agg_asts: &mut Vec<AstExpr>,
        aggs: &mut Vec<AggExpr>,
        input_resolver: &dyn Fn(Option<&str>, &str) -> Result<usize>,
    ) -> Result<BoundExpr> {
        // A group-by expression evaluates to its key slot.
        if let Some(pos) = group_asts.iter().position(|g| g == e) {
            return Ok(BoundExpr::Col(pos));
        }
        match e {
            AstExpr::Agg { func, arg } => {
                let key = e.clone();
                let idx = match agg_asts.iter().position(|a| a == &key) {
                    Some(i) => i,
                    None => {
                        let bound_arg = match arg {
                            Some(a) => Some(self.bind_scalar(a, input_resolver)?),
                            None => None,
                        };
                        let func = match func {
                            AggFuncAst::Count => AggFunc::Count,
                            AggFuncAst::Sum => AggFunc::Sum,
                            AggFuncAst::Avg => AggFunc::Avg,
                            AggFuncAst::Min => AggFunc::Min,
                            AggFuncAst::Max => AggFunc::Max,
                        };
                        agg_asts.push(key);
                        aggs.push(AggExpr {
                            func,
                            arg: bound_arg,
                        });
                        agg_asts.len() - 1
                    }
                };
                Ok(BoundExpr::Col(n_group + idx))
            }
            AstExpr::Column { table, name } => Err(NoDbError::plan(format!(
                "column `{}{name}` must appear in GROUP BY or inside an aggregate",
                table
                    .as_deref()
                    .map(|t| format!("{t}."))
                    .unwrap_or_default()
            ))),
            AstExpr::Literal(v) => Ok(BoundExpr::Lit(v.clone())),
            AstExpr::Param(i) => Ok(BoundExpr::Param {
                idx: *i,
                dtype: self.param_types.get(*i).copied().flatten(),
            }),
            AstExpr::Interval { .. } => Err(NoDbError::plan("INTERVAL outside date arithmetic")),
            AstExpr::Binary { op, left, right } => {
                let l = self.rewrite_agg_expr(
                    left,
                    group_asts,
                    n_group,
                    agg_asts,
                    aggs,
                    input_resolver,
                )?;
                let r = self.rewrite_agg_expr(
                    right,
                    group_asts,
                    n_group,
                    agg_asts,
                    aggs,
                    input_resolver,
                )?;
                Ok(BoundExpr::Binary {
                    op: convert_op(*op),
                    left: Box::new(l),
                    right: Box::new(r),
                })
            }
            AstExpr::Not(x) => Ok(BoundExpr::Unary {
                op: UnOp::Not,
                expr: Box::new(self.rewrite_agg_expr(
                    x,
                    group_asts,
                    n_group,
                    agg_asts,
                    aggs,
                    input_resolver,
                )?),
            }),
            AstExpr::Neg(x) => Ok(BoundExpr::Unary {
                op: UnOp::Neg,
                expr: Box::new(self.rewrite_agg_expr(
                    x,
                    group_asts,
                    n_group,
                    agg_asts,
                    aggs,
                    input_resolver,
                )?),
            }),
            AstExpr::Case {
                branches,
                else_expr,
            } => {
                let mut bs = Vec::with_capacity(branches.len());
                for (c, r) in branches {
                    bs.push((
                        self.rewrite_agg_expr(
                            c,
                            group_asts,
                            n_group,
                            agg_asts,
                            aggs,
                            input_resolver,
                        )?,
                        self.rewrite_agg_expr(
                            r,
                            group_asts,
                            n_group,
                            agg_asts,
                            aggs,
                            input_resolver,
                        )?,
                    ));
                }
                let else_expr = match else_expr {
                    Some(x) => Some(Box::new(self.rewrite_agg_expr(
                        x,
                        group_asts,
                        n_group,
                        agg_asts,
                        aggs,
                        input_resolver,
                    )?)),
                    None => None,
                };
                Ok(BoundExpr::Case {
                    branches: bs,
                    else_expr,
                })
            }
            other => Err(NoDbError::plan(format!(
                "unsupported expression over aggregate output: {other:?}"
            ))),
        }
    }

    // ----- scalar binding -------------------------------------------------

    fn bind_scalar(
        &self,
        e: &AstExpr,
        resolve: &dyn Fn(Option<&str>, &str) -> Result<usize>,
    ) -> Result<BoundExpr> {
        match e {
            AstExpr::Column { table, name } => Ok(BoundExpr::Col(resolve(table.as_deref(), name)?)),
            AstExpr::Literal(v) => Ok(BoundExpr::Lit(v.clone())),
            AstExpr::Param(i) => Ok(BoundExpr::Param {
                idx: *i,
                dtype: self.param_types.get(*i).copied().flatten(),
            }),
            AstExpr::Interval { .. } => Err(NoDbError::plan(
                "INTERVAL is only supported in date ± interval arithmetic with literal dates",
            )),
            AstExpr::Binary { op, left, right } => {
                // Fold `date ± interval` eagerly.
                if let AstExpr::Interval { n, unit } = right.as_ref() {
                    let base = self.bind_scalar(left, resolve)?;
                    if let BoundExpr::Lit(Value::Date(d)) = base {
                        let n = match op {
                            AstBinOp::Add => *n,
                            AstBinOp::Sub => -*n,
                            _ => return Err(NoDbError::plan("INTERVAL only supports + and -")),
                        };
                        let folded = match unit {
                            IntervalUnit::Day => d.add_days(n as i32),
                            IntervalUnit::Month => d.add_months(n as i32),
                            IntervalUnit::Year => d.add_years(n as i32),
                        };
                        return Ok(BoundExpr::Lit(Value::Date(folded)));
                    }
                    return Err(NoDbError::plan(
                        "interval arithmetic requires a literal date",
                    ));
                }
                let l = self.bind_scalar(left, resolve)?;
                let r = self.bind_scalar(right, resolve)?;
                Ok(BoundExpr::Binary {
                    op: convert_op(*op),
                    left: Box::new(l),
                    right: Box::new(r),
                })
            }
            AstExpr::Not(x) => Ok(BoundExpr::Unary {
                op: UnOp::Not,
                expr: Box::new(self.bind_scalar(x, resolve)?),
            }),
            AstExpr::Neg(x) => Ok(BoundExpr::Unary {
                op: UnOp::Neg,
                expr: Box::new(self.bind_scalar(x, resolve)?),
            }),
            AstExpr::Like {
                expr,
                pattern,
                negated,
            } => {
                let bound = self.bind_scalar(expr, resolve)?;
                // The pattern is any text expression: a literal, a
                // parameter (`name LIKE ?`, typed Text by the inference
                // pre-pass) or a computed value. Non-text literals are
                // rejected here; non-text runtime values fail in eval.
                let pattern = self.bind_scalar(pattern, resolve)?;
                if let BoundExpr::Lit(v) = &pattern {
                    if !matches!(v, Value::Text(_) | Value::Null) {
                        return Err(NoDbError::plan(format!(
                            "LIKE pattern must be text, got {v}"
                        )));
                    }
                }
                Ok(BoundExpr::Like {
                    expr: Box::new(bound),
                    pattern: Box::new(pattern),
                    negated: *negated,
                })
            }
            AstExpr::Between {
                expr,
                low,
                high,
                negated,
            } => Ok(BoundExpr::Between {
                expr: Box::new(self.bind_scalar(expr, resolve)?),
                low: Box::new(self.bind_scalar(low, resolve)?),
                high: Box::new(self.bind_scalar(high, resolve)?),
                negated: *negated,
            }),
            AstExpr::InList {
                expr,
                list,
                negated,
            } => {
                let bound = self.bind_scalar(expr, resolve)?;
                let items = list
                    .iter()
                    .map(|item| self.bind_scalar(item, resolve))
                    .collect::<Result<Vec<_>>>()?;
                if items.iter().all(|i| matches!(i, BoundExpr::Lit(_))) {
                    // All-literal lists keep the dedicated InList form
                    // (single membership probe, stats-aware selectivity).
                    let values = items
                        .into_iter()
                        .map(|i| match i {
                            BoundExpr::Lit(v) => v,
                            _ => unreachable!("checked above"),
                        })
                        .collect();
                    return Ok(BoundExpr::InList {
                        expr: Box::new(bound),
                        list: values,
                        negated: *negated,
                    });
                }
                // Lists with parameters (`grp IN (?, ?)`) or computed
                // members desugar into an OR-chain of equalities, which
                // has identical three-valued semantics: a NULL member
                // compares as NULL, so a non-matching probe yields NULL
                // (and NOT IN of it yields NULL), exactly like the
                // membership form.
                let ors = items
                    .into_iter()
                    .map(|item| BoundExpr::Binary {
                        op: BinOp::Eq,
                        left: Box::new(bound.clone()),
                        right: Box::new(item),
                    })
                    .reduce(|a, b| BoundExpr::Binary {
                        op: BinOp::Or,
                        left: Box::new(a),
                        right: Box::new(b),
                    })
                    .ok_or_else(|| NoDbError::plan("IN list cannot be empty"))?;
                Ok(if *negated {
                    BoundExpr::Unary {
                        op: UnOp::Not,
                        expr: Box::new(ors),
                    }
                } else {
                    ors
                })
            }
            AstExpr::Case {
                branches,
                else_expr,
            } => {
                let mut bs = Vec::with_capacity(branches.len());
                for (c, r) in branches {
                    bs.push((self.bind_scalar(c, resolve)?, self.bind_scalar(r, resolve)?));
                }
                let else_expr = match else_expr {
                    Some(x) => Some(Box::new(self.bind_scalar(x, resolve)?)),
                    None => None,
                };
                Ok(BoundExpr::Case {
                    branches: bs,
                    else_expr,
                })
            }
            AstExpr::IsNull { expr, negated } => Ok(BoundExpr::IsNull {
                expr: Box::new(self.bind_scalar(expr, resolve)?),
                negated: *negated,
            }),
            AstExpr::Agg { .. } => Err(NoDbError::plan(
                "aggregate calls are not allowed in this context",
            )),
            AstExpr::Exists { .. } => Err(NoDbError::plan(
                "EXISTS is only supported as a top-level WHERE conjunct",
            )),
        }
    }

    // ----- output naming / order-by -------------------------------------

    fn output_names(&self, projections: &[(AstExpr, Option<String>)]) -> Vec<String> {
        let mut names = Vec::with_capacity(projections.len());
        for (e, alias) in projections {
            let base = match alias {
                Some(a) => a.clone(),
                None => derive_name(e),
            };
            let mut name = base.clone();
            let mut k = 1;
            while names.contains(&name) {
                k += 1;
                name = format!("{base}_{k}");
            }
            names.push(name);
        }
        names
    }

    fn resolve_order_key(
        &self,
        e: &AstExpr,
        out_names: &[String],
        proj_asts: &[AstExpr],
    ) -> Result<usize> {
        // 1. Alias / output-name match.
        if let AstExpr::Column { table: None, name } = e {
            if let Some(i) = out_names.iter().position(|n| n.eq_ignore_ascii_case(name)) {
                return Ok(i);
            }
        }
        // 2. Structural match with a projected expression.
        if let Some(i) = proj_asts.iter().position(|p| p == e) {
            return Ok(i);
        }
        Err(NoDbError::plan(format!(
            "ORDER BY expression must be a projected column or alias, got {e:?}"
        )))
    }
}

enum SubCol {
    Inner(usize),
    Outer((usize, usize)),
    Neither,
}

fn convert_op(op: AstBinOp) -> BinOp {
    match op {
        AstBinOp::Or => BinOp::Or,
        AstBinOp::And => BinOp::And,
        AstBinOp::Eq => BinOp::Eq,
        AstBinOp::NotEq => BinOp::NotEq,
        AstBinOp::Lt => BinOp::Lt,
        AstBinOp::LtEq => BinOp::LtEq,
        AstBinOp::Gt => BinOp::Gt,
        AstBinOp::GtEq => BinOp::GtEq,
        AstBinOp::Add => BinOp::Add,
        AstBinOp::Sub => BinOp::Sub,
        AstBinOp::Mul => BinOp::Mul,
        AstBinOp::Div => BinOp::Div,
    }
}

fn derive_name(e: &AstExpr) -> String {
    match e {
        AstExpr::Column { name, .. } => name.clone(),
        AstExpr::Agg { func, .. } => match func {
            AggFuncAst::Count => "count".into(),
            AggFuncAst::Sum => "sum".into(),
            AggFuncAst::Avg => "avg".into(),
            AggFuncAst::Min => "min".into(),
            AggFuncAst::Max => "max".into(),
        },
        AstExpr::Case { .. } => "case".into(),
        _ => "?column?".into(),
    }
}

fn named_schema(names: &[String], exprs: &[BoundExpr], input: &[DataType]) -> Result<Schema> {
    let fields = names
        .iter()
        .zip(exprs)
        .map(|(n, e)| Field::new(n.clone(), e.infer_type(input)))
        .collect();
    Schema::new(fields)
}

fn layout_pos(layout: &[(usize, usize)], key: (usize, usize)) -> Result<usize> {
    layout
        .iter()
        .position(|&p| p == key)
        .ok_or_else(|| NoDbError::internal("join key missing from layout"))
}

/// Collect schema-local column usage for inner-scope (EXISTS) expressions.
fn collect_schema_usage(e: &AstExpr, schema: &Schema, used: &mut BTreeSet<usize>) {
    match e {
        AstExpr::Column { table: None, name } => {
            if let Some(c) = schema.index_of(name) {
                used.insert(c);
            }
        }
        AstExpr::Column { .. }
        | AstExpr::Literal(_)
        | AstExpr::Param(_)
        | AstExpr::Interval { .. } => {}
        AstExpr::Binary { left, right, .. } => {
            collect_schema_usage(left, schema, used);
            collect_schema_usage(right, schema, used);
        }
        AstExpr::Not(x) | AstExpr::Neg(x) => collect_schema_usage(x, schema, used),
        AstExpr::Like { expr, pattern, .. } => {
            collect_schema_usage(expr, schema, used);
            collect_schema_usage(pattern, schema, used);
        }
        AstExpr::Between {
            expr, low, high, ..
        } => {
            collect_schema_usage(expr, schema, used);
            collect_schema_usage(low, schema, used);
            collect_schema_usage(high, schema, used);
        }
        AstExpr::InList { expr, list, .. } => {
            collect_schema_usage(expr, schema, used);
            for i in list {
                collect_schema_usage(i, schema, used);
            }
        }
        AstExpr::Case {
            branches,
            else_expr,
        } => {
            for (c, r) in branches {
                collect_schema_usage(c, schema, used);
                collect_schema_usage(r, schema, used);
            }
            if let Some(x) = else_expr {
                collect_schema_usage(x, schema, used);
            }
        }
        AstExpr::Agg { arg: Some(a), .. } => collect_schema_usage(a, schema, used),
        AstExpr::Agg { arg: None, .. } | AstExpr::Exists { .. } => {}
        AstExpr::IsNull { expr, .. } => collect_schema_usage(expr, schema, used),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use nodb_stats::StatsBuilder;

    struct MockCatalog {
        tables: Vec<(String, Schema, Option<TableStats>)>,
    }

    impl CatalogView for MockCatalog {
        fn schema_of(&self, table: &str) -> Result<Schema> {
            self.tables
                .iter()
                .find(|(n, _, _)| n == table)
                .map(|(_, s, _)| s.clone())
                .ok_or_else(|| NoDbError::catalog(format!("unknown table `{table}`")))
        }
        fn stats_of(&self, table: &str) -> Option<TableStats> {
            self.tables
                .iter()
                .find(|(n, _, _)| n == table)
                .and_then(|(_, _, st)| st.clone())
        }
    }

    fn col_stats(ndv: i64, rows: usize) -> nodb_stats::ColumnStats {
        let mut b = StatsBuilder::new(DataType::Int32);
        for i in 0..rows {
            b.offer(&Value::Int32((i as i64 % ndv) as i32));
        }
        b.finalize(Some(rows as f64))
    }

    fn catalog() -> MockCatalog {
        let t1 = Schema::parse("a int, b int, c text, d date").unwrap();
        let t2 = Schema::parse("x int, y int, z text").unwrap();
        let mut st1 = TableStats::new();
        st1.set_row_count(10_000);
        st1.set_column(0, col_stats(10_000, 4000)); // a: key-like
        st1.set_column(1, col_stats(5, 4000)); // b: 5 distinct
        let mut st2 = TableStats::new();
        st2.set_row_count(100);
        st2.set_column(0, col_stats(100, 100)); // x: key-like
        MockCatalog {
            tables: vec![("t1".into(), t1, Some(st1)), ("t2".into(), t2, Some(st2))],
        }
    }

    fn plan(sql: &str) -> LogicalPlan {
        bind(&parse(sql).unwrap(), &catalog(), &PlannerOptions::default()).unwrap()
    }

    fn plan_no_stats(sql: &str) -> LogicalPlan {
        bind(
            &parse(sql).unwrap(),
            &catalog(),
            &PlannerOptions {
                use_stats: false,
                ..Default::default()
            },
        )
        .unwrap()
    }

    fn find_scan<'a>(p: &'a LogicalPlan, table: &str) -> &'a LogicalPlan {
        fn walk<'a>(p: &'a LogicalPlan, table: &str, out: &mut Option<&'a LogicalPlan>) {
            match p {
                LogicalPlan::Scan { table: t, .. } if t == table => *out = Some(p),
                LogicalPlan::Scan { .. } => {}
                LogicalPlan::Filter { input, .. }
                | LogicalPlan::Aggregate { input, .. }
                | LogicalPlan::Project { input, .. }
                | LogicalPlan::Sort { input, .. }
                | LogicalPlan::Limit { input, .. }
                | LogicalPlan::Distinct { input } => walk(input, table, out),
                LogicalPlan::Join { left, right, .. } => {
                    walk(left, table, out);
                    walk(right, table, out);
                }
            }
        }
        let mut out = None;
        walk(p, table, &mut out);
        out.unwrap_or_else(|| panic!("no scan of {table} in:\n{p}"))
    }

    #[test]
    fn projection_pruning_keeps_only_used_columns() {
        let p = plan("select a from t1 where b < 3");
        match find_scan(&p, "t1") {
            LogicalPlan::Scan {
                projection,
                filters,
                ..
            } => {
                assert_eq!(projection, &vec![0, 1]); // a, b
                assert_eq!(filters.len(), 1);
                // Filter bound to projection space: b is local ordinal 1.
                assert_eq!(filters[0].to_string(), "(#1 < 3)");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wildcard_projects_everything() {
        let p = plan("select * from t2");
        match find_scan(&p, "t2") {
            LogicalPlan::Scan { projection, .. } => assert_eq!(projection, &vec![0, 1, 2]),
            other => panic!("{other:?}"),
        }
        assert_eq!(p.schema().len(), 3);
    }

    #[test]
    fn join_extracts_equi_edge_and_orders_by_size() {
        // t2 (100 rows) is smaller than t1 (10k): with stats it becomes
        // the build (left) side.
        let p = plan("select a, x from t1, t2 where a = x");
        match &p {
            LogicalPlan::Project { input, .. } => match input.as_ref() {
                LogicalPlan::Join {
                    left, right, on, ..
                } => {
                    assert!(
                        matches!(left.as_ref(), LogicalPlan::Scan { table, .. } if table == "t2")
                    );
                    assert!(
                        matches!(right.as_ref(), LogicalPlan::Scan { table, .. } if table == "t1")
                    );
                    assert_eq!(on.len(), 1);
                }
                other => panic!("expected join, got:\n{other}"),
            },
            other => panic!("{other}"),
        }
        // Without stats: as-written order (t1 left).
        let p = plan_no_stats("select a, x from t1, t2 where a = x");
        match &p {
            LogicalPlan::Project { input, .. } => match input.as_ref() {
                LogicalPlan::Join { left, .. } => {
                    assert!(
                        matches!(left.as_ref(), LogicalPlan::Scan { table, .. } if table == "t1")
                    );
                }
                other => panic!("{other}"),
            },
            other => panic!("{other}"),
        }
    }

    #[test]
    fn exists_becomes_semi_join() {
        let p = plan(
            "select count(*) from t1 where exists \
             (select * from t2 where x = a and y > 0)",
        );
        let s = p.explain();
        assert!(s.contains("SemiJoin"), "{s}");
        // Inner filter pushed to t2's scan.
        match find_scan(&p, "t2") {
            LogicalPlan::Scan {
                filters,
                projection,
                ..
            } => {
                assert_eq!(filters.len(), 1);
                assert_eq!(projection, &vec![0, 1]); // x (correlation), y (filter)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn not_exists_becomes_anti_join() {
        let p = plan("select count(*) from t1 where not exists (select * from t2 where x = a)");
        assert!(p.explain().contains("AntiJoin"), "{}", p.explain());
    }

    #[test]
    fn aggregate_strategy_follows_stats() {
        // b has 5 distinct values -> hash aggregation with stats.
        let p = plan("select b, count(*) from t1 group by b");
        assert!(p.explain().contains("HashAggregate"), "{}", p.explain());
        // Without stats -> pessimistic sort aggregation.
        let p = plan_no_stats("select b, count(*) from t1 group by b");
        assert!(p.explain().contains("SortAggregate"), "{}", p.explain());
        // No GROUP BY -> plain.
        let p = plan("select count(*) from t1");
        assert!(p.explain().contains("PlainAggregate"), "{}", p.explain());
    }

    #[test]
    fn aggregate_projection_rewrites_over_agg_output() {
        let p = plan("select b, sum(a) * 2 from t1 group by b");
        match &p {
            LogicalPlan::Project { exprs, .. } => {
                assert_eq!(exprs[0].to_string(), "#0"); // group key
                assert_eq!(exprs[1].to_string(), "(#1 * 2)"); // agg slot
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn duplicate_aggregates_are_shared() {
        let p = plan("select sum(a), sum(a) + 1 from t1");
        match &p {
            LogicalPlan::Project { input, .. } => match input.as_ref() {
                LogicalPlan::Aggregate { aggs, .. } => assert_eq!(aggs.len(), 1),
                other => panic!("{other}"),
            },
            other => panic!("{other}"),
        }
    }

    #[test]
    fn order_by_alias_and_column() {
        let p = plan("select b, sum(a) total from t1 group by b order by total desc, b");
        match &p {
            LogicalPlan::Sort { keys, .. } => {
                assert_eq!(keys[0].col, 1);
                assert!(keys[0].desc);
                assert_eq!(keys[1].col, 0);
                assert!(!keys[1].desc);
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn or_factoring_exposes_join() {
        // Q19 shape: both disjuncts contain a = x.
        let p = plan(
            "select count(*) from t1, t2 where \
             (a = x and b = 1 and y = 2) or (a = x and b = 3 and y = 4)",
        );
        let s = p.explain();
        assert!(s.contains("InnerJoin on=[("), "join missing:\n{s}");
        assert!(s.contains("Filter"), "residual OR missing:\n{s}");
    }

    #[test]
    fn interval_arithmetic_folds() {
        let p = plan("select a from t1 where d < date '1994-01-01' + interval '1' year");
        match find_scan(&p, "t1") {
            LogicalPlan::Scan { filters, .. } => {
                assert_eq!(filters[0].to_string(), "(#1 < 1995-01-01)");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_are_reported() {
        let c = catalog();
        let opts = PlannerOptions::default();
        let run = |sql: &str| bind(&parse(sql).unwrap(), &c, &opts);
        assert!(run("select nope from t1").is_err());
        assert!(run("select a from missing").is_err());
        assert!(run("select a, count(*) from t1").is_err()); // a not grouped
        assert!(run("select a from t1 where sum(b) > 1").is_err()); // agg in WHERE
        assert!(run("select a from t1 order by zzz").is_err());
        // Ambiguity: both tables have no common names here, so make one.
        assert!(run("select a from t1, t1").is_err()); // duplicate alias
    }

    #[test]
    fn binds_parameters_with_inferred_types() {
        let stmt = parse("select a from t1 where b < $1 and d >= $2").unwrap();
        let p = bind(&stmt, &catalog(), &PlannerOptions::default()).unwrap();
        // Types flow from the compared columns: b int, d date.
        assert_eq!(
            p.param_types(2),
            vec![Some(DataType::Int32), Some(DataType::Date)]
        );
        match find_scan(&p, "t1") {
            LogicalPlan::Scan { filters, .. } => {
                assert_eq!(filters.len(), 2);
                let shown: Vec<String> = filters.iter().map(|f| f.to_string()).collect();
                assert!(shown.iter().any(|s| s.contains("$1")), "{shown:?}");
                assert!(shown.iter().any(|s| s.contains("$2")), "{shown:?}");
            }
            other => panic!("{other:?}"),
        }
        // Substitution produces a parameter-free plan.
        let sub = p.substitute_params(&[
            Value::Int64(3),
            Value::Date(nodb_common::Date::parse("1994-01-01").unwrap()),
        ]);
        assert!(!sub.explain().contains('$'), "{}", sub.explain());
        // Parameters in aggregate context (HAVING) bind too.
        let stmt = parse("select b, count(*) from t1 group by b having count(*) > ?").unwrap();
        let p = bind(&stmt, &catalog(), &PlannerOptions::default()).unwrap();
        assert_eq!(p.param_types(1).len(), 1);
        // LIKE patterns may be parameters; the slot is typed Text by
        // the inference pre-pass and substitutes like any other.
        let stmt = parse("select a from t1 where c like $1").unwrap();
        let p = bind(&stmt, &catalog(), &PlannerOptions::default()).unwrap();
        assert_eq!(p.param_types(1), vec![Some(DataType::Text)]);
        let sub = p.substitute_params(&[Value::Text("al%".into())]);
        assert!(sub.explain().contains("LIKE 'al%'"), "{}", sub.explain());
        // ... but a non-text literal pattern is still a bind-time error.
        let stmt = parse("select a from t1 where c like 42").unwrap();
        assert!(bind(&stmt, &catalog(), &PlannerOptions::default()).is_err());
        // Parameters inside IN lists bind (desugared to an OR-chain of
        // equalities), typed from the tested column.
        let stmt = parse("select a from t1 where b in (1, $1, 3)").unwrap();
        let p = bind(&stmt, &catalog(), &PlannerOptions::default()).unwrap();
        assert_eq!(p.param_types(1), vec![Some(DataType::Int32)]);
        let sub = p.substitute_params(&[Value::Int32(2)]);
        let shown = sub.explain();
        assert!(!shown.contains('$'), "{shown}");
        assert!(shown.contains("OR"), "{shown}");
    }

    #[test]
    fn huge_param_index_fails_fast_in_bind() {
        // `bind` is reachable without a prior param_count check (the
        // EXPLAIN path); a lone $4000000000 must error on the gap, not
        // allocate a 4-billion-slot type vector.
        let stmt = parse("select a from t1 where b = $4000000000").unwrap();
        let err = bind(&stmt, &catalog(), &PlannerOptions::default())
            .unwrap_err()
            .to_string();
        assert!(err.contains("parameter $1"), "{err}");
    }

    fn catalog_without_stats() -> MockCatalog {
        let mut c = catalog();
        for t in &mut c.tables {
            t.2 = None;
        }
        c
    }

    #[test]
    fn refresh_stats_unstales_a_cached_plan() {
        use crate::optimizer::refresh_stats;
        // A catalog where statistics reveal a huge group count.
        let mut big = catalog_without_stats();
        let mut st = TableStats::new();
        st.set_row_count(2_000_000);
        st.set_column(0, col_stats(1000, 4000)); // a
        st.set_column(1, col_stats(1000, 4000)); // b
        big.tables[0].2 = Some(st);

        // Prepared cold: no statistics yet, so the binder guesses
        // default NDVs and picks hash aggregation.
        let stmt = parse("select a, b, count(*) from t1 group by a, b").unwrap();
        let mut plan = bind(&stmt, &catalog_without_stats(), &PlannerOptions::default()).unwrap();
        assert!(
            plan.explain().contains("HashAggregate"),
            "{}",
            plan.explain()
        );

        // Executed later, after statistics were collected: the refresh
        // pass re-estimates the scan from current stats and flips the
        // strategy to sort aggregation (~1M estimated groups).
        refresh_stats(&mut plan, &big, true);
        assert!(
            plan.explain().contains("SortAggregate"),
            "{}",
            plan.explain()
        );
        match find_scan(&plan, "t1") {
            LogicalPlan::Scan { estimated_rows, .. } => {
                assert_eq!(*estimated_rows, 2_000_000.0);
            }
            other => panic!("{other:?}"),
        }

        // With use_stats off the plan is left exactly as bound.
        let mut frozen = bind(
            &stmt,
            &catalog_without_stats(),
            &PlannerOptions {
                use_stats: false,
                ..Default::default()
            },
        )
        .unwrap();
        let before = frozen.explain();
        refresh_stats(&mut frozen, &big, false);
        assert_eq!(before, frozen.explain());
    }

    #[test]
    fn scan_estimates_reflect_stats() {
        let p = plan("select a from t1 where b = 1");
        match find_scan(&p, "t1") {
            LogicalPlan::Scan { estimated_rows, .. } => {
                // b has 5 distinct values over 10k rows -> ~2000.
                assert!(
                    (500.0..5000.0).contains(estimated_rows),
                    "est={estimated_rows}"
                );
            }
            other => panic!("{other:?}"),
        }
    }
}
