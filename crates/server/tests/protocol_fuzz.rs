//! Property-based robustness of the wire protocol.
//!
//! Two invariants, both load-bearing for a server exposed to arbitrary
//! peers:
//!
//! 1. **Round-trip**: any well-formed frame decodes back to itself.
//! 2. **No panic, no unbounded allocation**: any byte soup — truncated
//!    frames, lying length prefixes, garbage tags, corrupted bodies —
//!    yields a typed error (or a clean EOF), never a panic and never an
//!    allocation sized by an attacker-controlled length field.

use proptest::prelude::*;

use nodb_common::{DataType, Date, NoDbError, Row, Value};
use nodb_server::protocol::{read_frame, ErrorKind, Frame, StatsPayload, MAX_FRAME_BYTES};

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i32>().prop_map(Value::Int32),
        any::<i64>().prop_map(Value::Int64),
        any::<i64>().prop_map(|b| Value::Float64(f64::from_bits(b as u64))),
        proptest::collection::vec(any::<char>(), 0..40)
            .prop_map(|cs| Value::Text(cs.into_iter().collect())),
        any::<i32>().prop_map(|d| Value::Date(Date(d))),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn dtype_strategy() -> impl Strategy<Value = DataType> {
    prop_oneof![
        Just(DataType::Int32),
        Just(DataType::Int64),
        Just(DataType::Float64),
        Just(DataType::Text),
        Just(DataType::Date),
        Just(DataType::Bool),
    ]
}

fn kind_strategy() -> impl Strategy<Value = ErrorKind> {
    prop_oneof![
        Just(ErrorKind::Io),
        Just(ErrorKind::Parse),
        Just(ErrorKind::Sql),
        Just(ErrorKind::Plan),
        Just(ErrorKind::Execution),
        Just(ErrorKind::Catalog),
        Just(ErrorKind::Config),
        Just(ErrorKind::Internal),
        Just(ErrorKind::Shutdown),
    ]
}

fn text_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<char>(), 0..60).prop_map(|cs| cs.into_iter().collect())
}

fn stats_payload_strategy() -> impl Strategy<Value = StatsPayload> {
    (
        proptest::collection::vec(any::<u64>(), 19),
        proptest::collection::vec((any::<u32>(), any::<u64>()), 0..8),
    )
        .prop_map(|(v, heats)| StatsPayload {
            scans: v[0],
            rows_emitted: v[1],
            fields_tokenized: v[2],
            fields_via_map: v[3],
            fields_via_anchor: v[4],
            fields_parsed: v[5],
            fields_from_cache: v[6],
            bytes_tokenized: v[7],
            posmap_bytes: v[8],
            posmap_pointers: v[9],
            cache_bytes: v[10],
            cache_utilization: f64::from_bits(v[11]),
            stats_attrs: v[12],
            io_ns: v[13],
            io_bytes: v[14],
            tokenize_ns: v[15],
            tokenize_bytes: v[16],
            parse_ns: v[17],
            parse_values: v[18],
            heats,
        })
}

fn frame_strategy() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (any::<u16>(), text_strategy())
            .prop_map(|(version, server)| Frame::Hello { version, server }),
        (
            text_strategy(),
            proptest::collection::vec(value_strategy(), 0..8)
        )
            .prop_map(|(sql, params)| Frame::Execute { sql, params }),
        proptest::collection::vec((text_strategy(), dtype_strategy()), 0..10)
            .prop_map(|columns| Frame::RowSchema { columns }),
        proptest::collection::vec(value_strategy(), 0..12).prop_map(|vs| Frame::Row(Row(vs))),
        any::<u64>().prop_map(|rows| Frame::Done { rows }),
        (kind_strategy(), text_strategy())
            .prop_map(|(kind, message)| Frame::Error { kind, message }),
        text_strategy().prop_map(|message| Frame::Busy { message }),
        text_strategy().prop_map(|table| Frame::Stats { table }),
        stats_payload_strategy().prop_map(Frame::StatsReport),
        Just(Frame::Goodbye),
    ]
}

/// NaN-tolerant frame comparison: `Frame` derives `PartialEq`, under
/// which `NaN != NaN`, but the wire carries floats bit-exactly — so
/// compare Float64 payloads by bit pattern.
fn frames_equal(a: &Frame, b: &Frame) -> bool {
    fn values_equal(a: &[Value], b: &[Value]) -> bool {
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| match (x, y) {
                (Value::Float64(p), Value::Float64(q)) => p.to_bits() == q.to_bits(),
                _ => x == y,
            })
    }
    match (a, b) {
        (
            Frame::Execute {
                sql: s1,
                params: p1,
            },
            Frame::Execute {
                sql: s2,
                params: p2,
            },
        ) => s1 == s2 && values_equal(p1, p2),
        (Frame::Row(Row(v1)), Frame::Row(Row(v2))) => values_equal(v1, v2),
        (Frame::StatsReport(p1), Frame::StatsReport(p2)) => {
            // `cache_utilization` travels bit-exactly; compare it by bit
            // pattern (the derived PartialEq would fail on NaN) and the
            // rest structurally with the float zeroed out.
            let (mut q1, mut q2) = (p1.clone(), p2.clone());
            q1.cache_utilization = 0.0;
            q2.cache_utilization = 0.0;
            q1 == q2 && p1.cache_utilization.to_bits() == p2.cache_utilization.to_bits()
        }
        _ => a == b,
    }
}

proptest! {
    #[test]
    fn any_frame_roundtrips(frame in frame_strategy()) {
        let bytes = frame.to_bytes().expect("encode");
        let back = read_frame(&mut &bytes[..]).unwrap().unwrap();
        prop_assert!(frames_equal(&frame, &back), "{frame:?} != {back:?}");
    }

    #[test]
    fn truncating_a_frame_never_panics(frame in frame_strategy(), cut_seed in any::<u16>()) {
        let bytes = frame.to_bytes().expect("encode");
        let cut = 1 + (cut_seed as usize) % (bytes.len().max(2) - 1);
        match read_frame(&mut &bytes[..cut.min(bytes.len() - 1)]) {
            // Every strict prefix is missing bytes somewhere: either the
            // reader hits EOF mid-frame, or (when only trailing bytes of
            // a multi-field body are gone) the decoder underruns.
            Err(e) => prop_assert!(matches!(e, NoDbError::Parse(_)), "{e}"),
            Ok(f) => prop_assert!(false, "decoded {f:?} from a truncated frame"),
        }
    }

    #[test]
    fn garbage_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        // Any outcome but a panic is acceptable; errors must be typed.
        let mut reader = &bytes[..];
        while let Ok(Some(_)) = read_frame(&mut reader) {}
    }

    #[test]
    fn corrupting_one_byte_never_panics(frame in frame_strategy(), pos_seed in any::<u16>(), xor in 1u8..=255) {
        let mut bytes = frame.to_bytes().expect("encode");
        let pos = (pos_seed as usize) % bytes.len();
        bytes[pos] ^= xor;
        // A corrupted length prefix may announce up to MAX_FRAME_BYTES
        // and hit EOF; a corrupted body may still decode (e.g. a flipped
        // bit inside an int payload) — both fine, as long as nothing
        // panics and any error is typed.
        let _ = read_frame(&mut &bytes[..]);
    }

    #[test]
    fn lying_length_prefixes_are_bounded(len in any::<u32>(), body in proptest::collection::vec(any::<u8>(), 0..64)) {
        // Hand-built frame: arbitrary announced length over a small body.
        let mut bytes = len.to_le_bytes().to_vec();
        bytes.extend_from_slice(&body);
        match read_frame(&mut &bytes[..]) {
            Ok(_) => prop_assert!(len as usize <= body.len(), "read past the body"),
            Err(e) => {
                prop_assert!(
                    matches!(e, NoDbError::Parse(_)),
                    "lying prefix must give a typed parse error, got {e}"
                );
                if len > MAX_FRAME_BYTES {
                    prop_assert!(e.to_string().contains("exceeds"), "{e}");
                }
            }
        }
    }
}
