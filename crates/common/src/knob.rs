//! Unified engine-knob registry.
//!
//! Every tunable that used to exist as an ad-hoc env-var / CLI-flag /
//! config-field triplet (`NODB_IO_BACKEND` + `--io-backend` +
//! `NoDbConfig::io_backend`, ...) is declared **once** here as a
//! [`Knob`]: its canonical name, environment variable, CLI flag, value
//! hint, help text and parser live in a single static. Binaries generate
//! their flag tables and `--help` sections from [`all`], engine
//! construction validates every environment override through
//! [`validate_env`], and a typo in either surface fails loudly with the
//! same message — there is no second copy of a parser to drift.
//!
//! The registry owns *parsing and validation*; which config field a knob
//! sets stays with the config type (`NoDbConfig::set_knob` in
//! `nodb-core`), since this crate sits below it.

use crate::bytesize::ByteSize;
use crate::error::{NoDbError, Result};
use crate::io::IoBackend;

/// Flag/env/help metadata for one knob — the erased view binaries use to
/// generate argument tables and usage text.
#[derive(Debug, Clone, Copy)]
pub struct KnobInfo {
    /// Canonical kebab-case name (`io-backend`); also the CLI flag minus
    /// the leading dashes and the `NODB_…` env var with `-` → `_`.
    pub name: &'static str,
    /// Environment variable (`NODB_IO_BACKEND`).
    pub env: &'static str,
    /// CLI flag (`--io-backend`).
    pub flag: &'static str,
    /// Value placeholder for usage text (`auto|read|mmap`, `N`, `SIZE`).
    pub value_hint: &'static str,
    /// One-line help text.
    pub help: &'static str,
}

/// One typed engine knob: metadata plus the single parse/validate
/// routine both the env var and the CLI flag go through.
pub struct Knob<T: 'static> {
    /// Flag/env/help metadata.
    pub info: KnobInfo,
    parse: fn(&str) -> Result<T>,
}

impl<T> Knob<T> {
    /// Parse a raw value, decorating errors with the knob's identity and
    /// expected shape so a typo'd `--batch-rows x` and a typo'd
    /// `NODB_BATCH_ROWS=x` fail with the same, self-explaining message.
    pub fn parse(&self, raw: &str) -> Result<T> {
        (self.parse)(raw.trim()).map_err(|e| {
            NoDbError::config(format!(
                "invalid {} value `{}` (expected {}): {e}",
                self.info.name,
                raw.trim(),
                self.info.value_hint
            ))
        })
    }

    /// The value requested by the knob's environment variable, or `None`
    /// when unset/empty. Malformed or non-UTF-8 values are errors — a
    /// typo in a CI matrix must never silently fall back to a default.
    pub fn from_env(&self) -> Result<Option<T>> {
        match std::env::var(self.info.env) {
            Ok(s) if s.trim().is_empty() => Ok(None),
            Ok(s) => (self.parse)(s.trim()).map(Some).map_err(|e| {
                NoDbError::config(format!(
                    "invalid {} value `{}` (expected {}): {e}",
                    self.info.env,
                    s.trim(),
                    self.info.value_hint
                ))
            }),
            Err(std::env::VarError::NotPresent) => Ok(None),
            Err(std::env::VarError::NotUnicode(_)) => Err(NoDbError::config(format!(
                "{} is set but not valid UTF-8",
                self.info.env
            ))),
        }
    }

    /// Infallible environment read for configuration *defaults* (which
    /// must stay panic-free): a malformed value yields `None` here and
    /// the loud failure happens at engine construction via
    /// [`validate_env`].
    pub fn env_default(&self) -> Option<T> {
        self.from_env().ok().flatten()
    }
}

fn parse_bool(s: &str) -> Result<bool> {
    match s.to_ascii_lowercase().as_str() {
        "on" | "true" | "1" | "yes" => Ok(true),
        "off" | "false" | "0" | "no" => Ok(false),
        other => Err(NoDbError::config(format!("`{other}` is not a boolean"))),
    }
}

fn parse_usize(s: &str) -> Result<usize> {
    s.parse::<usize>()
        .map_err(|_| NoDbError::config(format!("`{s}` is not a count")))
}

/// Raw-file I/O substrate (`NoDbConfig::io_backend`).
pub static IO_BACKEND: Knob<IoBackend> = Knob {
    info: KnobInfo {
        name: "io-backend",
        env: "NODB_IO_BACKEND",
        flag: "--io-backend",
        value_hint: "auto|read|mmap",
        help: "raw-file I/O substrate (auto = mmap where supported)",
    },
    parse: IoBackend::parse,
};

/// Cold-scan worker threads (`NoDbConfig::scan_threads`).
pub static SCAN_THREADS: Knob<usize> = Knob {
    info: KnobInfo {
        name: "scan-threads",
        env: "NODB_SCAN_THREADS",
        flag: "--scan-threads",
        value_hint: "N",
        help: "cold-scan worker threads (0 = one per core)",
    },
    parse: parse_usize,
};

/// Rows per vectorized batch (`NoDbConfig::batch_rows`).
pub static BATCH_ROWS: Knob<usize> = Knob {
    info: KnobInfo {
        name: "batch-rows",
        env: "NODB_BATCH_ROWS",
        flag: "--batch-rows",
        value_hint: "N",
        help: "rows per vectorized batch (0 = row-at-a-time)",
    },
    parse: parse_usize,
};

/// Positional-map byte budget (`NoDbConfig::posmap_budget`).
pub static POSMAP_BUDGET: Knob<ByteSize> = Knob {
    info: KnobInfo {
        name: "posmap-budget",
        env: "NODB_POSMAP_BUDGET",
        flag: "--posmap-budget",
        value_hint: "SIZE",
        help: "positional-map memory cap per table, e.g. 64MB (default unbounded)",
    },
    parse: ByteSize::parse,
};

/// Binary-cache byte budget (`NoDbConfig::cache_budget`).
pub static CACHE_BUDGET: Knob<ByteSize> = Knob {
    info: KnobInfo {
        name: "cache-budget",
        env: "NODB_CACHE_BUDGET",
        flag: "--cache-budget",
        value_hint: "SIZE",
        help: "parsed-value cache cap per table, e.g. 256MB (default unbounded)",
    },
    parse: ByteSize::parse,
};

/// Rewrite-rule pipeline + scan predicate pushdown
/// (`NoDbConfig::enable_rewrite`).
pub static REWRITE: Knob<bool> = Knob {
    info: KnobInfo {
        name: "rewrite",
        env: "NODB_REWRITE",
        flag: "--rewrite",
        value_hint: "on|off",
        help: "rewrite-rule optimizer + predicate pushdown into tokenization (default on)",
    },
    parse: parse_bool,
};

/// Every registered knob's metadata, in display order — binaries build
/// their flag tables and usage text from this.
pub fn all() -> [&'static KnobInfo; 6] {
    [
        &IO_BACKEND.info,
        &SCAN_THREADS.info,
        &BATCH_ROWS.info,
        &POSMAP_BUDGET.info,
        &CACHE_BUDGET.info,
        &REWRITE.info,
    ]
}

/// Look a CLI flag up in the registry.
pub fn find_flag(flag: &str) -> Option<&'static KnobInfo> {
    all().into_iter().find(|k| k.flag == flag)
}

/// Validate every knob's environment variable, failing on the first
/// malformed one. Engine construction calls this so a typo'd override is
/// rejected before any query can run under the wrong setting.
pub fn validate_env() -> Result<()> {
    IO_BACKEND.from_env()?;
    SCAN_THREADS.from_env()?;
    BATCH_ROWS.from_env()?;
    POSMAP_BUDGET.from_env()?;
    CACHE_BUDGET.from_env()?;
    REWRITE.from_env()?;
    Ok(())
}

/// A loud error for an unrecognized CLI flag, suggesting the nearest
/// registered knob when the typo is close enough to be unambiguous.
pub fn unknown_flag_error(flag: &str) -> NoDbError {
    let suggestion = all()
        .into_iter()
        .map(|k| (k.flag, edit_distance(flag, k.flag)))
        .min_by_key(|&(_, d)| d)
        .filter(|&(_, d)| d <= 3)
        .map(|(f, _)| format!(" (did you mean {f}?)"))
        .unwrap_or_default();
    NoDbError::config(format!("unknown argument `{flag}`{suggestion}"))
}

/// Plain Levenshtein distance — tiny inputs, clarity over cleverness.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_knob_is_consistent() {
        for k in all() {
            assert_eq!(k.flag, format!("--{}", k.name), "{}", k.name);
            assert_eq!(
                k.env,
                format!("NODB_{}", k.name.to_ascii_uppercase().replace('-', "_")),
                "{}",
                k.name
            );
            assert!(!k.help.is_empty());
        }
    }

    #[test]
    fn parse_decorates_errors_with_knob_identity() {
        let err = BATCH_ROWS.parse("twelve").unwrap_err().to_string();
        assert!(err.contains("batch-rows"), "{err}");
        assert!(err.contains("twelve"), "{err}");
        assert!(BATCH_ROWS.parse(" 128 ").unwrap() == 128);
    }

    #[test]
    fn bool_knob_accepts_the_usual_spellings() {
        for on in ["on", "true", "1", "YES"] {
            assert!(REWRITE.parse(on).unwrap());
        }
        for off in ["off", "false", "0", "No"] {
            assert!(!REWRITE.parse(off).unwrap());
        }
        assert!(REWRITE.parse("maybe").is_err());
    }

    #[test]
    fn find_flag_and_suggestions() {
        assert_eq!(find_flag("--io-backend").unwrap().name, "io-backend");
        assert!(find_flag("--io-backed").is_none());
        let err = unknown_flag_error("--io-backed").to_string();
        assert!(err.contains("did you mean --io-backend?"), "{err}");
        let err = unknown_flag_error("--frobnicate").to_string();
        assert!(!err.contains("did you mean"), "{err}");
    }

    #[test]
    fn env_round_trip_is_loud_on_typos() {
        // Use a knob whose env var the test suite never sets globally.
        std::env::set_var("NODB_SCAN_THREADS", "3");
        assert_eq!(SCAN_THREADS.from_env().unwrap(), Some(3));
        std::env::set_var("NODB_SCAN_THREADS", "three");
        assert!(SCAN_THREADS.from_env().is_err());
        assert_eq!(SCAN_THREADS.env_default(), None);
        std::env::remove_var("NODB_SCAN_THREADS");
        assert_eq!(SCAN_THREADS.from_env().unwrap(), None);
    }
}
