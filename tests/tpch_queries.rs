//! End-to-end TPC-H: all eight evaluation queries must run and produce
//! identical results across every engine mode (the paper's controlled
//! comparison depends on this).

use std::path::Path;

use nodb_common::{TempDir, Value};
use nodb_core::{AccessMode, NoDb, NoDbConfig, QueryResult};
use nodb_csv::CsvOptions;
use nodb_tpch::{queries, TpchGen};

const SCALE: f64 = 0.002;

fn generate(dir: &Path) {
    TpchGen::new(SCALE, 1234).generate_all(dir).unwrap();
}

fn engine(dir: &Path, config: NoDbConfig, mode: AccessMode) -> NoDb {
    let mut db = NoDb::new(config).unwrap();
    for t in TpchGen::table_names() {
        db.register_csv(
            t,
            &dir.join(format!("{t}.tbl")),
            TpchGen::schema(t).unwrap(),
            CsvOptions::pipe(),
            mode,
        )
        .unwrap();
    }
    if mode == AccessMode::Loaded {
        for t in TpchGen::table_names() {
            db.load_table(t).unwrap();
        }
    }
    db
}

/// Sort rows textually for order-insensitive comparison (queries without
/// ORDER BY have no defined order).
fn canon(r: &QueryResult) -> Vec<String> {
    let mut v: Vec<String> = r
        .rows
        .iter()
        .map(|row| {
            row.values()
                .iter()
                .map(|v| match v {
                    // Compare floats with tolerance via rounding.
                    Value::Float64(f) => format!("{:.4}", f),
                    other => other.to_string(),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    v.sort();
    v
}

#[test]
fn all_eight_queries_run_in_situ() {
    let td = TempDir::new("tpch-it").unwrap();
    generate(td.path());
    let db = engine(td.path(), NoDbConfig::postgres_raw(), AccessMode::InSitu);
    for (id, sql) in queries::all() {
        let r = db.query(sql).unwrap_or_else(|e| panic!("{id} failed: {e}"));
        match id {
            // Q1 groups by (returnflag, linestatus): at most 2×3 combos
            // exist in the data (R/A/N × O/F).
            "Q1" => {
                assert!(
                    (1..=6).contains(&r.rows.len()),
                    "{id}: {} rows",
                    r.rows.len()
                );
                assert_eq!(r.schema.len(), 10);
            }
            "Q3" => assert!(r.rows.len() <= 10, "{id} respects LIMIT"),
            "Q4" => {
                assert!(
                    (1..=5).contains(&r.rows.len()),
                    "{id}: {} rows",
                    r.rows.len()
                );
                // Priorities come back sorted.
                let names: Vec<&str> = r.rows.iter().map(|x| x.get(0).as_str().unwrap()).collect();
                let mut sorted = names.clone();
                sorted.sort();
                assert_eq!(names, sorted, "{id} ordering");
            }
            "Q6" | "Q14" | "Q19" => assert_eq!(r.rows.len(), 1, "{id} scalar result"),
            "Q10" => assert!(r.rows.len() <= 20, "{id} respects LIMIT"),
            "Q12" => assert!((1..=2).contains(&r.rows.len()), "{id}"),
            _ => {}
        }
    }
}

#[test]
fn q1_aggregates_are_consistent() {
    let td = TempDir::new("tpch-it").unwrap();
    generate(td.path());
    let db = engine(td.path(), NoDbConfig::postgres_raw(), AccessMode::InSitu);
    let r = db.query(queries::Q1).unwrap();
    for row in &r.rows {
        let sum_qty = row
            .get(2)
            .as_i64()
            .or(row.get(2).as_f64().map(|f| f as i64));
        let count = row.get(9).as_i64().unwrap();
        let avg_qty = row.get(6).as_f64().unwrap();
        // sum/count == avg within float noise.
        let sum_qty = sum_qty
            .map(|s| s as f64)
            .unwrap_or_else(|| row.get(2).as_f64().unwrap());
        assert!(
            (sum_qty / count as f64 - avg_qty).abs() < 1e-6,
            "avg consistency: {row}"
        );
        // Discounted price <= base price.
        let base = row.get(3).as_f64().unwrap();
        let disc = row.get(4).as_f64().unwrap();
        assert!(disc <= base);
    }
}

#[test]
fn in_situ_external_and_loaded_agree_on_every_query() {
    let td = TempDir::new("tpch-it").unwrap();
    generate(td.path());
    let insitu = engine(td.path(), NoDbConfig::postgres_raw(), AccessMode::InSitu);
    let external = engine(td.path(), NoDbConfig::baseline(), AccessMode::ExternalFiles);
    let loaded = engine(td.path(), NoDbConfig::postgres_raw(), AccessMode::Loaded);
    for (id, sql) in queries::all() {
        let a = canon(
            &insitu
                .query(sql)
                .unwrap_or_else(|e| panic!("{id} insitu: {e}")),
        );
        let b = canon(
            &external
                .query(sql)
                .unwrap_or_else(|e| panic!("{id} external: {e}")),
        );
        let c = canon(
            &loaded
                .query(sql)
                .unwrap_or_else(|e| panic!("{id} loaded: {e}")),
        );
        assert_eq!(a, b, "{id}: in-situ vs external");
        assert_eq!(a, c, "{id}: in-situ vs loaded");
    }
}

#[test]
fn warm_runs_agree_with_cold_runs() {
    let td = TempDir::new("tpch-it").unwrap();
    generate(td.path());
    let db = engine(td.path(), NoDbConfig::postgres_raw(), AccessMode::InSitu);
    for (id, sql) in queries::all() {
        let cold = canon(&db.query(sql).unwrap());
        let warm = canon(&db.query(sql).unwrap());
        assert_eq!(cold, warm, "{id}: warm run must match cold run");
    }
}

#[test]
fn pm_only_variant_matches_pm_c() {
    let td = TempDir::new("tpch-it").unwrap();
    generate(td.path());
    let pm = engine(td.path(), NoDbConfig::pm_only(), AccessMode::InSitu);
    let pmc = engine(td.path(), NoDbConfig::postgres_raw(), AccessMode::InSitu);
    for (id, sql) in [
        ("Q1", queries::Q1),
        ("Q6", queries::Q6),
        ("Q14", queries::Q14),
    ] {
        let a = canon(&pm.query(sql).unwrap());
        let b = canon(&pmc.query(sql).unwrap());
        assert_eq!(a, b, "{id}");
    }
}

#[test]
fn q19_uses_a_real_join_not_a_cross_product() {
    let td = TempDir::new("tpch-it").unwrap();
    generate(td.path());
    let db = engine(td.path(), NoDbConfig::postgres_raw(), AccessMode::InSitu);
    let plan = db.explain(queries::Q19).unwrap();
    assert!(
        plan.contains("Join on=[("),
        "OR factoring must expose the equi-join:\n{plan}"
    );
}
