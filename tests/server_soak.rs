//! Many-connection soak of the query server.
//!
//! One shared `NoDb` behind a TCP server, ≥16 concurrent clients each
//! running a mixed statement workload over a CSV *and* a JSONL table,
//! repeatedly (so early statements hit a cold engine and later ones a
//! warm one). Every result must be **bit-identical** to what a direct
//! embedded `query()` over the same files returns, and after the soak
//! the shared table's aux counters must show warm-path work — i.e. the
//! positional maps / caches built by some clients' queries actually
//! served the others (the server-side amortization the paper's model
//! implies).
//!
//! CI runs this under both `NODB_IO_BACKEND=read` and `mmap` with a
//! hard timeout: a deadlocked worker pool fails the job rather than
//! hanging it.

use std::path::PathBuf;
use std::sync::Arc;

use nodb::common::{Row, Schema, TempDir, Value};
use nodb::core::{AccessMode, NoDb, NoDbConfig, Params};
use nodb::csv::{CsvOptions, CsvWriter};
use nodb::json::{JsonlOptions, JsonlWriter};
use nodb::server::{NodbClient, NodbServer, ServerConfig};

const SCHEMA: &str = "id int, grp text, score double, big bigint";
const ROWS: usize = 4000;
const CLIENTS: usize = 16;
const REPS: usize = 3;

/// Deterministic mixed-type rows (with NULLs) shared by both layouts.
fn data_rows() -> Vec<Row> {
    let groups = ["alpha", "beta", "gamma", "delta", "epsilon"];
    (0..ROWS)
        .map(|i| {
            Row(vec![
                Value::Int32(i as i32),
                if i % 13 == 12 {
                    Value::Null
                } else {
                    Value::Text(groups[i % groups.len()].into())
                },
                if i % 7 == 6 {
                    Value::Null
                } else {
                    Value::Float64((i % 1000) as f64 / 8.0)
                },
                Value::Int64(1_000_000_000_000 + i as i64 * 37),
            ])
        })
        .collect()
}

struct Fixture {
    _td: TempDir,
    csv: PathBuf,
    jsonl: PathBuf,
    schema: Schema,
}

fn fixture() -> Fixture {
    let td = TempDir::new("nodb-server-soak").unwrap();
    let schema = Schema::parse(SCHEMA).unwrap();
    let data = data_rows();
    let csv = td.file("t.csv");
    let mut w = CsvWriter::create(&csv, CsvOptions::default()).unwrap();
    for r in &data {
        w.write_row(r).unwrap();
    }
    w.finish().unwrap();
    let jsonl = td.file("t.jsonl");
    let mut w = JsonlWriter::create(&jsonl, &schema, JsonlOptions::default()).unwrap();
    for r in &data {
        w.write_row(r).unwrap();
    }
    w.finish().unwrap();
    Fixture {
        _td: td,
        csv,
        jsonl,
        schema,
    }
}

fn engine(f: &Fixture) -> NoDb {
    let mut db = NoDb::new(NoDbConfig::postgres_raw()).unwrap();
    db.register_csv(
        "t_csv",
        &f.csv,
        f.schema.clone(),
        CsvOptions::default(),
        AccessMode::InSitu,
    )
    .unwrap();
    db.register_jsonl("t_jsonl", &f.jsonl, f.schema.clone(), AccessMode::InSitu)
        .unwrap();
    db
}

/// The soak workload: parameterized statements over both formats, every
/// one with a deterministic row order so "bit-identical" is assertable.
/// `.0` is the SQL (sent repeatedly → exercises the server's
/// per-connection statement cache), `.1` the parameter sets cycled
/// through per repetition.
fn workload() -> Vec<(&'static str, Vec<Vec<Value>>)> {
    let texts = |gs: &[&str]| -> Vec<Vec<Value>> {
        gs.iter().map(|g| vec![Value::Text((*g).into())]).collect()
    };
    vec![
        (
            "select id, grp, score from t_csv where id < 700 order by id",
            vec![vec![]],
        ),
        (
            "select grp, count(*) n, sum(score) s from t_csv group by grp order by grp",
            vec![vec![]],
        ),
        (
            "select id, big from t_csv where grp = ? order by id limit 40",
            texts(&["alpha", "beta", "gamma"]),
        ),
        (
            "select id, grp, score, big from t_jsonl where id >= ? and id < ? order by id",
            vec![
                vec![Value::Int32(100), Value::Int32(180)],
                vec![Value::Int32(2000), Value::Int32(2050)],
            ],
        ),
        (
            "select count(*) c, max(big) m from t_jsonl where grp in (?, ?)",
            vec![
                vec![Value::Text("delta".into()), Value::Text("epsilon".into())],
                vec![Value::Text("alpha".into()), Value::Text("nope".into())],
            ],
        ),
        (
            "select id from t_jsonl where grp like ? order by id limit 25",
            texts(&["%ta", "al%"]),
        ),
    ]
}

fn assert_bit_identical(got: &nodb::core::QueryResult, want: &nodb::core::QueryResult, ctx: &str) {
    assert_eq!(
        got.schema.fields(),
        want.schema.fields(),
        "{ctx}: schema mismatch"
    );
    assert_eq!(got.rows.len(), want.rows.len(), "{ctx}: row count mismatch");
    for (i, (g, w)) in got.rows.iter().zip(&want.rows).enumerate() {
        // Value's PartialEq is exact (no float tolerance), which is the
        // point: the wire carries f64 bits verbatim.
        assert_eq!(g, w, "{ctx}: row {i} differs");
    }
}

/// A `Cancel` frame mid-stream must stop the server's raw scan early
/// (the cursor-drop path), keep the connection usable for further
/// statements, and be visible in the server's counters — unlike the
/// sever-the-socket fallback, which poisons the client.
#[test]
fn cancel_aborts_stream_without_severing_the_connection() {
    const BIG_ROWS: usize = 150_000;
    let td = TempDir::new("nodb-cancel").unwrap();
    let schema = Schema::parse(SCHEMA).unwrap();
    let csv = td.file("wide.csv");
    let mut w = CsvWriter::create(&csv, CsvOptions::default()).unwrap();
    for i in 0..BIG_ROWS {
        w.write_row(&Row(vec![
            Value::Int32(i as i32),
            Value::Text(format!("g{}", i % 5)),
            Value::Float64(i as f64 / 8.0),
            Value::Int64(1_000_000_000_000 + i as i64),
        ]))
        .unwrap();
    }
    w.finish().unwrap();

    let mut db = NoDb::new(NoDbConfig::postgres_raw()).unwrap();
    db.register_csv(
        "wide",
        &csv,
        schema,
        CsvOptions::default(),
        AccessMode::InSitu,
    )
    .unwrap();
    let shared = Arc::new(db);
    let server =
        NodbServer::bind_tcp(Arc::clone(&shared), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.handle();
    let serving = std::thread::spawn(move || server.serve());

    let mut client = NodbClient::connect(&addr).unwrap();
    // No ORDER BY: sorting would drain the whole scan before the first
    // row leaves the server, and there would be nothing left to cancel.
    let mut stream = client
        .stream("select id, grp, score, big from wide", &[])
        .unwrap();
    for row in stream.by_ref().take(100) {
        row.unwrap();
    }
    let streamed = stream.cancel().unwrap();
    assert!(
        streamed >= 100,
        "server must have streamed at least what the client read, got {streamed}"
    );

    // The scan stopped early: the table emitted far fewer tuples than it
    // holds. (Read before the follow-up query, which scans everything.)
    let emitted = shared.metrics("wide").unwrap().rows_emitted;
    assert!(
        emitted < BIG_ROWS as u64,
        "cancel did not stop the scan: {emitted} of {BIG_ROWS} rows emitted"
    );

    // The connection survives and carries further statements.
    let r = client.query("select count(*) from wide").unwrap();
    assert_eq!(r.rows[0].get(0), &Value::Int64(BIG_ROWS as i64));

    // A cancel that loses the race (stream already done) still works:
    // exactly one Cancelled comes back and the connection stays in sync.
    let mut s = client
        .stream("select id from wide where id < 3", &[])
        .unwrap();
    for row in s.by_ref() {
        row.unwrap();
    }
    assert_eq!(s.cancel().unwrap(), 3);
    let r = client
        .query("select count(*) from wide where id < 10")
        .unwrap();
    assert_eq!(r.rows[0].get(0), &Value::Int64(10));

    client.close().unwrap();
    handle.shutdown();
    let stats = serving.join().unwrap().unwrap();
    assert_eq!(stats.queries_cancelled, 1, "{stats:?}");
    assert_eq!(stats.queries_failed, 0, "{stats:?}");
}

#[test]
fn soak_many_clients_share_one_engine() {
    let f = fixture();

    // Expected answers from a plain embedded engine over the same files.
    let reference = engine(&f);
    let mut expected: Vec<Vec<nodb::core::QueryResult>> = Vec::new();
    for (sql, param_sets) in workload() {
        let stmt = reference.prepare(sql).unwrap();
        expected.push(
            param_sets
                .iter()
                .map(|ps| {
                    stmt.execute(&Params::from(ps.clone()))
                        .unwrap()
                        .collect()
                        .unwrap()
                })
                .collect(),
        );
    }

    // The served engine starts cold: nothing has scanned its tables.
    let shared = Arc::new(engine(&f));
    let server = NodbServer::bind_tcp(
        Arc::clone(&shared),
        "127.0.0.1:0",
        ServerConfig {
            // Soak runs Busy-free: every client must get real answers.
            max_inflight: CLIENTS,
            max_connections: CLIENTS + 4,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.handle();
    let serving = std::thread::spawn(move || server.serve());

    let expected = Arc::new(expected);
    let workers: Vec<_> = (0..CLIENTS)
        .map(|w| {
            let addr = addr.clone();
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let work = workload();
                let mut client = NodbClient::connect(&addr).unwrap();
                // Each client cycles the whole workload REPS times over
                // one connection; the statement texts repeat, so the
                // server's per-connection prepared cache gets hit, and
                // different clients interleave cold/warm scans freely.
                for rep in 0..REPS {
                    for step in 0..work.len() {
                        // Stagger which statement each client starts
                        // with so the same table sees concurrent scans.
                        let qi = (step + w) % work.len();
                        let (sql, param_sets) = &work[qi];
                        for (pi, ps) in param_sets.iter().enumerate() {
                            let got = client.query_params(sql, ps).unwrap();
                            assert_bit_identical(
                                &got,
                                &expected[qi][pi],
                                &format!("client {w}, rep {rep}, stmt {qi}, params {pi}"),
                            );
                        }
                    }
                }
                client.close().unwrap();
            })
        })
        .collect();
    for worker in workers {
        worker.join().unwrap();
    }

    handle.shutdown();
    let stats = serving.join().unwrap().unwrap();

    // Everybody served, nobody turned away, nothing failed.
    let queries_per_client: u64 = workload()
        .iter()
        .map(|(_, ps)| ps.len() as u64)
        .sum::<u64>()
        * REPS as u64;
    assert_eq!(stats.connections_served, CLIENTS as u64);
    assert_eq!(stats.connections_rejected, 0);
    assert_eq!(stats.queries_rejected, 0);
    assert_eq!(stats.queries_failed, 0);
    assert_eq!(stats.queries_executed, queries_per_client * CLIENTS as u64);

    // Cross-client amortization: with 16 clients hammering the same two
    // tables, the overwhelming share of field accesses must have been
    // served by the aux structures (positional map jumps, anchored
    // incremental parses, or the binary value cache) rather than by
    // re-tokenizing raw bytes — one client's cold scan warmed the rest.
    for table in ["t_csv", "t_jsonl"] {
        let m = shared.metrics(table).unwrap();
        let warm = m.fields_via_map + m.fields_via_anchor + m.fields_from_cache;
        assert!(
            m.scans >= (CLIENTS * REPS) as u64,
            "{table}: expected many scans, saw {}",
            m.scans
        );
        assert!(
            warm > 0,
            "{table}: no warm-path field accesses at all (map/anchor/cache)"
        );
        assert!(
            warm > m.fields_tokenized,
            "{table}: warm-path accesses ({warm}) should dominate raw tokenization ({}) across {} scans",
            m.fields_tokenized,
            m.scans
        );
    }
}
