//! Collection strategies (`proptest::collection::vec`).

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// An inclusive-exclusive span of collection sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec<T>` with a size drawn from `size` and elements
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: fmt::Debug,
{
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.size.lo..self.size.hi);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
