//! Optimizer helpers: conjunct manipulation, OR-factoring, selectivity and
//! cardinality estimation.
//!
//! The binder drives planning; this module supplies the reusable pieces.
//! With `use_stats` off (or no statistics collected yet) every estimate
//! falls back to PostgreSQL-style defaults — exactly the "without
//! statistics the query plans are poor" regime the paper contrasts in
//! Figure 12.

use nodb_common::Value;
use nodb_stats::{ColumnStats, TableStats, DEFAULT_EQ_SEL, DEFAULT_INEQ_SEL, DEFAULT_LIKE_SEL};

use crate::ast::{AstBinOp, AstExpr};
use crate::binder::CatalogView;
use crate::expr::{BinOp, BoundExpr};
use crate::plan::{AggStrategy, JoinKind, LogicalPlan};

/// Row-count guess for tables without statistics.
pub const DEFAULT_TABLE_ROWS: f64 = 1000.0;
/// Fallback distinct count (PostgreSQL's 200).
pub const DEFAULT_NDV: f64 = 200.0;
/// Estimated groups below this pick hash aggregation.
pub const HASH_AGG_GROUP_LIMIT: f64 = 500_000.0;

/// Split an AST expression into its top-level AND conjuncts.
pub fn split_conjuncts(e: &AstExpr, out: &mut Vec<AstExpr>) {
    match e {
        AstExpr::Binary {
            op: AstBinOp::And,
            left,
            right,
        } => {
            split_conjuncts(left, out);
            split_conjuncts(right, out);
        }
        other => out.push(other.clone()),
    }
}

/// Split an OR expression into its top-level disjuncts.
fn split_disjuncts(e: &AstExpr, out: &mut Vec<AstExpr>) {
    match e {
        AstExpr::Binary {
            op: AstBinOp::Or,
            left,
            right,
        } => {
            split_disjuncts(left, out);
            split_disjuncts(right, out);
        }
        other => out.push(other.clone()),
    }
}

fn conjoin(mut parts: Vec<AstExpr>) -> Option<AstExpr> {
    let first = parts.pop()?;
    Some(parts.into_iter().fold(first, |acc, p| AstExpr::Binary {
        op: AstBinOp::And,
        left: Box::new(p),
        right: Box::new(acc),
    }))
}

fn disjoin(mut parts: Vec<AstExpr>) -> Option<AstExpr> {
    let first = parts.pop()?;
    Some(parts.into_iter().fold(first, |acc, p| AstExpr::Binary {
        op: AstBinOp::Or,
        left: Box::new(p),
        right: Box::new(acc),
    }))
}

/// Factor conjuncts common to *every* disjunct out of an OR expression:
/// `(a AND x) OR (a AND y)` → `a AND (x OR y)`.
///
/// TPC-H Q19 relies on this: its predicate is an OR of three conjunctions
/// that all contain `p_partkey = l_partkey`; factoring exposes the
/// equi-join so the planner can use a hash join instead of a cross
/// product.
pub fn factor_or(e: &AstExpr) -> Vec<AstExpr> {
    let mut disjuncts = Vec::new();
    split_disjuncts(e, &mut disjuncts);
    if disjuncts.len() < 2 {
        return vec![e.clone()];
    }
    let mut per_disjunct: Vec<Vec<AstExpr>> = disjuncts
        .iter()
        .map(|d| {
            let mut v = Vec::new();
            split_conjuncts(d, &mut v);
            v
        })
        .collect();
    // Common = conjuncts present (structurally) in every disjunct.
    let mut common: Vec<AstExpr> = Vec::new();
    let first = per_disjunct[0].clone();
    for cand in first {
        if per_disjunct[1..].iter().all(|d| d.contains(&cand)) && !common.contains(&cand) {
            common.push(cand);
        }
    }
    if common.is_empty() {
        return vec![e.clone()];
    }
    // Remove common parts from each disjunct.
    for d in &mut per_disjunct {
        d.retain(|c| !common.contains(c));
    }
    let mut out = common;
    // Rebuild the residual OR unless some disjunct became empty (then the
    // OR is implied by the common part: a OR (a AND x) = a).
    if per_disjunct.iter().all(|d| !d.is_empty()) {
        let rebuilt: Vec<AstExpr> = per_disjunct
            .into_iter()
            .map(|d| conjoin(d).expect("non-empty"))
            .collect();
        if let Some(or) = disjoin(rebuilt) {
            out.push(or);
        }
    }
    out
}

/// Column-statistics lookup the estimator needs: maps a bound ordinal back
/// to per-attribute stats.
pub trait ColumnStatsLookup {
    /// Stats for the column behind bound ordinal `col`, if any.
    fn column_stats(&self, col: usize) -> Option<&ColumnStats>;
}

/// No statistics at all (the `use_stats = false` regime).
pub struct NoStats;

impl ColumnStatsLookup for NoStats {
    fn column_stats(&self, _col: usize) -> Option<&ColumnStats> {
        None
    }
}

/// Stats lookup for a scan: projection ordinal → table attribute stats.
pub struct ScanStatsLookup<'a> {
    /// Table stats.
    pub stats: &'a TableStats,
    /// Projection (ordinal → attribute).
    pub projection: &'a [usize],
}

impl ColumnStatsLookup for ScanStatsLookup<'_> {
    fn column_stats(&self, col: usize) -> Option<&ColumnStats> {
        let attr = *self.projection.get(col)?;
        self.stats.column(attr as u32)
    }
}

/// Estimate the selectivity of one bound predicate.
pub fn selectivity(e: &BoundExpr, lookup: &dyn ColumnStatsLookup) -> f64 {
    match e {
        BoundExpr::Lit(Value::Bool(b)) => {
            if *b {
                1.0
            } else {
                0.0
            }
        }
        BoundExpr::Binary { op, left, right } => match op {
            BinOp::And => selectivity(left, lookup) * selectivity(right, lookup),
            BinOp::Or => {
                let a = selectivity(left, lookup);
                let b = selectivity(right, lookup);
                (a + b - a * b).clamp(0.0, 1.0)
            }
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
                comparison_selectivity(*op, left, right, lookup)
            }
            _ => DEFAULT_INEQ_SEL,
        },
        BoundExpr::Unary {
            op: crate::expr::UnOp::Not,
            expr,
        } => (1.0 - selectivity(expr, lookup)).clamp(0.0, 1.0),
        BoundExpr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let s = match (expr.as_ref(), low.as_ref(), high.as_ref()) {
                (BoundExpr::Col(c), BoundExpr::Lit(lo), BoundExpr::Lit(hi)) => {
                    match lookup.column_stats(*c) {
                        Some(st) => st.selectivity_range(Some(lo), Some(hi)),
                        None => DEFAULT_INEQ_SEL * DEFAULT_INEQ_SEL,
                    }
                }
                _ => DEFAULT_INEQ_SEL * DEFAULT_INEQ_SEL,
            };
            if *negated {
                1.0 - s
            } else {
                s
            }
        }
        BoundExpr::InList {
            expr,
            list,
            negated,
        } => {
            let s = match expr.as_ref() {
                BoundExpr::Col(c) => match lookup.column_stats(*c) {
                    Some(st) => list
                        .iter()
                        .map(|v| st.selectivity_eq(v))
                        .sum::<f64>()
                        .clamp(0.0, 1.0),
                    None => (DEFAULT_EQ_SEL * list.len() as f64).clamp(0.0, 1.0),
                },
                _ => (DEFAULT_EQ_SEL * list.len() as f64).clamp(0.0, 1.0),
            };
            if *negated {
                1.0 - s
            } else {
                s
            }
        }
        BoundExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            // Only a constant pattern can consult statistics; a
            // parameterized or computed pattern estimates at the default
            // (and is refreshed with the concrete value at execute time
            // once parameters are substituted).
            let s = match (expr.as_ref(), pattern.as_ref()) {
                (BoundExpr::Col(c), BoundExpr::Lit(Value::Text(p))) => {
                    match lookup.column_stats(*c) {
                        Some(st) => st.selectivity_like(p),
                        None => DEFAULT_LIKE_SEL,
                    }
                }
                _ => DEFAULT_LIKE_SEL,
            };
            if *negated {
                1.0 - s
            } else {
                s
            }
        }
        BoundExpr::IsNull { expr, negated } => {
            let s = match expr.as_ref() {
                BoundExpr::Col(c) => lookup
                    .column_stats(*c)
                    .map_or(0.01, |st| st.null_fraction()),
                _ => 0.01,
            };
            if *negated {
                1.0 - s
            } else {
                s
            }
        }
        _ => DEFAULT_INEQ_SEL,
    }
}

fn comparison_selectivity(
    op: BinOp,
    left: &BoundExpr,
    right: &BoundExpr,
    lookup: &dyn ColumnStatsLookup,
) -> f64 {
    // Normalize to Col <op> Lit.
    let (col, lit, op) = match (left, right) {
        (BoundExpr::Col(c), BoundExpr::Lit(v)) => (*c, v, op),
        (BoundExpr::Lit(v), BoundExpr::Col(c)) => (
            *c,
            v,
            match op {
                BinOp::Lt => BinOp::Gt,
                BinOp::LtEq => BinOp::GtEq,
                BinOp::Gt => BinOp::Lt,
                BinOp::GtEq => BinOp::LtEq,
                other => other,
            },
        ),
        _ => {
            return match op {
                BinOp::Eq => DEFAULT_EQ_SEL,
                BinOp::NotEq => 1.0 - DEFAULT_EQ_SEL,
                _ => DEFAULT_INEQ_SEL,
            }
        }
    };
    let Some(st) = lookup.column_stats(col) else {
        return match op {
            BinOp::Eq => DEFAULT_EQ_SEL,
            BinOp::NotEq => 1.0 - DEFAULT_EQ_SEL,
            _ => DEFAULT_INEQ_SEL,
        };
    };
    match op {
        BinOp::Eq => st.selectivity_eq(lit),
        BinOp::NotEq => (1.0 - st.selectivity_eq(lit)).clamp(0.0, 1.0),
        BinOp::Lt | BinOp::LtEq => st.selectivity_range(None, Some(lit)),
        BinOp::Gt | BinOp::GtEq => st.selectivity_range(Some(lit), None),
        _ => DEFAULT_INEQ_SEL,
    }
}

/// Combined selectivity of pushed-down scan conjuncts.
pub fn conjunct_selectivity(filters: &[BoundExpr], lookup: &dyn ColumnStatsLookup) -> f64 {
    filters
        .iter()
        .map(|f| selectivity(f, lookup))
        .product::<f64>()
        .clamp(0.0, 1.0)
}

/// Estimated rows out of an equi-join: `|L|·|R| / max(ndv_l, ndv_r)` per
/// key pair (keys assumed independent).
pub fn join_cardinality(left_rows: f64, right_rows: f64, key_ndvs: &[(f64, f64)]) -> f64 {
    let mut card = left_rows * right_rows;
    for &(nl, nr) in key_ndvs {
        card /= nl.max(nr).max(1.0);
    }
    card.max(1.0)
}

// ----- execute-time refresh (prepared statements) ------------------------

/// Re-run the cheap, stats-driven half of optimization over an already
/// bound plan — the execute-time pass of a prepared statement.
///
/// Binding fixes the things that cannot change without re-binding (join
/// order, column layouts, pushed-down filters); what *can* go stale
/// between executions of a cached plan is everything derived from the
/// engine's on-the-fly statistics, which grow as queries touch the raw
/// file. This pass walks the plan bottom-up and, when `use_stats` is on:
///
/// * recomputes every scan's `estimated_rows` from the *current* table
///   statistics and the (by now parameter-substituted, hence concrete)
///   pushed-down filters,
/// * recomputes join estimates from refreshed inputs and current key
///   NDVs, and
/// * re-chooses the aggregation strategy (hash vs. sort) from current
///   group-key NDVs — the paper's Figure 12 mechanism, applied at every
///   execute instead of only at prepare time.
///
/// Returns the refreshed row estimate of the root. With `use_stats`
/// off the plan is left exactly as bound (the "w/o statistics" regime).
pub fn refresh_stats(plan: &mut LogicalPlan, catalog: &dyn CatalogView, use_stats: bool) -> f64 {
    if !use_stats {
        return plan_est(plan);
    }
    match plan {
        LogicalPlan::Scan {
            table,
            projection,
            filters,
            estimated_rows,
            ..
        } => {
            let stats = catalog.stats_of(table);
            let base = stats
                .as_ref()
                .and_then(|s| s.row_count())
                .map_or(DEFAULT_TABLE_ROWS, |r| r as f64);
            let sel = match stats.as_ref() {
                Some(st) => conjunct_selectivity(
                    filters,
                    &ScanStatsLookup {
                        stats: st,
                        projection,
                    },
                ),
                None => conjunct_selectivity(filters, &NoStats),
            };
            *estimated_rows = (base * sel).max(1.0);
            *estimated_rows
        }
        LogicalPlan::Filter { input, .. } => refresh_stats(input, catalog, use_stats),
        LogicalPlan::Join {
            left,
            right,
            on,
            kind,
            estimated_rows,
            ..
        } => {
            let l = refresh_stats(left, catalog, use_stats);
            let r = refresh_stats(right, catalog, use_stats);
            *estimated_rows = match kind {
                JoinKind::Inner => {
                    let ndvs: Vec<(f64, f64)> = on
                        .iter()
                        .map(|&(lc, rc)| {
                            (
                                column_ndv(left, lc, catalog).unwrap_or(DEFAULT_NDV),
                                column_ndv(right, rc, catalog).unwrap_or(DEFAULT_NDV),
                            )
                        })
                        .collect();
                    join_cardinality(l, r, &ndvs)
                }
                JoinKind::Semi | JoinKind::Anti => (l * 0.5).max(1.0),
            };
            *estimated_rows
        }
        LogicalPlan::Aggregate {
            input,
            group,
            strategy,
            ..
        } => {
            let child = refresh_stats(input, catalog, use_stats);
            if !group.is_empty() {
                let mut groups = 1.0f64;
                for &g in group.iter() {
                    groups *= column_ndv(input, g, catalog)
                        .unwrap_or(DEFAULT_NDV)
                        .max(1.0);
                }
                let groups = groups.min(child.max(1.0));
                *strategy = if groups <= HASH_AGG_GROUP_LIMIT {
                    AggStrategy::Hash
                } else {
                    AggStrategy::Sort
                };
                groups
            } else {
                1.0
            }
        }
        LogicalPlan::Project { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Distinct { input } => refresh_stats(input, catalog, use_stats),
        LogicalPlan::Limit { input, n } => {
            let child = refresh_stats(input, catalog, use_stats);
            child.min(*n as f64)
        }
    }
}

/// The row estimate already recorded on a plan (nearest annotated node).
fn plan_est(plan: &LogicalPlan) -> f64 {
    match plan {
        LogicalPlan::Scan { estimated_rows, .. } | LogicalPlan::Join { estimated_rows, .. } => {
            *estimated_rows
        }
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. }
        | LogicalPlan::Distinct { input } => plan_est(input),
    }
}

/// Trace output ordinal `col` of `plan` down to a base-table column and
/// return its *current* distinct-count, when the column reaches a scan
/// leaf unchanged (through filters, join concatenation, identity
/// projections and group keys).
fn column_ndv(plan: &LogicalPlan, col: usize, catalog: &dyn CatalogView) -> Option<f64> {
    match plan {
        LogicalPlan::Scan {
            table, projection, ..
        } => {
            let attr = *projection.get(col)? as u32;
            catalog
                .stats_of(table)
                .and_then(|s| s.column(attr).map(|cs| cs.distinct()))
        }
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. }
        | LogicalPlan::Distinct { input } => column_ndv(input, col, catalog),
        LogicalPlan::Join {
            left, right, kind, ..
        } => {
            let n_left = left.schema().len();
            if col < n_left {
                column_ndv(left, col, catalog)
            } else {
                match kind {
                    JoinKind::Inner => column_ndv(right, col - n_left, catalog),
                    // Semi/anti joins output only left columns.
                    JoinKind::Semi | JoinKind::Anti => None,
                }
            }
        }
        LogicalPlan::Project { input, exprs, .. } => match exprs.get(col)? {
            BoundExpr::Col(i) => column_ndv(input, *i, catalog),
            _ => None,
        },
        LogicalPlan::Aggregate { input, group, .. } => {
            let &g = group.get(col)?;
            column_ndv(input, g, catalog)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col_eq_col(a: &str, b: &str) -> AstExpr {
        AstExpr::Binary {
            op: AstBinOp::Eq,
            left: Box::new(AstExpr::Column {
                table: None,
                name: a.into(),
            }),
            right: Box::new(AstExpr::Column {
                table: None,
                name: b.into(),
            }),
        }
    }

    fn col_eq_lit(a: &str, v: i64) -> AstExpr {
        AstExpr::Binary {
            op: AstBinOp::Eq,
            left: Box::new(AstExpr::Column {
                table: None,
                name: a.into(),
            }),
            right: Box::new(AstExpr::Literal(Value::Int64(v))),
        }
    }

    fn and(a: AstExpr, b: AstExpr) -> AstExpr {
        AstExpr::Binary {
            op: AstBinOp::And,
            left: Box::new(a),
            right: Box::new(b),
        }
    }

    fn or(a: AstExpr, b: AstExpr) -> AstExpr {
        AstExpr::Binary {
            op: AstBinOp::Or,
            left: Box::new(a),
            right: Box::new(b),
        }
    }

    #[test]
    fn factor_or_extracts_common_join_key() {
        // (j AND a) OR (j AND b) → j, (a OR b)   — the Q19 shape.
        let j = col_eq_col("p_partkey", "l_partkey");
        let e = or(
            and(j.clone(), col_eq_lit("x", 1)),
            and(j.clone(), col_eq_lit("x", 2)),
        );
        let parts = factor_or(&e);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], j);
        // Residual is an OR.
        assert!(matches!(
            &parts[1],
            AstExpr::Binary {
                op: AstBinOp::Or,
                ..
            }
        ));
    }

    #[test]
    fn factor_or_without_common_part_is_identity() {
        let e = or(col_eq_lit("a", 1), col_eq_lit("b", 2));
        let parts = factor_or(&e);
        assert_eq!(parts, vec![e]);
    }

    #[test]
    fn factor_or_absorbs_implied_disjunct() {
        // a OR (a AND x) → a.
        let a = col_eq_lit("a", 1);
        let e = or(a.clone(), and(a.clone(), col_eq_lit("x", 2)));
        let parts = factor_or(&e);
        assert_eq!(parts, vec![a]);
    }

    #[test]
    fn split_conjuncts_flattens_nested_ands() {
        let e = and(
            col_eq_lit("a", 1),
            and(col_eq_lit("b", 2), col_eq_lit("c", 3)),
        );
        let mut out = Vec::new();
        split_conjuncts(&e, &mut out);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn default_selectivities_without_stats() {
        let eq = BoundExpr::Binary {
            op: BinOp::Eq,
            left: Box::new(BoundExpr::Col(0)),
            right: Box::new(BoundExpr::Lit(Value::Int64(1))),
        };
        assert_eq!(selectivity(&eq, &NoStats), DEFAULT_EQ_SEL);
        let lt = BoundExpr::Binary {
            op: BinOp::Lt,
            left: Box::new(BoundExpr::Col(0)),
            right: Box::new(BoundExpr::Lit(Value::Int64(1))),
        };
        assert_eq!(selectivity(&lt, &NoStats), DEFAULT_INEQ_SEL);
    }

    #[test]
    fn join_cardinality_divides_by_max_ndv() {
        let c = join_cardinality(1000.0, 500.0, &[(100.0, 50.0)]);
        assert_eq!(c, 5000.0);
        // Never below 1.
        assert_eq!(join_cardinality(1.0, 1.0, &[(1e9, 1e9)]), 1.0);
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;
    use nodb_common::DataType;
    use nodb_stats::{StatsBuilder, TableStats};

    fn lineitem_like_stats() -> TableStats {
        let mut t = TableStats::new();
        t.set_row_count(10_000);
        // attr 0: uniform ints 0..100
        let mut b = StatsBuilder::new(DataType::Int32);
        for i in 0..10_000 {
            b.offer(&Value::Int32(i % 100));
        }
        t.set_column(0, b.finalize(Some(10_000.0)));
        // attr 1: skewed text (80% "A")
        let mut b = StatsBuilder::new(DataType::Text);
        for i in 0..5_000 {
            let s = if i % 5 < 4 { "A" } else { "B" };
            b.offer(&Value::Text(s.into()));
        }
        t.set_column(1, b.finalize(Some(10_000.0)));
        t
    }

    fn col_lt(c: usize, v: i64) -> BoundExpr {
        BoundExpr::Binary {
            op: BinOp::Lt,
            left: Box::new(BoundExpr::Col(c)),
            right: Box::new(BoundExpr::Lit(Value::Int64(v))),
        }
    }

    #[test]
    fn scan_lookup_maps_projection_to_attrs() {
        let stats = lineitem_like_stats();
        // Projection [1, 0]: bound ordinal 0 -> attr 1 (text), 1 -> attr 0.
        let lookup = ScanStatsLookup {
            stats: &stats,
            projection: &[1, 0],
        };
        let sel_text_eq = selectivity(
            &BoundExpr::Binary {
                op: BinOp::Eq,
                left: Box::new(BoundExpr::Col(0)),
                right: Box::new(BoundExpr::Lit(Value::Text("A".into()))),
            },
            &lookup,
        );
        assert!(
            (0.6..=1.0).contains(&sel_text_eq),
            "skewed eq {sel_text_eq}"
        );
        let sel_int_half = selectivity(&col_lt(1, 50), &lookup);
        assert!(
            (0.35..=0.65).contains(&sel_int_half),
            "range {sel_int_half}"
        );
    }

    #[test]
    fn conjunction_multiplies_and_or_combines() {
        let stats = lineitem_like_stats();
        let lookup = ScanStatsLookup {
            stats: &stats,
            projection: &[0],
        };
        let half = col_lt(0, 50);
        let and = BoundExpr::and(half.clone(), col_lt(0, 25));
        let s_and = selectivity(&and, &lookup);
        // AND of (≈0.5, ≈0.25) under independence ≈ 0.125.
        assert!((0.05..=0.25).contains(&s_and), "{s_and}");
        let or = BoundExpr::Binary {
            op: BinOp::Or,
            left: Box::new(half.clone()),
            right: Box::new(col_lt(0, 25)),
        };
        let s_or = selectivity(&or, &lookup);
        assert!(s_or > s_and, "OR ({s_or}) must exceed AND ({s_and})");
        let not = BoundExpr::Unary {
            op: crate::expr::UnOp::Not,
            expr: Box::new(half),
        };
        let s_not = selectivity(&not, &lookup);
        assert!((0.35..=0.65).contains(&s_not), "{s_not}");
    }

    #[test]
    fn between_and_inlist_use_stats() {
        let stats = lineitem_like_stats();
        let lookup = ScanStatsLookup {
            stats: &stats,
            projection: &[0],
        };
        let between = BoundExpr::Between {
            expr: Box::new(BoundExpr::Col(0)),
            low: Box::new(BoundExpr::Lit(Value::Int64(25))),
            high: Box::new(BoundExpr::Lit(Value::Int64(75))),
            negated: false,
        };
        let s = selectivity(&between, &lookup);
        assert!((0.35..=0.65).contains(&s), "between {s}");
        let inlist = BoundExpr::InList {
            expr: Box::new(BoundExpr::Col(0)),
            list: vec![Value::Int64(3), Value::Int64(7), Value::Int64(11)],
            negated: false,
        };
        let s = selectivity(&inlist, &lookup);
        assert!((0.005..=0.1).contains(&s), "inlist {s}");
    }
}
