//! Positional-map chunks: one block of tuples × one set of attributes.
//!
//! A chunk is the unit of storage, eviction and spilling. Offsets are
//! relative to the tuple's line start ("holding relative positions reduces
//! storage requirements per position", §4.2) and are narrowed to 16 bits
//! when every line in the block is short enough.

use std::io::{Read, Write};

use nodb_common::{NoDbError, Result};

/// Relative attribute offsets, row-major (`rows × attrs.len()`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OffsetStore {
    /// 16-bit offsets (lines shorter than 64 KiB).
    U16(Vec<u16>),
    /// 32-bit offsets.
    U32(Vec<u32>),
}

impl OffsetStore {
    /// Number of stored offsets.
    pub fn len(&self) -> usize {
        match self {
            OffsetStore::U16(v) => v.len(),
            OffsetStore::U32(v) => v.len(),
        }
    }

    /// True when no offsets are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Offset at flat index `i`.
    pub fn get(&self, i: usize) -> u32 {
        match self {
            // CAST: u16 → u32 widens; no truncation possible.
            OffsetStore::U16(v) => v[i] as u32,
            OffsetStore::U32(v) => v[i],
        }
    }

    /// Bytes of storage used.
    pub fn bytes(&self) -> usize {
        match self {
            OffsetStore::U16(v) => v.len() * 2,
            OffsetStore::U32(v) => v.len() * 4,
        }
    }
}

/// A materialized chunk of the positional map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// Block ordinal: covers rows `[block * block_rows, …)`.
    pub block: u64,
    /// Number of tuples covered (≤ block_rows; the last block is short).
    pub rows: u32,
    /// Attribute ordinals covered, in storage order. Not necessarily the
    /// file order — "attributes do not necessarily appear in the map in
    /// the same order as in the raw file" (§4.2).
    pub attrs: Vec<u32>,
    /// `rows × attrs.len()` line-relative offsets, row-major.
    pub offsets: OffsetStore,
}

impl Chunk {
    /// Offset of `attrs[attr_pos]` for local row `r`.
    pub fn offset(&self, r: u32, attr_pos: usize) -> u32 {
        self.offsets.get(r as usize * self.attrs.len() + attr_pos)
    }

    /// Column of offsets for one attribute (by position in `attrs`).
    pub fn attr_column(&self, attr_pos: usize) -> Vec<u32> {
        let n = self.attrs.len();
        (0..self.rows as usize)
            .map(|r| self.offsets.get(r * n + attr_pos))
            .collect()
    }

    /// In-memory footprint (offsets + directory overhead).
    pub fn bytes(&self) -> usize {
        self.offsets.bytes() + self.attrs.len() * 4 + 48
    }

    /// Number of pointers (positions) held.
    pub fn pointer_count(&self) -> u64 {
        self.offsets.len() as u64
    }

    /// Serialize for spilling. Format: `rows:u32, nattrs:u32, width:u8,
    /// attrs…, offsets…`, all little-endian.
    pub fn serialize(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.block.to_le_bytes());
        out.extend_from_slice(&self.rows.to_le_bytes());
        // CAST: attrs are u32 file ordinals, so their count fits u32.
        out.extend_from_slice(&(self.attrs.len() as u32).to_le_bytes());
        match &self.offsets {
            OffsetStore::U16(_) => out.push(2),
            OffsetStore::U32(_) => out.push(4),
        }
        for a in &self.attrs {
            out.extend_from_slice(&a.to_le_bytes());
        }
        match &self.offsets {
            OffsetStore::U16(v) => {
                for o in v {
                    out.extend_from_slice(&o.to_le_bytes());
                }
            }
            OffsetStore::U32(v) => {
                for o in v {
                    out.extend_from_slice(&o.to_le_bytes());
                }
            }
        }
    }

    /// Inverse of [`Chunk::serialize`].
    pub fn deserialize(mut data: &[u8]) -> Result<Chunk> {
        let mut u64buf = [0u8; 8];
        let mut u32buf = [0u8; 4];
        let mut u16buf = [0u8; 2];
        let mut u8buf = [0u8; 1];
        data.read_exact(&mut u64buf)?;
        let block = u64::from_le_bytes(u64buf);
        data.read_exact(&mut u32buf)?;
        let rows = u32::from_le_bytes(u32buf);
        data.read_exact(&mut u32buf)?;
        let nattrs = u32::from_le_bytes(u32buf) as usize;
        data.read_exact(&mut u8buf)?;
        let width = u8buf[0];
        let mut attrs = Vec::with_capacity(nattrs);
        for _ in 0..nattrs {
            data.read_exact(&mut u32buf)?;
            attrs.push(u32::from_le_bytes(u32buf));
        }
        let count = rows as usize * nattrs;
        let offsets = match width {
            2 => {
                let mut v = Vec::with_capacity(count);
                for _ in 0..count {
                    data.read_exact(&mut u16buf)?;
                    v.push(u16::from_le_bytes(u16buf));
                }
                OffsetStore::U16(v)
            }
            4 => {
                let mut v = Vec::with_capacity(count);
                for _ in 0..count {
                    data.read_exact(&mut u32buf)?;
                    v.push(u32::from_le_bytes(u32buf));
                }
                OffsetStore::U32(v)
            }
            w => return Err(NoDbError::internal(format!("bad spilled chunk width {w}"))),
        };
        Ok(Chunk {
            block,
            rows,
            attrs,
            offsets,
        })
    }

    /// Write the serialized chunk to a file.
    pub fn spill_to(&self, path: &std::path::Path) -> Result<()> {
        let mut buf = Vec::with_capacity(self.bytes() + 32);
        self.serialize(&mut buf);
        let mut f = std::fs::File::create(path)?;
        f.write_all(&buf)?;
        Ok(())
    }

    /// Read a spilled chunk back.
    pub fn load_from(path: &std::path::Path) -> Result<Chunk> {
        let data = std::fs::read(path)?;
        Chunk::deserialize(&data)
    }
}

/// Accumulates positions while a scan tokenizes one block, producing a
/// [`Chunk`]. The scan pushes one row at a time with offsets for the same
/// attribute set (the attributes it tokenized for the current query).
#[derive(Debug)]
pub struct BlockCollector {
    block: u64,
    attrs: Vec<u32>,
    /// Row-major u32 staging; narrowed at build time.
    staged: Vec<u32>,
    rows: u32,
    max_offset: u32,
}

impl BlockCollector {
    /// Start collecting for `block`, covering `attrs` (file ordinals).
    pub fn new(block: u64, attrs: Vec<u32>) -> BlockCollector {
        BlockCollector {
            block,
            attrs,
            staged: Vec::new(),
            rows: 0,
            max_offset: 0,
        }
    }

    /// The attribute set being collected.
    pub fn attrs(&self) -> &[u32] {
        &self.attrs
    }

    /// Rows collected so far.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Push one row's offsets (must match `attrs` length and order).
    pub fn push_row(&mut self, offsets: &[u32]) {
        debug_assert_eq!(offsets.len(), self.attrs.len());
        for &o in offsets {
            self.max_offset = self.max_offset.max(o);
        }
        self.staged.extend_from_slice(offsets);
        self.rows += 1;
    }

    /// Finish, narrowing to 16-bit storage when possible.
    pub fn build(self) -> Chunk {
        // CAST: u16::MAX widens to u32 for the comparison; the per-offset
        // narrowing below only runs when every offset ≤ u16::MAX.
        let offsets = if self.max_offset <= u16::MAX as u32 {
            OffsetStore::U16(self.staged.iter().map(|&o| o as u16).collect())
        } else {
            OffsetStore::U32(self.staged)
        };
        Chunk {
            block: self.block,
            rows: self.rows,
            attrs: self.attrs,
            offsets,
        }
    }
}

/// Accumulates row-major positions for a run of consecutive rows whose
/// *global* row ids are unknown while chunk workers scan byte ranges of
/// the file in parallel. The merge phase, which knows where the run
/// starts, cuts the staged rows into block-aligned [`Chunk`]s with
/// [`SegmentCollector::into_chunks`].
#[derive(Debug)]
pub struct SegmentCollector {
    attrs: Vec<u32>,
    /// Row-major u32 staging, `rows × attrs.len()`.
    staged: Vec<u32>,
    rows: u32,
}

impl SegmentCollector {
    /// Start collecting positions for `attrs` (file ordinals).
    pub fn new(attrs: Vec<u32>) -> SegmentCollector {
        SegmentCollector {
            attrs,
            staged: Vec::new(),
            rows: 0,
        }
    }

    /// Rows staged so far.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Push one row's offsets (must match the attr set's length/order).
    pub fn push_row(&mut self, offsets: &[u32]) {
        debug_assert_eq!(offsets.len(), self.attrs.len());
        self.staged.extend_from_slice(offsets);
        self.rows += 1;
    }

    /// Append another worker's segment whose rows immediately follow this
    /// one's. Both must cover the same attribute set.
    pub fn append(&mut self, other: SegmentCollector) {
        debug_assert_eq!(self.attrs, other.attrs);
        self.staged.extend_from_slice(&other.staged);
        self.rows += other.rows;
    }

    /// Cut the segment into block-aligned chunks, given the global row id
    /// of its first row. A leading partial block (when `first_row` is not
    /// on a block boundary) is skipped — chunk storage is anchored at
    /// block starts — while the trailing chunk may be short.
    pub fn into_chunks(self, first_row: u64, block_rows: usize) -> Vec<Chunk> {
        let n = self.attrs.len();
        let br = block_rows.max(1) as u64;
        if n == 0 || self.rows == 0 {
            return Vec::new();
        }
        let misalign = (first_row % br) as usize;
        let mut r = if misalign == 0 {
            0
        } else {
            block_rows - misalign
        };
        let mut out = Vec::new();
        while r < self.rows as usize {
            let row_id = first_row + r as u64;
            let block = row_id / br;
            let take = (((block + 1) * br - row_id) as usize).min(self.rows as usize - r);
            let mut c = BlockCollector::new(block, self.attrs.clone());
            for i in r..r + take {
                c.push_row(&self.staged[i * n..(i + 1) * n]);
            }
            out.push(c.build());
            r += take;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodb_common::TempDir;
    use proptest::prelude::*;

    fn sample_chunk() -> Chunk {
        let mut c = BlockCollector::new(3, vec![4, 7]);
        c.push_row(&[10, 40]);
        c.push_row(&[12, 44]);
        c.push_row(&[9, 38]);
        c.build()
    }

    #[test]
    fn collector_builds_row_major_chunk() {
        let c = sample_chunk();
        assert_eq!(c.rows, 3);
        assert_eq!(c.attrs, vec![4, 7]);
        assert_eq!(c.offset(0, 0), 10);
        assert_eq!(c.offset(1, 1), 44);
        assert_eq!(c.attr_column(1), vec![40, 44, 38]);
        assert!(matches!(c.offsets, OffsetStore::U16(_)));
    }

    #[test]
    fn wide_offsets_use_u32() {
        let mut c = BlockCollector::new(0, vec![0]);
        c.push_row(&[70_000]);
        let c = c.build();
        assert!(matches!(c.offsets, OffsetStore::U32(_)));
        assert_eq!(c.offset(0, 0), 70_000);
    }

    #[test]
    fn serialize_roundtrip() {
        let c = sample_chunk();
        let mut buf = Vec::new();
        c.serialize(&mut buf);
        assert_eq!(Chunk::deserialize(&buf).unwrap(), c);
    }

    #[test]
    fn spill_and_reload() {
        let td = TempDir::new("nodb-pm").unwrap();
        let p = td.file("c0.pm");
        let c = sample_chunk();
        c.spill_to(&p).unwrap();
        assert_eq!(Chunk::load_from(&p).unwrap(), c);
    }

    #[test]
    fn deserialize_rejects_truncated_input() {
        let c = sample_chunk();
        let mut buf = Vec::new();
        c.serialize(&mut buf);
        buf.truncate(buf.len() - 1);
        assert!(Chunk::deserialize(&buf).is_err());
    }

    #[test]
    fn segment_collector_cuts_block_aligned_chunks() {
        let mut s = SegmentCollector::new(vec![0, 3]);
        for r in 0..10u32 {
            s.push_row(&[r, 100 + r]);
        }
        // Block size 4, starting at global row 0: blocks 0 (4 rows),
        // 1 (4 rows), 2 (2 rows, short tail).
        let chunks = s.into_chunks(0, 4);
        assert_eq!(chunks.len(), 3);
        assert_eq!(
            chunks.iter().map(|c| (c.block, c.rows)).collect::<Vec<_>>(),
            vec![(0, 4), (1, 4), (2, 2)]
        );
        assert_eq!(chunks[1].offset(0, 0), 4, "row 4's attr-0 offset");
        assert_eq!(chunks[2].offset(1, 1), 109, "row 9's attr-3 offset");
    }

    #[test]
    fn segment_collector_skips_leading_partial_block() {
        let mut s = SegmentCollector::new(vec![1]);
        for r in 0..6u32 {
            s.push_row(&[r]);
        }
        // Global rows 2..8 with block size 4: rows 2..4 are a partial
        // prefix of block 0 (skipped); rows 4..8 fill block 1.
        let chunks = s.into_chunks(2, 4);
        assert_eq!(chunks.len(), 1);
        assert_eq!((chunks[0].block, chunks[0].rows), (1, 4));
        assert_eq!(chunks[0].attr_column(0), vec![2, 3, 4, 5]);
    }

    #[test]
    fn segment_collector_append_concatenates_workers() {
        let mut a = SegmentCollector::new(vec![0]);
        a.push_row(&[10]);
        a.push_row(&[11]);
        let mut b = SegmentCollector::new(vec![0]);
        b.push_row(&[12]);
        a.append(b);
        assert_eq!(a.rows(), 3);
        let chunks = a.into_chunks(0, 8);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].attr_column(0), vec![10, 11, 12]);
    }

    proptest! {
        #[test]
        fn roundtrip_random_chunks(
            attrs in proptest::collection::vec(0u32..200, 1..6),
            rows in proptest::collection::vec(
                proptest::collection::vec(0u32..100_000, 6), 0..20),
        ) {
            let nattrs = attrs.len();
            let mut coll = BlockCollector::new(7, attrs);
            for r in &rows {
                coll.push_row(&r[..nattrs]);
            }
            let c = coll.build();
            let mut buf = Vec::new();
            c.serialize(&mut buf);
            prop_assert_eq!(Chunk::deserialize(&buf).unwrap(), c);
        }
    }
}
