//! Facade crate for the NoDB (PostgresRaw) reproduction.
//!
//! This crate re-exports the public surface of the engine crates so the
//! repository-level integration tests (`tests/`) and examples
//! (`examples/`) have a single package to hang off. Library users can
//! depend on the individual `nodb-*` crates directly, or on this facade:
//!
//! ```
//! use nodb::core::{AccessMode, NoDb, NoDbConfig};
//! use nodb::common::Schema;
//!
//! let db = NoDb::new(NoDbConfig::postgres_raw()).unwrap();
//! let _ = (db, AccessMode::InSitu, Schema::parse("id int").unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use nodb_common as common;
pub use nodb_core as core;
pub use nodb_csv as csv;
pub use nodb_fits as fits;
pub use nodb_json as json;
pub use nodb_server as server;
pub use nodb_tpch as tpch;
