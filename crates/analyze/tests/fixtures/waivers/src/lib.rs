//! Waiver-machinery fixture: one cast violation that the committed
//! waivers.toml suppresses, while the same file also carries a stale
//! waiver (matching nothing) that must itself become a finding.

pub fn narrow(x: usize) -> u16 {
    x as u16
}
