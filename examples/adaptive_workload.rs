//! Watch PostgresRaw adapt: a miniature of the paper's Figures 5 and 6,
//! printing per-query times and auxiliary-structure growth for each
//! engine variant.
//!
//! ```text
//! cargo run --release -p nodb-core --example adaptive_workload
//! ```

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nodb_common::{ByteSize, TempDir};
use nodb_core::{AccessMode, NoDb, NoDbConfig};
use nodb_csv::{CsvOptions, MicroGen};

const ROWS: usize = 60_000;
const COLS: usize = 50;
const QUERIES: usize = 12;

fn run_variant(label: &str, cfg: NoDbConfig, path: &std::path::Path, schema: &nodb_common::Schema) {
    let mut db = NoDb::new(cfg).unwrap();
    db.register_csv(
        "t",
        path,
        schema.clone(),
        CsvOptions::default(),
        AccessMode::InSitu,
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    print!("{label:>10} |");
    for _ in 0..QUERIES {
        // Random 5-attribute projection, like §5.1.2.
        let mut cols: Vec<usize> = (0..5).map(|_| rng.gen_range(0..COLS)).collect();
        cols.sort_unstable();
        cols.dedup();
        let select = cols
            .iter()
            .map(|c| format!("c{c}"))
            .collect::<Vec<_>>()
            .join(", ");
        let t = Instant::now();
        db.query(&format!("select {select} from t")).unwrap();
        print!(" {:5.0}", t.elapsed().as_secs_f64() * 1e3);
    }
    let info = db.aux_info("t").ok();
    match info {
        Some(i) => println!(
            "  | map {:>7} ptrs, cache {:>5} KB",
            i.posmap_pointers,
            i.cache_bytes / 1000
        ),
        None => println!("  |"),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = TempDir::new("nodb-adaptive")?;
    let path = dir.file("wide.csv");
    print!("generating {ROWS}×{COLS} integer file ... ");
    let spec = MicroGen::default().rows(ROWS).cols(COLS).seed(1);
    spec.write_to(&path)?;
    let schema = spec.schema();
    println!("done ({} MB)", std::fs::metadata(&path)?.len() / 1_000_000);

    println!(
        "\nper-query time (ms) for {QUERIES} random 5-column projections \
         (same query sequence for every variant):\n"
    );
    run_variant("baseline", NoDbConfig::baseline(), &path, &schema);
    run_variant("pm", NoDbConfig::pm_only(), &path, &schema);
    run_variant("cache", NoDbConfig::cache_only(), &path, &schema);
    run_variant("pm+cache", NoDbConfig::postgres_raw(), &path, &schema);

    // Constrained cache, shifting workload: Figure 6 in miniature.
    println!("\nworkload shift under a 4 MB cache budget (columns 0-9, then 25-34):");
    let mut cfg = NoDbConfig::postgres_raw();
    cfg.cache_budget = Some(ByteSize::mb(4));
    let mut db = NoDb::new(cfg)?;
    db.register_csv(
        "t",
        &path,
        schema,
        CsvOptions::default(),
        AccessMode::InSitu,
    )?;
    let mut rng = StdRng::seed_from_u64(3);
    for (epoch, range) in [(1, 0..10), (2, 25..35), (3, 25..35)] {
        let t = Instant::now();
        // Ten 5-column projections confined to the epoch's region, as in
        // the paper's epochs.
        for _ in 0..10 {
            let mut cols: Vec<usize> = (0..5).map(|_| rng.gen_range(range.clone())).collect();
            cols.sort_unstable();
            cols.dedup();
            let select = cols
                .iter()
                .map(|c| format!("c{c}"))
                .collect::<Vec<_>>()
                .join(", ");
            db.query(&format!("select {select} from t")).unwrap();
        }
        let info = db.aux_info("t")?;
        println!(
            "  epoch {epoch}: {:6.0} ms, cache {:3.0}% full",
            t.elapsed().as_secs_f64() * 1e3,
            info.cache_utilization * 100.0
        );
    }
    println!("\n(epoch 2 pays to parse the new region; epoch 3 is cache-resident again)");
    Ok(())
}
