//! Abstract syntax tree produced by the parser.

use nodb_common::Value;

/// Units for SQL `INTERVAL` literals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntervalUnit {
    /// Days.
    Day,
    /// Months.
    Month,
    /// Years.
    Year,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFuncAst {
    /// `COUNT(*)` / `COUNT(expr)`.
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `AVG(expr)`.
    Avg,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
}

/// Binary operators (comparison, arithmetic, boolean).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AstBinOp {
    /// `OR`
    Or,
    /// `AND`
    And,
    /// `=`
    Eq,
    /// `<>` / `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// Column reference `col` or `tbl.col`.
    Column {
        /// Optional table qualifier.
        table: Option<String>,
        /// Column name (lowercased).
        name: String,
    },
    /// Literal value (`1`, `2.5`, `'text'`, `date '1994-01-01'`).
    Literal(Value),
    /// Parameter placeholder (`?` or `$N`), by 0-based index. The value
    /// is supplied at execute time; the binder assigns the type from
    /// surrounding context.
    Param(usize),
    /// `INTERVAL 'n' unit`.
    Interval {
        /// Count.
        n: i64,
        /// Unit.
        unit: IntervalUnit,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: AstBinOp,
        /// Left operand.
        left: Box<AstExpr>,
        /// Right operand.
        right: Box<AstExpr>,
    },
    /// `NOT expr`.
    Not(Box<AstExpr>),
    /// `-expr`.
    Neg(Box<AstExpr>),
    /// `expr [NOT] LIKE pattern`.
    Like {
        /// Tested expression.
        expr: Box<AstExpr>,
        /// Pattern (usually a string literal).
        pattern: Box<AstExpr>,
        /// NOT LIKE.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<AstExpr>,
        /// Lower bound (inclusive).
        low: Box<AstExpr>,
        /// Upper bound (inclusive).
        high: Box<AstExpr>,
        /// NOT BETWEEN.
        negated: bool,
    },
    /// `expr [NOT] IN (v, …)`.
    InList {
        /// Tested expression.
        expr: Box<AstExpr>,
        /// Candidate values.
        list: Vec<AstExpr>,
        /// NOT IN.
        negated: bool,
    },
    /// `CASE [WHEN cond THEN res]… [ELSE e] END`.
    Case {
        /// WHEN/THEN pairs.
        branches: Vec<(AstExpr, AstExpr)>,
        /// ELSE branch.
        else_expr: Option<Box<AstExpr>>,
    },
    /// Aggregate call.
    Agg {
        /// Function.
        func: AggFuncAst,
        /// Argument; `None` = `COUNT(*)`.
        arg: Option<Box<AstExpr>>,
    },
    /// `[NOT] EXISTS (subquery)`.
    Exists {
        /// The subquery.
        subquery: Box<SelectStmt>,
        /// NOT EXISTS.
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<AstExpr>,
        /// IS NOT NULL.
        negated: bool,
    },
}

/// One SELECT-list item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `expr [AS alias]`.
    Expr {
        /// The expression.
        expr: AstExpr,
        /// Output name.
        alias: Option<String>,
    },
}

/// A table in FROM.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name (lowercased).
    pub name: String,
    /// Optional alias.
    pub alias: Option<String>,
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    /// The sort expression (column, alias or projected expression).
    pub expr: AstExpr,
    /// Descending?
    pub desc: bool,
}

/// A parsed SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// SELECT DISTINCT?
    pub distinct: bool,
    /// SELECT list.
    pub projections: Vec<SelectItem>,
    /// FROM tables (comma-joined; `JOIN … ON` is desugared to WHERE
    /// conjuncts by the parser).
    pub from: Vec<TableRef>,
    /// WHERE predicate.
    pub where_clause: Option<AstExpr>,
    /// GROUP BY expressions.
    pub group_by: Vec<AstExpr>,
    /// HAVING predicate (over aggregate output).
    pub having: Option<AstExpr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderByItem>,
    /// LIMIT.
    pub limit: Option<u64>,
}

impl SelectStmt {
    /// Collect the 0-based parameter indices used anywhere in this
    /// statement (projections, WHERE, GROUP BY, HAVING, ORDER BY and
    /// EXISTS subqueries).
    pub fn collect_params(&self, out: &mut std::collections::BTreeSet<usize>) {
        for item in &self.projections {
            if let SelectItem::Expr { expr, .. } = item {
                expr.collect_params(out);
            }
        }
        if let Some(w) = &self.where_clause {
            w.collect_params(out);
        }
        for g in &self.group_by {
            g.collect_params(out);
        }
        if let Some(h) = &self.having {
            h.collect_params(out);
        }
        for ob in &self.order_by {
            ob.expr.collect_params(out);
        }
    }

    /// Number of parameter slots this statement requires (`max index +
    /// 1`), with an error when explicit `$N` numbering leaves gaps —
    /// every slot in `1..=N` must be referenced so positional values
    /// line up.
    pub fn param_count(&self) -> nodb_common::Result<usize> {
        let mut used = std::collections::BTreeSet::new();
        self.collect_params(&mut used);
        let count = used.iter().next_back().map_or(0, |&m| m + 1);
        // Gap detection must stay O(|used|): `$4000000000` in one short
        // statement makes `count` huge, and scanning (or allocating)
        // `0..count` anywhere before this check would be a DoS vector.
        if used.len() != count {
            let first_gap = (0..).find(|i| !used.contains(i)).expect("gap exists");
            return Err(nodb_common::NoDbError::sql(format!(
                "parameter ${} is never referenced (numbering must be contiguous from $1)",
                first_gap + 1
            )));
        }
        Ok(count)
    }
}

impl AstExpr {
    /// Build `left AND right`, treating `None` as TRUE.
    pub fn and_opt(left: Option<AstExpr>, right: AstExpr) -> AstExpr {
        match left {
            None => right,
            Some(l) => AstExpr::Binary {
                op: AstBinOp::And,
                left: Box::new(l),
                right: Box::new(right),
            },
        }
    }

    /// Collect the 0-based parameter indices used in this expression
    /// (including inside EXISTS subqueries).
    pub fn collect_params(&self, out: &mut std::collections::BTreeSet<usize>) {
        match self {
            AstExpr::Param(i) => {
                out.insert(*i);
            }
            AstExpr::Column { .. } | AstExpr::Literal(_) | AstExpr::Interval { .. } => {}
            AstExpr::Binary { left, right, .. } => {
                left.collect_params(out);
                right.collect_params(out);
            }
            AstExpr::Not(e) | AstExpr::Neg(e) => e.collect_params(out),
            AstExpr::Like { expr, pattern, .. } => {
                expr.collect_params(out);
                pattern.collect_params(out);
            }
            AstExpr::Between {
                expr, low, high, ..
            } => {
                expr.collect_params(out);
                low.collect_params(out);
                high.collect_params(out);
            }
            AstExpr::InList { expr, list, .. } => {
                expr.collect_params(out);
                for i in list {
                    i.collect_params(out);
                }
            }
            AstExpr::Case {
                branches,
                else_expr,
            } => {
                for (c, r) in branches {
                    c.collect_params(out);
                    r.collect_params(out);
                }
                if let Some(e) = else_expr {
                    e.collect_params(out);
                }
            }
            AstExpr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    a.collect_params(out);
                }
            }
            AstExpr::Exists { subquery, .. } => subquery.collect_params(out),
            AstExpr::IsNull { expr, .. } => expr.collect_params(out),
        }
    }

    /// Does this expression (sub)tree contain an aggregate call?
    pub fn contains_agg(&self) -> bool {
        match self {
            AstExpr::Agg { .. } => true,
            AstExpr::Column { .. }
            | AstExpr::Literal(_)
            | AstExpr::Param(_)
            | AstExpr::Interval { .. } => false,
            AstExpr::Binary { left, right, .. } => left.contains_agg() || right.contains_agg(),
            AstExpr::Not(e) | AstExpr::Neg(e) => e.contains_agg(),
            AstExpr::Like { expr, pattern, .. } => expr.contains_agg() || pattern.contains_agg(),
            AstExpr::Between {
                expr, low, high, ..
            } => expr.contains_agg() || low.contains_agg() || high.contains_agg(),
            AstExpr::InList { expr, list, .. } => {
                expr.contains_agg() || list.iter().any(AstExpr::contains_agg)
            }
            AstExpr::Case {
                branches,
                else_expr,
            } => {
                branches
                    .iter()
                    .any(|(c, r)| c.contains_agg() || r.contains_agg())
                    || else_expr.as_ref().is_some_and(|e| e.contains_agg())
            }
            AstExpr::Exists { .. } => false,
            AstExpr::IsNull { expr, .. } => expr.contains_agg(),
        }
    }
}
