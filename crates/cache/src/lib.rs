//! The **adaptive binary cache** (NoDB paper, §4.3).
//!
//! Complementary to the positional map: instead of making raw-file access
//! fast, the cache *avoids* it by holding previously converted binary
//! values. Faithful properties:
//!
//! * **Populated on the fly, never forcing extra parsing** — only values a
//!   query converted anyway are inserted. Because *selective parsing*
//!   converts SELECT-list attributes only for qualifying tuples, cached
//!   columns can be *partial*; a presence bitmap records exactly which
//!   rows are valid ([`CachedColumn`]).
//! * **Same chunked shape as the positional map** — cache entries cover
//!   one block of tuples × one attribute, "following the format of the
//!   positional map such that it is easy to integrate it in the …
//!   query flow".
//! * **LRU with conversion-cost priority** — "the PostgresRaw cache always
//!   gives priority to attributes more costly to convert" (ASCII→numeric
//!   conversion dominates; strings are cheap to re-materialize). Eviction
//!   minimizes `last_touch + conversion_cost × cost_weight`.
//! * **Byte budget** — "the size of the cache is a parameter", driving the
//!   Figure 6 cache-utilization experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod column;
pub mod staging;
pub mod store;

pub use column::{CachedColumn, ColumnBuilder, ColumnData};
pub use staging::ChunkStage;
pub use store::{CacheConfig, CacheStats, RawCache};
