//! Atomic-ordering audit: every `Ordering::Relaxed` outside the
//! designated counter modules needs an `// ORDERING:` justification —
//! either within the 3 lines above the site or anywhere earlier in the
//! enclosing function (counter modules batch many sites per function;
//! one justification covers the function).
//!
//! `Relaxed` is the only audited ordering: stronger orderings are
//! conservative by construction, while a misplaced `Relaxed` on a flag
//! or handshake is a real reordering bug.

use std::collections::BTreeSet;

use crate::lexer::{in_spans, test_spans};
use crate::report::Finding;
use crate::scan_util::{enclosing_fn, fn_spans, line_of, line_text, tokens};
use crate::SourceFile;

/// Run the atomic-ordering arm over one non-designated file.
pub fn run(sf: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mask = &sf.lexed.mask;
    let ordering_lines: BTreeSet<usize> = sf
        .lexed
        .comment_lines_with("ORDERING:")
        .into_iter()
        .collect();
    let tests = test_spans(mask);
    let spans = fn_spans(&tokens(mask));
    let mut from = 0usize;
    while let Some(pos) = mask[from..].find("Ordering::Relaxed") {
        let at = from + pos;
        from = at + "Ordering::Relaxed".len();
        let line = line_of(mask, at);
        if in_spans(&tests, line) {
            continue;
        }
        let nearby = (line.saturating_sub(3)..=line).any(|l| ordering_lines.contains(&l));
        let in_fn = enclosing_fn(&spans, line)
            .is_some_and(|(start, _)| ordering_lines.iter().any(|&l| l >= start && l <= line));
        if !nearby && !in_fn {
            findings.push(Finding {
                lint: "atomic-ordering",
                file: sf.rel.clone(),
                line,
                message: "`Ordering::Relaxed` outside a designated counter module \
                          without an `// ORDERING:` justification"
                    .into(),
                waiver_key: Some(line_text(&sf.src, line)),
            });
        }
    }
    findings
}
