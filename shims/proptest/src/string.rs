//! String generation from a small regex subset.
//!
//! Supported patterns are sequences of atoms, where an atom is either a
//! character class `[...]` (literal characters and `a-z` style ranges)
//! or a literal character, optionally followed by a repetition count
//! `{n}` or `{n,m}`. This covers every pattern the workspace's tests
//! use (e.g. `"[a-z]{0,6}"`, `"[ -~]{0,120}"`, `"[a-z_][a-z0-9_]{0,8}"`).

use rand::rngs::StdRng;
use rand::Rng;

#[derive(Debug)]
struct Atom {
    // Candidate characters, expanded from the class.
    chars: Vec<char>,
    min: usize,
    max: usize, // inclusive
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> Vec<char> {
    let mut out = Vec::new();
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("proptest shim: unterminated class in {pattern:?}"));
        if c == ']' {
            break;
        }
        if chars.peek() == Some(&'-') {
            // Lookahead: `x-y` is a range unless `-` is last before `]`.
            let mut probe = chars.clone();
            probe.next(); // the '-'
            match probe.peek() {
                Some(&hi) if hi != ']' => {
                    chars.next();
                    chars.next();
                    assert!(
                        c <= hi,
                        "proptest shim: inverted range {c}-{hi} in {pattern:?}"
                    );
                    out.extend((c as u32..=hi as u32).filter_map(char::from_u32));
                    continue;
                }
                _ => {}
            }
        }
        out.push(c);
    }
    assert!(
        !out.is_empty(),
        "proptest shim: empty character class in {pattern:?}"
    );
    out
}

fn parse_repeat(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> (usize, usize) {
    if chars.peek() != Some(&'{') {
        return (1, 1);
    }
    chars.next();
    let mut spec = String::new();
    for c in chars.by_ref() {
        if c == '}' {
            let (min, max) = match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("repetition lower bound"),
                    hi.trim().parse().expect("repetition upper bound"),
                ),
                None => {
                    let n = spec.trim().parse().expect("repetition count");
                    (n, n)
                }
            };
            assert!(
                min <= max,
                "proptest shim: inverted repetition in {pattern:?}"
            );
            return (min, max);
        }
        spec.push(c);
    }
    panic!("proptest shim: unterminated repetition in {pattern:?}");
}

fn parse(pattern: &str) -> Vec<Atom> {
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let candidates = match c {
            '[' => parse_class(&mut chars, pattern),
            '\\' => vec![chars
                .next()
                .unwrap_or_else(|| panic!("proptest shim: trailing escape in {pattern:?}"))],
            other => vec![other],
        };
        let (min, max) = parse_repeat(&mut chars, pattern);
        atoms.push(Atom {
            chars: candidates,
            min,
            max,
        });
    }
    atoms
}

/// Generates one string matching `pattern`.
pub fn generate_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let mut out = String::new();
    for atom in parse(pattern) {
        let n = rng.gen_range(atom.min..=atom.max);
        for _ in 0..n {
            out.push(atom.chars[rng.gen_range(0..atom.chars.len())]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn classes_ranges_and_repeats() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            let s = generate_from_pattern("[a-z_][a-z0-9_]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            let first = s.chars().next().unwrap();
            assert!(first == '_' || first.is_ascii_lowercase());
            let p = generate_from_pattern("[ -~]{0,20}", &mut rng);
            assert!(p.len() <= 20);
            assert!(p.bytes().all(|b| (0x20..=0x7e).contains(&b)));
        }
    }

    #[test]
    fn fixed_counts() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(generate_from_pattern("[a]{3}", &mut rng), "aaa");
        assert_eq!(generate_from_pattern("ab", &mut rng), "ab");
    }
}
