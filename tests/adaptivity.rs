//! Adaptivity guarantees: the behavioural claims behind Figures 5 and 6,
//! asserted on work counters rather than wall-clock time (so they hold on
//! any machine).

use std::path::PathBuf;

use nodb_common::{Schema, TempDir};
use nodb_core::{AccessMode, NoDb, NoDbConfig};
use nodb_csv::{CsvOptions, MicroGen};

fn micro(rows: usize, cols: usize) -> (TempDir, PathBuf, Schema) {
    let td = TempDir::new("nodb-adapt").unwrap();
    let p = td.file("t.csv");
    let spec = MicroGen::default().rows(rows).cols(cols).seed(5);
    spec.write_to(&p).unwrap();
    let schema = spec.schema();
    (td, p, schema)
}

fn engine(cfg: NoDbConfig, p: &std::path::Path, s: &Schema) -> NoDb {
    let mut db = NoDb::new(cfg).unwrap();
    db.register_csv("t", p, s.clone(), CsvOptions::default(), AccessMode::InSitu)
        .unwrap();
    db
}

/// Figure 5's headline: with PM+C the second query is drastically cheaper.
/// We assert the mechanism: zero tokenization, zero conversion.
#[test]
fn pm_c_second_query_costs_nothing_extra() {
    let (_td, p, s) = micro(3000, 30);
    let db = engine(NoDbConfig::postgres_raw(), &p, &s);
    db.query("select c4, c11, c17, c22, c28 from t").unwrap();
    let m1 = db.metrics("t").unwrap();
    db.query("select c4, c11, c17, c22, c28 from t").unwrap();
    let m2 = db.metrics("t").unwrap();
    assert_eq!(
        m2.fields_tokenized, m1.fields_tokenized,
        "no re-tokenization"
    );
    assert_eq!(m2.fields_parsed, m1.fields_parsed, "no re-conversion");
    assert_eq!(m2.bytes_tokenized, m1.bytes_tokenized, "no raw-file bytes");
    assert!(m2.fields_from_cache >= 5 * 3000);
}

/// The PM variant re-parses values (no cache) but navigates by position.
#[test]
fn pm_variant_replaces_tokenization_with_map_jumps() {
    let (_td, p, s) = micro(3000, 30);
    let db = engine(NoDbConfig::pm_only(), &p, &s);
    db.query("select c4, c11 from t").unwrap();
    let m1 = db.metrics("t").unwrap();
    db.query("select c4, c11 from t").unwrap();
    let m2 = db.metrics("t").unwrap();
    assert_eq!(
        m2.fields_tokenized, m1.fields_tokenized,
        "map jumps replace tokenization"
    );
    assert_eq!(m2.fields_via_map - m1.fields_via_map, 2 * 3000);
    assert_eq!(
        m2.fields_parsed - m1.fields_parsed,
        2 * 3000,
        "values re-converted each query without a cache"
    );
}

/// The C variant is bimodal (Figure 5's fluctuation): cached attributes
/// are free, uncached ones cost a full tokenization pass because only
/// line starts are known.
#[test]
fn cache_only_variant_pays_full_tokenization_on_miss() {
    let (_td, p, s) = micro(2000, 30);
    let db = engine(NoDbConfig::cache_only(), &p, &s);
    db.query("select c4 from t").unwrap();
    let m1 = db.metrics("t").unwrap();
    // Hit: same attribute.
    db.query("select c4 from t").unwrap();
    let m2 = db.metrics("t").unwrap();
    assert_eq!(m2.fields_tokenized, m1.fields_tokenized);
    // Miss: different attribute — must tokenize lines from the start.
    db.query("select c27 from t").unwrap();
    let m3 = db.metrics("t").unwrap();
    assert!(
        m3.fields_tokenized > m2.fields_tokenized + 2000 * 20,
        "cache miss must re-tokenize deeply: {} -> {}",
        m2.fields_tokenized,
        m3.fields_tokenized
    );
}

/// Figure 6's mechanism: under a cache budget, a shifting workload evicts
/// old columns and adapts to the new region.
#[test]
fn workload_shift_adapts_cache_contents() {
    let (_td, p, s) = micro(2000, 60);
    let mut cfg = NoDbConfig::postgres_raw();
    // Budget fits roughly 10 columns of this table.
    cfg.cache_budget = Some(nodb_common::ByteSize::kb(100));
    let db = engine(cfg, &p, &s);

    // Epoch 1: columns 0-9.
    for c in 0..10 {
        db.query(&format!("select c{c} from t")).unwrap();
    }
    let util_epoch1 = db.aux_info("t").unwrap().cache_utilization;
    assert!(
        util_epoch1 > 0.5,
        "cache fills during epoch 1: {util_epoch1}"
    );
    let m_before = db.metrics("t").unwrap();
    // Re-query epoch-1 columns: mostly cache hits.
    for c in 0..10 {
        db.query(&format!("select c{c} from t")).unwrap();
    }
    let m_epoch1 = db.metrics("t").unwrap();
    let epoch1_parse = m_epoch1.fields_parsed - m_before.fields_parsed;

    // Epoch 2: columns 30-39 — all misses, must parse.
    for c in 30..40 {
        db.query(&format!("select c{c} from t")).unwrap();
    }
    let m_epoch2 = db.metrics("t").unwrap();
    let epoch2_parse = m_epoch2.fields_parsed - m_epoch1.fields_parsed;
    assert!(
        epoch2_parse > epoch1_parse * 3,
        "new region must cost real parsing: epoch1={epoch1_parse}, epoch2={epoch2_parse}"
    );

    // Epoch 2 again: now cached (old columns were evicted to make room).
    let m_before3 = db.metrics("t").unwrap();
    for c in 30..40 {
        db.query(&format!("select c{c} from t")).unwrap();
    }
    let m_epoch3 = db.metrics("t").unwrap();
    let epoch3_parse = m_epoch3.fields_parsed - m_before3.fields_parsed;
    assert!(
        epoch3_parse < epoch2_parse / 3,
        "adapted region must be mostly cached: epoch2={epoch2_parse}, epoch3={epoch3_parse}"
    );
}

/// Statistics are collected incrementally, only for touched attributes.
#[test]
fn statistics_grow_with_the_workload() {
    let (_td, p, s) = micro(1500, 12);
    let db = engine(NoDbConfig::postgres_raw(), &p, &s);
    assert_eq!(db.aux_info("t").unwrap().stats_attrs, 0);
    db.query("select c0 from t").unwrap();
    let after_one = db.aux_info("t").unwrap().stats_attrs;
    assert_eq!(after_one, 1);
    db.query("select c1, c2 from t").unwrap();
    assert_eq!(db.aux_info("t").unwrap().stats_attrs, 3);
    // Filtered queries only gather stats for WHERE attributes (values of
    // SELECT attributes are seen only for qualifying rows — a biased
    // sample the engine refuses to use).
    db.query("select c5 from t where c6 < 100000000").unwrap();
    assert_eq!(db.aux_info("t").unwrap().stats_attrs, 4);
}
