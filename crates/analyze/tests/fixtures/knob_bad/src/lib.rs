//! Seeded violation for the `knob` arm: an env var with the engine's
//! `NODB_` prefix that is not in the (injected) knob registry.

pub fn rogue() -> Option<String> {
    std::env::var("NODB_NOT_REGISTERED").ok()
}

pub fn registered() -> Option<String> {
    std::env::var("NODB_FIX").ok()
}
