//! The eight TPC-H queries of the paper's evaluation (Figure 10), with
//! the spec's validation parameter values.

/// Q1 — pricing summary report (the Figure 12 statistics query).
pub const Q1: &str = "\
select l_returnflag, l_linestatus, sum(l_quantity) as sum_qty, \
       sum(l_extendedprice) as sum_base_price, \
       sum(l_extendedprice * (1 - l_discount)) as sum_disc_price, \
       sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge, \
       avg(l_quantity) as avg_qty, avg(l_extendedprice) as avg_price, \
       avg(l_discount) as avg_disc, count(*) as count_order \
from lineitem \
where l_shipdate <= date '1998-12-01' - interval '90' day \
group by l_returnflag, l_linestatus \
order by l_returnflag, l_linestatus";

/// Q3 — shipping priority.
pub const Q3: &str = "\
select l_orderkey, sum(l_extendedprice * (1 - l_discount)) as revenue, \
       o_orderdate, o_shippriority \
from customer, orders, lineitem \
where c_mktsegment = 'BUILDING' and c_custkey = o_custkey and l_orderkey = o_orderkey \
  and o_orderdate < date '1995-03-15' and l_shipdate > date '1995-03-15' \
group by l_orderkey, o_orderdate, o_shippriority \
order by revenue desc, o_orderdate \
limit 10";

/// Q4 — order priority checking (correlated EXISTS → semi-join).
pub const Q4: &str = "\
select o_orderpriority, count(*) as order_count \
from orders \
where o_orderdate >= date '1993-07-01' \
  and o_orderdate < date '1993-07-01' + interval '3' month \
  and exists (select * from lineitem \
              where l_orderkey = o_orderkey and l_commitdate < l_receiptdate) \
group by o_orderpriority \
order by o_orderpriority";

/// Q6 — revenue-change forecast.
pub const Q6: &str = "\
select sum(l_extendedprice * l_discount) as revenue \
from lineitem \
where l_shipdate >= date '1994-01-01' \
  and l_shipdate < date '1994-01-01' + interval '1' year \
  and l_discount between 0.05 and 0.07 and l_quantity < 24";

/// Q10 — returned-item reporting (4-way join).
pub const Q10: &str = "\
select c_custkey, c_name, sum(l_extendedprice * (1 - l_discount)) as revenue, \
       c_acctbal, n_name, c_address, c_phone, c_comment \
from customer, orders, lineitem, nation \
where c_custkey = o_custkey and l_orderkey = o_orderkey \
  and o_orderdate >= date '1993-10-01' \
  and o_orderdate < date '1993-10-01' + interval '3' month \
  and l_returnflag = 'R' and c_nationkey = n_nationkey \
group by c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment \
order by revenue desc \
limit 20";

/// Q12 — shipping modes and order priority.
pub const Q12: &str = "\
select l_shipmode, \
       sum(case when o_orderpriority = '1-URGENT' or o_orderpriority = '2-HIGH' \
                then 1 else 0 end) as high_line_count, \
       sum(case when o_orderpriority <> '1-URGENT' and o_orderpriority <> '2-HIGH' \
                then 1 else 0 end) as low_line_count \
from orders, lineitem \
where o_orderkey = l_orderkey and l_shipmode in ('MAIL', 'SHIP') \
  and l_commitdate < l_receiptdate and l_shipdate < l_commitdate \
  and l_receiptdate >= date '1994-01-01' \
  and l_receiptdate < date '1994-01-01' + interval '1' year \
group by l_shipmode \
order by l_shipmode";

/// Q14 — promotion effect (aggregate arithmetic over a join).
pub const Q14: &str = "\
select 100.00 * sum(case when p_type like 'PROMO%' \
                         then l_extendedprice * (1 - l_discount) else 0 end) \
       / sum(l_extendedprice * (1 - l_discount)) as promo_revenue \
from lineitem, part \
where l_partkey = p_partkey and l_shipdate >= date '1995-09-01' \
  and l_shipdate < date '1995-09-01' + interval '1' month";

/// Q19 — discounted revenue (OR-of-conjunctions with a common join key;
/// exercises the planner's OR factoring).
pub const Q19: &str = "\
select sum(l_extendedprice * (1 - l_discount)) as revenue \
from lineitem, part \
where (p_partkey = l_partkey and p_brand = 'Brand#12' \
       and p_container in ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG') \
       and l_quantity >= 1 and l_quantity <= 11 \
       and p_size between 1 and 5 \
       and l_shipmode in ('AIR', 'AIR REG') \
       and l_shipinstruct = 'DELIVER IN PERSON') \
   or (p_partkey = l_partkey and p_brand = 'Brand#23' \
       and p_container in ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK') \
       and l_quantity >= 10 and l_quantity <= 20 \
       and p_size between 1 and 10 \
       and l_shipmode in ('AIR', 'AIR REG') \
       and l_shipinstruct = 'DELIVER IN PERSON') \
   or (p_partkey = l_partkey and p_brand = 'Brand#34' \
       and p_container in ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG') \
       and l_quantity >= 20 and l_quantity <= 30 \
       and p_size between 1 and 15 \
       and l_shipmode in ('AIR', 'AIR REG') \
       and l_shipinstruct = 'DELIVER IN PERSON')";

/// All evaluation queries with their ids, in the order of Figure 10.
pub fn all() -> Vec<(&'static str, &'static str)> {
    vec![
        ("Q1", Q1),
        ("Q3", Q3),
        ("Q4", Q4),
        ("Q6", Q6),
        ("Q10", Q10),
        ("Q12", Q12),
        ("Q14", Q14),
        ("Q19", Q19),
    ]
}

/// Look up a query by id (`"Q1"`, `"q1"`, `"1"`, …).
pub fn get(id: &str) -> Option<&'static str> {
    let norm = id.trim().trim_start_matches(['q', 'Q']);
    all()
        .into_iter()
        .find(|(name, _)| name.trim_start_matches('Q') == norm)
        .map(|(_, sql)| sql)
}

/// Tables referenced by each query (for registering just what's needed).
pub fn tables_for(id: &str) -> Vec<&'static str> {
    match id.trim().trim_start_matches(['q', 'Q']) {
        "1" | "6" => vec!["lineitem"],
        "3" => vec!["customer", "orders", "lineitem"],
        "4" => vec!["orders", "lineitem"],
        "10" => vec!["customer", "orders", "lineitem", "nation"],
        "12" => vec!["orders", "lineitem"],
        "14" | "19" => vec!["lineitem", "part"],
        _ => vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_id() {
        assert_eq!(get("Q1"), Some(Q1));
        assert_eq!(get("q14"), Some(Q14));
        assert_eq!(get("19"), Some(Q19));
        assert_eq!(get("Q2"), None);
    }

    #[test]
    fn all_lists_eight_queries() {
        assert_eq!(all().len(), 8);
        for (id, _) in all() {
            assert!(!tables_for(id).is_empty(), "{id} needs table list");
        }
    }
}
