//! FITS file writing: empty primary HDU + one BINTABLE extension.

use std::fs::File;
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::Path;

use nodb_common::{NoDbError, Result, Row, Value};

use crate::types::FitsType;
use crate::{BLOCK, CARD};

/// Streaming BINTABLE writer. The row count is patched into the header on
/// [`FitsTableWriter::finish`], since FITS headers precede data.
pub struct FitsTableWriter {
    out: BufWriter<File>,
    cols: Vec<(String, FitsType)>,
    row_bytes: usize,
    rows: u64,
    /// File offset of the NAXIS2 card (for the final patch).
    naxis2_card_at: u64,
    data_start: u64,
}

fn card(key: &str, value: &str, comment: &str) -> [u8; CARD] {
    let mut c = [b' '; CARD];
    let text = if key == "END" || key == "COMMENT" {
        format!("{key:<8}{value}")
    } else {
        format!("{key:<8}= {value:>20} / {comment}")
    };
    let bytes = text.as_bytes();
    let n = bytes.len().min(CARD);
    c[..n].copy_from_slice(&bytes[..n]);
    c
}

fn pad_to_block(out: &mut BufWriter<File>, written: usize, fill: u8) -> Result<()> {
    let rem = written % BLOCK;
    if rem != 0 {
        let pad = vec![fill; BLOCK - rem];
        out.write_all(&pad)?;
    }
    Ok(())
}

impl FitsTableWriter {
    /// Create a file with the given named, typed columns.
    pub fn create(path: &Path, cols: Vec<(String, FitsType)>) -> Result<FitsTableWriter> {
        if cols.is_empty() {
            return Err(NoDbError::catalog("FITS table needs at least one column"));
        }
        let mut out = BufWriter::new(File::create(path)?);
        // Primary HDU: no data.
        let mut written = 0;
        for c in [
            card("SIMPLE", "T", "conforms to FITS"),
            card("BITPIX", "8", ""),
            card("NAXIS", "0", "no primary data"),
            card("EXTEND", "T", "extensions follow"),
            card("END", "", ""),
        ] {
            out.write_all(&c)?;
            written += CARD;
        }
        pad_to_block(&mut out, written, b' ')?;

        // BINTABLE extension header.
        let row_bytes: usize = cols.iter().map(|(_, t)| t.width()).sum();
        let ext_start = (written.div_ceil(BLOCK) * BLOCK) as u64;
        let mut ext_written = 0usize;
        let mut naxis2_card_at = 0u64;
        let mut cards: Vec<[u8; CARD]> = vec![
            card("XTENSION", "'BINTABLE'", "binary table"),
            card("BITPIX", "8", ""),
            card("NAXIS", "2", ""),
            card("NAXIS1", &row_bytes.to_string(), "bytes per row"),
            card("NAXIS2", "0", "rows (patched on finish)"),
            card("PCOUNT", "0", ""),
            card("GCOUNT", "1", ""),
            card("TFIELDS", &cols.len().to_string(), ""),
        ];
        let naxis2_index = 4;
        for (i, (name, t)) in cols.iter().enumerate() {
            cards.push(card(&format!("TTYPE{}", i + 1), &format!("'{name}'"), ""));
            cards.push(card(
                &format!("TFORM{}", i + 1),
                &format!("'{}'", t.tform()),
                "",
            ));
        }
        cards.push(card("END", "", ""));
        for (i, c) in cards.iter().enumerate() {
            if i == naxis2_index {
                naxis2_card_at = ext_start + ext_written as u64;
            }
            out.write_all(c)?;
            ext_written += CARD;
        }
        pad_to_block(&mut out, ext_written, b' ')?;
        let data_start = ext_start + (ext_written.div_ceil(BLOCK) * BLOCK) as u64;

        Ok(FitsTableWriter {
            out,
            cols,
            row_bytes,
            rows: 0,
            naxis2_card_at,
            data_start,
        })
    }

    /// Append one row (values must match the column types; `Int64` is
    /// accepted for `J` columns when it fits).
    pub fn write_row(&mut self, row: &Row) -> Result<()> {
        if row.len() != self.cols.len() {
            return Err(NoDbError::execution(format!(
                "row has {} values, table has {} columns",
                row.len(),
                self.cols.len()
            )));
        }
        for (v, (name, t)) in row.values().iter().zip(&self.cols) {
            match (t, v) {
                (FitsType::J, _) => {
                    let x = v
                        .as_i64()
                        .and_then(|x| i32::try_from(x).ok())
                        .ok_or_else(|| {
                            NoDbError::execution(format!("column `{name}`: need i32, got {v}"))
                        })?;
                    self.out.write_all(&x.to_be_bytes())?;
                }
                (FitsType::K, _) => {
                    let x = v.as_i64().ok_or_else(|| {
                        NoDbError::execution(format!("column `{name}`: need i64, got {v}"))
                    })?;
                    self.out.write_all(&x.to_be_bytes())?;
                }
                (FitsType::E, _) => {
                    let x = v.as_f64().ok_or_else(|| {
                        NoDbError::execution(format!("column `{name}`: need float, got {v}"))
                    })? as f32;
                    self.out.write_all(&x.to_be_bytes())?;
                }
                (FitsType::D, _) => {
                    let x = v.as_f64().ok_or_else(|| {
                        NoDbError::execution(format!("column `{name}`: need float, got {v}"))
                    })?;
                    self.out.write_all(&x.to_be_bytes())?;
                }
                (FitsType::A(n), Value::Text(s)) => {
                    let mut buf = vec![b' '; *n];
                    let bytes = s.as_bytes();
                    let len = bytes.len().min(*n);
                    buf[..len].copy_from_slice(&bytes[..len]);
                    self.out.write_all(&buf)?;
                }
                (FitsType::A(_), other) => {
                    return Err(NoDbError::execution(format!(
                        "column `{name}`: need text, got {other}"
                    )))
                }
            }
        }
        self.rows += 1;
        Ok(())
    }

    /// Pad the final data block and patch the row count into the header.
    pub fn finish(mut self) -> Result<u64> {
        let data_bytes = self.rows as usize * self.row_bytes;
        pad_to_block(&mut self.out, data_bytes, 0)?;
        self.out.flush()?;
        let mut f = self
            .out
            .into_inner()
            .map_err(|e| NoDbError::Io(std::io::Error::other(format!("flush failed: {e}"))))?;
        f.seek(SeekFrom::Start(self.naxis2_card_at))?;
        f.write_all(&card("NAXIS2", &self.rows.to_string(), "rows"))?;
        f.flush()?;
        Ok(self.rows)
    }

    /// Offset where table data begins (useful for tests).
    pub fn data_start(&self) -> u64 {
        self.data_start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodb_common::TempDir;

    #[test]
    fn file_is_block_aligned_with_patched_rows() {
        let td = TempDir::new("fits").unwrap();
        let p = td.file("t.fits");
        let mut w = FitsTableWriter::create(
            &p,
            vec![
                ("id".into(), FitsType::J),
                ("flux".into(), FitsType::D),
                ("tag".into(), FitsType::A(4)),
            ],
        )
        .unwrap();
        for i in 0..100 {
            w.write_row(&Row(vec![
                Value::Int32(i),
                Value::Float64(i as f64 / 3.0),
                Value::Text(format!("t{i:02}")),
            ]))
            .unwrap();
        }
        assert_eq!(w.finish().unwrap(), 100);
        let bytes = std::fs::read(&p).unwrap();
        assert_eq!(bytes.len() % BLOCK, 0);
        let text = String::from_utf8_lossy(&bytes[..BLOCK * 2]);
        assert!(text.contains("'BINTABLE'"), "{text}");
        // The patched NAXIS2 card must carry the final row count.
        let naxis2_line = text
            .match_indices("NAXIS2")
            .map(|(i, _)| &text[i..i + 80])
            .next()
            .expect("NAXIS2 card present");
        assert!(naxis2_line.contains("100"), "{naxis2_line}");
    }

    #[test]
    fn rejects_wrong_arity_and_types() {
        let td = TempDir::new("fits").unwrap();
        let p = td.file("t.fits");
        let mut w = FitsTableWriter::create(&p, vec![("id".into(), FitsType::J)]).unwrap();
        assert!(w.write_row(&Row(vec![])).is_err());
        assert!(w.write_row(&Row(vec![Value::Text("no".into())])).is_err());
    }
}
