//! Lock-order check: the split `RawTableRuntime` has a declared
//! acquisition DAG (`file_len_seen` → `posmap` → `cache` → `stats`); a
//! lock may only be acquired while holding locks that come *earlier* in
//! that order, and never while a guard on the same lock is live (an
//! `RwLock` read→write upgrade self-deadlocks under a waiting writer).
//!
//! The analysis is lexical but scope-aware: within each function it
//! tracks guard bindings (`let pm = runtime.posmap.write();`) by brace
//! depth, releases them when their block closes or they are explicitly
//! `drop`ped, and treats an acquisition immediately followed by a method
//! call (`runtime.posmap.read().block_rows()`) as a statement-scoped
//! temporary. Every acquisition is checked against the set of guards
//! believed held at that point.

use crate::report::Finding;
use crate::scan_util::{line_text, tokens, Tok};
use crate::SourceFile;

#[derive(Debug)]
struct Held {
    rank: usize,
    name: String,
    depth: usize,
    line: usize,
}

/// Run the lock-order arm over one file with the given DAG (lock names,
/// outermost first).
pub fn run(sf: &SourceFile, dag: &[String]) -> Vec<Finding> {
    let toks = tokens(&sf.lexed.mask);
    let mut findings = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text == "fn" {
            // Find the body opening brace (or `;` for a signature).
            let mut j = i + 1;
            while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
                j += 1;
            }
            if j < toks.len() && toks[j].text == "{" {
                let end = analyze_body(sf, &toks, j, dag, &mut findings);
                i = end;
                continue;
            }
        }
        i += 1;
    }
    findings
}

/// Analyze one function body starting at the `{` at `open`; returns the
/// index just past the matching `}`.
fn analyze_body(
    sf: &SourceFile,
    toks: &[Tok<'_>],
    open: usize,
    dag: &[String],
    findings: &mut Vec<Finding>,
) -> usize {
    let mut depth = 1usize;
    let mut held: Vec<Held> = Vec::new();
    // Statement state: set when a `let` is seen, cleared at the `;`
    // that ends it (at the `let`'s own brace depth).
    let mut let_name: Option<String> = None;
    let mut let_depth = 0usize;
    let mut i = open + 1;
    while i < toks.len() && depth > 0 {
        let t = &toks[i];
        match t.text {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                held.retain(|h| h.depth <= depth);
            }
            ";" => {
                if let_name.is_some() && depth == let_depth {
                    let_name = None;
                }
            }
            "let" => {
                // Capture the bound name (skipping `mut`); tuple or
                // struct patterns get a placeholder that `drop()` can
                // never name — conservative, guards stay "held".
                let mut k = i + 1;
                if k < toks.len() && toks[k].text == "mut" {
                    k += 1;
                }
                let name = toks
                    .get(k)
                    .filter(|t| {
                        t.text
                            .chars()
                            .next()
                            .is_some_and(|c| c.is_alphabetic() || c == '_')
                    })
                    .map(|t| t.text.to_string())
                    .unwrap_or_else(|| "<pattern>".to_string());
                let_name = Some(name);
                let_depth = depth;
            }
            "drop" => {
                // `drop(name)` releases the named guard.
                if toks.get(i + 1).map(|t| t.text) == Some("(") {
                    if let Some(name) = toks.get(i + 2).map(|t| t.text) {
                        if toks.get(i + 3).map(|t| t.text) == Some(")") {
                            held.retain(|h| h.name != name);
                        }
                    }
                }
            }
            _ => {
                if let Some(rank) = dag.iter().position(|l| l == t.text) {
                    // Acquisition pattern: <lock> . read|write|lock ( )
                    let is_acq = toks.get(i + 1).map(|t| t.text) == Some(".")
                        && matches!(
                            toks.get(i + 2).map(|t| t.text),
                            Some("read") | Some("write") | Some("lock")
                        )
                        && toks.get(i + 3).map(|t| t.text) == Some("(")
                        && toks.get(i + 4).map(|t| t.text) == Some(")");
                    if is_acq {
                        for h in &held {
                            if h.rank > rank {
                                findings.push(finding(
                                    sf,
                                    t.line,
                                    format!(
                                        "acquires `{}` while holding `{}` (taken line {}) — \
                                         violates the lock DAG {}",
                                        t.text,
                                        dag[h.rank],
                                        h.line,
                                        dag.join(" → ")
                                    ),
                                ));
                            } else if h.rank == rank {
                                findings.push(finding(
                                    sf,
                                    t.line,
                                    format!(
                                        "re-acquires `{}` while a guard on it (taken line {}) \
                                         is still live — self-deadlock risk",
                                        t.text, h.line
                                    ),
                                ));
                            }
                        }
                        // Guard bindings persist; call-chained guards
                        // (`…read().rows()`) are statement temporaries.
                        let chained = toks.get(i + 5).map(|t| t.text) == Some(".");
                        if !chained {
                            if let Some(name) = &let_name {
                                held.push(Held {
                                    rank,
                                    name: name.clone(),
                                    depth: let_depth,
                                    line: t.line,
                                });
                            }
                        }
                        i += 5;
                        continue;
                    }
                }
            }
        }
        i += 1;
    }
    i
}

fn finding(sf: &SourceFile, line: usize, message: String) -> Finding {
    Finding {
        lint: "lock-order",
        file: sf.rel.clone(),
        line,
        message,
        waiver_key: Some(line_text(&sf.src, line)),
    }
}
