//! Civil-date arithmetic without external dependencies.
//!
//! Dates are stored as a signed day count since the Unix epoch
//! (1970-01-01 = day 0), which keeps comparisons and interval arithmetic
//! trivial. Conversions use Howard Hinnant's `days_from_civil` algorithm.

use std::fmt;

use crate::error::{NoDbError, Result};

/// A calendar date, stored as days since 1970-01-01.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date(pub i32);

impl Date {
    /// Construct from a civil (proleptic Gregorian) year/month/day.
    ///
    /// Returns an error when the month or day is out of range.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Result<Date> {
        if !(1..=12).contains(&month) {
            return Err(NoDbError::parse(format!("month {month} out of range")));
        }
        if day < 1 || day > days_in_month(year, month) {
            return Err(NoDbError::parse(format!(
                "day {day} out of range for {year:04}-{month:02}"
            )));
        }
        Ok(Date(days_from_civil(year, month, day)))
    }

    /// Parse `YYYY-MM-DD`.
    pub fn parse(s: &str) -> Result<Date> {
        Self::parse_bytes(s.as_bytes())
    }

    /// Parse `YYYY-MM-DD` from raw bytes (the CSV fast path).
    pub fn parse_bytes(b: &[u8]) -> Result<Date> {
        if b.len() != 10 || b[4] != b'-' || b[7] != b'-' {
            return Err(NoDbError::parse(format!(
                "bad date literal `{}`",
                String::from_utf8_lossy(b)
            )));
        }
        let year = ascii_u32(&b[0..4])? as i32;
        let month = ascii_u32(&b[5..7])?;
        let day = ascii_u32(&b[8..10])?;
        Date::from_ymd(year, month, day)
    }

    /// Decompose into (year, month, day).
    pub fn to_ymd(self) -> (i32, u32, u32) {
        civil_from_days(self.0)
    }

    /// Add a number of days (negative to subtract).
    pub fn add_days(self, days: i32) -> Date {
        Date(self.0 + days)
    }

    /// Add calendar months, clamping the day to the target month's length
    /// (e.g. Jan 31 + 1 month = Feb 28/29), matching SQL interval semantics.
    pub fn add_months(self, months: i32) -> Date {
        let (y, m, d) = self.to_ymd();
        let total = y as i64 * 12 + (m as i64 - 1) + months as i64;
        let ny = total.div_euclid(12) as i32;
        let nm = (total.rem_euclid(12) + 1) as u32;
        let nd = d.min(days_in_month(ny, nm));
        Date(days_from_civil(ny, nm, nd))
    }

    /// Add calendar years (via [`Date::add_months`]).
    pub fn add_years(self, years: i32) -> Date {
        self.add_months(years * 12)
    }

    /// Number of days since the Unix epoch.
    pub fn days(self) -> i32 {
        self.0
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.to_ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

fn ascii_u32(b: &[u8]) -> Result<u32> {
    let mut v: u32 = 0;
    for &c in b {
        if !c.is_ascii_digit() {
            return Err(NoDbError::parse("non-digit in date"));
        }
        v = v * 10 + (c - b'0') as u32;
    }
    Ok(v)
}

/// True for leap years in the proleptic Gregorian calendar.
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Number of days in the given month.
pub fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Days since 1970-01-01 for a civil date (Hinnant's algorithm).
fn days_from_civil(y: i32, m: u32, d: u32) -> i32 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u32; // [0, 399]
    let mp = (m + 9) % 12; // Mar=0 .. Feb=11
    let doy = (153 * mp + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe as i32 - 719468
}

/// Civil date for a day count since 1970-01-01 (Hinnant's algorithm).
fn civil_from_days(z: i32) -> (i32, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = (z - era * 146097) as u32; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe as i32 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(Date::from_ymd(1970, 1, 1).unwrap().days(), 0);
        assert_eq!(Date(0).to_string(), "1970-01-01");
    }

    #[test]
    fn known_dates() {
        // TPC-H date range boundaries.
        assert_eq!(Date::parse("1992-01-01").unwrap().days(), 8035);
        assert_eq!(Date::parse("1998-12-31").unwrap().days(), 10591);
        // Leap day.
        assert_eq!(
            Date::parse("2000-02-29").unwrap(),
            Date::from_ymd(2000, 2, 29).unwrap()
        );
    }

    #[test]
    fn rejects_malformed_literals() {
        assert!(Date::parse("1998/12/01").is_err());
        assert!(Date::parse("1998-13-01").is_err());
        assert!(Date::parse("1998-02-30").is_err());
        assert!(Date::parse("98-02-03").is_err());
        assert!(Date::parse("1998-0a-03").is_err());
    }

    #[test]
    fn interval_day_arithmetic() {
        let d = Date::parse("1998-12-01").unwrap();
        assert_eq!(d.add_days(-90).to_string(), "1998-09-02");
        assert_eq!(d.add_days(90).add_days(-90), d);
    }

    #[test]
    fn interval_month_arithmetic_clamps() {
        let jan31 = Date::parse("1999-01-31").unwrap();
        assert_eq!(jan31.add_months(1).to_string(), "1999-02-28");
        assert_eq!(jan31.add_months(13).to_string(), "2000-02-29");
        let d = Date::parse("1995-09-01").unwrap();
        assert_eq!(d.add_months(1).to_string(), "1995-10-01");
        assert_eq!(d.add_years(1).to_string(), "1996-09-01");
        assert_eq!(d.add_months(-9).to_string(), "1994-12-01");
    }

    #[test]
    fn ordering_follows_calendar() {
        assert!(Date::parse("1994-01-01").unwrap() < Date::parse("1994-01-02").unwrap());
        assert!(Date::parse("1993-12-31").unwrap() < Date::parse("1994-01-01").unwrap());
    }

    proptest! {
        #[test]
        fn ymd_roundtrip(days in -1_000_000i32..1_000_000i32) {
            let d = Date(days);
            let (y, m, dd) = d.to_ymd();
            prop_assert_eq!(Date::from_ymd(y, m, dd).unwrap(), d);
        }

        #[test]
        fn display_parse_roundtrip(days in 0i32..200_000i32) {
            let d = Date(days);
            prop_assert_eq!(Date::parse(&d.to_string()).unwrap(), d);
        }

        #[test]
        fn successive_days_increment(days in -100_000i32..100_000i32) {
            let a = Date(days).to_ymd();
            let b = Date(days + 1).to_ymd();
            // Either same month with day+1, or a month/year rollover to day 1.
            if a.0 == b.0 && a.1 == b.1 {
                prop_assert_eq!(b.2, a.2 + 1);
            } else {
                prop_assert_eq!(b.2, 1);
            }
        }
    }
}
