//! The CFITSIO stand-in: a procedural, full-scan API (paper §5.3).
//!
//! "We compare PostgresRaw with a custom-made C program that uses the
//! CFITSIO library and procedurally implements the same workload." Such
//! programs re-read the file for every aggregate; their only reuse comes
//! from the file-system cache. This module reproduces that behaviour: no
//! state survives between calls.

use nodb_common::{NoDbError, Result};

use crate::reader::FitsTable;

/// Aggregates the procedural baseline supports (what the paper's FITS
/// workload runs: MIN / MAX / AVG over float columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcAgg {
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Mean.
    Avg,
}

/// A procedural FITS session (CFITSIO-style).
pub struct ProceduralFits {
    table: FitsTable,
    /// Rows per read batch.
    batch: u64,
    /// Total bytes read from the file across calls (observability).
    pub bytes_read: u64,
}

impl ProceduralFits {
    /// Open a file.
    pub fn open(path: &std::path::Path) -> Result<ProceduralFits> {
        Ok(ProceduralFits {
            table: FitsTable::open(path)?,
            batch: 65_536,
            bytes_read: 0,
        })
    }

    /// The parsed table.
    pub fn table(&self) -> &FitsTable {
        &self.table
    }

    /// Compute one aggregate over one column by scanning the whole table
    /// (every call pays the full pass, like a loop in a C program).
    pub fn aggregate(&mut self, column: &str, agg: ProcAgg) -> Result<f64> {
        let col = self
            .table
            .col_index(column)
            .ok_or_else(|| NoDbError::plan(format!("no FITS column `{column}`")))?;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0f64;
        let mut n = 0u64;
        let mut at = 0u64;
        while at < self.table.rows {
            let to = (at + self.batch).min(self.table.rows);
            let rows = self.table.read_rows(at, to, &[col])?;
            self.bytes_read += (to - at) * self.table.row_bytes as u64;
            for r in rows {
                let v = r.get(0).as_f64().ok_or_else(|| {
                    NoDbError::execution(format!("column `{column}` is not numeric"))
                })?;
                min = min.min(v);
                max = max.max(v);
                sum += v;
                n += 1;
            }
            at = to;
        }
        if n == 0 {
            return Err(NoDbError::execution("empty table"));
        }
        Ok(match agg {
            ProcAgg::Min => min,
            ProcAgg::Max => max,
            ProcAgg::Avg => sum / n as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FitsType;
    use crate::writer::FitsTableWriter;
    use nodb_common::{Row, TempDir, Value};

    fn sample() -> (TempDir, std::path::PathBuf) {
        let td = TempDir::new("fits").unwrap();
        let p = td.file("t.fits");
        let mut w = FitsTableWriter::create(
            &p,
            vec![("a".into(), FitsType::D), ("b".into(), FitsType::D)],
        )
        .unwrap();
        for i in 0..1000 {
            w.write_row(&Row(vec![
                Value::Float64(i as f64),
                Value::Float64((i % 10) as f64),
            ]))
            .unwrap();
        }
        w.finish().unwrap();
        (td, p)
    }

    #[test]
    fn aggregates_are_exact() {
        let (_td, p) = sample();
        let mut f = ProceduralFits::open(&p).unwrap();
        assert_eq!(f.aggregate("a", ProcAgg::Min).unwrap(), 0.0);
        assert_eq!(f.aggregate("a", ProcAgg::Max).unwrap(), 999.0);
        assert_eq!(f.aggregate("a", ProcAgg::Avg).unwrap(), 499.5);
        assert_eq!(f.aggregate("b", ProcAgg::Max).unwrap(), 9.0);
        assert!(f.aggregate("zz", ProcAgg::Min).is_err());
    }

    #[test]
    fn every_call_rescans_the_file() {
        let (_td, p) = sample();
        let mut f = ProceduralFits::open(&p).unwrap();
        f.aggregate("a", ProcAgg::Min).unwrap();
        let after_one = f.bytes_read;
        f.aggregate("a", ProcAgg::Min).unwrap();
        assert_eq!(
            f.bytes_read,
            after_one * 2,
            "no reuse between calls — that is the point of the baseline"
        );
    }
}
