//! Benchmark harness for the NoDB reproduction.
//!
//! Every figure of the paper's evaluation (§5, Figures 3–13) has a
//! regeneration function in [`figures`]; the `figures` binary runs them
//! and writes one CSV per figure under `results/`, printing the same
//! series the paper plots. Absolute numbers differ from the paper's 2012
//! Sun server — the *shapes* (who wins, by what factor, where the curves
//! bend) are the reproduction target; see EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p nodb-bench --bin figures -- all
//! cargo run --release -p nodb-bench --bin figures -- fig5 --scale paper
//! ```

#![forbid(unsafe_code)]

pub mod data;
pub mod figures;
pub mod report;

use std::time::Instant;

/// Experiment scale presets. The paper's files are 11 GB+; these presets
/// keep laptop runtimes sane while preserving every effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-per-figure; used by `cargo bench` smoke benches and CI.
    Small,
    /// Default for the `figures` binary (a few minutes for the full set).
    Medium,
    /// Closer to the paper's workload sizes (long).
    Paper,
}

impl Scale {
    /// Rows in the 150-attribute micro-benchmark file.
    pub fn micro_rows(self) -> usize {
        match self {
            Scale::Small => 4_000,
            Scale::Medium => 40_000,
            Scale::Paper => 400_000,
        }
    }

    /// Columns in the micro-benchmark file (the paper uses 150).
    pub fn micro_cols(self) -> usize {
        match self {
            Scale::Small => 60,
            _ => 150,
        }
    }

    /// TPC-H scale factor.
    pub fn tpch_sf(self) -> f64 {
        match self {
            Scale::Small => 0.005,
            Scale::Medium => 0.05,
            Scale::Paper => 0.25,
        }
    }

    /// Rows in the FITS table (the paper uses ~4.3 M).
    pub fn fits_rows(self) -> usize {
        match self {
            Scale::Small => 50_000,
            Scale::Medium => 400_000,
            Scale::Paper => 4_300_000,
        }
    }

    /// Queries per sequence experiment (paper: 50).
    pub fn sequence_len(self) -> usize {
        match self {
            Scale::Small => 12,
            _ => 50,
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// Wall-clock one closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = Instant::now();
    let v = f();
    (v, t.elapsed().as_secs_f64())
}
