//! Micro-benchmark figures (paper §5.1): Figures 3, 4, 5 and 6.

use std::path::Path;

use nodb_common::{ByteSize, Result};
use nodb_core::{AccessMode, NoDbConfig};
use nodb_csv::MicroGen;

use crate::data::micro_file;
use crate::figures::{micro_engine, random_projections, region_projections};
use crate::report::{secs, Report};
use crate::{time, Scale};

/// Figure 3: average query time as a function of the positional-map
/// storage budget. The paper sweeps 14.3 MB → 2.1 GB and finds response
/// time saturates once ~¾ of the pointers fit; with ~¼ collected it is
/// already within 15 % of fully indexed.
pub fn fig3(scale: Scale, out: &Path) -> Result<()> {
    let rows = scale.micro_rows();
    let cols = scale.micro_cols();
    let (path, schema) = micro_file(rows, cols, None)?;
    // Full map ≈ rows × cols pointers × 2 bytes (u16 relative offsets)
    // plus per-chunk overhead; sweep fractions of that.
    let full_bytes = (rows * cols * 2) as f64 * 1.25;
    let queries = random_projections(cols, scale.sequence_len(), 10, 3);

    let mut report = Report::new(
        "fig3",
        "avg query time vs positional-map budget (PM-only engine)",
        &["budget_frac", "budget", "pointers_mio", "avg_time_s"],
        out,
    );
    for frac in [0.02, 0.05, 0.10, 0.25, 0.50, 0.75, 1.0, 1.25] {
        let budget = ByteSize((full_bytes * frac) as u64);
        let mut cfg = NoDbConfig::pm_only();
        cfg.posmap_budget = Some(budget);
        cfg.enable_stats = false;
        let db = micro_engine(cfg, &path, &schema, AccessMode::InSitu);
        // One warm-up pass (the first query always pays full
        // tokenization), then measure the sequence.
        db.query(&queries[0]).expect("warmup");
        let (_, total) = time(|| {
            for q in &queries {
                db.query(q).expect("query");
            }
        });
        let pointers = db.aux_info("t").expect("aux").posmap_pointers as f64 / 1e6;
        report.row(&[
            format!("{frac:.2}"),
            budget.to_string(),
            format!("{pointers:.2}"),
            secs(total / queries.len() as f64),
        ]);
    }
    report.finish()?;
    Ok(())
}

/// Figure 4: with an unlimited map, query time scales linearly as the
/// file grows — whether it grows by rows or by attributes.
pub fn fig4(scale: Scale, out: &Path) -> Result<()> {
    let base_rows = scale.micro_rows();
    let base_cols = scale.micro_cols();
    let mut report = Report::new(
        "fig4",
        "avg query time vs file size (vary rows / vary attributes)",
        &["series", "factor", "file_mb", "avg_time_s"],
        out,
    );
    let n_queries = scale.sequence_len().min(20);

    // Series A: more tuples (queries unchanged).
    for factor in [1, 2, 3, 4] {
        let rows = base_rows * factor;
        let (path, schema) = micro_file(rows, base_cols, None)?;
        let db = micro_engine(NoDbConfig::pm_only(), &path, &schema, AccessMode::InSitu);
        let queries = random_projections(base_cols, n_queries, 10, 11);
        let (_, total) = time(|| {
            for q in &queries {
                db.query(q).expect("query");
            }
        });
        let mb = std::fs::metadata(&path)?.len() as f64 / 1e6;
        report.row(&[
            "rows".into(),
            factor.to_string(),
            format!("{mb:.1}"),
            secs(total / queries.len() as f64),
        ]);
    }

    // Series B: more attributes (queries scale with the file, as in the
    // paper, so per-query work per byte stays comparable).
    for factor in [1, 2, 3, 4] {
        let cols = base_cols * factor;
        let (path, schema) = micro_file(base_rows, cols, None)?;
        let db = micro_engine(NoDbConfig::pm_only(), &path, &schema, AccessMode::InSitu);
        let queries = random_projections(cols, n_queries, 10 * factor, 13);
        let (_, total) = time(|| {
            for q in &queries {
                db.query(q).expect("query");
            }
        });
        let mb = std::fs::metadata(&path)?.len() as f64 / 1e6;
        report.row(&[
            "attributes".into(),
            factor.to_string(),
            format!("{mb:.1}"),
            secs(total / queries.len() as f64),
        ]);
    }
    report.finish()?;
    Ok(())
}

/// Figure 5: per-query response time over a sequence of random 5-attribute
/// projections for the four PostgresRaw variants. Expected shape: all
/// variants pay the same first query; PM+C drops fastest ("the second
/// query is 82–88 % faster than the first"); C-only fluctuates on misses;
/// Baseline stays flat.
pub fn fig5(scale: Scale, out: &Path) -> Result<()> {
    let (path, schema) = micro_file(scale.micro_rows(), scale.micro_cols(), None)?;
    let queries = random_projections(scale.micro_cols(), scale.sequence_len(), 5, 5);
    let variants: Vec<(&str, NoDbConfig, AccessMode)> = vec![
        (
            "baseline",
            NoDbConfig::baseline(),
            AccessMode::ExternalFiles,
        ),
        ("c", NoDbConfig::cache_only(), AccessMode::InSitu),
        ("pm", NoDbConfig::pm_only(), AccessMode::InSitu),
        ("pm_c", NoDbConfig::postgres_raw(), AccessMode::InSitu),
    ];
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    for (i, (_, cfg, mode)) in variants.iter().enumerate() {
        let mut cfg = cfg.clone();
        cfg.enable_stats = false; // isolate map/cache effects, as §5.1.2
        let db = micro_engine(cfg, &path, &schema, *mode);
        for q in &queries {
            let (_, t) = time(|| db.query(q).expect("query"));
            series[i].push(t);
        }
    }
    let mut report = Report::new(
        "fig5",
        "per-query time by variant (random 5-attribute projections)",
        &["query", "baseline_s", "c_s", "pm_s", "pm_c_s"],
        out,
    );
    for qi in 0..queries.len() {
        report.row(&[
            (qi + 1).to_string(),
            secs(series[0][qi]),
            secs(series[1][qi]),
            secs(series[2][qi]),
            secs(series[3][qi]),
        ]);
    }
    report.finish()?;
    Ok(())
}

/// Figure 6: 5 epochs × queries confined to shifting column regions,
/// under a limited cache budget. Reports per-query time and cache
/// utilization, like the paper's dual-axis plot.
pub fn fig6(scale: Scale, out: &Path) -> Result<()> {
    let rows = scale.micro_rows();
    let cols = scale.micro_cols().max(135);
    let (path, schema) = micro_file(rows, cols, None)?;
    let per_epoch = scale.sequence_len();
    // Regions scaled from the paper's 150-column epochs.
    let f = cols as f64 / 150.0;
    let region =
        |a: f64, b: f64| ((a * f) as usize).min(cols - 1)..(((b * f) as usize).max(1)).min(cols);
    let epochs = [
        region(0.0, 50.0),
        region(50.0, 100.0),
        region(0.0, 100.0),
        region(75.0, 125.0),
        region(85.0, 135.0),
    ];
    // Budget ≈ two epochs' worth of columns (the paper's 2.8 GB vs 11 GB
    // file is a similar fraction).
    let col_bytes = rows * 5; // ints + bitmap overhead per column
    let mut cfg = NoDbConfig::postgres_raw();
    cfg.cache_budget = Some(ByteSize((col_bytes * cols / 2) as u64));
    cfg.enable_stats = false;
    let db = micro_engine(cfg, &path, &schema, AccessMode::InSitu);

    let mut report = Report::new(
        "fig6",
        "workload shift: per-query time and cache utilization",
        &["query", "epoch", "time_s", "cache_util_pct"],
        out,
    );
    let mut qi = 0;
    for (e, region) in epochs.iter().enumerate() {
        let queries = region_projections(region.clone(), per_epoch, 5, 100 + e as u64);
        for q in &queries {
            let (_, t) = time(|| db.query(q).expect("query"));
            qi += 1;
            let util = db.aux_info("t").expect("aux").cache_utilization * 100.0;
            report.row(&[
                qi.to_string(),
                (e + 1).to_string(),
                secs(t),
                format!("{util:.0}"),
            ]);
        }
    }
    report.finish()?;
    Ok(())
}

/// Append-update smoke used by the harness self-test (not a paper figure,
/// but §4.5's scenario; kept here so `figures all` exercises appends).
#[allow(dead_code)]
pub fn append_smoke(scale: Scale) -> Result<()> {
    let rows = scale.micro_rows().min(10_000);
    let (src, schema) = micro_file(rows, 20, None)?;
    let path = crate::data::scratch_copy(&src, "append")?;
    let db = micro_engine(
        NoDbConfig::postgres_raw(),
        &path,
        &schema,
        AccessMode::InSitu,
    );
    db.query("select c0 from t").expect("warm");
    MicroGen::default()
        .rows(rows)
        .cols(20)
        .seed(0xbead)
        .append_to(&path, rows / 10)?;
    db.query("select count(*) from t").expect("post-append");
    Ok(())
}
