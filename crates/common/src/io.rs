//! The pluggable I/O substrate under the in-situ scan.
//!
//! NoDB's results assume the raw file is read at near-hardware speed; how
//! those bytes reach the tokenizer is a substrate decision, not a scan
//! decision. [`ByteSource`] abstracts it: one handle to an immutable raw
//! file that serves positioned reads ([`ByteSource::read_at`]) and — when
//! the platform allows — a zero-copy whole-file view
//! ([`ByteSource::mapped`]).
//!
//! Two backends exist, selected by [`IoBackend`]:
//!
//! * **`Read`** — positioned reads on a plain file descriptor (`pread` on
//!   unix). The portable baseline; callers layer their own buffering.
//! * **`Mmap`** — the whole file mapped read-only via direct `mmap` /
//!   `munmap` / `madvise` syscalls (unix only; bound here with
//!   `extern "C"` because the build environment has no crates.io access).
//!   Tokenizers slice the mapping directly: no read syscalls, no buffer
//!   copies, and the page cache is shared across every concurrent scan of
//!   the table.
//!
//! `Mmap` degrades to `Read` — never errors — when the platform is not
//! unix, the file is empty (zero-length mappings are invalid), or the
//! `mmap` call itself fails; [`ByteSource::backend`] reports what actually
//! happened. Scan results and metrics are bit-identical across backends:
//! the backends change *how* bytes arrive, never *which* bytes.
//!
//! The raw file is assumed immutable while mapped (append-only growth is
//! fine: the mapping covers the length observed at open time, exactly like
//! a `read` snapshot of the same instant).

use std::fs::File;
use std::path::Path;

use crate::error::{NoDbError, Result};

/// How raw-file bytes reach the tokenizer. The knob carried by engine
/// configuration (`NoDbConfig::io_backend` in `nodb-core`) and the
/// `NODB_IO_BACKEND` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoBackend {
    /// Pick the fastest backend the platform supports: `Mmap` on unix,
    /// `Read` elsewhere.
    #[default]
    Auto,
    /// Buffered positioned reads on a file descriptor.
    Read,
    /// Zero-copy memory mapping (unix; falls back to `Read` elsewhere or
    /// when mapping is impossible).
    Mmap,
}

impl IoBackend {
    /// Parse a backend name (`auto` / `read` / `mmap`, case-insensitive).
    pub fn parse(s: &str) -> Result<IoBackend> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Ok(IoBackend::Auto),
            "read" => Ok(IoBackend::Read),
            "mmap" => Ok(IoBackend::Mmap),
            other => Err(NoDbError::config(format!(
                "unknown I/O backend `{other}` (expected auto, read or mmap)"
            ))),
        }
    }

    /// The backend requested by the `NODB_IO_BACKEND` environment
    /// variable, or `None` when unset/empty. An unparsable or non-UTF-8
    /// value is an error so a typo in a CI matrix cannot silently
    /// un-gate a backend — engine construction (`NoDb::new`) surfaces it
    /// through the normal error path.
    pub fn from_env() -> Result<Option<IoBackend>> {
        match std::env::var("NODB_IO_BACKEND") {
            Ok(s) if s.trim().is_empty() => Ok(None),
            Ok(s) => Self::parse(s.trim()).map(Some),
            Err(std::env::VarError::NotPresent) => Ok(None),
            Err(std::env::VarError::NotUnicode(_)) => Err(NoDbError::config(
                "NODB_IO_BACKEND is set but not valid UTF-8",
            )),
        }
    }

    /// `NODB_IO_BACKEND` if set and valid, else `Auto`. Infallible (used
    /// by configuration defaults): a malformed value falls back to
    /// `Auto` *here*, and is rejected with [`crate::NoDbError::Config`]
    /// when an engine is actually constructed, so the typo still fails
    /// loudly on the error path instead of panicking inside a `Default`.
    pub fn from_env_or_auto() -> IoBackend {
        Self::from_env().ok().flatten().unwrap_or(IoBackend::Auto)
    }

    /// Resolve to the concrete backend this platform will actually use:
    /// `Auto` becomes the platform preference, and an explicit `Mmap`
    /// request resolves to `Read` where no mapping backend exists
    /// (non-unix), so reported backends always match served reads.
    /// Never returns `Auto`.
    pub fn resolve(self) -> IoBackend {
        if cfg!(unix) {
            match self {
                IoBackend::Auto => IoBackend::Mmap,
                other => other,
            }
        } else {
            IoBackend::Read
        }
    }
}

impl std::fmt::Display for IoBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IoBackend::Auto => "auto",
            IoBackend::Read => "read",
            IoBackend::Mmap => "mmap",
        })
    }
}

impl std::str::FromStr for IoBackend {
    type Err = NoDbError;

    fn from_str(s: &str) -> Result<IoBackend> {
        Self::parse(s)
    }
}

/// One open raw file, served by the configured [`IoBackend`].
///
/// Cheap to share across scan workers (`Send + Sync`; positioned reads
/// take `&self`): a chunk-parallel scan opens the file **once** and every
/// worker slices its own byte range out of the same handle. The length is
/// snapshotted at open time; bytes appended later
/// are invisible to this source (exactly the semantics the end-of-line
/// frontier relies on).
#[derive(Debug)]
pub struct ByteSource {
    repr: Repr,
    len: u64,
}

#[derive(Debug)]
enum Repr {
    Read(ReadHandle),
    #[cfg(unix)]
    Mmap(sys::MmapRegion),
}

/// Positioned-read handle for the `Read` backend. Unix has `pread`
/// (`FileExt::read_at`): no cursor mutation, so a bare `File` is safe to
/// share across threads. Other platforms fall back to seek-then-read,
/// which *does* move the shared cursor — those serialize behind a mutex
/// so concurrent `read_at` calls on one shared source cannot read each
/// other's bytes.
#[cfg(unix)]
type ReadHandle = File;
#[cfg(not(unix))]
type ReadHandle = std::sync::Mutex<File>;

#[cfg(unix)]
fn read_handle(file: File) -> ReadHandle {
    file
}

#[cfg(not(unix))]
fn read_handle(file: File) -> ReadHandle {
    std::sync::Mutex::new(file)
}

impl ByteSource {
    /// Open `path` with the requested backend (`Auto` resolves per
    /// platform). `Mmap` falls back to `Read` for empty files and on any
    /// mapping failure; it never errors for reasons `Read` would not.
    pub fn open(path: &Path, backend: IoBackend) -> Result<ByteSource> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        #[cfg(unix)]
        if backend.resolve() == IoBackend::Mmap && len > 0 {
            if let Ok(region) = sys::MmapRegion::map(&file, len as usize) {
                region.advise_willneed();
                return Ok(ByteSource {
                    repr: Repr::Mmap(region),
                    len,
                });
            }
        }
        let _ = backend; // non-unix: every backend resolves to Read
        Ok(ByteSource {
            repr: Repr::Read(read_handle(file)),
            len,
        })
    }

    /// Total file length in bytes (snapshotted at open).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the file had no bytes at open time.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backend actually serving reads: `Read` or `Mmap`, never
    /// `Auto`. May differ from the requested backend (platform fallback,
    /// zero-length file, mapping failure).
    pub fn backend(&self) -> IoBackend {
        match &self.repr {
            Repr::Read(_) => IoBackend::Read,
            #[cfg(unix)]
            Repr::Mmap(_) => IoBackend::Mmap,
        }
    }

    /// The whole file as one zero-copy slice (`Mmap` backend only).
    pub fn mapped(&self) -> Option<&[u8]> {
        match &self.repr {
            Repr::Read(_) => None,
            #[cfg(unix)]
            Repr::Mmap(m) => Some(m.as_slice()),
        }
    }

    /// Read bytes at `offset` into `buf`, returning how many were read
    /// (`0` at or past EOF; possibly short near EOF, never short
    /// otherwise). Takes `&self`: safe to call from many threads at once.
    pub fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<usize> {
        if offset >= self.len || buf.is_empty() {
            return Ok(0);
        }
        let want = buf.len().min((self.len - offset) as usize);
        match &self.repr {
            Repr::Read(file) => {
                let mut done = 0;
                while done < want {
                    let n = read_at_fd(file, offset + done as u64, &mut buf[done..want])?;
                    if n == 0 {
                        break; // file shrank underneath us; serve what exists
                    }
                    done += n;
                }
                Ok(done)
            }
            #[cfg(unix)]
            Repr::Mmap(m) => {
                let s = &m.as_slice()[offset as usize..offset as usize + want];
                buf[..want].copy_from_slice(s);
                Ok(want)
            }
        }
    }

    /// Hint that the file will be read front-to-back (`madvise` on the
    /// mmap backend; a no-op on `Read`, where the OS read-ahead already
    /// sees the sequential pattern).
    pub fn advise_sequential(&self) {
        #[cfg(unix)]
        if let Repr::Mmap(m) = &self.repr {
            m.advise_sequential();
        }
    }
}

/// Positioned read on a shared file handle (`pread`: thread-safe, no
/// cursor).
#[cfg(unix)]
fn read_at_fd(file: &ReadHandle, offset: u64, buf: &mut [u8]) -> std::io::Result<usize> {
    use std::os::unix::fs::FileExt;
    file.read_at(buf, offset)
}

/// Non-unix fallback: seek-then-read moves the handle's shared cursor,
/// so the mutex (see [`ReadHandle`]) makes the pair atomic.
#[cfg(not(unix))]
fn read_at_fd(file: &ReadHandle, offset: u64, buf: &mut [u8]) -> std::io::Result<usize> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = file.lock().unwrap_or_else(|e| e.into_inner());
    f.seek(SeekFrom::Start(offset))?;
    f.read(buf)
}

/// Direct bindings to the three syscalls the mmap backend needs. Raw
/// `extern "C"` because the build environment cannot reach crates.io for
/// `libc`/`memmap2`; the constants are the POSIX values shared by Linux
/// and macOS for this call pattern.
#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    use std::ffi::c_void;
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 0x1;
    const MAP_SHARED: i32 = 0x1;
    const MADV_SEQUENTIAL: i32 = 2;
    const MADV_WILLNEED: i32 = 3;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
        fn madvise(addr: *mut c_void, len: usize, advice: i32) -> i32;
    }

    /// A read-only, whole-file, shared mapping. Unmapped on drop.
    #[derive(Debug)]
    pub(super) struct MmapRegion {
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the region is read-only memory owned by this value for its
    // whole lifetime; concurrent `&self` reads from any thread are plain
    // loads from immutable pages.
    unsafe impl Send for MmapRegion {}
    unsafe impl Sync for MmapRegion {}

    impl MmapRegion {
        /// Map `len` bytes of `file` read-only. `len` must be non-zero
        /// (zero-length mappings are EINVAL by spec).
        pub(super) fn map(file: &File, len: usize) -> std::io::Result<MmapRegion> {
            debug_assert!(len > 0, "zero-length mappings are invalid");
            // SAFETY: requests a fresh read-only mapping of a descriptor
            // we own; the kernel picks the address. Failure is reported
            // as MAP_FAILED (-1), checked below.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_SHARED,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr == usize::MAX as *mut c_void || ptr.is_null() {
                return Err(std::io::Error::last_os_error());
            }
            Ok(MmapRegion { ptr, len })
        }

        pub(super) fn as_slice(&self) -> &[u8] {
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes, valid until `drop` unmaps it; the file is treated as
            // immutable for the mapping's lifetime.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }

        pub(super) fn advise_sequential(&self) {
            // SAFETY: advice on a live mapping; errors are advisory.
            unsafe {
                madvise(self.ptr, self.len, MADV_SEQUENTIAL);
            }
        }

        pub(super) fn advise_willneed(&self) {
            // SAFETY: advice on a live mapping; errors are advisory.
            unsafe {
                madvise(self.ptr, self.len, MADV_WILLNEED);
            }
        }
    }

    impl Drop for MmapRegion {
        fn drop(&mut self) {
            // SAFETY: unmaps the exact region returned by `mmap`; the
            // value owns it and no slice can outlive `self`.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    fn file_with(bytes: &[u8]) -> (TempDir, std::path::PathBuf) {
        let td = TempDir::new("nodb-io").unwrap();
        let p = td.file("data.bin");
        std::fs::write(&p, bytes).unwrap();
        (td, p)
    }

    #[test]
    fn parse_and_display_round_trip() {
        for b in [IoBackend::Auto, IoBackend::Read, IoBackend::Mmap] {
            assert_eq!(IoBackend::parse(&b.to_string()).unwrap(), b);
        }
        assert_eq!(IoBackend::parse("MMAP").unwrap(), IoBackend::Mmap);
        assert!(IoBackend::parse("io_uring").is_err());
    }

    #[test]
    fn resolve_never_returns_auto() {
        assert_ne!(IoBackend::Auto.resolve(), IoBackend::Auto);
        assert_eq!(IoBackend::Read.resolve(), IoBackend::Read);
        #[cfg(unix)]
        {
            assert_eq!(IoBackend::Auto.resolve(), IoBackend::Mmap);
            assert_eq!(IoBackend::Mmap.resolve(), IoBackend::Mmap);
        }
    }

    #[test]
    fn read_backend_serves_positioned_reads() {
        let (_td, p) = file_with(b"0123456789");
        let src = ByteSource::open(&p, IoBackend::Read).unwrap();
        assert_eq!(src.backend(), IoBackend::Read);
        assert_eq!(src.len(), 10);
        assert!(src.mapped().is_none());
        let mut buf = [0u8; 4];
        assert_eq!(src.read_at(2, &mut buf).unwrap(), 4);
        assert_eq!(&buf, b"2345");
        // Short read at EOF, zero past it.
        assert_eq!(src.read_at(8, &mut buf).unwrap(), 2);
        assert_eq!(&buf[..2], b"89");
        assert_eq!(src.read_at(10, &mut buf).unwrap(), 0);
        assert_eq!(src.read_at(99, &mut buf).unwrap(), 0);
    }

    #[cfg(unix)]
    #[test]
    fn mmap_backend_maps_and_reads_identically() {
        let (_td, p) = file_with(b"hello,raw,world\nsecond line\n");
        let read = ByteSource::open(&p, IoBackend::Read).unwrap();
        let mmap = ByteSource::open(&p, IoBackend::Mmap).unwrap();
        assert_eq!(mmap.backend(), IoBackend::Mmap);
        assert_eq!(mmap.mapped().unwrap(), std::fs::read(&p).unwrap());
        mmap.advise_sequential();
        for off in [0u64, 5, 15, 27, 28] {
            let mut a = [0u8; 7];
            let mut b = [0u8; 7];
            let na = read.read_at(off, &mut a).unwrap();
            let nb = mmap.read_at(off, &mut b).unwrap();
            assert_eq!(na, nb, "length at offset {off}");
            assert_eq!(a[..na], b[..nb], "bytes at offset {off}");
        }
    }

    /// The acceptance-criteria unit test: mapping a zero-length file is
    /// invalid (EINVAL), so `Mmap` must degrade gracefully to `Read`
    /// instead of erroring.
    #[test]
    fn mmap_on_empty_file_degrades_to_read() {
        let (_td, p) = file_with(b"");
        let src = ByteSource::open(&p, IoBackend::Mmap).unwrap();
        assert_eq!(src.backend(), IoBackend::Read);
        assert!(src.is_empty());
        assert!(src.mapped().is_none());
        let mut buf = [0u8; 8];
        assert_eq!(src.read_at(0, &mut buf).unwrap(), 0);
    }

    #[test]
    fn auto_backend_opens_on_every_platform() {
        let (_td, p) = file_with(b"abc");
        let src = ByteSource::open(&p, IoBackend::Auto).unwrap();
        assert_ne!(src.backend(), IoBackend::Auto);
        let mut buf = [0u8; 3];
        assert_eq!(src.read_at(0, &mut buf).unwrap(), 3);
        assert_eq!(&buf, b"abc");
    }
}
