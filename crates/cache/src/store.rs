//! Cache directory, budget, and cost-aware LRU eviction.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use nodb_common::{ByteSize, WorkloadLog};

use crate::column::CachedColumn;

/// Cache configuration.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Byte budget; `None` = unlimited ("the size of the cache is a
    /// parameter that can be tuned depending on the resources", §4.3).
    pub budget: Option<ByteSize>,
    /// How strongly conversion cost protects an entry from eviction.
    /// Without a workload log: LRU clock ticks per cost unit (0 = plain
    /// LRU). With one: 0 drops conversion cost from the heat priority.
    pub cost_weight: u64,
    /// Per-attribute access-frequency log. When present, budget
    /// evictions pick the victim by workload-heat × conversion-cost
    /// (coldest, cheapest-to-rebuild column first; recency breaks
    /// ties) instead of pure recency.
    pub workload: Option<Arc<WorkloadLog>>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            budget: None,
            cost_weight: 16,
            workload: None,
        }
    }
}

/// Observability counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// `get` calls that found a column.
    pub hits: u64,
    /// `get` calls that found nothing.
    pub misses: u64,
    /// Columns inserted (not counting merges into existing entries).
    pub inserts: u64,
    /// Partial columns merged into existing entries.
    pub merges: u64,
    /// Columns evicted to honour the budget.
    pub evictions: u64,
}

#[derive(Debug)]
struct Entry {
    col: Arc<CachedColumn>,
    /// LRU recency stamp. Atomic so read-locked (`&self`) lookups from
    /// concurrent warm scans still update recency.
    last_touch: AtomicU64,
}

/// Internal atomic counters behind [`CacheStats`], so that shared-lock
/// lookups can count hits/misses.
#[derive(Debug, Default)]
struct AtomicCacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    merges: AtomicU64,
    evictions: AtomicU64,
}

impl AtomicCacheStats {
    fn snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            merges: self.merges.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// The adaptive cache for one raw file: `(block, attr) → CachedColumn`.
#[derive(Debug)]
pub struct RawCache {
    cfg: CacheConfig,
    entries: HashMap<(u64, u32), Entry>,
    clock: AtomicU64,
    bytes: usize,
    stats: AtomicCacheStats,
}

impl RawCache {
    /// Create an empty cache.
    pub fn new(cfg: CacheConfig) -> RawCache {
        RawCache {
            cfg,
            entries: HashMap::new(),
            clock: AtomicU64::new(0),
            bytes: 0,
            stats: AtomicCacheStats::default(),
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Bytes currently held.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Fraction of the budget in use, in `[0, 1]` (1.0 when unlimited and
    /// non-empty would be meaningless, so unlimited reports 0 unless
    /// empty-aware callers handle it; Figure 6 always sets a budget).
    pub fn utilization(&self) -> f64 {
        match self.cfg.budget {
            Some(b) if b.bytes() > 0 => (self.bytes as f64 / b.bytes() as f64).min(1.0),
            _ => 0.0,
        }
    }

    /// Counters.
    pub fn stats(&self) -> CacheStats {
        self.stats.snapshot()
    }

    /// Number of cached columns.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up the cached column for `(block, attr)`, updating recency.
    /// Returns a cheap shared handle (scans hold it without copying the
    /// column data). Works through `&self` so concurrent warm scans can
    /// read the cache under a shared lock; recency stamps and counters
    /// are atomic.
    pub fn get_shared(&self, block: u64, attr: u32) -> Option<Arc<CachedColumn>> {
        let now = self.tick();
        match self.entries.get(&(block, attr)) {
            Some(e) => {
                e.last_touch.store(now, Ordering::Relaxed);
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&e.col))
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Exclusive-access alias of [`RawCache::get_shared`].
    pub fn get(&mut self, block: u64, attr: u32) -> Option<Arc<CachedColumn>> {
        self.get_shared(block, attr)
    }

    /// Peek without touching recency or counters (for reporting).
    pub fn peek(&self, block: u64, attr: u32) -> Option<&CachedColumn> {
        self.entries.get(&(block, attr)).map(|e| e.col.as_ref())
    }

    /// Insert (or merge) a column produced by a scan, then enforce the
    /// budget.
    pub fn insert(&mut self, col: CachedColumn) {
        let now = self.tick();
        let key = (col.block, col.attr);
        match self.entries.get_mut(&key) {
            Some(existing) => {
                let before = existing.col.bytes();
                // Clone-on-write: cheap when no scan holds the column.
                Arc::make_mut(&mut existing.col).absorb(&col);
                existing.last_touch.store(now, Ordering::Relaxed);
                self.bytes = self.bytes - before + existing.col.bytes();
                self.stats.merges.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                self.bytes += col.bytes();
                self.entries.insert(
                    key,
                    Entry {
                        col: Arc::new(col),
                        last_touch: AtomicU64::new(now),
                    },
                );
                self.stats.inserts.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.enforce_budget(key);
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.bytes = 0;
    }

    /// Eviction priority of one entry: the *minimum* goes first. Without
    /// a workload log: recency plus a conversion-cost bonus (the
    /// original cost-aware LRU). With one: workload-heat ×
    /// conversion-cost, recency only breaking ties — a column the
    /// workload hammers survives a burst of one-off touches to cold
    /// columns.
    fn eviction_priority(&self, e: &Entry) -> (u64, u64) {
        let cost = e.col.dtype.conversion_cost() as u64;
        let touch = e.last_touch.load(Ordering::Relaxed);
        match &self.cfg.workload {
            Some(w) => {
                let heat = w.heat(e.col.attr) + 1;
                let primary = if self.cfg.cost_weight > 0 {
                    heat.saturating_mul(cost)
                } else {
                    heat
                };
                (primary, touch)
            }
            None => (touch + cost * self.cfg.cost_weight, 0),
        }
    }

    fn remove_entry(&mut self, key: (u64, u32)) {
        if let Some(e) = self.entries.remove(&key) {
            self.bytes -= e.col.bytes();
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Evict until within budget. The most recent insert (`protect`) is
    /// only evicted if it alone exceeds the budget — and in that case it
    /// is evicted *first*, before anything else: an impossible-to-fit
    /// column must not drain every other entry on its way out (it would
    /// wipe well-used columns and re-trigger on every later scan of the
    /// same column).
    fn enforce_budget(&mut self, protect: (u64, u32)) {
        let Some(budget) = self.cfg.budget else {
            return;
        };
        let budget = budget.bytes() as usize;
        if self.bytes <= budget {
            return;
        }
        if self
            .entries
            .get(&protect)
            .is_some_and(|e| e.col.bytes() > budget)
        {
            self.remove_entry(protect);
        }
        while self.bytes > budget && self.entries.len() > 1 {
            let victim = self
                .entries
                .iter()
                .filter(|(k, _)| **k != protect)
                .min_by_key(|(_, e)| self.eviction_priority(e))
                .map(|(k, _)| *k);
            match victim {
                Some(k) => self.remove_entry(k),
                None => break,
            }
        }
        if self.bytes > budget && self.entries.len() == 1 {
            // A single oversized survivor: honour the budget strictly.
            if let Some(k) = self.entries.keys().next().copied() {
                self.remove_entry(k);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnBuilder;
    use nodb_common::{DataType, Value};

    fn full_col(block: u64, attr: u32, dtype: DataType, rows: usize) -> CachedColumn {
        let mut b = ColumnBuilder::new(block, attr, dtype, rows);
        for i in 0..rows {
            let v = match dtype {
                DataType::Int32 => Value::Int32(i as i32),
                DataType::Text => Value::Text(format!("v{i:04}")),
                DataType::Float64 => Value::Float64(i as f64),
                _ => Value::Int32(i as i32),
            };
            b.set(i, &v);
        }
        b.build()
    }

    #[test]
    fn get_after_insert_hits() {
        let mut c = RawCache::new(CacheConfig::default());
        c.insert(full_col(0, 5, DataType::Int32, 16));
        assert!(c.get(0, 5).is_some());
        assert!(c.get(0, 6).is_none());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn merge_fills_holes() {
        let mut c = RawCache::new(CacheConfig::default());
        let partial1 = {
            let mut b = ColumnBuilder::new(0, 1, DataType::Int32, 4);
            b.set(0, &Value::Int32(10));
            b.build()
        };
        let partial2 = {
            let mut b = ColumnBuilder::new(0, 1, DataType::Int32, 4);
            b.set(2, &Value::Int32(30));
            b.build()
        };
        c.insert(partial1);
        c.insert(partial2);
        assert_eq!(c.stats().merges, 1);
        let col = c.get(0, 1).unwrap();
        assert_eq!(col.get(0), Some(Value::Int32(10)));
        assert_eq!(col.get(2), Some(Value::Int32(30)));
        assert_eq!(col.get(1), None);
    }

    #[test]
    fn budget_is_enforced_with_lru() {
        let one = full_col(0, 0, DataType::Int32, 256).bytes();
        let cfg = CacheConfig {
            budget: Some(ByteSize((one * 2 + one / 2) as u64)),
            cost_weight: 0, // plain LRU for determinism here
            workload: None,
        };
        let mut c = RawCache::new(cfg);
        c.insert(full_col(0, 0, DataType::Int32, 256));
        c.insert(full_col(1, 0, DataType::Int32, 256));
        let _ = c.get(0, 0); // make block 1 the LRU
        c.insert(full_col(2, 0, DataType::Int32, 256));
        assert!(c.bytes() <= one * 2 + one / 2);
        assert!(c.peek(0, 0).is_some(), "recently used survives");
        assert!(c.peek(1, 0).is_none(), "LRU evicted");
        assert!(c.peek(2, 0).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn costly_types_outlive_cheap_ones() {
        // Float columns (cost 8) should outlive text columns (cost 1) at
        // equal recency.
        let fcol = full_col(0, 0, DataType::Float64, 128);
        let tcol = full_col(1, 1, DataType::Text, 128);
        let budget = fcol.bytes() + tcol.bytes() + 64;
        let cfg = CacheConfig {
            budget: Some(ByteSize(budget as u64)),
            cost_weight: 1000,
            workload: None,
        };
        let mut c = RawCache::new(cfg);
        c.insert(tcol);
        c.insert(fcol);
        // Insert another text column forcing one eviction.
        c.insert(full_col(2, 1, DataType::Text, 128));
        assert!(c.peek(0, 0).is_some(), "expensive float column survives");
        assert!(c.peek(1, 1).is_none(), "cheap text column evicted");
    }

    #[test]
    fn oversized_single_entry_is_rejected() {
        let col = full_col(0, 0, DataType::Int32, 1024);
        let cfg = CacheConfig {
            budget: Some(ByteSize((col.bytes() / 2) as u64)),
            cost_weight: 0,
            workload: None,
        };
        let mut c = RawCache::new(cfg);
        c.insert(col);
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn utilization_reflects_budget() {
        let col = full_col(0, 0, DataType::Int32, 256);
        let cfg = CacheConfig {
            budget: Some(ByteSize((col.bytes() * 2) as u64)),
            cost_weight: 0,
            workload: None,
        };
        let mut c = RawCache::new(cfg);
        assert_eq!(c.utilization(), 0.0);
        c.insert(col);
        assert!((c.utilization() - 0.5).abs() < 0.1);
    }

    #[test]
    fn clear_empties_cache() {
        let mut c = RawCache::new(CacheConfig::default());
        c.insert(full_col(0, 0, DataType::Int32, 16));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn oversized_insert_does_not_drain_the_cache() {
        // Regression: an insert larger than the whole budget used to
        // evict every *other* entry first, then drop itself — wiping the
        // cache and thrashing on every later scan of the same column.
        let small = full_col(0, 0, DataType::Int32, 64).bytes();
        let cfg = CacheConfig {
            budget: Some(ByteSize((small * 3) as u64)),
            cost_weight: 0,
            workload: None,
        };
        let mut c = RawCache::new(cfg);
        c.insert(full_col(0, 0, DataType::Int32, 64));
        c.insert(full_col(1, 0, DataType::Int32, 64));
        let bytes_before = c.bytes();
        c.insert(full_col(2, 1, DataType::Int32, 4096)); // > whole budget
        assert!(c.peek(0, 0).is_some(), "resident entries must survive");
        assert!(c.peek(1, 0).is_some(), "resident entries must survive");
        assert!(c.peek(2, 1).is_none(), "the oversized column is rejected");
        assert_eq!(c.bytes(), bytes_before);
        assert_eq!(c.stats().evictions, 1, "only the oversized entry goes");
        // And it thrashes nothing when it comes around again.
        c.insert(full_col(2, 1, DataType::Int32, 4096));
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn workload_heat_overrides_recency() {
        // Attr 0 is hot (many scans), attr 1 cold (one). Under pure LRU
        // the *least recently touched* entry — the hot one below — would
        // be evicted; with the workload log the cold column goes instead.
        let log = Arc::new(WorkloadLog::new());
        for _ in 0..50 {
            log.record_touches(&[0]);
        }
        log.record_touches(&[1]);
        let one = full_col(0, 0, DataType::Int32, 256).bytes();
        let cfg = CacheConfig {
            budget: Some(ByteSize((one * 2 + one / 2) as u64)),
            cost_weight: 0,
            workload: Some(Arc::clone(&log)),
        };
        let mut c = RawCache::new(cfg);
        c.insert(full_col(0, 0, DataType::Int32, 256)); // hot attr
        c.insert(full_col(1, 1, DataType::Int32, 256)); // cold attr
        let _ = c.get(1, 1); // cold is now the most recently used
        c.insert(full_col(2, 0, DataType::Int32, 256)); // forces one eviction
        assert!(c.peek(0, 0).is_some(), "hot column survives");
        assert!(
            c.peek(1, 1).is_none(),
            "cold column evicted despite recency"
        );
        assert!(c.peek(2, 0).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn heat_ties_break_by_recency() {
        // Equal heat (no touches at all) degrades to LRU order.
        let cfg = CacheConfig {
            budget: Some(ByteSize(
                (full_col(0, 0, DataType::Int32, 256).bytes() * 2) as u64,
            )),
            cost_weight: 0,
            workload: Some(Arc::new(WorkloadLog::new())),
        };
        let mut c = RawCache::new(cfg);
        c.insert(full_col(0, 0, DataType::Int32, 256));
        c.insert(full_col(1, 0, DataType::Int32, 256));
        let _ = c.get(0, 0); // block 1 becomes LRU
        c.insert(full_col(2, 0, DataType::Int32, 256));
        assert!(c.peek(0, 0).is_some());
        assert!(c.peek(1, 0).is_none(), "LRU tie-break");
    }

    #[test]
    fn evictions_stay_consistent_under_concurrent_recency_stamps() {
        // Readers hammer get_shared (atomic recency stamps + hit/miss
        // counters under a shared lock) while a writer inserts past the
        // budget. The books must balance: every inserted entry is either
        // still resident or counted exactly once as an eviction.
        use std::sync::RwLock;
        let one = full_col(0, 0, DataType::Int32, 256).bytes();
        let cache = Arc::new(RwLock::new(RawCache::new(CacheConfig {
            budget: Some(ByteSize((one * 4) as u64)),
            cost_weight: 0,
            workload: None,
        })));
        const INSERTS: u64 = 64;
        std::thread::scope(|s| {
            for t in 0..3u64 {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    for i in 0..2000u64 {
                        let g = cache.read().unwrap();
                        let _ = g.get_shared((i + t) % INSERTS, 0);
                    }
                });
            }
            for b in 0..INSERTS {
                cache
                    .write()
                    .unwrap()
                    .insert(full_col(b, 0, DataType::Int32, 256));
            }
        });
        let g = cache.read().unwrap();
        let stats = g.stats();
        assert_eq!(stats.inserts, INSERTS);
        assert_eq!(stats.merges, 0);
        assert_eq!(
            stats.inserts,
            g.len() as u64 + stats.evictions,
            "inserted = resident + evicted"
        );
        assert!(g.bytes() <= one * 4);
    }
}
