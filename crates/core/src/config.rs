//! Engine configuration: the switches the paper's experiments toggle.

use std::path::PathBuf;

use nodb_common::{knob, ByteSize, IoBackend, Result};
use nodb_exec::DEFAULT_BATCH_ROWS;
use nodb_storage::EngineProfile;

/// Which auxiliary structures an in-situ table maintains. The paper's
/// §5.1.2 variants map directly:
///
/// * `PM+C`  — [`NoDbConfig::postgres_raw`] (everything on)
/// * `PM`    — cache disabled
/// * `C`     — positional map disabled (end-of-line index only)
/// * `Baseline` — register the table with [`AccessMode::ExternalFiles`]
#[derive(Debug, Clone)]
pub struct NoDbConfig {
    /// Maintain the adaptive positional map (§4.2).
    pub enable_posmap: bool,
    /// Maintain the binary cache (§4.3).
    pub enable_cache: bool,
    /// Collect statistics on the fly and let the planner use them (§4.4).
    pub enable_stats: bool,
    /// Run the rewrite-rule pipeline (constant folding, boolean
    /// simplification, projection pruning, predicate pushdown) between
    /// binding and planning, and let in-situ scans evaluate pushed
    /// predicates against raw field slices before full-row conversion.
    /// Results are bit-identical either way
    /// (`tests/pushdown_equivalence.rs`); off exists for differential
    /// testing and perf attribution. The `NODB_REWRITE` environment
    /// variable (`on`/`off`) overrides the constructor default.
    pub enable_rewrite: bool,
    /// Storage threshold for the positional map (attribute chunks).
    /// `None` (the default) never evicts. The `NODB_POSMAP_BUDGET`
    /// environment variable (a [`ByteSize`], e.g. `64MB`) overrides the
    /// constructor default; a malformed value is rejected at
    /// [`NoDb::new`](crate::NoDb::new) like `NODB_IO_BACKEND`.
    pub posmap_budget: Option<ByteSize>,
    /// Byte budget for the cache. `None` (the default) never evicts.
    /// The `NODB_CACHE_BUDGET` environment variable overrides the
    /// constructor default, with the same loud-failure contract as
    /// `NODB_POSMAP_BUDGET`.
    pub cache_budget: Option<ByteSize>,
    /// How strongly conversion cost protects cache entries from eviction
    /// (LRU clock ticks per cost unit; 0 = plain LRU). §4.3: "the
    /// PostgresRaw cache always gives priority to attributes more costly
    /// to convert".
    pub cache_cost_weight: u64,
    /// Tuples per positional-map block.
    pub posmap_block_rows: usize,
    /// Spill directory for evicted positional-map chunks.
    pub posmap_spill_dir: Option<PathBuf>,
    /// Offer every `stats_sample_stride`-th row to the statistics
    /// builders (1 = every row).
    pub stats_sample_stride: u64,
    /// Worker threads for cold in-situ scans. `1` (the default) keeps
    /// the classic single-threaded block-at-a-time scan; `n > 1` splits
    /// the un-indexed region of the file into `n` line-aligned byte
    /// chunks and tokenizes them concurrently, merging positional-map
    /// blocks, cache columns and the end-of-line index in row order;
    /// `0` uses one worker per available core. Results and scan metrics
    /// are identical across settings. Warm (map/cache-resident) reads
    /// are unaffected — they already run concurrently across queries
    /// under shared locks.
    ///
    /// Trade-offs of `n > 1`: the parallel pass stages the whole
    /// un-indexed tail (qualifying rows + auxiliary staging) in memory
    /// before emitting, instead of streaming block-at-a-time — on par
    /// with what result collection holds anyway, but LIMIT queries lose
    /// their early-exit; and the on-the-fly statistics *sample* is drawn
    /// per chunk rather than at global row stride, so cardinality
    /// estimates (never results) can differ slightly from a
    /// single-threaded run.
    pub scan_threads: usize,
    /// I/O substrate for raw-file scans ([`IoBackend`]): `Auto` (the
    /// default) picks `Mmap` where the platform supports it and `Read`
    /// elsewhere; `Read` forces buffered positioned reads; `Mmap` maps
    /// the file read-only and tokenizes straight out of the mapping
    /// (zero copies, page cache shared across concurrent scans).
    /// `Mmap` silently degrades to `Read` for empty files or when
    /// mapping fails — results and scan metrics are bit-identical across
    /// backends either way. The `NODB_IO_BACKEND` environment variable
    /// (`auto` / `read` / `mmap`) overrides the constructor default,
    /// which is how CI runs the whole suite under each backend.
    ///
    /// Caveat: `Mmap` assumes registered files are not truncated in
    /// place while a query runs (appends are fine — a scan sees the
    /// length snapshot from open time). Reading a mapped page past a
    /// concurrent truncation is a hard fault (SIGBUS) rather than the
    /// short read the `Read` backend degrades to; pick `Read` for files
    /// that may be rewritten under the engine.
    pub io_backend: IoBackend,
    /// Rows per [`nodb_exec::ValueBatch`] on the vectorized execution
    /// path (default 1024). Query cursors then pull column-major batches
    /// through the operator tree — predicate evaluation, projection and
    /// aggregation run per-column loops instead of per-row virtual
    /// calls. `0` selects the classic row-at-a-time Volcano pull.
    /// Results, scan metrics and auxiliary-structure contents are
    /// bit-identical across settings (`tests/batch_equivalence.rs`).
    /// The `NODB_BATCH_ROWS` environment variable overrides the
    /// constructor default; a malformed value is rejected at `NoDb::new`
    /// just like `NODB_IO_BACKEND`.
    pub batch_rows: usize,
    /// Profile for tables registered in [`AccessMode::Loaded`].
    pub loaded_profile: EngineProfile,
    /// Buffer-pool capacity (pages) for loaded tables.
    pub pool_pages: usize,
    /// Directory for loaded-mode heap files. `None` = a self-cleaning
    /// temporary directory.
    pub data_dir: Option<PathBuf>,
}

impl Default for NoDbConfig {
    fn default() -> Self {
        Self::postgres_raw()
    }
}

impl NoDbConfig {
    /// Full PostgresRaw: positional map + cache + statistics.
    pub fn postgres_raw() -> NoDbConfig {
        NoDbConfig {
            enable_posmap: true,
            enable_cache: true,
            enable_stats: true,
            enable_rewrite: knob::REWRITE.env_default().unwrap_or(true),
            posmap_budget: knob::POSMAP_BUDGET.env_default(),
            cache_budget: knob::CACHE_BUDGET.env_default(),
            cache_cost_weight: 16,
            posmap_block_rows: 4096,
            posmap_spill_dir: None,
            stats_sample_stride: 16,
            scan_threads: knob::SCAN_THREADS.env_default().unwrap_or(1),
            io_backend: knob::IO_BACKEND.env_default().unwrap_or(IoBackend::Auto),
            batch_rows: knob::BATCH_ROWS.env_default().unwrap_or(DEFAULT_BATCH_ROWS),
            loaded_profile: EngineProfile::PostgresLike,
            pool_pages: 4096,
            data_dir: None,
        }
    }

    /// The paper's "PostgresRaw PM" variant: map only.
    pub fn pm_only() -> NoDbConfig {
        NoDbConfig {
            enable_cache: false,
            ..Self::postgres_raw()
        }
    }

    /// The paper's "PostgresRaw C" variant: cache plus the minimal
    /// end-of-line index.
    pub fn cache_only() -> NoDbConfig {
        NoDbConfig {
            enable_posmap: false,
            ..Self::postgres_raw()
        }
    }

    /// Resolve [`NoDbConfig::io_backend`]: `Auto` becomes the concrete
    /// backend the platform prefers (`Mmap` on unix, `Read` elsewhere).
    pub fn effective_io_backend(&self) -> IoBackend {
        self.io_backend.resolve()
    }

    /// Resolve [`NoDbConfig::scan_threads`]: `0` means one worker per
    /// available core.
    pub fn effective_scan_threads(&self) -> usize {
        match self.scan_threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }

    /// Straw-man in-situ processing: no auxiliary structures at all.
    pub fn baseline() -> NoDbConfig {
        NoDbConfig {
            enable_posmap: false,
            enable_cache: false,
            enable_stats: false,
            ..Self::postgres_raw()
        }
    }
}

impl NoDbConfig {
    /// Set one field from a [`knob`] registry entry by
    /// its canonical name (the CLI flag minus the dashes), parsing and
    /// validating `raw` through the same routine the environment variable
    /// uses. Binaries drive their generated flag tables through this, so
    /// a new knob needs exactly one `match` arm here to reach every
    /// surface.
    pub fn set_knob(&mut self, name: &str, raw: &str) -> Result<()> {
        match name {
            "io-backend" => self.io_backend = knob::IO_BACKEND.parse(raw)?,
            "scan-threads" => self.scan_threads = knob::SCAN_THREADS.parse(raw)?,
            "batch-rows" => self.batch_rows = knob::BATCH_ROWS.parse(raw)?,
            "posmap-budget" => self.posmap_budget = Some(knob::POSMAP_BUDGET.parse(raw)?),
            "cache-budget" => self.cache_budget = Some(knob::CACHE_BUDGET.parse(raw)?),
            "rewrite" => self.enable_rewrite = knob::REWRITE.parse(raw)?,
            other => {
                return Err(nodb_common::NoDbError::config(format!(
                    "unknown knob `{other}`"
                )))
            }
        }
        Ok(())
    }

    /// Usage lines for every registered knob (`--flag VALUE  help`),
    /// aligned for a `--help` screen. Both binaries print this, so the
    /// docs can never drift from the parsers.
    pub fn knob_help() -> String {
        let width = knob::all()
            .into_iter()
            .map(|k| k.flag.len() + 1 + k.value_hint.len())
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        for k in knob::all() {
            let head = format!("{} {}", k.flag, k.value_hint);
            out.push_str(&format!(
                "  {head:<width$}   {help} [env: {env}]\n",
                help = k.help,
                env = k.env
            ));
        }
        out
    }
}

/// The batch size requested by the `NODB_BATCH_ROWS` environment
/// variable, or `None` when unset/empty. Delegates to
/// [`knob::BATCH_ROWS`]; a non-numeric or non-UTF-8 value is an error so
/// a typo in a CI matrix cannot silently re-enable batching (or disable
/// it) — engine construction (`NoDb::new`) surfaces it through
/// [`knob::validate_env`]. The configuration *default* swallows the
/// error and falls back to [`DEFAULT_BATCH_ROWS`] so a malformed value
/// cannot panic inside `Default`; the loud failure happens at
/// construction.
pub fn batch_rows_from_env() -> Result<Option<usize>> {
    knob::BATCH_ROWS.from_env()
}

/// The positional-map budget requested by the `NODB_POSMAP_BUDGET`
/// environment variable, or `None` when unset/empty. Delegates to
/// [`knob::POSMAP_BUDGET`] (`512`, `64kb`, `14.3MB`, ...), same
/// loud-failure contract as [`batch_rows_from_env`].
pub fn posmap_budget_from_env() -> Result<Option<ByteSize>> {
    knob::POSMAP_BUDGET.from_env()
}

/// The cache budget requested by the `NODB_CACHE_BUDGET` environment
/// variable, or `None` when unset/empty. Same contract as
/// [`posmap_budget_from_env`].
pub fn cache_budget_from_env() -> Result<Option<ByteSize>> {
    knob::CACHE_BUDGET.from_env()
}

/// How a registered table is accessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMode {
    /// PostgresRaw in-situ access with this engine's auxiliary
    /// structures.
    InSitu,
    /// Straw-man external files: every query re-tokenizes the whole raw
    /// file; nothing is remembered between queries (MySQL CSV engine /
    /// "DBMS X with external files").
    ExternalFiles,
    /// Conventional loaded table: must be loaded before querying
    /// ([`crate::NoDb::load_table`]); queries then read binary heap
    /// pages.
    Loaded,
}
