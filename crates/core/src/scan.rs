//! The PostgresRaw in-situ scan operator (§4).
//!
//! This operator is where the paper's techniques meet:
//!
//! * **Selective tokenizing** — sequential passes stop scanning a tuple at
//!   the last attribute the query needs.
//! * **Selective parsing** — WHERE attributes are converted first; SELECT
//!   attributes only for qualifying tuples.
//! * **Selective tuple formation** — emitted rows carry only the
//!   projected attributes.
//! * **Positional map** — once the end-of-line index covers a block, the
//!   scan jumps to known attribute positions (or the nearest indexed
//!   anchor, tokenizing forward/backward) instead of re-tokenizing from
//!   the line start; positions computed along the way are fed back.
//! * **Cache** — values converted for this query are inserted; future
//!   queries read them without touching the raw file.
//! * **Statistics** — a sample of parsed values feeds the optimizer on
//!   first touch of each attribute.
//!
//! Internally the scan works block-at-a-time (one positional-map block,
//! default 4096 tuples) for locality, but exposes the Volcano
//! one-tuple-per-call interface the host executor expects.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::Mutex;

use std::sync::Arc as StdArc;

use nodb_cache::{CachedColumn, ColumnBuilder};
use nodb_common::{NoDbError, Result, Row, Schema, Value};
use nodb_csv::lines::{LineReader, SlidingWindow};
use nodb_csv::tokenize;
use nodb_csv::CsvOptions;
use nodb_exec::{eval_predicate, Operator};
use nodb_posmap::{AttrPositions, BlockCollector};
use nodb_sql::BoundExpr;
use nodb_stats::StatsBuilder;

use crate::runtime::{RawTableRuntime, ScanMetrics};

/// Which auxiliary structures this scan may read and write.
#[derive(Debug, Clone, Copy)]
pub struct AuxFlags {
    /// Use/populate the positional map's attribute chunks.
    pub posmap: bool,
    /// Use/populate the binary cache.
    pub cache: bool,
    /// Keep the end-of-line index between queries (the minimal map; on
    /// for every variant except the external-files straw man).
    pub eol: bool,
    /// Collect statistics.
    pub stats: bool,
}

/// Immutable per-scan context (kept apart from the mutable scan state so
/// helpers can borrow them disjointly).
struct Ctx {
    schema: Schema,
    /// Projected table attributes, ascending.
    projection: Vec<usize>,
    /// Conjuncts bound to projection-space ordinals.
    filters: Vec<BoundExpr>,
    delim: u8,
    where_locals: Vec<usize>,
    select_locals: Vec<usize>,
    sample_stride: u64,
}

impl Ctx {
    fn dtype(&self, local: usize) -> nodb_common::DataType {
        self.schema.field(self.projection[local]).dtype
    }
}

/// The in-situ scan operator.
pub struct InSituScanOp {
    runtime: Arc<Mutex<RawTableRuntime>>,
    path: PathBuf,
    flags: AuxFlags,
    ctx: Ctx,

    prepared: bool,
    done: bool,
    out: VecDeque<Row>,
    window: Option<SlidingWindow>,
    reader: Option<LineReader>,
    next_row: u64,
    stat_builders: Vec<(usize, StatsBuilder)>,
}

impl InSituScanOp {
    /// Create a scan. `projection` must be ascending table ordinals;
    /// `filters` are bound against the projection layout.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        runtime: Arc<Mutex<RawTableRuntime>>,
        path: PathBuf,
        schema: Schema,
        opts: CsvOptions,
        projection: Vec<usize>,
        filters: Vec<BoundExpr>,
        flags: AuxFlags,
        sample_stride: u64,
    ) -> InSituScanOp {
        InSituScanOp {
            runtime,
            path,
            flags,
            ctx: Ctx {
                schema,
                projection,
                filters,
                delim: opts.delimiter,
                where_locals: Vec::new(),
                select_locals: Vec::new(),
                sample_stride: sample_stride.max(1),
            },
            prepared: false,
            done: false,
            out: VecDeque::new(),
            window: None,
            reader: None,
            next_row: 0,
            stat_builders: Vec::new(),
        }
    }

    fn prepare(&mut self) -> Result<()> {
        let file_len = std::fs::metadata(&self.path)?.len();
        let mut rt = self.runtime.lock();
        rt.observe_file_len(file_len)?;
        rt.metrics.scans += 1;

        let mut where_set = std::collections::BTreeSet::new();
        for f in &self.ctx.filters {
            f.referenced_columns(&mut where_set);
        }
        self.ctx.where_locals = where_set.iter().copied().collect();
        self.ctx.select_locals = (0..self.ctx.projection.len())
            .filter(|i| !where_set.contains(i))
            .collect();

        // Statistics: only for attributes whose values this scan parses
        // for *every* tuple (WHERE attributes always; SELECT attributes
        // only when there is no predicate), and without stats yet.
        if self.flags.stats {
            let candidates: Vec<usize> = if self.ctx.filters.is_empty() {
                (0..self.ctx.projection.len()).collect()
            } else {
                self.ctx.where_locals.clone()
            };
            for local in candidates {
                let attr = self.ctx.projection[local] as u32;
                if !rt.stats.has_column(attr) {
                    self.stat_builders
                        .push((local, StatsBuilder::new(self.ctx.dtype(local))));
                }
            }
        }
        self.prepared = true;
        Ok(())
    }

    /// Sequential-tokenization region: rows past the end-of-line
    /// frontier. Populates the EOL index and (optionally) map, cache and
    /// statistics while emitting qualifying tuples.
    fn process_sequential_block(&mut self, rt: &mut RawTableRuntime) -> Result<()> {
        let block_rows = rt.posmap.block_rows() as u64;
        let max_attr = self.ctx.projection.last().copied().unwrap_or(0);
        let block = rt.posmap.block_of(self.next_row);
        let block_end = (block + 1) * block_rows;

        if self.reader.is_none() {
            self.reader = Some(LineReader::open_at(&self.path, rt.posmap.eol().frontier())?);
        }
        let mut line = Vec::new();
        let mut starts: Vec<u32> = Vec::with_capacity(max_attr + 1);
        // Keep every position tokenized along the way (§4.2, "all
        // positions from 1 to 15 may be kept").
        let mut collector = if self.flags.posmap && !self.ctx.projection.is_empty() {
            Some(BlockCollector::new(block, (0..=max_attr as u32).collect()))
        } else {
            None
        };
        // Values are staged and sized to the rows actually seen (the last
        // block of a file is short; preallocating full columns would
        // inflate cache accounting).
        let mut staged: Vec<Vec<(u32, Value)>> =
            (0..self.ctx.projection.len()).map(|_| Vec::new()).collect();
        let mut row_buf: Vec<Value> = vec![Value::Null; self.ctx.projection.len()];

        while self.next_row < block_end {
            let reader = self.reader.as_mut().expect("created above");
            let Some(_line_start) = reader.next_line(&mut line)? else {
                if self.flags.eol {
                    rt.posmap.eol_mut().set_complete();
                }
                self.done = true;
                break;
            };
            let line_start = _line_start;
            let next_start = reader.offset();
            if self.flags.eol {
                rt.posmap
                    .eol_mut()
                    .record(self.next_row, line_start, next_start);
            }
            rt.metrics.bytes_tokenized += line.len() as u64 + 1;
            if self.ctx.projection.is_empty() {
                // Pure row counting (e.g. COUNT(*)): nothing to tokenize.
                self.out.push_back(Row::new());
                rt.metrics.rows_emitted += 1;
                self.next_row += 1;
                continue;
            }
            starts.clear();
            let found = tokenize::tokenize_upto(&line, self.ctx.delim, max_attr, &mut starts);
            if found < max_attr + 1 {
                return Err(NoDbError::parse(format!(
                    "row {} has {found} fields, need at least {}",
                    self.next_row,
                    max_attr + 1
                )));
            }
            rt.metrics.fields_tokenized += found as u64;
            if let Some(c) = collector.as_mut() {
                c.push_row(&starts);
            }

            // Selective parsing: WHERE attributes first.
            let local_row = (self.next_row % block_rows) as usize;
            for v in row_buf.iter_mut() {
                *v = Value::Null;
            }
            let mut ok = true;
            for li in 0..self.ctx.where_locals.len() {
                let local = self.ctx.where_locals[li];
                let start = starts[self.ctx.projection[local]];
                let v = parse_value(
                    &self.ctx,
                    &line,
                    start,
                    local,
                    self.next_row,
                    &mut rt.metrics,
                )?;
                if self.flags.cache {
                    staged[local].push((local_row as u32, v.clone()));
                }
                offer_stat(&self.ctx, &mut self.stat_builders, local, self.next_row, &v);
                row_buf[local] = v;
            }
            for f in &self.ctx.filters {
                if !eval_predicate(f, &Row(row_buf.clone()))? {
                    ok = false;
                    break;
                }
            }
            if ok {
                for li in 0..self.ctx.select_locals.len() {
                    let local = self.ctx.select_locals[li];
                    let start = starts[self.ctx.projection[local]];
                    let v = parse_value(
                        &self.ctx,
                        &line,
                        start,
                        local,
                        self.next_row,
                        &mut rt.metrics,
                    )?;
                    if self.flags.cache {
                        staged[local].push((local_row as u32, v.clone()));
                    }
                    offer_stat(&self.ctx, &mut self.stat_builders, local, self.next_row, &v);
                    row_buf[local] = v;
                }
                self.out.push_back(Row(row_buf.clone()));
                rt.metrics.rows_emitted += 1;
            }
            self.next_row += 1;
        }

        let rows_seen = (self.next_row - block * block_rows) as usize;
        if let Some(c) = collector {
            if c.rows() > 0 {
                rt.posmap.insert(c.build());
            }
        }
        if self.flags.cache && rows_seen > 0 {
            for (local, vals) in staged.into_iter().enumerate() {
                if vals.is_empty() {
                    continue;
                }
                let attr = self.ctx.projection[local];
                let mut b = ColumnBuilder::new(
                    block,
                    attr as u32,
                    self.ctx.schema.field(attr).dtype,
                    rows_seen,
                );
                for (r, v) in vals {
                    b.set(r as usize, &v);
                }
                rt.cache.insert(b.build());
            }
        }
        Ok(())
    }

    /// Map-assisted region: the EOL index covers these rows.
    fn process_mapped_block(&mut self, rt: &mut RawTableRuntime) -> Result<()> {
        let block_rows = rt.posmap.block_rows() as u64;
        let block = rt.posmap.block_of(self.next_row);
        let block_start = block * block_rows;
        let covered = rt.posmap.eol().indexed_rows();
        let cov_end = covered.min(block_start + block_rows);
        let rows = (cov_end - block_start) as usize;
        debug_assert!(rows > 0, "mapped block must cover at least one row");

        let line_starts: Vec<u64> = rt
            .posmap
            .eol()
            .starts(block_start, cov_end)
            .ok_or_else(|| NoDbError::internal("EOL coverage changed mid-scan"))?
            .to_vec();
        let end_bound = rt
            .posmap
            .eol()
            .start_of(cov_end)
            .unwrap_or_else(|| rt.posmap.eol().frontier());

        let needed: Vec<u32> = self.ctx.projection.iter().map(|&a| a as u32).collect();
        let (entries, collect) = if self.flags.posmap && !needed.is_empty() {
            // Re-collect when the combination rule fires *or* the block
            // grew past existing chunks (append, §4.5).
            let collect = rt.posmap.should_collect(block, &needed)
                || needed
                    .iter()
                    .any(|&a| (rt.posmap.covered_rows(block, a) as u64) < (cov_end - block_start));
            let view = rt.posmap.fetch_block(block, &needed);
            (view.entries, collect)
        } else {
            (vec![AttrPositions::None; needed.len()], false)
        };
        let cached: Vec<Option<StdArc<CachedColumn>>> = if self.flags.cache {
            needed.iter().map(|&a| rt.cache.get(block, a)).collect()
        } else {
            vec![None; needed.len()]
        };

        let mut collector = if collect {
            Some(BlockCollector::new(block, needed.clone()))
        } else {
            None
        };
        // Cache columns are only (re)built for attributes the file must
        // supply; fully cached columns add no write-back work — warm
        // queries must not pay for the cache they benefit from.
        let mut cache_builders: Vec<Option<ColumnBuilder>> = (0..needed.len())
            .map(|i| {
                let complete = cached[i].as_ref().is_some_and(|c| c.is_complete());
                if self.flags.cache && !complete {
                    Some(ColumnBuilder::new(
                        block,
                        needed[i],
                        self.ctx.dtype(i),
                        rows,
                    ))
                } else {
                    None
                }
            })
            .collect();
        // When every needed column is completely cached (or the query
        // needs no columns at all — COUNT(*) over an indexed region) and
        // no chunk is being collected, the raw file is not touched — the
        // paper's "avoid raw file access altogether" (§4.3).
        let all_cached = !collect
            && (needed.is_empty()
                || cached
                    .iter()
                    .all(|c| c.as_ref().is_some_and(|c| c.is_complete())));
        let mut row_buf: Vec<Value> = vec![Value::Null; needed.len()];
        let mut positions: Vec<u32> = vec![0; needed.len()];
        let mut line_buf: Vec<u8> = Vec::new();

        if self.window.is_none() && !all_cached {
            self.window = Some(SlidingWindow::open(&self.path)?);
        }

        for r in 0..rows {
            if !all_cached {
                let line_start = line_starts[r];
                let line_end = if r + 1 < rows {
                    line_starts[r + 1]
                } else {
                    end_bound
                };
                line_buf.clear();
                let w = self.window.as_mut().expect("opened above");
                let s = w.slice(line_start, (line_end - line_start) as usize)?;
                line_buf.extend_from_slice(s);
                while matches!(line_buf.last(), Some(b'\n') | Some(b'\r')) {
                    line_buf.pop();
                }
            }
            let line: &[u8] = &line_buf;

            // When collecting a new combination chunk, positions for all
            // needed attributes are resolved up front (the paper's
            // pre-computed temporary map); otherwise lazily.
            if collector.is_some() {
                for i in 0..needed.len() {
                    positions[i] = resolve_position(
                        line,
                        self.ctx.delim,
                        &needed,
                        i,
                        &entries[i],
                        r,
                        &mut rt.metrics,
                    )?;
                }
                if let Some(c) = collector.as_mut() {
                    c.push_row(&positions);
                }
            }

            for v in row_buf.iter_mut() {
                *v = Value::Null;
            }
            let row_id = block_start + r as u64;
            let mut ok = true;
            for li in 0..self.ctx.where_locals.len() {
                let local = self.ctx.where_locals[li];
                let (v, from_cache) = value_for(
                    &self.ctx,
                    line,
                    &needed,
                    local,
                    &entries,
                    &cached,
                    r,
                    collect.then_some(&positions),
                    row_id,
                    &mut rt.metrics,
                )?;
                if !from_cache {
                    if let Some(b) = cache_builders[local].as_mut() {
                        b.set(r, &v);
                    }
                    offer_stat(&self.ctx, &mut self.stat_builders, local, row_id, &v);
                }
                row_buf[local] = v;
            }
            for f in &self.ctx.filters {
                if !eval_predicate(f, &Row(row_buf.clone()))? {
                    ok = false;
                    break;
                }
            }
            if !ok {
                continue;
            }
            for li in 0..self.ctx.select_locals.len() {
                let local = self.ctx.select_locals[li];
                let (v, from_cache) = value_for(
                    &self.ctx,
                    line,
                    &needed,
                    local,
                    &entries,
                    &cached,
                    r,
                    collect.then_some(&positions),
                    row_id,
                    &mut rt.metrics,
                )?;
                if !from_cache {
                    if let Some(b) = cache_builders[local].as_mut() {
                        b.set(r, &v);
                    }
                    offer_stat(&self.ctx, &mut self.stat_builders, local, row_id, &v);
                }
                row_buf[local] = v;
            }
            self.out.push_back(Row(row_buf.clone()));
            rt.metrics.rows_emitted += 1;
        }

        if let Some(c) = collector {
            if c.rows() > 0 {
                rt.posmap.insert(c.build());
            }
        }
        insert_cache(self.flags, rt, cache_builders);
        self.next_row = cov_end;
        if rt.posmap.eol().is_complete() && Some(self.next_row) == rt.posmap.eol().row_count() {
            self.done = true;
        }
        Ok(())
    }

    fn finish_stats(&mut self) {
        if !self.flags.stats || self.stat_builders.is_empty() {
            return;
        }
        let mut rt = self.runtime.lock();
        let row_count = rt.posmap.eol().row_count();
        if let Some(n) = row_count {
            rt.stats.set_row_count(n);
        }
        let hint = row_count.map(|n| n as f64);
        for (local, b) in self.stat_builders.drain(..) {
            let attr = self.ctx.projection[local] as u32;
            if !rt.stats.has_column(attr) && b.offered() > 0 {
                rt.stats.set_column(attr, b.finalize(hint));
            }
        }
    }

    fn pump(&mut self) -> Result<()> {
        if !self.prepared {
            self.prepare()?;
        }
        while self.out.is_empty() && !self.done {
            let runtime = Arc::clone(&self.runtime);
            let mut rt = runtime.lock();
            if rt.posmap.eol().is_complete() && Some(self.next_row) == rt.posmap.eol().row_count() {
                self.done = true;
                break;
            }
            if self.flags.eol && self.next_row < rt.posmap.eol().indexed_rows() {
                self.process_mapped_block(&mut rt)?;
            } else {
                self.process_sequential_block(&mut rt)?;
            }
        }
        if self.done {
            self.finish_stats();
        }
        Ok(())
    }
}

impl Operator for InSituScanOp {
    fn next_row(&mut self) -> Result<Option<Row>> {
        loop {
            if let Some(r) = self.out.pop_front() {
                return Ok(Some(r));
            }
            if self.done {
                return Ok(None);
            }
            self.pump()?;
            if self.out.is_empty() && self.done {
                return Ok(None);
            }
        }
    }
}

// ----- free helpers (disjoint borrows of scan state) ---------------------

fn parse_value(
    ctx: &Ctx,
    line: &[u8],
    start: u32,
    local: usize,
    row_id: u64,
    metrics: &mut ScanMetrics,
) -> Result<Value> {
    let bytes = tokenize::field_at(line, ctx.delim, start);
    metrics.fields_parsed += 1;
    Value::parse_field(bytes, ctx.dtype(local)).map_err(|e| {
        NoDbError::parse(format!(
            "row {row_id}, column `{}`: {e}",
            ctx.schema.field(ctx.projection[local]).name
        ))
    })
}

fn offer_stat(
    ctx: &Ctx,
    builders: &mut [(usize, StatsBuilder)],
    local: usize,
    row_id: u64,
    v: &Value,
) {
    if builders.is_empty() || !row_id.is_multiple_of(ctx.sample_stride) {
        return;
    }
    for (l, b) in builders.iter_mut() {
        if *l == local {
            b.offer(v);
        }
    }
}

fn insert_cache(flags: AuxFlags, rt: &mut RawTableRuntime, builders: Vec<Option<ColumnBuilder>>) {
    if !flags.cache {
        return;
    }
    for b in builders.into_iter().flatten() {
        if b.filled() > 0 {
            rt.cache.insert(b.build());
        }
    }
}

/// Fetch one attribute's value for a row: cache first, then the raw file
/// via the best positional information. The boolean reports whether the
/// cache supplied it (so callers skip write-back and stats for values
/// that never touched the file).
#[allow(clippy::too_many_arguments)]
fn value_for(
    ctx: &Ctx,
    line: &[u8],
    needed: &[u32],
    local: usize,
    entries: &[AttrPositions],
    cached: &[Option<StdArc<CachedColumn>>],
    r: usize,
    precomputed: Option<&Vec<u32>>,
    row_id: u64,
    metrics: &mut ScanMetrics,
) -> Result<(Value, bool)> {
    if let Some(col) = &cached[local] {
        if let Some(v) = col.get(r) {
            metrics.fields_from_cache += 1;
            return Ok((v, true));
        }
    }
    let start = match precomputed {
        Some(p) => p[local],
        None => resolve_position(line, ctx.delim, needed, local, &entries[local], r, metrics)?,
    };
    parse_value(ctx, line, start, local, row_id, metrics).map(|v| (v, false))
}

/// Locate the start of attribute `needed[i]` on a line using the best
/// positional information, counting the work class in `metrics`.
fn resolve_position(
    line: &[u8],
    delim: u8,
    needed: &[u32],
    i: usize,
    entry: &AttrPositions,
    r: usize,
    metrics: &mut ScanMetrics,
) -> Result<u32> {
    let attr = needed[i] as usize;
    match entry {
        // Position arrays may cover fewer rows than the block after an
        // append (§4.5); rows past the indexed extent fall back to full
        // tokenization from the line start.
        AttrPositions::Exact(col) => match col.get(r) {
            Some(&p) => {
                metrics.fields_via_map += 1;
                Ok(p)
            }
            None => tokenize_to(line, delim, attr, metrics),
        },
        AttrPositions::Anchor {
            anchor_attr,
            positions,
        } => {
            let Some(&anchor) = positions.get(r) else {
                return tokenize_to(line, delim, attr, metrics);
            };
            metrics.fields_via_anchor += 1;
            let a = *anchor_attr as usize;
            let res = if a <= attr {
                tokenize::advance_forward(line, delim, anchor, a, attr)
            } else {
                tokenize::advance_backward(line, delim, anchor, a, attr)
            };
            res.ok_or_else(|| {
                NoDbError::parse(format!("row has too few fields for attribute {attr}"))
            })
        }
        AttrPositions::None => tokenize_to(line, delim, attr, metrics),
    }
}

/// Tokenize from the line start up to `attr` (the no-positional-help
/// path).
fn tokenize_to(line: &[u8], delim: u8, attr: usize, metrics: &mut ScanMetrics) -> Result<u32> {
    let mut starts = Vec::with_capacity(attr + 1);
    let found = tokenize::tokenize_upto(line, delim, attr, &mut starts);
    metrics.fields_tokenized += found as u64;
    if found < attr + 1 {
        return Err(NoDbError::parse(format!(
            "row has {found} fields, need at least {}",
            attr + 1
        )));
    }
    Ok(starts[attr])
}
