//! Micro-benchmarks of the individual substrates: tokenizer, positional
//! map, cache, tuple codec, expression evaluation and operators. These
//! quantify the per-mechanism costs behind the figure-level results
//! (e.g. how much a map jump saves over re-tokenizing a line).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use nodb_cache::{CacheConfig, ColumnBuilder, RawCache};
use nodb_common::{ByteSize, DataType, IoBackend, LineFormat, Row, Schema, TempDir, Value};
use nodb_core::{AccessMode, NoDb, NoDbConfig, Params};
use nodb_csv::tokenize;
use nodb_csv::{CsvOptions, MicroGen};
use nodb_exec::ops::{HashAggOp, HashJoinOp, Operator, RowsOp, SortAggOp};
use nodb_exec::{eval, eval_predicate};
use nodb_json::{JsonFormat, JsonlGen};
use nodb_posmap::{BlockCollector, PosMapConfig, PositionalMap};
use nodb_server::protocol::{read_frame, Frame};
use nodb_server::{NodbClient, NodbServer, ServerConfig};
use nodb_sql::expr::AggExpr;
use nodb_sql::{AggFunc, BinOp, BoundExpr, JoinKind};
use nodb_stats::StatsBuilder;

/// A 150-field CSV line like the micro-benchmark's.
fn sample_line() -> Vec<u8> {
    (0..150)
        .map(|i| ((i * 7919 + 13) % 1_000_000_000).to_string())
        .collect::<Vec<_>>()
        .join(",")
        .into_bytes()
}

fn bench_tokenizer(c: &mut Criterion) {
    let line = sample_line();
    let mut g = c.benchmark_group("substrate_tokenizer");
    g.throughput(Throughput::Bytes(line.len() as u64));
    g.bench_function("tokenize_all_150_fields", |b| {
        let mut out = Vec::with_capacity(160);
        b.iter(|| {
            out.clear();
            tokenize::tokenize_all(&line, b',', &mut out)
        });
    });
    g.bench_function("selective_tokenize_upto_10", |b| {
        let mut out = Vec::with_capacity(16);
        b.iter(|| {
            out.clear();
            tokenize::tokenize_upto(&line, b',', 10, &mut out)
        });
    });
    g.bench_function("anchored_advance_5_fields", |b| {
        let mut starts = Vec::new();
        tokenize::tokenize_all(&line, b',', &mut starts);
        let anchor = starts[100];
        b.iter(|| tokenize::advance_forward(&line, b',', anchor, 100, 105));
    });
    g.finish();
}

fn bench_parse(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_conversion");
    g.bench_function("parse_int_field", |b| {
        b.iter(|| Value::parse_field(b"123456789", DataType::Int32).expect("int"));
    });
    g.bench_function("parse_float_field", |b| {
        b.iter(|| Value::parse_field(b"12345.6789", DataType::Float64).expect("float"));
    });
    g.bench_function("parse_date_field", |b| {
        b.iter(|| Value::parse_field(b"1996-03-13", DataType::Date).expect("date"));
    });
    g.finish();
}

fn bench_posmap(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_posmap");
    // A populated map: 32 blocks × 4096 rows × 8 attrs.
    let mut map = PositionalMap::new(PosMapConfig::default());
    for block in 0..32u64 {
        let mut col = BlockCollector::new(block, (0..8).collect());
        for r in 0..4096u32 {
            let offs: Vec<u32> = (0..8).map(|a| a * 12 + r % 7).collect();
            col.push_row(&offs);
        }
        map.insert(col.build());
    }
    g.bench_function("fetch_block_exact", |b| {
        b.iter(|| map.fetch_block(7, &[2, 5]));
    });
    g.bench_function("fetch_block_anchor", |b| {
        b.iter(|| map.fetch_block(7, &[20])); // uncovered -> nearest anchor
    });
    g.bench_function("insert_chunk_4096x8", |b| {
        b.iter_batched(
            || {
                let mut col = BlockCollector::new(99, (0..8).collect());
                for r in 0..4096u32 {
                    let offs: Vec<u32> = (0..8).map(|a| a * 12 + r % 7).collect();
                    col.push_row(&offs);
                }
                col.build()
            },
            |chunk| map.insert(chunk),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_cache");
    let mut cache = RawCache::new(CacheConfig::default());
    let mut b1 = ColumnBuilder::new(0, 3, DataType::Int32, 4096);
    for i in 0..4096 {
        b1.set(i, &Value::Int32(i as i32));
    }
    cache.insert(b1.build());
    g.bench_function("lookup_hit", |b| {
        b.iter(|| cache.get(0, 3).expect("hit").get(1234));
    });
    g.bench_function("lookup_miss", |b| {
        b.iter(|| cache.get(9, 9).is_none());
    });
    g.bench_function("build_and_insert_4096_ints", |b| {
        b.iter_batched(
            || {
                let mut bu = ColumnBuilder::new(1, 1, DataType::Int32, 4096);
                for i in 0..4096 {
                    bu.set(i, &Value::Int32(i as i32));
                }
                bu.build()
            },
            |col| cache.insert(col),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_stats(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_stats");
    g.bench_function("offer_value", |b| {
        let mut builder = StatsBuilder::new(DataType::Int32);
        let mut i = 0i32;
        b.iter(|| {
            i = i.wrapping_add(977);
            builder.offer(&Value::Int32(i));
        });
    });
    g.finish();
}

fn bench_exec(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_exec");
    let row = Row(vec![
        Value::Int32(5),
        Value::Float64(2.5),
        Value::Text("PROMO ANODIZED TIN".into()),
    ]);
    let expr = BoundExpr::Binary {
        op: BinOp::Mul,
        left: Box::new(BoundExpr::Col(0)),
        right: Box::new(BoundExpr::Binary {
            op: BinOp::Sub,
            left: Box::new(BoundExpr::Lit(Value::Float64(1.0))),
            right: Box::new(BoundExpr::Col(1)),
        }),
    };
    g.bench_function("eval_arith_expr", |b| {
        b.iter(|| eval(&expr, &row).expect("eval"));
    });
    let like = BoundExpr::Like {
        expr: Box::new(BoundExpr::Col(2)),
        pattern: Box::new(BoundExpr::Lit(Value::Text("PROMO%".into()))),
        negated: false,
    };
    g.bench_function("eval_like", |b| {
        b.iter(|| eval_predicate(&like, &row).expect("eval"));
    });

    let data: Vec<Row> = (0..10_000)
        .map(|i| Row(vec![Value::Int64(i % 50), Value::Int64(i)]))
        .collect();
    let aggs = vec![AggExpr {
        func: AggFunc::Sum,
        arg: Some(BoundExpr::Col(1)),
    }];
    g.bench_function("hash_agg_10k_rows_50_groups", |b| {
        b.iter_batched(
            || Box::new(RowsOp::new(data.clone())),
            |input| {
                let mut op = HashAggOp::new(input, vec![0], aggs.clone());
                while op.next_row().expect("agg").is_some() {}
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("sort_agg_10k_rows_50_groups", |b| {
        b.iter_batched(
            || Box::new(RowsOp::new(data.clone())),
            |input| {
                let mut op = SortAggOp::new(input, vec![0], aggs.clone());
                while op.next_row().expect("agg").is_some() {}
            },
            BatchSize::SmallInput,
        );
    });

    let build: Vec<Row> = (0..1000).map(|i| Row(vec![Value::Int64(i)])).collect();
    let probe: Vec<Row> = (0..10_000)
        .map(|i| Row(vec![Value::Int64(i % 2000)]))
        .collect();
    g.bench_function("hash_join_1k_x_10k", |b| {
        b.iter_batched(
            || {
                (
                    Box::new(RowsOp::new(build.clone())),
                    Box::new(RowsOp::new(probe.clone())),
                )
            },
            |(l, r)| {
                let mut op = HashJoinOp::new(l, r, vec![(0, 0)], None, JoinKind::Inner);
                while op.next_row().expect("join").is_some() {}
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_storage(c: &mut Criterion) {
    use nodb_storage::tuple;
    let schema =
        Schema::parse("a int, b bigint, c double, d date, e text, f text").expect("schema");
    let row = Row(vec![
        Value::Int32(42),
        Value::Int64(1 << 40),
        Value::Float64(3.25),
        Value::Date(nodb_common::Date(9000)),
        Value::Text("DELIVER IN PERSON".into()),
        Value::Text("carefully final deposits".into()),
    ]);
    let mut g = c.benchmark_group("substrate_storage");
    g.bench_function("tuple_encode", |b| {
        let mut buf = Vec::new();
        b.iter(|| tuple::encode(&row, &schema, 24, &mut buf).expect("encode"));
    });
    let mut buf = Vec::new();
    tuple::encode(&row, &schema, 24, &mut buf).expect("encode");
    g.bench_function("tuple_decode_full", |b| {
        b.iter(|| tuple::decode_projected(&buf, &schema, 24, &[0, 1, 2, 3, 4, 5]).expect("decode"));
    });
    g.bench_function("tuple_decode_projected_2_of_6", |b| {
        b.iter(|| tuple::decode_projected(&buf, &schema, 24, &[0, 4]).expect("decode"));
    });
    g.finish();
}

/// Thread scaling of the in-situ scan (ISSUE 2 acceptance): cold scans
/// with 1/2/4/8 chunk workers, and warm (map/cache-resident) reads for
/// reference. Cold wall time should drop as `scan_threads` grows while
/// results stay byte-identical (asserted by the test suite; here we
/// sanity-check the row count so a broken merge cannot silently "win").
fn bench_scan_threads(c: &mut Criterion) {
    const ROWS: usize = 20_000;
    let td = TempDir::new("nodb-bench-scan").expect("tempdir");
    let path = td.file("scale.csv");
    let spec = MicroGen::default().rows(ROWS).cols(20).seed(42);
    spec.write_to(&path).expect("write");
    let schema = spec.schema();
    let query = "select c0, c9 from t where c4 < 500000000";

    let mut g = c.benchmark_group("substrate_scan_threads");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let mut cfg = NoDbConfig::postgres_raw();
        cfg.scan_threads = threads;
        let mut db = NoDb::new(cfg).expect("engine");
        db.register_csv(
            "t",
            &path,
            schema.clone(),
            CsvOptions::default(),
            AccessMode::InSitu,
        )
        .expect("register");

        // Sanity outside the timed body: a broken merge must not "win".
        let r = db.query(query).expect("query");
        assert!(!r.rows.is_empty() && r.rows.len() < ROWS);
        g.bench_function(format!("cold_scan/{threads}threads"), |b| {
            b.iter_batched(
                || db.drop_aux("t").expect("drop aux"),
                |()| db.query(query).expect("query").rows.len(),
                BatchSize::SmallInput,
            );
        });
        // Warm once so the warm benchmark reads a built map + cache.
        db.drop_aux("t").expect("drop aux");
        db.query(query).expect("warm-up");
        g.bench_function(format!("warm_scan/{threads}threads"), |b| {
            b.iter(|| db.query(query).expect("query").rows.len());
        });
    }
    g.finish();
}

/// The JSONL substrate (ISSUE 3): keyed-record tokenization cost against
/// the CSV tokenizer's, plus cold (1 and 4 workers) and warm in-situ
/// scans over a JSONL table holding the same logical rows as the CSV
/// micro table. Warm reads go through the positional map and cache, so
/// they should converge with CSV's warm numbers — that gap is the whole
/// point of the adaptive structures being format-independent.
fn bench_jsonl(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_jsonl");

    // Tokenizer: a 150-key object line, full and selective walks.
    let keys: Vec<String> = (0..150).map(|i| format!("c{i}")).collect();
    let format = JsonFormat::new(keys.clone());
    let line: Vec<u8> = {
        let fields: Vec<String> = (0..150)
            .map(|i| format!("\"c{i}\":{}", (i * 7919 + 13) % 1_000_000_000))
            .collect();
        format!("{{{}}}", fields.join(",")).into_bytes()
    };
    g.throughput(Throughput::Bytes(line.len() as u64));
    g.bench_function("tokenize_all_150_keys", |b| {
        let mut out = Vec::with_capacity(160);
        b.iter(|| {
            out.clear();
            format
                .positions_upto(&line, 149, &mut out)
                .expect("tokenize")
        });
    });
    g.bench_function("selective_tokenize_upto_10", |b| {
        let mut out = Vec::with_capacity(16);
        b.iter(|| {
            out.clear();
            format
                .positions_upto(&line, 10, &mut out)
                .expect("tokenize")
        });
    });

    // Engine-level: cold and warm scans, single- and multi-worker.
    const ROWS: usize = 20_000;
    let td = TempDir::new("nodb-bench-jsonl").expect("tempdir");
    let path = td.file("scale.jsonl");
    let spec = JsonlGen::default().rows(ROWS).cols(20).seed(42);
    let file_bytes = spec.write_to(&path).expect("write");
    // Re-anchor the group throughput: the per-line annotation above must
    // not leak onto whole-file scan numbers.
    g.throughput(Throughput::Bytes(file_bytes));
    let schema = spec.schema();
    let query = "select c0, c9 from t where c4 < 500000000";
    g.sample_size(10);
    for threads in [1usize, 4] {
        let mut cfg = NoDbConfig::postgres_raw();
        cfg.scan_threads = threads;
        let mut db = NoDb::new(cfg).expect("engine");
        db.register_jsonl("t", &path, schema.clone(), AccessMode::InSitu)
            .expect("register");
        let r = db.query(query).expect("query");
        assert!(!r.rows.is_empty() && r.rows.len() < ROWS);
        g.bench_function(format!("cold_scan/{threads}threads"), |b| {
            b.iter_batched(
                || db.drop_aux("t").expect("drop aux"),
                |()| db.query(query).expect("query").rows.len(),
                BatchSize::SmallInput,
            );
        });
        db.drop_aux("t").expect("drop aux");
        db.query(query).expect("warm-up");
        g.bench_function(format!("warm_scan/{threads}threads"), |b| {
            b.iter(|| db.query(query).expect("query").rows.len());
        });
    }
    g.finish();
}

/// The I/O-substrate group (ISSUE 4): buffered-`read` vs `mmap` under
/// the same scans. Cold scans measure the raw tokenization path (where
/// the zero-copy mapping should win — fewer syscalls, no double
/// buffering); warm scans measure map/cache-resident reads (where the
/// backends should converge, since the raw file is barely touched).
/// CSV and JSONL hold the same logical rows; 1 vs 4 scan threads shows
/// the mapping being shared across chunk workers instead of each worker
/// re-reading through its own buffer. Row counts are asserted equal
/// across every combination outside the timed bodies, so a diverging
/// backend cannot silently "win".
fn bench_io_backend(c: &mut Criterion) {
    const ROWS: usize = 12_000;
    let td = TempDir::new("nodb-bench-io").expect("tempdir");
    let csv_path = td.file("io.csv");
    let csv_spec = MicroGen::default().rows(ROWS).cols(20).seed(7);
    csv_spec.write_to(&csv_path).expect("write csv");
    let csv_schema = csv_spec.schema();
    let jsonl_path = td.file("io.jsonl");
    let jsonl_spec = JsonlGen::default().rows(ROWS).cols(20).seed(7);
    jsonl_spec.write_to(&jsonl_path).expect("write jsonl");
    let jsonl_schema = jsonl_spec.schema();
    let query = "select c0, c9 from t where c4 < 500000000";

    let mut g = c.benchmark_group("substrate_io_backend");
    g.sample_size(10);
    let mut expected_rows: Option<usize> = None;
    for (fmt, path, schema) in [
        ("csv", &csv_path, &csv_schema),
        ("jsonl", &jsonl_path, &jsonl_schema),
    ] {
        for backend in [IoBackend::Read, IoBackend::Mmap] {
            for threads in [1usize, 4] {
                let mut cfg = NoDbConfig::postgres_raw();
                cfg.scan_threads = threads;
                cfg.io_backend = backend;
                let mut db = NoDb::new(cfg).expect("engine");
                if fmt == "csv" {
                    db.register_csv(
                        "t",
                        path,
                        schema.clone(),
                        CsvOptions::default(),
                        AccessMode::InSitu,
                    )
                    .expect("register");
                } else {
                    db.register_jsonl("t", path, schema.clone(), AccessMode::InSitu)
                        .expect("register");
                }
                let n = db.query(query).expect("query").rows.len();
                assert!(n > 0 && n < ROWS);
                match expected_rows {
                    None => expected_rows = Some(n),
                    Some(e) => assert_eq!(n, e, "{fmt}/{backend}/{threads}: rows diverged"),
                }
                g.bench_function(format!("cold_scan/{fmt}/{backend}/{threads}threads"), |b| {
                    b.iter_batched(
                        || db.drop_aux("t").expect("drop aux"),
                        |()| db.query(query).expect("query").rows.len(),
                        BatchSize::SmallInput,
                    );
                });
                // Warm once so the warm benchmark reads a built map + cache.
                db.drop_aux("t").expect("drop aux");
                db.query(query).expect("warm-up");
                g.bench_function(format!("warm_scan/{fmt}/{backend}/{threads}threads"), |b| {
                    b.iter(|| db.query(query).expect("query").rows.len());
                });
            }
        }
    }
    g.finish();
}

/// Prepared-statement amortization (ISSUE 5): one-shot `NoDb::query`
/// — which lexes, parses, binds and optimizes every call — against
/// `Statement::execute` on a statement prepared once, which only
/// substitutes parameters, refreshes stats-driven choices and rebuilds
/// the operator tree. Cold scans are dominated by raw-file work (the
/// two should converge); warm scans are where the per-call preparation
/// tax shows, so `warm_prepared` should sit measurably under
/// `warm_one_shot`. `prepare_only` prices the amortized work itself.
/// Row counts are asserted identical outside the timed bodies.
fn bench_prepared(c: &mut Criterion) {
    const ROWS: usize = 6_000;
    let td = TempDir::new("nodb-bench-prepared").expect("tempdir");
    let csv_path = td.file("p.csv");
    let csv_spec = MicroGen::default().rows(ROWS).cols(20).seed(11);
    csv_spec.write_to(&csv_path).expect("write csv");
    let csv_schema = csv_spec.schema();
    let jsonl_path = td.file("p.jsonl");
    let jsonl_spec = JsonlGen::default().rows(ROWS).cols(20).seed(11);
    jsonl_spec.write_to(&jsonl_path).expect("write jsonl");
    let jsonl_schema = jsonl_spec.schema();
    let literal = "select c0, c9 from t where c4 < 500000000";
    let parameterized = "select c0, c9 from t where c4 < ?";

    let mut g = c.benchmark_group("substrate_prepared");
    g.sample_size(10);
    for (fmt, path, schema) in [
        ("csv", &csv_path, &csv_schema),
        ("jsonl", &jsonl_path, &jsonl_schema),
    ] {
        let mut db = NoDb::new(NoDbConfig::postgres_raw()).expect("engine");
        if fmt == "csv" {
            db.register_csv(
                "t",
                path,
                schema.clone(),
                CsvOptions::default(),
                AccessMode::InSitu,
            )
            .expect("register");
        } else {
            db.register_jsonl("t", path, schema.clone(), AccessMode::InSitu)
                .expect("register");
        }
        let db = db; // freeze the catalog; statements borrow it
        let stmt = db.prepare(parameterized).expect("prepare");
        let params = Params::new().bind(500_000_000i64);

        // Differential sanity outside the timed bodies: the prepared
        // path must not "win" by returning different rows.
        let a = stmt.query(&params).expect("prepared").rows;
        let b = db.query(literal).expect("literal").rows;
        assert!(!a.is_empty() && a == b, "{fmt}: prepared != literal");

        g.bench_function(format!("prepare_only/{fmt}"), |b| {
            b.iter(|| db.prepare(parameterized).expect("prepare"));
        });
        g.bench_function(format!("cold_scan_one_shot/{fmt}"), |b| {
            b.iter_batched(
                || db.drop_aux("t").expect("drop aux"),
                |()| db.query(literal).expect("query").rows.len(),
                BatchSize::SmallInput,
            );
        });
        g.bench_function(format!("cold_scan_prepared/{fmt}"), |b| {
            b.iter_batched(
                || db.drop_aux("t").expect("drop aux"),
                |()| stmt.query(&params).expect("query").rows.len(),
                BatchSize::SmallInput,
            );
        });
        // Warm once so both warm benchmarks read built structures.
        db.drop_aux("t").expect("drop aux");
        db.query(literal).expect("warm-up");
        g.bench_function(format!("warm_one_shot/{fmt}"), |b| {
            b.iter(|| db.query(literal).expect("query").rows.len());
        });
        g.bench_function(format!("warm_prepared/{fmt}"), |b| {
            b.iter(|| stmt.query(&params).expect("query").rows.len());
        });
        // Streaming execute without materialization: the cursor is
        // drained by count, never collected into a Vec.
        g.bench_function(format!("warm_prepared_stream/{fmt}"), |b| {
            b.iter(|| {
                stmt.execute(&params)
                    .expect("execute")
                    .fold(0usize, |n, r| {
                        r.expect("row");
                        n + 1
                    })
            });
        });
    }
    g.finish();
}

/// The vectorized batch path (ISSUE 7): the same cold and warm in-situ
/// scans as the other engine-level groups, run with the row-at-a-time
/// pull (`batch_rows = 0`) and the 1024-row batch pull side by side,
/// over CSV and JSONL. `batch1024` should sit at or under `row` on both
/// temperatures — the batch path amortizes the per-tuple virtual call
/// and `Vec` allocation between operators while doing bit-identical
/// work (proved by `tests/batch_equivalence.rs`, asserted cheaply here
/// via row counts outside the timed bodies). The micro pair prices the
/// columnar expression evaluator against row-at-a-time `eval` on a full
/// 1024-row batch of a typical arithmetic-filter expression.
fn bench_batch(c: &mut Criterion) {
    use nodb_exec::{eval_predicate_batch, ValueBatch};

    let mut g = c.benchmark_group("substrate_batch");

    // Micro: predicate over 1024 rows, columnar vs row-at-a-time.
    let rows: Vec<Row> = (0..1024)
        .map(|i| Row(vec![Value::Int64(i % 97), Value::Float64(i as f64 / 8.0)]))
        .collect();
    let batch = ValueBatch::from_rows(rows.clone());
    let pred = BoundExpr::Binary {
        op: BinOp::And,
        left: Box::new(BoundExpr::Binary {
            op: BinOp::Gt,
            left: Box::new(BoundExpr::Col(0)),
            right: Box::new(BoundExpr::Lit(Value::Int64(10))),
        }),
        right: Box::new(BoundExpr::Binary {
            op: BinOp::Lt,
            left: Box::new(BoundExpr::Col(1)),
            right: Box::new(BoundExpr::Lit(Value::Float64(100.0))),
        }),
    };
    g.bench_function("eval_predicate_1024/columnar", |b| {
        b.iter(|| eval_predicate_batch(&pred, &batch).expect("eval"));
    });
    g.bench_function("eval_predicate_1024/row_at_a_time", |b| {
        b.iter(|| {
            rows.iter()
                .map(|r| eval_predicate(&pred, r).expect("eval"))
                .filter(|&k| k)
                .count()
        });
    });

    // Engine-level: cold and warm scans, batch off vs on, CSV and JSONL.
    const ROWS: usize = 12_000;
    let td = TempDir::new("nodb-bench-batch").expect("tempdir");
    let csv_path = td.file("b.csv");
    let csv_spec = MicroGen::default().rows(ROWS).cols(20).seed(31);
    csv_spec.write_to(&csv_path).expect("write csv");
    let csv_schema = csv_spec.schema();
    let jsonl_path = td.file("b.jsonl");
    let jsonl_spec = JsonlGen::default().rows(ROWS).cols(20).seed(31);
    jsonl_spec.write_to(&jsonl_path).expect("write jsonl");
    let jsonl_schema = jsonl_spec.schema();
    let query = "select c0, c9 from t where c4 < 500000000";

    g.sample_size(10);
    let mut expected_rows: Option<usize> = None;
    for (fmt, path, schema) in [
        ("csv", &csv_path, &csv_schema),
        ("jsonl", &jsonl_path, &jsonl_schema),
    ] {
        for (label, batch_rows) in [("row", 0usize), ("batch1024", 1024)] {
            let mut cfg = NoDbConfig::postgres_raw();
            cfg.batch_rows = batch_rows;
            let mut db = NoDb::new(cfg).expect("engine");
            if fmt == "csv" {
                db.register_csv(
                    "t",
                    path,
                    schema.clone(),
                    CsvOptions::default(),
                    AccessMode::InSitu,
                )
                .expect("register");
            } else {
                db.register_jsonl("t", path, schema.clone(), AccessMode::InSitu)
                    .expect("register");
            }
            // Differential sanity outside the timed bodies: the batch
            // path must not "win" by emitting different rows.
            let n = db.query(query).expect("query").rows.len();
            assert!(n > 0 && n < ROWS);
            match expected_rows {
                None => expected_rows = Some(n),
                Some(e) => assert_eq!(n, e, "{fmt}/{label}: rows diverged"),
            }
            g.bench_function(format!("cold_scan/{fmt}/{label}"), |b| {
                b.iter_batched(
                    || db.drop_aux("t").expect("drop aux"),
                    |()| db.query(query).expect("query").rows.len(),
                    BatchSize::SmallInput,
                );
            });
            // Warm once so the warm benchmark reads a built map + cache.
            db.drop_aux("t").expect("drop aux");
            db.query(query).expect("warm-up");
            g.bench_function(format!("warm_scan/{fmt}/{label}"), |b| {
                b.iter(|| db.query(query).expect("query").rows.len());
            });
        }
    }
    g.finish();
}

/// The server path priced against its embedded equivalent: protocol
/// frame codec micro-costs, then whole-query round-trips over loopback
/// TCP — cold (aux dropped per iteration) and warm (map/cache-resident)
/// — next to the same statement on the engine directly. The spread
/// between `warm_query/tcp` and `warm_query/embedded` is the wire tax;
/// `cold_scan/*` pairs gate the raw-scan path like every other group.
fn bench_server(c: &mut Criterion) {
    const ROWS: usize = 6_000;
    let td = TempDir::new("nodb-bench-server").expect("tempdir");
    let path = td.file("s.csv");
    let spec = MicroGen::default().rows(ROWS).cols(20).seed(23);
    spec.write_to(&path).expect("write csv");
    let schema = spec.schema();
    let query = "select c0, c9 from t where c4 < 500000000";

    let mut g = c.benchmark_group("substrate_server");
    g.sample_size(10);

    // Protocol codec micro-costs: one 20-column row frame.
    let row_frame = Frame::Row(Row((0..20).map(Value::Int64).collect()));
    let row_bytes = row_frame.to_bytes().expect("encode");
    g.throughput(Throughput::Bytes(row_bytes.len() as u64));
    g.bench_function("encode_row", |b| {
        let mut buf = Vec::with_capacity(row_bytes.len());
        b.iter(|| {
            buf.clear();
            row_frame.encode(&mut buf).expect("encode");
            buf.len()
        });
    });
    g.bench_function("decode_row", |b| {
        b.iter(|| {
            read_frame(&mut &row_bytes[..])
                .expect("read")
                .expect("frame")
        });
    });

    // Whole-query round-trips over loopback TCP vs the embedded engine.
    let mut db = NoDb::new(NoDbConfig::postgres_raw()).expect("engine");
    db.register_csv(
        "t",
        &path,
        schema.clone(),
        CsvOptions::default(),
        AccessMode::InSitu,
    )
    .expect("register");
    let db = std::sync::Arc::new(db);
    let server = NodbServer::bind_tcp(
        std::sync::Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = server.handle();
    let serving = std::thread::spawn(move || server.serve());
    let mut client = NodbClient::connect(&addr).expect("connect");

    // Differential sanity outside the timed bodies.
    let over_wire = client.query(query).expect("server query").rows;
    let embedded = db.query(query).expect("embedded query").rows;
    assert!(
        !over_wire.is_empty() && over_wire == embedded,
        "server result diverged from embedded"
    );

    g.bench_function("cold_scan/tcp", |b| {
        b.iter_batched(
            || db.drop_aux("t").expect("drop aux"),
            |()| client.query(query).expect("query").rows.len(),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("cold_scan/embedded", |b| {
        b.iter_batched(
            || db.drop_aux("t").expect("drop aux"),
            |()| db.query(query).expect("query").rows.len(),
            BatchSize::SmallInput,
        );
    });
    // Warm once so both warm benchmarks read built structures.
    db.drop_aux("t").expect("drop aux");
    db.query(query).expect("warm-up");
    g.bench_function("warm_query/tcp", |b| {
        b.iter(|| client.query(query).expect("query").rows.len());
    });
    g.bench_function("warm_query/embedded", |b| {
        b.iter(|| db.query(query).expect("query").rows.len());
    });

    client.close().expect("close");
    handle.shutdown();
    serving
        .join()
        .expect("server thread")
        .expect("server result");
    g.finish();
}

/// Cost of living under an auxiliary-structure budget (ISSUE 8): the
/// same warm workload on an unbudgeted engine, one whose budgets never
/// bind (pure enforcement overhead — should be noise), and one capped
/// at half the measured working set (evicted state is re-read from the
/// raw file, pricing the budget's I/O tax). Cold scans bound the
/// build-plus-enforce path. Row counts are asserted identical outside
/// the timed bodies.
fn bench_budget(c: &mut Criterion) {
    const ROWS: usize = 8_000;
    let td = TempDir::new("nodb-bench-budget").expect("tempdir");
    let csv_path = td.file("b.csv");
    let csv_spec = MicroGen::default().rows(ROWS).cols(20).seed(23);
    csv_spec.write_to(&csv_path).expect("write csv");
    let csv_schema = csv_spec.schema();
    let query = "select c0, c9 from t where c4 < 500000000";

    let engine = |posmap: Option<ByteSize>, cache: Option<ByteSize>| {
        let mut cfg = NoDbConfig::postgres_raw();
        cfg.scan_threads = 1;
        cfg.io_backend = IoBackend::Read;
        cfg.posmap_budget = posmap;
        cfg.cache_budget = cache;
        let mut db = NoDb::new(cfg).expect("engine");
        db.register_csv(
            "t",
            &csv_path,
            csv_schema.clone(),
            CsvOptions::default(),
            AccessMode::InSitu,
        )
        .expect("register");
        db
    };

    // Measure the unbudgeted working set to size the binding budgets.
    let free = engine(None, None);
    let expected = free.query(query).expect("probe").rows.len();
    assert!(expected > 0 && expected < ROWS);
    let aux = free.aux_info("t").expect("aux");
    let half_pm = ByteSize((aux.posmap_bytes / 2) as u64);
    let half_cache = ByteSize((aux.cache_bytes / 2) as u64);
    let slack = Some(ByteSize::gb(1));

    let mut g = c.benchmark_group("substrate_budget");
    g.sample_size(10);
    for (name, db) in [
        ("unbudgeted", free),
        ("slack_budget", engine(slack, slack)),
        ("half_working_set", engine(Some(half_pm), Some(half_cache))),
    ] {
        assert_eq!(
            db.query(query).expect("query").rows.len(),
            expected,
            "{name}"
        );
        g.bench_function(format!("cold_scan/{name}"), |b| {
            b.iter_batched(
                || db.drop_aux("t").expect("drop aux"),
                |()| db.query(query).expect("query").rows.len(),
                BatchSize::SmallInput,
            );
        });
        db.drop_aux("t").expect("drop aux");
        db.query(query).expect("warm-up");
        g.bench_function(format!("warm_scan/{name}"), |b| {
            b.iter(|| db.query(query).expect("query").rows.len());
        });
    }
    g.finish();
}

/// Predicate pushdown into the tokenizer (ISSUE 9): a wide 64-field
/// table scanned with a ~1%-selective predicate on a late column
/// (attribute 48, 75% of the way into the record) projecting the last
/// one (attribute 63), with the rewrite pipeline off vs on. The
/// engines run the paper's baseline configuration (no auxiliary
/// structures), where the lean-scan guard permits early rejection:
/// with pushdown, the ~99% of rows failing `c48 < 10⁷` end
/// tokenization at attribute 48 instead of 63, so
/// `cold_scan/pushdown_on` must sit well under `cold_scan/pushdown_off`
/// (the ≥20% acceptance win; the saved work is proved by counters in
/// `tests/pushdown_equivalence.rs`, which also proves the rows are
/// bit-identical — asserted cheaply here too, so a wrong early-reject
/// cannot "win"). Under the full adaptive config the guard disables
/// early rejection while structures are being built, so the `adaptive`
/// pair prices the rewrite pipeline itself — those two should be noise.
fn bench_pushdown(c: &mut Criterion) {
    const ROWS: usize = 20_000;
    let td = TempDir::new("nodb-bench-pushdown").expect("tempdir");
    let path = td.file("wide.csv");
    let spec = MicroGen::default().rows(ROWS).cols(64).seed(97);
    spec.write_to(&path).expect("write");
    let schema = spec.schema();
    let query = "select c63 from t where c48 < 10000000";

    let engine = |base: NoDbConfig, rewrite: bool| {
        let mut cfg = base;
        cfg.enable_rewrite = rewrite;
        let mut db = NoDb::new(cfg).expect("engine");
        db.register_csv(
            "t",
            &path,
            schema.clone(),
            CsvOptions::default(),
            AccessMode::InSitu,
        )
        .expect("register");
        db
    };

    let mut g = c.benchmark_group("substrate_pushdown");
    g.sample_size(10);
    let mut expected_rows: Option<usize> = None;
    for (label, db) in [
        ("pushdown_off", engine(NoDbConfig::baseline(), false)),
        ("pushdown_on", engine(NoDbConfig::baseline(), true)),
    ] {
        // Differential sanity outside the timed body: early rejection
        // must not change the result.
        let n = db.query(query).expect("query").rows.len();
        assert!(n > 0 && n < ROWS / 10, "predicate not selective: {n}");
        match expected_rows {
            None => expected_rows = Some(n),
            Some(e) => assert_eq!(n, e, "{label}: rows diverged"),
        }
        // The baseline config builds nothing, so every scan is cold.
        g.bench_function(format!("cold_scan/{label}"), |b| {
            b.iter(|| db.query(query).expect("query").rows.len());
        });
    }
    for (label, db) in [
        ("rewrite_off", engine(NoDbConfig::postgres_raw(), false)),
        ("rewrite_on", engine(NoDbConfig::postgres_raw(), true)),
    ] {
        assert_eq!(
            db.query(query).expect("query").rows.len(),
            expected_rows.expect("set above"),
            "{label}: rows diverged"
        );
        g.bench_function(format!("cold_scan/adaptive/{label}"), |b| {
            b.iter_batched(
                || db.drop_aux("t").expect("drop aux"),
                |()| db.query(query).expect("query").rows.len(),
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

criterion_group!(
    substrates,
    bench_tokenizer,
    bench_parse,
    bench_posmap,
    bench_cache,
    bench_stats,
    bench_exec,
    bench_storage,
    bench_scan_threads,
    bench_jsonl,
    bench_io_backend,
    bench_prepared,
    bench_batch,
    bench_server,
    bench_budget,
    bench_pushdown
);
criterion_main!(substrates);
