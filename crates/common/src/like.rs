//! SQL `LIKE` pattern matching (`%` = any run, `_` = any single char).
//!
//! Shared by the expression evaluator (nodb-exec) and selectivity
//! estimation (nodb-stats). Matching is byte-oriented and case-sensitive,
//! as in PostgreSQL.

/// Does `text` match the SQL LIKE `pattern`?
///
/// Iterative two-pointer algorithm with backtracking to the last `%`;
/// O(n·m) worst case, linear on typical patterns.
pub fn like_match(text: &str, pattern: &str) -> bool {
    let t = text.as_bytes();
    let p = pattern.as_bytes();
    let (mut ti, mut pi) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None; // (pattern idx after %, text idx)
    while ti < t.len() {
        if pi < p.len() && (p[pi] == b'_' || p[pi] == t[ti]) && p[pi] != b'%' {
            ti += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == b'%' {
            star = Some((pi + 1, ti));
            pi += 1;
        } else if let Some((sp, st)) = star {
            // Backtrack: let % absorb one more character.
            pi = sp;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == b'%' {
        pi += 1;
    }
    pi == p.len()
}

/// The literal prefix of a pattern (bytes before the first wildcard),
/// useful for range-based selectivity estimation.
pub fn literal_prefix(pattern: &str) -> &str {
    match pattern.find(['%', '_']) {
        Some(i) => &pattern[..i],
        None => pattern,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_without_wildcards() {
        assert!(like_match("abc", "abc"));
        assert!(!like_match("abc", "abd"));
        assert!(!like_match("abc", "ab"));
        assert!(!like_match("ab", "abc"));
    }

    #[test]
    fn percent_matches_any_run() {
        assert!(like_match("PROMO BURNISHED", "PROMO%"));
        assert!(!like_match("STANDARD BURNISHED", "PROMO%"));
        assert!(like_match("abcdef", "%def"));
        assert!(like_match("abcdef", "a%f"));
        assert!(like_match("abcdef", "%cd%"));
        assert!(like_match("", "%"));
        assert!(like_match("anything", "%%"));
    }

    #[test]
    fn underscore_matches_single_char() {
        assert!(like_match("cat", "c_t"));
        assert!(!like_match("cart", "c_t"));
        assert!(like_match("cart", "c__t"));
        assert!(!like_match("", "_"));
    }

    #[test]
    fn mixed_wildcards_backtrack() {
        assert!(like_match("xayybzc", "%a%b%c"));
        assert!(like_match("mississippi", "%iss%pi"));
        assert!(!like_match("mississipp", "%iss%pi"));
        assert!(like_match("abab", "%ab"));
    }

    #[test]
    fn prefix_extraction() {
        assert_eq!(literal_prefix("PROMO%"), "PROMO");
        assert_eq!(literal_prefix("a_c"), "a");
        assert_eq!(literal_prefix("abc"), "abc");
        assert_eq!(literal_prefix("%x"), "");
    }
}
