//! Differential proof that the rewrite pipeline — constant folding,
//! boolean simplification, projection pruning, and predicate pushdown
//! into the tokenizer — is an *identity* transformation on everything
//! the user can observe: for a shared query corpus, an engine with
//! `enable_rewrite = true` must produce rows **bit-identical** to one
//! with the pipeline disabled, and must leave behind bit-identical
//! auxiliary structures (positional-map pointers/bytes, cache bytes,
//! analyzed attributes), across
//!
//! * CSV and JSON Lines physical layouts,
//! * 1 and 4 cold-scan worker threads,
//! * both I/O substrates (`Read` and `Mmap`),
//! * row-at-a-time (`batch_rows = 0`) and vectorized (`1024`) pulls,
//! * cold (structure-building) and warm (structure-serving) scans.
//!
//! What *may* differ is the work: the final test proves the point of
//! the whole feature with counters, not wall clock — under a no-aux
//! config a selective predicate on an early column makes the scan
//! tokenize **strictly fewer** fields, because rows rejected at the
//! predicate frontier never have their remaining fields located.

use std::path::PathBuf;

use nodb::common::{IoBackend, Row, Schema, TempDir, Value};
use nodb::core::{AccessMode, NoDb, NoDbConfig};
use nodb::csv::{CsvOptions, CsvWriter};
use nodb::json::{JsonlOptions, JsonlWriter};

const SCHEMA: &str = "id int, grp text, score double, flag bool, note text, big bigint";
const ROWS: usize = 997; // prime: chunk and batch boundaries never align

/// Every rewrite the pipeline performs has queries here that trigger
/// it; every pushdown fast path (int/float/text comparison, LIKE
/// prefix/suffix, IS NULL) has a conjunct that reaches the tokenizer.
const QUERIES: &[&str] = &[
    // Comparison pushdown on every affinity, early and late columns.
    "select id, note from t where grp = 'alpha'",
    "select id from t where score > 9.0 order by id",
    "select count(*) from t where big > 1000000010000",
    "select id, big from t where id >= 900 and score < 6.0",
    // LIKE prefix / suffix fast paths and the general fallback.
    "select id from t where note like 'with%' order by id",
    "select count(*) from t where note like '%slash'",
    "select count(*) from t where note like '%qu%'",
    // IS NULL / IS NOT NULL against the raw field slice.
    "select count(*) from t where grp is null",
    "select id from t where score is not null and score < 0.5 order by id",
    // Constant folding and boolean simplification.
    "select id from t where id > 10 + 5 and 1 = 1 order by id limit 7",
    "select count(*) from t where 1 = 2 or score > 11.0",
    "select count(*) from t where not (id < 900)",
    // Projection pruning: wide intermediate, narrow output.
    "select grp, count(*), sum(score) from t group by grp order by grp",
    "select distinct flag from t order by flag",
    // Shapes pushdown must leave alone: disjunctions across columns,
    // expressions over the column, row-crossing operators.
    "select count(*) from t where grp = 'beta' or big < 1000000000500",
    "select count(*) from t where id <> 0 and big / id > 0",
    "select id, score * 2.0 + 1.0 from t where flag order by id limit 17",
];

fn data_rows() -> Vec<Row> {
    let groups = ["alpha", "beta", "gamma", "delta"];
    let notes = ["plain", "with \"quotes\"", "back\\slash", "caf\u{e9}", ""];
    (0..ROWS)
        .map(|i| {
            let null = |k: usize| i % k == k - 1;
            Row(vec![
                Value::Int32(i as i32),
                if null(13) {
                    Value::Null
                } else {
                    Value::Text(groups[i % groups.len()].into())
                },
                if null(7) {
                    Value::Null
                } else {
                    Value::Float64((i % 100) as f64 / 8.0)
                },
                if null(17) {
                    Value::Null
                } else {
                    Value::Bool(i % 3 == 0)
                },
                if null(5) {
                    Value::Null
                } else {
                    Value::Text(notes[i % notes.len()].into())
                },
                Value::Int64(1_000_000_000_000 + i as i64 * 37),
            ])
        })
        .collect()
}

struct Fixture {
    _td: TempDir,
    csv: PathBuf,
    jsonl: PathBuf,
    schema: Schema,
}

fn fixture() -> Fixture {
    let td = TempDir::new("nodb-pushdown-eq").unwrap();
    let schema = Schema::parse(SCHEMA).unwrap();
    let data = data_rows();
    let csv = td.file("t.csv");
    let mut w = CsvWriter::create(&csv, CsvOptions::default()).unwrap();
    for r in &data {
        w.write_row(r).unwrap();
    }
    w.finish().unwrap();
    let jsonl = td.file("t.jsonl");
    let mut w = JsonlWriter::create(&jsonl, &schema, JsonlOptions::default()).unwrap();
    for r in &data {
        w.write_row(r).unwrap();
    }
    w.finish().unwrap();
    Fixture {
        _td: td,
        csv,
        jsonl,
        schema,
    }
}

fn config(rewrite: bool, batch_rows: usize, threads: usize, io: IoBackend) -> NoDbConfig {
    let mut cfg = NoDbConfig::postgres_raw();
    cfg.enable_rewrite = rewrite;
    cfg.batch_rows = batch_rows;
    cfg.scan_threads = threads;
    cfg.io_backend = io;
    // Small map blocks so multi-threaded runs cut real chunks out of
    // this corpus and batches straddle block boundaries.
    cfg.posmap_block_rows = 128;
    cfg
}

fn engine(f: &Fixture, cfg: NoDbConfig, jsonl: bool) -> NoDb {
    let mut db = NoDb::new(cfg).unwrap();
    if jsonl {
        db.register_jsonl("t", &f.jsonl, f.schema.clone(), AccessMode::InSitu)
            .unwrap();
    } else {
        db.register_csv(
            "t",
            &f.csv,
            f.schema.clone(),
            CsvOptions::default(),
            AccessMode::InSitu,
        )
        .unwrap();
    }
    db
}

/// The auxiliary-structure footprint after some queries. Rows must be
/// identical *and* the structures left behind must be identical — a
/// rewrite that changed what the positional map or cache absorbed
/// would poison every later query's performance profile.
fn aux(db: &NoDb) -> (usize, u64, usize, usize) {
    let a = db.aux_info("t").unwrap();
    (
        a.posmap_bytes,
        a.posmap_pointers,
        a.cache_bytes,
        a.stats_attrs,
    )
}

fn assert_lockstep(plain: &NoDb, rewritten: &NoDb, ctx: &str) {
    for q in QUERIES {
        let want = plain.query(q).unwrap();
        let got = rewritten.query(q).unwrap();
        assert_eq!(want.rows, got.rows, "{ctx}: rows differ for `{q}`");
        assert_eq!(
            aux(plain),
            aux(rewritten),
            "{ctx}: aux structures diverge after `{q}`"
        );
    }
}

/// The main differential matrix: rewrite on vs off over format ×
/// threads × I/O backend × batch mode, each pair run cold then warm.
#[test]
fn rewrite_pipeline_is_invisible_in_rows_and_aux() {
    let f = fixture();
    for jsonl in [false, true] {
        for threads in [1usize, 4] {
            for io in [IoBackend::Read, IoBackend::Mmap] {
                for batch in [0usize, 1024] {
                    let plain = engine(&f, config(false, batch, threads, io), jsonl);
                    let rewritten = engine(&f, config(true, batch, threads, io), jsonl);
                    let ctx = format!(
                        "{} threads={threads} io={io:?} batch={batch}",
                        if jsonl { "jsonl" } else { "csv" }
                    );
                    assert_lockstep(&plain, &rewritten, &format!("{ctx} cold"));
                    assert_lockstep(&plain, &rewritten, &format!("{ctx} warm"));
                }
            }
        }
    }
}

/// The work proof. Under a no-aux config (nothing to populate, so the
/// lean-scan guard permits early rejection) a selective predicate on
/// an early column with a late output column must make the scan
/// tokenize strictly fewer fields than the same query without the
/// rewrite pipeline: rows rejected at the predicate frontier never
/// have their trailing fields located. This is the NoDB selective-
/// tokenization idea extended below the row boundary — the counters
/// prove the saved work exists rather than inferring it from time.
#[test]
fn pushdown_tokenizes_strictly_fewer_fields_on_a_no_aux_scan() {
    let f = fixture();
    // `grp` is attribute 1; `note`/`big` are attributes 4 and 5. A row
    // failing `grp = 'alpha'` ends tokenization at attribute 1 under
    // pushdown; without it the scan must locate through attribute 5.
    let q = "select note, big from t where grp = 'alpha'";

    let run = |rewrite: bool| {
        let mut cfg = NoDbConfig::baseline();
        cfg.enable_rewrite = rewrite;
        let db = engine(&f, cfg, false);
        let rows = db.query(q).unwrap().rows;
        (rows, db.metrics("t").unwrap())
    };
    let (want, off) = run(false);
    let (got, on) = run(true);

    assert_eq!(want, got, "pushdown changed the result");
    assert_eq!(off.rows_rejected_early, 0, "{off:?}");
    assert_eq!(off.fields_skipped_early, 0, "{off:?}");
    assert!(
        on.rows_rejected_early > 0,
        "no rows rejected at the predicate frontier: {on:?}"
    );
    assert!(
        on.fields_skipped_early > 0,
        "no fields skipped by early rejection: {on:?}"
    );
    assert!(
        on.fields_tokenized < off.fields_tokenized,
        "pushdown did not reduce tokenization: on={} off={}",
        on.fields_tokenized,
        off.fields_tokenized
    );
    // The skipped fields account exactly for the difference: nothing
    // else about the scan's field location work may change.
    assert_eq!(
        on.fields_tokenized + on.fields_skipped_early,
        off.fields_tokenized,
        "on={on:?} off={off:?}"
    );
}
