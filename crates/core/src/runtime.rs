//! Per-table runtime state: the auxiliary structures a raw file
//! accumulates across queries, plus observability counters.
//!
//! The runtime is *lock-split* so that `NoDb::query(&self)` is truly
//! concurrent: instead of one big mutex serializing every query on a
//! table, the positional map and the cache sit behind their own
//! reader-writer locks (warm scans read them under shared locks), the
//! statistics behind a small mutex, and the work counters in lock-free
//! atomics. Cold scans stage their work per chunk and merge it in short
//! write-locked critical sections.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use nodb_cache::{CacheConfig, RawCache};
use nodb_common::{Result, WorkloadLog};
use nodb_posmap::{PosMapConfig, PositionalMap};
use nodb_stats::TableStats;

use crate::config::NoDbConfig;
use crate::profile::PhaseProfileAtomic;

/// Cumulative work counters for one raw table. Benchmarks and tests use
/// these to verify *why* performance changes (e.g. the second query
/// tokenizes fewer fields), not just that it does.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScanMetrics {
    /// Queries that scanned this table.
    pub scans: u64,
    /// Tuples emitted to query plans.
    pub rows_emitted: u64,
    /// Fields located by scanning characters (full or partial
    /// tokenization).
    pub fields_tokenized: u64,
    /// Fields located by jumping straight to a map position.
    pub fields_via_map: u64,
    /// Fields located by incremental parsing from a map anchor.
    pub fields_via_anchor: u64,
    /// Field values converted from ASCII to binary.
    pub fields_parsed: u64,
    /// Field values served from the binary cache.
    pub fields_from_cache: u64,
    /// Bytes of raw file consumed by sequential tokenization.
    pub bytes_tokenized: u64,
    /// Rows rejected by a pushed-down scan predicate before their full
    /// attribute frontier was tokenized/converted.
    pub rows_rejected_early: u64,
    /// Fields never tokenized because their row was rejected at the
    /// predicate frontier (the work pushdown provably avoided).
    pub fields_skipped_early: u64,
}

impl ScanMetrics {
    /// Fold another counter set into this one (chunk workers accumulate
    /// locally; the merge adds them up).
    pub fn merge(&mut self, other: &ScanMetrics) {
        self.scans += other.scans;
        self.rows_emitted += other.rows_emitted;
        self.fields_tokenized += other.fields_tokenized;
        self.fields_via_map += other.fields_via_map;
        self.fields_via_anchor += other.fields_via_anchor;
        self.fields_parsed += other.fields_parsed;
        self.fields_from_cache += other.fields_from_cache;
        self.bytes_tokenized += other.bytes_tokenized;
        self.rows_rejected_early += other.rows_rejected_early;
        self.fields_skipped_early += other.fields_skipped_early;
    }
}

/// Lock-free accumulator behind [`ScanMetrics`]: scans add their local
/// counters in one shot when a block or chunk completes, so the hot path
/// never takes a lock for bookkeeping.
#[derive(Debug, Default)]
pub struct ScanMetricsAtomic {
    scans: AtomicU64,
    rows_emitted: AtomicU64,
    fields_tokenized: AtomicU64,
    fields_via_map: AtomicU64,
    fields_via_anchor: AtomicU64,
    fields_parsed: AtomicU64,
    fields_from_cache: AtomicU64,
    bytes_tokenized: AtomicU64,
    rows_rejected_early: AtomicU64,
    fields_skipped_early: AtomicU64,
}

impl ScanMetricsAtomic {
    /// Add a batch of locally accumulated counters.
    pub fn add(&self, m: &ScanMetrics) {
        self.scans.fetch_add(m.scans, Ordering::Relaxed);
        self.rows_emitted
            .fetch_add(m.rows_emitted, Ordering::Relaxed);
        self.fields_tokenized
            .fetch_add(m.fields_tokenized, Ordering::Relaxed);
        self.fields_via_map
            .fetch_add(m.fields_via_map, Ordering::Relaxed);
        self.fields_via_anchor
            .fetch_add(m.fields_via_anchor, Ordering::Relaxed);
        self.fields_parsed
            .fetch_add(m.fields_parsed, Ordering::Relaxed);
        self.fields_from_cache
            .fetch_add(m.fields_from_cache, Ordering::Relaxed);
        self.bytes_tokenized
            .fetch_add(m.bytes_tokenized, Ordering::Relaxed);
        self.rows_rejected_early
            .fetch_add(m.rows_rejected_early, Ordering::Relaxed);
        self.fields_skipped_early
            .fetch_add(m.fields_skipped_early, Ordering::Relaxed);
    }

    /// Read the current totals.
    pub fn snapshot(&self) -> ScanMetrics {
        ScanMetrics {
            scans: self.scans.load(Ordering::Relaxed),
            rows_emitted: self.rows_emitted.load(Ordering::Relaxed),
            fields_tokenized: self.fields_tokenized.load(Ordering::Relaxed),
            fields_via_map: self.fields_via_map.load(Ordering::Relaxed),
            fields_via_anchor: self.fields_via_anchor.load(Ordering::Relaxed),
            fields_parsed: self.fields_parsed.load(Ordering::Relaxed),
            fields_from_cache: self.fields_from_cache.load(Ordering::Relaxed),
            bytes_tokenized: self.bytes_tokenized.load(Ordering::Relaxed),
            rows_rejected_early: self.rows_rejected_early.load(Ordering::Relaxed),
            fields_skipped_early: self.fields_skipped_early.load(Ordering::Relaxed),
        }
    }
}

/// The adaptive state of one in-situ table, shared by every concurrent
/// scan of the table.
pub struct RawTableRuntime {
    /// Positional map (also owns the end-of-line index, which the
    /// cache-only variant keeps). Warm scans read it under the shared
    /// lock; builders take short write sections to merge their blocks.
    pub posmap: RwLock<PositionalMap>,
    /// Binary cache, same locking discipline as the map.
    pub cache: RwLock<RawCache>,
    /// On-the-fly statistics (small, rarely contended).
    pub stats: Mutex<TableStats>,
    /// Work counters.
    pub metrics: ScanMetricsAtomic,
    /// Cumulative per-phase wall-clock and bytes for scans of this table
    /// (kept out of [`ScanMetrics`] so the latter stays deterministic).
    pub profile: PhaseProfileAtomic,
    /// Per-attribute access-frequency log; scans record touches here and
    /// the budgeted cache/posmap eviction policies consult it.
    pub workload: Arc<WorkloadLog>,
    /// File length when the auxiliary structures were last valid (append
    /// / in-place-edit detection, §4.5).
    file_len_seen: Mutex<u64>,
}

impl RawTableRuntime {
    /// Fresh runtime from the engine configuration.
    pub fn new(cfg: &NoDbConfig) -> RawTableRuntime {
        let workload = Arc::new(WorkloadLog::new());
        RawTableRuntime {
            posmap: RwLock::new(PositionalMap::new(PosMapConfig {
                block_rows: cfg.posmap_block_rows,
                budget: cfg.posmap_budget,
                spill_dir: cfg.posmap_spill_dir.clone(),
                workload: Some(Arc::clone(&workload)),
            })),
            cache: RwLock::new(RawCache::new(CacheConfig {
                budget: cfg.cache_budget,
                cost_weight: cfg.cache_cost_weight,
                workload: Some(Arc::clone(&workload)),
            })),
            stats: Mutex::new(TableStats::new()),
            metrics: ScanMetricsAtomic::default(),
            profile: PhaseProfileAtomic::default(),
            workload,
            file_len_seen: Mutex::new(0),
        }
    }

    /// React to the file's current length (§4.5): growth re-opens the
    /// end-of-line index for appends; shrinkage invalidates everything.
    pub fn observe_file_len(&self, len: u64) -> Result<()> {
        let mut seen = self.file_len_seen.lock();
        if len < *seen {
            // In-place modification: auxiliary structures are stale.
            self.posmap.write().clear();
            self.cache.write().clear();
            self.stats.lock().clear();
        } else if len > *seen {
            let mut pm = self.posmap.write();
            if pm.eol().is_complete() {
                pm.eol_mut().reopen_for_append();
            }
        }
        *seen = len;
        Ok(())
    }

    /// Drop every auxiliary structure (the map "may be dropped fully or
    /// partly at any time", §4.2). Counters survive.
    pub fn clear_aux(&self) {
        let mut seen = self.file_len_seen.lock();
        self.posmap.write().clear();
        self.cache.write().clear();
        self.stats.lock().clear();
        *seen = 0;
    }
}
