//! A lightweight Rust *lexeme* scanner — just enough lexing to let the
//! lints reason about source text without false positives from comments
//! and string literals.
//!
//! The scanner produces a [`Lexed`] view of one file:
//!
//! - `mask`: the source with every comment and every string/char-literal
//!   *content* blanked to spaces (newlines preserved, literal delimiters
//!   kept), so byte offsets and line numbers in the mask equal those in
//!   the original. Lints search the mask and can never match text inside
//!   a comment or a string.
//! - `comments`: every comment with its starting line and full text —
//!   this is how adjacency rules (`// SAFETY:`, `// ORDERING:`,
//!   `// CAST:`) are checked.
//! - `strings`: every string literal's content with its line — this is
//!   how `NODB_*` environment-variable literals are found.
//!
//! Handled: `//` line comments (incl. doc comments), nested `/* */`
//! block comments, `"…"` strings with escapes, raw strings `r"…"` /
//! `r#"…"#` (any number of hashes), byte strings `b"…"` / `br#"…"#`,
//! char and byte-char literals (`'x'`, `b'\n'`), and the char-literal
//! vs. lifetime (`'a`) ambiguity.

/// One comment in the scanned file.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line of the comment's first character.
    pub line: usize,
    /// Full comment text including the `//` / `/*` markers.
    pub text: String,
}

/// One string literal (normal, raw, or byte) in the scanned file.
#[derive(Debug, Clone)]
pub struct StrLit {
    /// 1-based line of the opening quote.
    pub line: usize,
    /// Literal content, un-escaped exactly as written in the source.
    pub content: String,
}

/// The lexed view of one source file. See the [module docs](self).
#[derive(Debug)]
pub struct Lexed {
    /// Source with comments and literal contents blanked (same length
    /// and line structure as the input).
    pub mask: String,
    /// All comments, in file order.
    pub comments: Vec<Comment>,
    /// All string literals, in file order.
    pub strings: Vec<StrLit>,
}

impl Lexed {
    /// Lines (1-based) of every comment whose text contains `marker`.
    /// A multi-line block comment marks every line it spans.
    pub fn comment_lines_with(&self, marker: &str) -> Vec<usize> {
        let mut out = Vec::new();
        for c in &self.comments {
            if c.text.contains(marker) {
                for (i, _) in c.text.lines().enumerate() {
                    out.push(c.line + i);
                }
            }
        }
        out
    }

    /// The mask split into lines (index 0 is line 1).
    pub fn mask_lines(&self) -> Vec<&str> {
        self.mask.lines().collect()
    }
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Scan `src` into its [`Lexed`] view. Never fails: unterminated
/// constructs are treated as running to end-of-file (the real compiler
/// rejects them; the linter must still not panic on them).
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut mask = Vec::with_capacity(b.len());
    let mut comments = Vec::new();
    let mut strings = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Push `n` bytes of blank (preserving newlines) from b[i..i+n].
    let blank = |mask: &mut Vec<u8>, line: &mut usize, bytes: &[u8]| {
        for &c in bytes {
            if c == b'\n' {
                mask.push(b'\n');
                *line += 1;
            } else {
                mask.push(b' ');
            }
        }
    };

    while i < b.len() {
        let c = b[i];
        let prev_ident = i > 0 && is_ident(b[i - 1]);

        // Line comment.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let start = i;
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            comments.push(Comment {
                line,
                text: String::from_utf8_lossy(&b[start..i]).into_owned(),
            });
            blank(&mut mask, &mut line, &b[start..i]);
            continue;
        }
        // Block comment (nested).
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            comments.push(Comment {
                line: start_line,
                text: String::from_utf8_lossy(&b[start..i]).into_owned(),
            });
            blank(&mut mask, &mut line, &b[start..i]);
            continue;
        }
        // Raw (and byte-raw) strings: r"…", r#"…"#, br#"…"#.
        if (c == b'r' || c == b'b') && !prev_ident {
            let mut j = i;
            if b[j] == b'b' && j + 1 < b.len() && b[j + 1] == b'r' {
                j += 1;
            }
            if b[j] == b'r' {
                let mut k = j + 1;
                let mut hashes = 0usize;
                while k < b.len() && b[k] == b'#' {
                    hashes += 1;
                    k += 1;
                }
                if k < b.len() && b[k] == b'"' {
                    // Prefix bytes (r / br + hashes) stay visible.
                    mask.extend_from_slice(&b[i..=k]);
                    let content_start = k + 1;
                    let start_line = line;
                    let mut e = content_start;
                    'raw: while e < b.len() {
                        if b[e] == b'"' {
                            let mut h = 0usize;
                            while e + 1 + h < b.len() && b[e + 1 + h] == b'#' && h < hashes {
                                h += 1;
                            }
                            if h == hashes {
                                break 'raw;
                            }
                        }
                        e += 1;
                    }
                    strings.push(StrLit {
                        line: start_line,
                        content: String::from_utf8_lossy(&b[content_start..e.min(b.len())])
                            .into_owned(),
                    });
                    blank(&mut mask, &mut line, &b[content_start..e.min(b.len())]);
                    // Closing quote + hashes.
                    let close_end = (e + 1 + hashes).min(b.len());
                    mask.extend_from_slice(&b[e.min(b.len())..close_end]);
                    i = close_end;
                    continue;
                }
            }
            // Plain byte string b"…" falls through to the string arm via
            // the check below; a bare identifier starting with r/b falls
            // through to the default arm.
        }
        // Normal (and byte) strings.
        if c == b'"' || (c == b'b' && !prev_ident && i + 1 < b.len() && b[i + 1] == b'"') {
            let q = if c == b'b' { i + 1 } else { i };
            mask.extend_from_slice(&b[i..=q]);
            let start_line = line;
            let mut e = q + 1;
            while e < b.len() {
                if b[e] == b'\\' {
                    e = (e + 2).min(b.len());
                    continue;
                }
                if b[e] == b'"' {
                    break;
                }
                e += 1;
            }
            strings.push(StrLit {
                line: start_line,
                content: String::from_utf8_lossy(&b[q + 1..e.min(b.len())]).into_owned(),
            });
            blank(&mut mask, &mut line, &b[q + 1..e.min(b.len())]);
            if e < b.len() {
                mask.push(b'"');
                e += 1;
            }
            i = e;
            continue;
        }
        // Char literal vs. lifetime. `b'x'` byte chars too.
        if c == b'\'' || (c == b'b' && !prev_ident && i + 1 < b.len() && b[i + 1] == b'\'') {
            let q = if c == b'b' { i + 1 } else { i };
            // Lifetime: 'ident not closed by a quote right after.
            let is_char = if q + 1 >= b.len() {
                false
            } else if b[q + 1] == b'\\' {
                true
            } else if !is_ident(b[q + 1]) {
                // e.g. '(' — a char literal of punctuation.
                true
            } else {
                // 'x' (closing quote right after one ident char) is a
                // char; 'abc / 'static is a lifetime.
                q + 2 < b.len() && b[q + 2] == b'\''
            };
            if is_char {
                mask.extend_from_slice(&b[i..=q]);
                let mut e = q + 1;
                while e < b.len() {
                    if b[e] == b'\\' {
                        e = (e + 2).min(b.len());
                        continue;
                    }
                    if b[e] == b'\'' {
                        break;
                    }
                    e += 1;
                }
                blank(&mut mask, &mut line, &b[q + 1..e.min(b.len())]);
                if e < b.len() {
                    mask.push(b'\'');
                    e += 1;
                }
                i = e;
                continue;
            }
        }

        if c == b'\n' {
            line += 1;
        }
        mask.push(c);
        i += 1;
    }

    Lexed {
        mask: String::from_utf8_lossy(&mask).into_owned(),
        comments,
        strings,
    }
}

/// `#[cfg(test)]`-gated spans of a masked file, as 1-based inclusive
/// line ranges. The attribute covers the item that follows: a brace
/// block (`mod tests { … }`, a gated `fn`) runs to its matching close;
/// an item that ends with `;` before any brace (a gated `use`) runs to
/// that semicolon.
pub fn test_spans(mask: &str) -> Vec<(usize, usize)> {
    let b = mask.as_bytes();
    let mut spans = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < b.len() {
        if b[i] == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if b[i] == b'#' && mask[i..].starts_with("#[cfg(test)]") {
            let start_line = line;
            let mut j = i + "#[cfg(test)]".len();
            let mut l = line;
            let mut depth = 0usize;
            let mut opened = false;
            while j < b.len() {
                match b[j] {
                    b'\n' => l += 1,
                    b'{' => {
                        depth += 1;
                        opened = true;
                    }
                    b'}' => {
                        depth = depth.saturating_sub(1);
                        if opened && depth == 0 {
                            break;
                        }
                    }
                    b';' if !opened => break,
                    _ => {}
                }
                j += 1;
            }
            spans.push((start_line, l));
            line = l;
            i = j;
            continue;
        }
        i += 1;
    }
    spans
}

/// True when `line` falls inside any of `spans` (inclusive ranges).
pub fn in_spans(spans: &[(usize, usize)], line: usize) -> bool {
    spans.iter().any(|&(a, b)| line >= a && line <= b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_masked() {
        let src = r##"let x = "unsafe { }"; // unsafe comment
let r = r#"Ordering::Relaxed"#;
/* unsafe
   block */ let y = 'u';
"##;
        let lx = lex(src);
        assert!(!lx.mask.contains("unsafe"));
        assert!(!lx.mask.contains("Relaxed"));
        assert_eq!(lx.mask.len(), src.len());
        assert_eq!(lx.strings.len(), 2);
        assert_eq!(lx.strings[0].content, "unsafe { }");
        assert_eq!(lx.strings[1].content, "Ordering::Relaxed");
        assert_eq!(lx.comments.len(), 2);
        assert_eq!(lx.comments[1].line, 3);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'static str { x }";
        let lx = lex(src);
        // Nothing blanked: no literals at all.
        assert_eq!(lx.mask, src);
        assert!(lx.strings.is_empty());
    }

    #[test]
    fn escaped_quotes_and_byte_strings() {
        let src = r#"let a = "he said \"hi\""; let b = b"\x00"; let c = '\'';"#;
        let lx = lex(src);
        assert_eq!(lx.strings.len(), 2);
        assert_eq!(lx.strings[0].content, r#"he said \"hi\""#);
        assert!(!lx.mask.contains("hi"));
        assert!(lx.mask.ends_with("let c = '  ';"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still */ code";
        let lx = lex(src);
        assert!(lx.mask.ends_with(" code"));
        assert!(!lx.mask.contains("inner"));
        assert_eq!(lx.comments.len(), 1);
    }

    #[test]
    fn raw_string_with_hashes_and_quotes_inside() {
        let src = r###"let s = r#"contains "quotes" and # signs"#; tail"###;
        let lx = lex(src);
        assert_eq!(lx.strings.len(), 1);
        assert!(lx.strings[0].content.contains("quotes"));
        assert!(lx.mask.ends_with("tail"));
    }

    #[test]
    fn cfg_test_spans_cover_mod_blocks() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() {}\n}\nfn c() {}\n";
        let spans = test_spans(&lex(src).mask);
        assert_eq!(spans, vec![(2, 5)]);
        assert!(in_spans(&spans, 4));
        assert!(!in_spans(&spans, 6));
    }
}
