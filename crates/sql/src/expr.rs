//! Bound expressions: AST expressions with columns resolved to input
//! ordinals, ready for evaluation.

use std::collections::BTreeSet;
use std::fmt;

use nodb_common::{DataType, Value};

/// Binary operators of bound expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Logical OR.
    Or,
    /// Logical AND.
    And,
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl BinOp {
    /// Is this a comparison producing a boolean?
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Logical NOT.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Aggregate functions (bound form).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// COUNT (`arg = None` ⇒ COUNT(*)).
    Count,
    /// SUM.
    Sum,
    /// AVG.
    Avg,
    /// MIN.
    Min,
    /// MAX.
    Max,
}

/// An expression bound to input-row ordinals.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    /// Input column by ordinal.
    Col(usize),
    /// Constant.
    Lit(Value),
    /// Parameter placeholder, substituted with a constant at execute
    /// time ([`BoundExpr::substitute_params`]). `dtype` is the type the
    /// binder inferred from surrounding context (`None` when the context
    /// gives no hint); execute-time values are checked/coerced against
    /// it. A `Param` must never reach the evaluator.
    Param {
        /// 0-based parameter index.
        idx: usize,
        /// Bind-time inferred type, if any.
        dtype: Option<DataType>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<BoundExpr>,
        /// Right operand.
        right: Box<BoundExpr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<BoundExpr>,
    },
    /// LIKE. The pattern is an arbitrary text expression: usually a
    /// literal, but a [`BoundExpr::Param`] (`name LIKE ?`) or any other
    /// text-valued expression works — evaluation compiles constant
    /// patterns once and re-derives the matcher per row otherwise.
    Like {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Pattern expression (text-typed).
        pattern: Box<BoundExpr>,
        /// NOT LIKE.
        negated: bool,
    },
    /// BETWEEN (inclusive bounds).
    Between {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Lower bound.
        low: Box<BoundExpr>,
        /// Upper bound.
        high: Box<BoundExpr>,
        /// NOT BETWEEN.
        negated: bool,
    },
    /// IN with a constant list.
    InList {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Constant candidates.
        list: Vec<Value>,
        /// NOT IN.
        negated: bool,
    },
    /// Searched CASE.
    Case {
        /// WHEN/THEN pairs.
        branches: Vec<(BoundExpr, BoundExpr)>,
        /// ELSE result.
        else_expr: Option<Box<BoundExpr>>,
    },
    /// IS \[NOT\] NULL.
    IsNull {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// IS NOT NULL.
        negated: bool,
    },
}

impl BoundExpr {
    /// Convenience: `a AND b`.
    pub fn and(a: BoundExpr, b: BoundExpr) -> BoundExpr {
        BoundExpr::Binary {
            op: BinOp::And,
            left: Box::new(a),
            right: Box::new(b),
        }
    }

    /// AND-combine a list (empty ⇒ TRUE literal).
    pub fn conjunction(mut exprs: Vec<BoundExpr>) -> BoundExpr {
        match exprs.len() {
            0 => BoundExpr::Lit(Value::Bool(true)),
            1 => exprs.pop().expect("len checked"),
            _ => {
                let mut it = exprs.into_iter();
                let first = it.next().expect("len checked");
                it.fold(first, BoundExpr::and)
            }
        }
    }

    /// Collect the input ordinals referenced by this expression.
    pub fn referenced_columns(&self, out: &mut BTreeSet<usize>) {
        match self {
            BoundExpr::Col(i) => {
                out.insert(*i);
            }
            BoundExpr::Lit(_) | BoundExpr::Param { .. } => {}
            BoundExpr::Binary { left, right, .. } => {
                left.referenced_columns(out);
                right.referenced_columns(out);
            }
            BoundExpr::Unary { expr, .. } => expr.referenced_columns(out),
            BoundExpr::Like { expr, pattern, .. } => {
                expr.referenced_columns(out);
                pattern.referenced_columns(out);
            }
            BoundExpr::Between {
                expr, low, high, ..
            } => {
                expr.referenced_columns(out);
                low.referenced_columns(out);
                high.referenced_columns(out);
            }
            BoundExpr::InList { expr, .. } => expr.referenced_columns(out),
            BoundExpr::Case {
                branches,
                else_expr,
            } => {
                for (c, r) in branches {
                    c.referenced_columns(out);
                    r.referenced_columns(out);
                }
                if let Some(e) = else_expr {
                    e.referenced_columns(out);
                }
            }
            BoundExpr::IsNull { expr, .. } => expr.referenced_columns(out),
        }
    }

    /// Rewrite column ordinals through `f`.
    pub fn map_columns(&self, f: &impl Fn(usize) -> usize) -> BoundExpr {
        match self {
            BoundExpr::Col(i) => BoundExpr::Col(f(*i)),
            BoundExpr::Lit(v) => BoundExpr::Lit(v.clone()),
            BoundExpr::Param { idx, dtype } => BoundExpr::Param {
                idx: *idx,
                dtype: *dtype,
            },
            BoundExpr::Binary { op, left, right } => BoundExpr::Binary {
                op: *op,
                left: Box::new(left.map_columns(f)),
                right: Box::new(right.map_columns(f)),
            },
            BoundExpr::Unary { op, expr } => BoundExpr::Unary {
                op: *op,
                expr: Box::new(expr.map_columns(f)),
            },
            BoundExpr::Like {
                expr,
                pattern,
                negated,
            } => BoundExpr::Like {
                expr: Box::new(expr.map_columns(f)),
                pattern: Box::new(pattern.map_columns(f)),
                negated: *negated,
            },
            BoundExpr::Between {
                expr,
                low,
                high,
                negated,
            } => BoundExpr::Between {
                expr: Box::new(expr.map_columns(f)),
                low: Box::new(low.map_columns(f)),
                high: Box::new(high.map_columns(f)),
                negated: *negated,
            },
            BoundExpr::InList {
                expr,
                list,
                negated,
            } => BoundExpr::InList {
                expr: Box::new(expr.map_columns(f)),
                list: list.clone(),
                negated: *negated,
            },
            BoundExpr::Case {
                branches,
                else_expr,
            } => BoundExpr::Case {
                branches: branches
                    .iter()
                    .map(|(c, r)| (c.map_columns(f), r.map_columns(f)))
                    .collect(),
                else_expr: else_expr.as_ref().map(|e| Box::new(e.map_columns(f))),
            },
            BoundExpr::IsNull { expr, negated } => BoundExpr::IsNull {
                expr: Box::new(expr.map_columns(f)),
                negated: *negated,
            },
        }
    }

    /// Replace every [`BoundExpr::Param`] with the corresponding
    /// constant from `params`. An index past the end of `params`
    /// survives as a `Param` (callers validate counts before
    /// substituting; the evaluator rejects leftovers loudly).
    pub fn substitute_params(&self, params: &[Value]) -> BoundExpr {
        match self {
            BoundExpr::Param { idx, dtype } => match params.get(*idx) {
                Some(v) => BoundExpr::Lit(v.clone()),
                None => BoundExpr::Param {
                    idx: *idx,
                    dtype: *dtype,
                },
            },
            BoundExpr::Col(i) => BoundExpr::Col(*i),
            BoundExpr::Lit(v) => BoundExpr::Lit(v.clone()),
            BoundExpr::Binary { op, left, right } => BoundExpr::Binary {
                op: *op,
                left: Box::new(left.substitute_params(params)),
                right: Box::new(right.substitute_params(params)),
            },
            BoundExpr::Unary { op, expr } => BoundExpr::Unary {
                op: *op,
                expr: Box::new(expr.substitute_params(params)),
            },
            BoundExpr::Like {
                expr,
                pattern,
                negated,
            } => BoundExpr::Like {
                expr: Box::new(expr.substitute_params(params)),
                pattern: Box::new(pattern.substitute_params(params)),
                negated: *negated,
            },
            BoundExpr::Between {
                expr,
                low,
                high,
                negated,
            } => BoundExpr::Between {
                expr: Box::new(expr.substitute_params(params)),
                low: Box::new(low.substitute_params(params)),
                high: Box::new(high.substitute_params(params)),
                negated: *negated,
            },
            BoundExpr::InList {
                expr,
                list,
                negated,
            } => BoundExpr::InList {
                expr: Box::new(expr.substitute_params(params)),
                list: list.clone(),
                negated: *negated,
            },
            BoundExpr::Case {
                branches,
                else_expr,
            } => BoundExpr::Case {
                branches: branches
                    .iter()
                    .map(|(c, r)| (c.substitute_params(params), r.substitute_params(params)))
                    .collect(),
                else_expr: else_expr
                    .as_ref()
                    .map(|e| Box::new(e.substitute_params(params))),
            },
            BoundExpr::IsNull { expr, negated } => BoundExpr::IsNull {
                expr: Box::new(expr.substitute_params(params)),
                negated: *negated,
            },
        }
    }

    /// Record the bind-time type of every parameter in this expression
    /// into `out[idx]` (first non-`None` wins; `out` must already be
    /// sized to the statement's parameter count).
    pub fn collect_param_types(&self, out: &mut [Option<DataType>]) {
        match self {
            BoundExpr::Param { idx, dtype } => {
                if let Some(slot) = out.get_mut(*idx) {
                    if slot.is_none() {
                        *slot = *dtype;
                    }
                }
            }
            BoundExpr::Col(_) | BoundExpr::Lit(_) => {}
            BoundExpr::Binary { left, right, .. } => {
                left.collect_param_types(out);
                right.collect_param_types(out);
            }
            BoundExpr::Unary { expr, .. }
            | BoundExpr::InList { expr, .. }
            | BoundExpr::IsNull { expr, .. } => expr.collect_param_types(out),
            BoundExpr::Like { expr, pattern, .. } => {
                expr.collect_param_types(out);
                pattern.collect_param_types(out);
            }
            BoundExpr::Between {
                expr, low, high, ..
            } => {
                expr.collect_param_types(out);
                low.collect_param_types(out);
                high.collect_param_types(out);
            }
            BoundExpr::Case {
                branches,
                else_expr,
            } => {
                for (c, r) in branches {
                    c.collect_param_types(out);
                    r.collect_param_types(out);
                }
                if let Some(e) = else_expr {
                    e.collect_param_types(out);
                }
            }
        }
    }

    /// Infer the result type given input column types. Comparisons and
    /// boolean combinators yield `Bool`; arithmetic widens to `Float64`
    /// when any side is a float or on division; `Date ± Int` stays `Date`.
    pub fn infer_type(&self, input: &[DataType]) -> DataType {
        match self {
            BoundExpr::Col(i) => input.get(*i).copied().unwrap_or(DataType::Text),
            BoundExpr::Lit(v) => v.data_type().unwrap_or(DataType::Text),
            BoundExpr::Param { dtype, .. } => dtype.unwrap_or(DataType::Text),
            BoundExpr::Binary { op, left, right } => {
                if op.is_comparison() || matches!(op, BinOp::And | BinOp::Or) {
                    DataType::Bool
                } else {
                    let lt = left.infer_type(input);
                    let rt = right.infer_type(input);
                    match (op, lt, rt) {
                        (BinOp::Div, _, _) => DataType::Float64,
                        (_, DataType::Float64, _) | (_, _, DataType::Float64) => DataType::Float64,
                        (_, DataType::Date, _) => DataType::Date,
                        (_, _, DataType::Date) => DataType::Date,
                        (_, DataType::Int64, _) | (_, _, DataType::Int64) => DataType::Int64,
                        _ => lt,
                    }
                }
            }
            BoundExpr::Unary { op: UnOp::Not, .. } => DataType::Bool,
            BoundExpr::Unary {
                op: UnOp::Neg,
                expr,
            } => expr.infer_type(input),
            BoundExpr::Like { .. }
            | BoundExpr::Between { .. }
            | BoundExpr::InList { .. }
            | BoundExpr::IsNull { .. } => DataType::Bool,
            BoundExpr::Case {
                branches,
                else_expr,
            } => branches
                .first()
                .map(|(_, r)| r.infer_type(input))
                .or_else(|| else_expr.as_ref().map(|e| e.infer_type(input)))
                .unwrap_or(DataType::Text),
        }
    }
}

/// A bound aggregate call.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// Function.
    pub func: AggFunc,
    /// Argument (`None` for COUNT(*)), bound to the aggregate's input.
    pub arg: Option<BoundExpr>,
}

impl AggExpr {
    /// Result type of the aggregate given input column types.
    pub fn output_type(&self, input: &[DataType]) -> DataType {
        match self.func {
            AggFunc::Count => DataType::Int64,
            AggFunc::Avg => DataType::Float64,
            AggFunc::Sum => match self.arg.as_ref().map(|a| a.infer_type(input)) {
                Some(DataType::Float64) => DataType::Float64,
                Some(DataType::Int32) | Some(DataType::Int64) => DataType::Int64,
                Some(other) => other,
                None => DataType::Int64,
            },
            AggFunc::Min | AggFunc::Max => self
                .arg
                .as_ref()
                .map(|a| a.infer_type(input))
                .unwrap_or(DataType::Text),
        }
    }
}

impl fmt::Display for BoundExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundExpr::Col(i) => write!(f, "#{i}"),
            BoundExpr::Lit(v) => write!(f, "{v}"),
            BoundExpr::Param { idx, .. } => write!(f, "${}", idx + 1),
            BoundExpr::Binary { op, left, right } => {
                let sym = match op {
                    BinOp::Or => "OR",
                    BinOp::And => "AND",
                    BinOp::Eq => "=",
                    BinOp::NotEq => "<>",
                    BinOp::Lt => "<",
                    BinOp::LtEq => "<=",
                    BinOp::Gt => ">",
                    BinOp::GtEq => ">=",
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                };
                write!(f, "({left} {sym} {right})")
            }
            BoundExpr::Unary { op, expr } => match op {
                UnOp::Not => write!(f, "NOT {expr}"),
                UnOp::Neg => write!(f, "-{expr}"),
            },
            BoundExpr::Like {
                expr,
                pattern,
                negated,
            } => {
                write!(f, "{expr} {}LIKE ", if *negated { "NOT " } else { "" })?;
                // Literal patterns keep the classic quoted rendering.
                match pattern.as_ref() {
                    BoundExpr::Lit(Value::Text(p)) => write!(f, "'{p}'"),
                    other => write!(f, "{other}"),
                }
            }
            BoundExpr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "{expr} {}BETWEEN {low} AND {high}",
                if *negated { "NOT " } else { "" }
            ),
            BoundExpr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "{expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, v) in list.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str(")")
            }
            BoundExpr::Case {
                branches,
                else_expr,
            } => {
                f.write_str("CASE")?;
                for (c, r) in branches {
                    write!(f, " WHEN {c} THEN {r}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                f.write_str(" END")
            }
            BoundExpr::IsNull { expr, negated } => {
                write!(f, "{expr} IS {}NULL", if *negated { "NOT " } else { "" })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn referenced_columns_walks_the_tree() {
        let e = BoundExpr::Binary {
            op: BinOp::And,
            left: Box::new(BoundExpr::Between {
                expr: Box::new(BoundExpr::Col(3)),
                low: Box::new(BoundExpr::Lit(Value::Int64(1))),
                high: Box::new(BoundExpr::Col(7)),
                negated: false,
            }),
            right: Box::new(BoundExpr::Col(1)),
        };
        let mut s = BTreeSet::new();
        e.referenced_columns(&mut s);
        assert_eq!(s.into_iter().collect::<Vec<_>>(), vec![1, 3, 7]);
    }

    #[test]
    fn map_columns_rewrites_ordinals() {
        let e = BoundExpr::Binary {
            op: BinOp::Lt,
            left: Box::new(BoundExpr::Col(2)),
            right: Box::new(BoundExpr::Col(5)),
        };
        let m = e.map_columns(&|i| i * 10);
        let mut s = BTreeSet::new();
        m.referenced_columns(&mut s);
        assert_eq!(s.into_iter().collect::<Vec<_>>(), vec![20, 50]);
    }

    #[test]
    fn type_inference() {
        let input = [DataType::Int32, DataType::Float64, DataType::Date];
        let mul = BoundExpr::Binary {
            op: BinOp::Mul,
            left: Box::new(BoundExpr::Col(0)),
            right: Box::new(BoundExpr::Col(1)),
        };
        assert_eq!(mul.infer_type(&input), DataType::Float64);
        let div = BoundExpr::Binary {
            op: BinOp::Div,
            left: Box::new(BoundExpr::Col(0)),
            right: Box::new(BoundExpr::Col(0)),
        };
        assert_eq!(div.infer_type(&input), DataType::Float64);
        let cmp = BoundExpr::Binary {
            op: BinOp::Lt,
            left: Box::new(BoundExpr::Col(2)),
            right: Box::new(BoundExpr::Lit(Value::Date(nodb_common::Date(0)))),
        };
        assert_eq!(cmp.infer_type(&input), DataType::Bool);
    }

    #[test]
    fn agg_output_types() {
        let input = [DataType::Int32, DataType::Float64];
        let sum_int = AggExpr {
            func: AggFunc::Sum,
            arg: Some(BoundExpr::Col(0)),
        };
        assert_eq!(sum_int.output_type(&input), DataType::Int64);
        let avg = AggExpr {
            func: AggFunc::Avg,
            arg: Some(BoundExpr::Col(0)),
        };
        assert_eq!(avg.output_type(&input), DataType::Float64);
        let count = AggExpr {
            func: AggFunc::Count,
            arg: None,
        };
        assert_eq!(count.output_type(&input), DataType::Int64);
    }

    #[test]
    fn conjunction_of_none_is_true() {
        assert_eq!(
            BoundExpr::conjunction(vec![]),
            BoundExpr::Lit(Value::Bool(true))
        );
    }

    #[test]
    fn params_substitute_and_report_types() {
        let e = BoundExpr::Binary {
            op: BinOp::And,
            left: Box::new(BoundExpr::Binary {
                op: BinOp::Lt,
                left: Box::new(BoundExpr::Col(0)),
                right: Box::new(BoundExpr::Param {
                    idx: 0,
                    dtype: Some(DataType::Int64),
                }),
            }),
            right: Box::new(BoundExpr::Between {
                expr: Box::new(BoundExpr::Col(1)),
                low: Box::new(BoundExpr::Param {
                    idx: 1,
                    dtype: Some(DataType::Float64),
                }),
                high: Box::new(BoundExpr::Lit(Value::Float64(9.0))),
                negated: false,
            }),
        };
        assert_eq!(e.to_string(), "((#0 < $1) AND #1 BETWEEN $2 AND 9.0)");
        let mut types = vec![None; 2];
        e.collect_param_types(&mut types);
        assert_eq!(types, vec![Some(DataType::Int64), Some(DataType::Float64)]);
        let s = e.substitute_params(&[Value::Int64(7), Value::Float64(1.5)]);
        assert_eq!(s.to_string(), "((#0 < 7) AND #1 BETWEEN 1.5 AND 9.0)");
        // Params never count as column references.
        let mut cols = BTreeSet::new();
        e.referenced_columns(&mut cols);
        assert_eq!(cols.into_iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn display_is_readable() {
        let e = BoundExpr::Binary {
            op: BinOp::LtEq,
            left: Box::new(BoundExpr::Col(0)),
            right: Box::new(BoundExpr::Lit(Value::Int64(10))),
        };
        assert_eq!(e.to_string(), "(#0 <= 10)");
    }
}
