//! Minimal `proptest` API shim: random generation without shrinking.
//!
//! Implements exactly the surface this workspace's property tests use:
//! the [`proptest!`] macro, `prop_assert*`/`prop_assume!`/`prop_oneof!`,
//! [`Strategy`] with `prop_map`/`prop_filter`/`prop_flat_map`/`boxed`,
//! `any::<T>()`, range/tuple/`Vec` strategies, `collection::vec`,
//! `option::of`, [`Just`], and string strategies from a small regex
//! subset (sequences of `[class]{n,m}` atoms).
//!
//! Differences from real proptest, deliberate for an offline shim:
//!
//! - **No shrinking.** A failing case prints its inputs and the seed
//!   context; runs are deterministic per test (seed derived from
//!   file/line, overridable via `PROPTEST_SEED`), so failures reproduce
//!   exactly.
//! - Default `cases` is 64 (not 256) to keep CI fast.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;
pub use strategy::{BoxedStrategy, Just, Strategy, Union};

pub mod arbitrary;
pub use arbitrary::{any, Arbitrary};

pub mod collection;
pub mod option;
pub mod string;

/// Everything a property test module needs in scope.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig,
    };
}

/// Per-test configuration. Only `cases` is consulted; the other field
/// exists so `..ProptestConfig::default()` struct updates compile.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Cap on `prop_assume!`/`prop_filter` rejections across the run.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single generated case did not complete.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is skipped, not failed.
    Reject,
}

/// Drives the case loop for one property test. Called by [`proptest!`];
/// not intended for direct use.
pub fn run_cases<F>(config: &ProptestConfig, file: &str, line: u32, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or_else(|| {
            // FNV-1a over file:line — deterministic, distinct per test.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in file.bytes().chain(line.to_le_bytes()) {
                h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
            h
        });
    let mut rng = StdRng::seed_from_u64(seed);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "proptest shim: too many prop_assume!/filter rejections \
                     ({rejected}) at {file}:{line} (seed {seed})"
                );
            }
        }
    }
}

/// Runs one generated case body, printing the inputs and seed context if
/// it panics. Called by [`proptest!`]; not intended for direct use.
pub fn run_one<B>(inputs: &str, file: &str, line: u32, body: B) -> Result<(), TestCaseError>
where
    B: FnOnce() -> Result<(), TestCaseError>,
{
    match catch_unwind(AssertUnwindSafe(body)) {
        Ok(outcome) => outcome,
        Err(panic) => {
            eprintln!(
                "proptest shim: case failed at {file}:{line} with inputs:\n  {inputs}\n\
                 (runs are deterministic; set PROPTEST_SEED to vary them)"
            );
            resume_unwind(panic)
        }
    }
}

/// The macro proptest is named for: declares property tests whose
/// arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (@cfg($config:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($pat:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __strategies = ($(($strat),)*);
                $crate::run_cases(&($config), file!(), line!(), |__rng| {
                    let ($($pat,)*) = $crate::Strategy::generate(&__strategies, __rng);
                    let __inputs = format!(
                        concat!($(stringify!($pat), " = {:?}; "),*),
                        $(&$pat),*
                    );
                    $crate::run_one(&__inputs, file!(), line!(), move || {
                        $body
                        ::std::result::Result::Ok(())
                    })
                });
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts within a property test body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality within a property test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality within a property test body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when `cond` is false (counts as a rejection,
/// not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Picks among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {{
        let __arms: ::std::vec::Vec<(u32, $crate::BoxedStrategy<_>)> =
            ::std::vec![$((($weight) as u32, $crate::Strategy::boxed($strat))),+];
        $crate::Union::new(__arms)
    }};
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof!($(1 => $strat),+)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_and_tuples() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let s = (0usize..10, -5i32..=5, any::<bool>());
        for _ in 0..200 {
            let (a, b, _c) = s.generate(&mut rng);
            assert!(a < 10);
            assert!((-5..=5).contains(&b));
        }
    }

    proptest! {
        #[test]
        fn macro_roundtrip(v in 0u32..100, s in "[a-z]{1,4}") {
            prop_assert!(v < 100);
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }

        #[test]
        fn assume_skips(v in 0u32..100) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        #[test]
        fn weighted_oneof(v in prop_oneof![1 => Just(0u8), 5 => 1u8..10]) {
            prop_assert!(v < 10);
        }
    }
}
