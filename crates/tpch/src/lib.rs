//! TPC-H workload substrate.
//!
//! The paper's §5.2 compares PostgresRaw with PostgreSQL on TPC-H
//! (scale factor 10) using queries Q1, Q3, Q4, Q6, Q10, Q12, Q14 and Q19.
//! This crate provides
//!
//! * [`TpchGen`] — a deterministic dbgen-style generator writing
//!   pipe-delimited `.tbl` files for all eight tables at any scale
//!   factor, following the spec's value domains (so the benchmark
//!   queries select realistic fractions), and
//! * [`queries`] — the SQL text of the eight evaluation queries with the
//!   spec's validation parameters.
//!
//! Deviations from dbgen (documented, irrelevant to the reproduced
//! behaviour): order keys are dense rather than sparse, and text columns
//! draw from a compact word pool instead of the spec's full grammar.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod queries;
pub mod text;

pub use gen::TpchGen;
