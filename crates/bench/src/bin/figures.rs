//! Regenerate the NoDB evaluation figures.
//!
//! ```text
//! figures all                      # every figure at medium scale
//! figures fig5 fig10               # selected figures
//! figures fig3 --scale paper       # bigger inputs
//! figures --list                   # what exists
//! figures all --out results/       # output directory (default: results/)
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use nodb_bench::figures::registry;
use nodb_bench::Scale;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Medium;
    let mut out = PathBuf::from("results");
    let mut picks: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                match args.get(i).map(|s| Scale::parse(s)) {
                    Some(Some(s)) => scale = s,
                    _ => {
                        eprintln!("--scale needs one of: small, medium, paper");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out = PathBuf::from(p),
                    None => {
                        eprintln!("--out needs a directory");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--list" => {
                for (id, desc, _) in registry() {
                    println!("{id:>6}  {desc}");
                }
                return ExitCode::SUCCESS;
            }
            other => picks.push(other.to_string()),
        }
        i += 1;
    }
    if picks.is_empty() {
        eprintln!(
            "usage: figures [all | fig3 fig4 ... fig13] [--scale small|medium|paper] \
             [--out DIR] [--list]"
        );
        return ExitCode::FAILURE;
    }

    let reg = registry();
    let selected: Vec<_> = if picks.iter().any(|p| p == "all") {
        reg
    } else {
        let mut v = Vec::new();
        for p in &picks {
            match reg.iter().find(|(id, _, _)| id == p) {
                Some(e) => v.push(*e),
                None => {
                    eprintln!("unknown figure `{p}` (try --list)");
                    return ExitCode::FAILURE;
                }
            }
        }
        v
    };

    println!(
        "regenerating {} figure(s) at {:?} scale (results -> {})",
        selected.len(),
        scale,
        out.display()
    );
    for (id, desc, run) in selected {
        println!("\n########## {id}: {desc}");
        let t = std::time::Instant::now();
        if let Err(e) = run(scale, &out) {
            eprintln!("{id} failed: {e}");
            return ExitCode::FAILURE;
        }
        println!("  ({:.1}s)", t.elapsed().as_secs_f64());
    }
    ExitCode::SUCCESS
}
