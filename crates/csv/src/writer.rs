//! Buffered CSV writing.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use nodb_common::{Result, Row};

use crate::CsvOptions;

/// A buffered writer producing delimiter-separated lines.
pub struct CsvWriter {
    out: BufWriter<File>,
    delim: u8,
    rows: u64,
}

impl CsvWriter {
    /// Create (truncate) `path` for writing.
    pub fn create(path: &Path, opts: CsvOptions) -> Result<CsvWriter> {
        Ok(CsvWriter {
            out: BufWriter::with_capacity(1 << 20, File::create(path)?),
            delim: opts.delimiter,
            rows: 0,
        })
    }

    /// Open `path` for appending (the paper's external-update scenario,
    /// §4.5).
    pub fn append(path: &Path, opts: CsvOptions) -> Result<CsvWriter> {
        let file = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(path)?;
        Ok(CsvWriter {
            out: BufWriter::with_capacity(1 << 20, file),
            delim: opts.delimiter,
            rows: 0,
        })
    }

    /// Write one row from pre-rendered field strings.
    pub fn write_fields<S: AsRef<str>>(&mut self, fields: &[S]) -> Result<()> {
        for (i, f) in fields.iter().enumerate() {
            if i > 0 {
                self.out.write_all(&[self.delim])?;
            }
            self.out.write_all(f.as_ref().as_bytes())?;
        }
        self.out.write_all(b"\n")?;
        self.rows += 1;
        Ok(())
    }

    /// Write one row of [`nodb_common::Value`]s using their CSV rendering.
    pub fn write_row(&mut self, row: &Row) -> Result<()> {
        for (i, v) in row.values().iter().enumerate() {
            if i > 0 {
                self.out.write_all(&[self.delim])?;
            }
            self.out.write_all(v.to_csv_field().as_bytes())?;
        }
        self.out.write_all(b"\n")?;
        self.rows += 1;
        Ok(())
    }

    /// Rows written so far.
    pub fn rows_written(&self) -> u64 {
        self.rows
    }

    /// Flush buffered output.
    pub fn finish(mut self) -> Result<u64> {
        self.out.flush()?;
        Ok(self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodb_common::{TempDir, Value};

    #[test]
    fn writes_delimited_lines() {
        let td = TempDir::new("nodb-csv").unwrap();
        let p = td.file("w.csv");
        let mut w = CsvWriter::create(&p, CsvOptions::default()).unwrap();
        w.write_fields(&["1", "a", ""]).unwrap();
        w.write_row(&Row(vec![
            Value::Int32(2),
            Value::Text("b".into()),
            Value::Null,
        ]))
        .unwrap();
        assert_eq!(w.finish().unwrap(), 2);
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "1,a,\n2,b,\n");
    }

    #[test]
    fn append_extends_existing_file() {
        let td = TempDir::new("nodb-csv").unwrap();
        let p = td.file("w.csv");
        {
            let mut w = CsvWriter::create(&p, CsvOptions::pipe()).unwrap();
            w.write_fields(&["1", "x"]).unwrap();
            w.finish().unwrap();
        }
        {
            let mut w = CsvWriter::append(&p, CsvOptions::pipe()).unwrap();
            w.write_fields(&["2", "y"]).unwrap();
            w.finish().unwrap();
        }
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "1|x\n2|y\n");
    }
}
