//! K-minimum-values sketch for distinct-count estimation.

use std::collections::BTreeSet;

/// Stateless 64-bit mixer (splitmix64 finalizer). Good enough avalanche
/// for sketching; not cryptographic.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hash arbitrary bytes to 64 bits via an FNV-1a pass followed by mixing.
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    mix64(h)
}

/// K-minimum-values distinct-count sketch.
///
/// Keeps the `k` smallest hashes seen; the estimator is
/// `(k - 1) / R_k` where `R_k` is the k-th smallest hash mapped to
/// `(0, 1]`. Exact below `k` distinct values.
#[derive(Debug, Clone)]
pub struct KmvSketch {
    k: usize,
    mins: BTreeSet<u64>,
}

impl KmvSketch {
    /// Create a sketch keeping `k` minima (k=256 gives ~6% relative
    /// error).
    pub fn new(k: usize) -> KmvSketch {
        KmvSketch {
            k: k.max(2),
            mins: BTreeSet::new(),
        }
    }

    /// Offer a pre-hashed value.
    pub fn offer_hash(&mut self, h: u64) {
        // Avoid h == 0 breaking the estimator mapping.
        let h = h | 1;
        if self.mins.len() < self.k {
            self.mins.insert(h);
        } else if let Some(&max) = self.mins.iter().next_back() {
            if h < max && self.mins.insert(h) {
                self.mins.remove(&max);
            }
        }
    }

    /// Offer raw bytes.
    pub fn offer_bytes(&mut self, bytes: &[u8]) {
        self.offer_hash(hash_bytes(bytes));
    }

    /// Estimated number of distinct values offered.
    pub fn estimate(&self) -> f64 {
        let n = self.mins.len();
        if n < self.k {
            return n as f64;
        }
        let kth = *self.mins.iter().next_back().expect("non-empty");
        let r = (kth as f64 + 1.0) / (u64::MAX as f64 + 1.0);
        ((self.k - 1) as f64 / r).max(n as f64)
    }

    /// Merge another sketch (union of distinct sets).
    pub fn merge(&mut self, other: &KmvSketch) {
        for &h in &other.mins {
            self.offer_hash(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_k() {
        let mut s = KmvSketch::new(64);
        for i in 0..40u64 {
            s.offer_bytes(&i.to_le_bytes());
        }
        assert_eq!(s.estimate(), 40.0);
        // Duplicates do not inflate.
        for i in 0..40u64 {
            s.offer_bytes(&i.to_le_bytes());
        }
        assert_eq!(s.estimate(), 40.0);
    }

    #[test]
    fn estimates_large_cardinalities_within_tolerance() {
        // Error scales ~1/√k: a large sketch must be tight, the default
        // sketch merely sane.
        let n = 100_000u64;
        let mut big = KmvSketch::new(4096);
        let mut small = KmvSketch::new(256);
        for i in 0..n {
            let h = hash_bytes(&i.to_le_bytes());
            big.offer_hash(h);
            small.offer_hash(h);
        }
        let rel_big = (big.estimate() - n as f64).abs() / n as f64;
        assert!(rel_big < 0.05, "k=4096 relative error {rel_big}");
        let rel_small = (small.estimate() - n as f64).abs() / n as f64;
        assert!(rel_small < 0.30, "k=256 relative error {rel_small}");
    }

    #[test]
    fn merge_unions_distinct_sets() {
        let mut a = KmvSketch::new(128);
        let mut b = KmvSketch::new(128);
        for i in 0..50u64 {
            a.offer_bytes(&i.to_le_bytes());
        }
        for i in 25..75u64 {
            b.offer_bytes(&i.to_le_bytes());
        }
        a.merge(&b);
        assert_eq!(a.estimate(), 75.0);
    }

    #[test]
    fn hash_bytes_disperses() {
        let h1 = hash_bytes(b"a");
        let h2 = hash_bytes(b"b");
        assert_ne!(h1, h2);
        assert_ne!(h1 >> 32, 0);
    }
}
