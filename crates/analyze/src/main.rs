//! CLI for the workspace invariant linter. See the crate docs and the
//! README's "Static analysis" section.
//!
//! ```text
//! cargo run -p nodb-analyze                 # lint the workspace
//! cargo run -p nodb-analyze -- --lint knob  # one arm only
//! cargo run -p nodb-analyze -- --print-unsafe-entries
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use nodb_analyze::config::Config;
use nodb_analyze::LINT_NAMES;

fn usage() -> String {
    format!(
        "usage: nodb-analyze [--root PATH] [--lint NAME]... [--verbose] \
         [--print-unsafe-entries] [--list]\n       lints: {}",
        LINT_NAMES.join(", ")
    )
}

/// Walk upward from `start` to the directory containing the workspace
/// `Cargo.toml` (identified by its `[workspace]` table).
fn find_workspace_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut only: Vec<String> = Vec::new();
    let mut verbose = false;
    let mut print_templates = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--lint" => match args.next() {
                Some(name) if LINT_NAMES.contains(&name.as_str()) => only.push(name),
                Some(name) => {
                    eprintln!("unknown lint `{name}`\n{}", usage());
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("--lint needs a name\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--verbose" => verbose = true,
            "--print-unsafe-entries" => print_templates = true,
            "--list" => {
                println!("{}", LINT_NAMES.join("\n"));
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(|| std::env::current_dir().ok().and_then(find_workspace_root)) {
        Some(r) => r,
        None => {
            eprintln!(
                "could not locate the workspace root (run from inside the repo or pass --root)"
            );
            return ExitCode::from(2);
        }
    };
    let cfg = Config::for_workspace(&root);

    if print_templates {
        return match nodb_analyze::unsafe_entry_templates(&cfg) {
            Ok(t) if t.is_empty() => {
                println!("# every unsafe site is already audited");
                ExitCode::SUCCESS
            }
            Ok(t) => {
                print!("{t}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("nodb-analyze: {e}");
                ExitCode::from(2)
            }
        };
    }

    match nodb_analyze::run(&cfg, &only) {
        Ok(report) => {
            if verbose {
                for (f, why) in &report.waived {
                    println!("waived  {f}\n        waiver: {why}");
                }
            }
            for f in &report.findings {
                println!("{f}");
            }
            println!(
                "nodb-analyze: {} file(s), {} finding(s), {} waived",
                report.files_scanned,
                report.findings.len(),
                report.waived.len()
            );
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("nodb-analyze: {e}");
            ExitCode::from(2)
        }
    }
}
