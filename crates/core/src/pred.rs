//! Compiled scan predicates: pushed-down conjuncts evaluated against raw
//! field slices *before* full-row tokenization and conversion.
//!
//! The rewrite pipeline (`nodb-sql`) pushes WHERE conjuncts into
//! `LogicalPlan::Scan::filters`. Historically the scan still tokenized
//! every projected attribute and converted every WHERE column before
//! evaluating those conjuncts; for a selective predicate on an early
//! column of a wide row, almost all of that work is thrown away.
//! [`ScanPredicate::compile`] extracts the conjuncts simple enough to
//! check per column — comparisons against pre-converted literals, LIKE
//! prefix/suffix fast paths on raw bytes, IS \[NOT\] NULL — so the scan
//! can tokenize *only up to the predicate frontier*, test, and skip the
//! rest of the record on a miss (the paper's selective tokenizing taken
//! one step further: the query's logic, not just its projection, bounds
//! the bytes touched).
//!
//! # Soundness contract
//!
//! A compiled item rejecting a row must imply the original conjunct
//! evaluates to FALSE or NULL for that row (both reject in predicate
//! position). Rows that *pass* every compiled item re-run the full
//! filter list through the ordinary evaluation path, so compiled items
//! never admit a row on their own — they are purely an early-reject
//! screen, and residual (uncompiled) conjuncts need no special handling.
//!
//! Rows rejected early skip conversion and validation of fields past
//! the predicate frontier; a malformed byte in a field the predicate
//! proved irrelevant no longer aborts the query. That is the only
//! observable difference from the unpushed plan, and the scan only uses
//! compiled predicates when no positional map, cache, or statistics
//! collection is active (those need every row's full frontier anyway).

use std::cmp::Ordering;

use nodb_common::like::like_match;
use nodb_common::{DataType, LineFormat, NoDbError, RawField, Result, Value};
use nodb_sql::{BinOp, BoundExpr};

/// Structural LIKE fast paths recognizable from the pattern alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LikeShape {
    /// `lit%` — raw bytes must start with `lit`.
    Prefix(Vec<u8>),
    /// `%lit` — raw bytes must end with `lit`.
    Suffix(Vec<u8>),
    /// Anything else: full [`like_match`] on the text content.
    General,
}

/// One compiled per-column test.
#[derive(Debug, Clone, PartialEq)]
pub enum PredOp {
    /// Comparison against a pre-converted literal (`sql_cmp` semantics:
    /// NULL or incomparable types reject).
    Cmp {
        /// Comparison operator, column on the left.
        op: BinOp,
        /// The literal, already a [`Value`] (never NULL).
        lit: Value,
    },
    /// `col [NOT] LIKE 'pattern'` on a text column.
    Like {
        /// Recognized fast-path shape.
        shape: LikeShape,
        /// The full pattern (used by [`LikeShape::General`]).
        pattern: String,
        /// NOT LIKE.
        negated: bool,
    },
    /// `col IS [NOT] NULL`.
    IsNull {
        /// IS NOT NULL.
        negated: bool,
    },
}

/// A compiled conjunct: which column it tests and how.
#[derive(Debug, Clone, PartialEq)]
pub struct PredItem {
    /// Ordinal into the scan's projection (the filter expressions'
    /// column space).
    pub local: usize,
    /// File attribute ordinal (indexes tokenized start positions).
    pub attr: usize,
    /// The test.
    pub op: PredOp,
}

/// The compiled early-reject screen for one scan.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanPredicate {
    items: Vec<PredItem>,
    max_attr: usize,
}

impl ScanPredicate {
    /// Compile the pushed-down conjuncts that have a per-column raw
    /// form. `projection` maps filter-local ordinals to file attributes;
    /// `dtype` gives each local column's declared type. Returns `None`
    /// when nothing compiles (the scan keeps its ordinary path).
    pub fn compile(
        filters: &[BoundExpr],
        projection: &[usize],
        dtype: impl Fn(usize) -> DataType,
    ) -> Option<ScanPredicate> {
        let mut items = Vec::new();
        for f in filters {
            compile_conjunct(f, &dtype, &mut items);
        }
        let max_attr = items.iter().map(|i| projection[i.local]).max()?;
        for i in items.iter_mut() {
            i.attr = projection[i.local];
        }
        Some(ScanPredicate { items, max_attr })
    }

    /// Highest file attribute any compiled item touches — the predicate
    /// tokenization frontier.
    pub fn max_attr(&self) -> usize {
        self.max_attr
    }

    /// The compiled items (for EXPLAIN and tests).
    pub fn items(&self) -> &[PredItem] {
        &self.items
    }

    /// Evaluate every compiled item against one record. `starts` holds
    /// tokenized start positions indexed by file attribute, valid at
    /// least up to [`ScanPredicate::max_attr`]. `parse` converts the
    /// field of a local column at a known start (the scan's ordinary
    /// conversion hook, so metrics and error decoration stay in one
    /// place). Returns whether the row survives the screen.
    pub fn matches(
        &self,
        format: &dyn LineFormat,
        line: &[u8],
        starts: &[u32],
        parse: &mut dyn FnMut(usize, u32) -> Result<Value>,
    ) -> Result<bool> {
        for item in &self.items {
            let start = starts[item.attr];
            let pass = match &item.op {
                PredOp::Cmp { op, lit } => {
                    let v = parse(item.local, start)?;
                    match v.sql_cmp(lit) {
                        None => false,
                        Some(ord) => cmp_matches(*op, ord),
                    }
                }
                PredOp::Like {
                    shape,
                    pattern,
                    negated,
                } => match format.raw_field(line, start) {
                    RawField::Null => false,
                    RawField::Text(b) => {
                        let matched = match shape {
                            LikeShape::Prefix(p) => b.starts_with(p),
                            LikeShape::Suffix(s) => b.ends_with(s),
                            LikeShape::General => like_match(&String::from_utf8_lossy(b), pattern),
                        };
                        matched != *negated
                    }
                    RawField::Opaque => match parse(item.local, start)? {
                        Value::Null => false,
                        Value::Text(s) => like_match(&s, pattern) != *negated,
                        other => {
                            return Err(NoDbError::execution(format!("LIKE on non-text {other}")))
                        }
                    },
                },
                PredOp::IsNull { negated } => match format.raw_field(line, start) {
                    RawField::Null => !negated,
                    RawField::Text(_) => *negated,
                    RawField::Opaque => parse(item.local, start)?.is_null() != *negated,
                },
            };
            if !pass {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

impl PredOp {
    /// Test an already-converted value — the warm-path variant, used
    /// when positions come from the positional map and no raw slice is
    /// at hand. Same semantics as the raw-path arms of
    /// [`ScanPredicate::matches`].
    pub fn test_value(&self, v: &Value) -> Result<bool> {
        Ok(match self {
            PredOp::Cmp { op, lit } => match v.sql_cmp(lit) {
                None => false,
                Some(ord) => cmp_matches(*op, ord),
            },
            PredOp::Like {
                pattern, negated, ..
            } => match v {
                Value::Null => false,
                Value::Text(s) => like_match(s, pattern) != *negated,
                other => return Err(NoDbError::execution(format!("LIKE on non-text {other}"))),
            },
            PredOp::IsNull { negated } => v.is_null() != *negated,
        })
    }
}

/// Compile one conjunct into zero or more items (BETWEEN yields two).
/// `attr` is filled in later from the projection.
fn compile_conjunct(f: &BoundExpr, dtype: &impl Fn(usize) -> DataType, out: &mut Vec<PredItem>) {
    let item = |local, op| PredItem { local, attr: 0, op };
    match f {
        BoundExpr::Binary { op, left, right } if op.is_comparison() => {
            match (left.as_ref(), right.as_ref()) {
                (BoundExpr::Col(i), BoundExpr::Lit(v)) if !v.is_null() => {
                    out.push(item(
                        *i,
                        PredOp::Cmp {
                            op: *op,
                            lit: v.clone(),
                        },
                    ));
                }
                (BoundExpr::Lit(v), BoundExpr::Col(i)) if !v.is_null() => {
                    out.push(item(
                        *i,
                        PredOp::Cmp {
                            op: flip(*op),
                            lit: v.clone(),
                        },
                    ));
                }
                _ => {}
            }
        }
        BoundExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            if let (BoundExpr::Col(i), BoundExpr::Lit(Value::Text(p))) =
                (expr.as_ref(), pattern.as_ref())
            {
                // Only text columns: LIKE on any other type is a runtime
                // error the ordinary path must keep raising.
                if dtype(*i) == DataType::Text {
                    out.push(item(
                        *i,
                        PredOp::Like {
                            shape: like_shape(p),
                            pattern: p.clone(),
                            negated: *negated,
                        },
                    ));
                }
            }
        }
        BoundExpr::IsNull { expr, negated } => {
            if let BoundExpr::Col(i) = expr.as_ref() {
                out.push(item(*i, PredOp::IsNull { negated: *negated }));
            }
        }
        BoundExpr::Between {
            expr,
            low,
            high,
            negated: false,
        } => {
            // x BETWEEN l AND h ⊆ (x >= l) AND (x <= h): failing either
            // bound implies the BETWEEN is FALSE or NULL.
            if let BoundExpr::Col(i) = expr.as_ref() {
                if let BoundExpr::Lit(v) = low.as_ref() {
                    if !v.is_null() {
                        out.push(item(
                            *i,
                            PredOp::Cmp {
                                op: BinOp::GtEq,
                                lit: v.clone(),
                            },
                        ));
                    }
                }
                if let BoundExpr::Lit(v) = high.as_ref() {
                    if !v.is_null() {
                        out.push(item(
                            *i,
                            PredOp::Cmp {
                                op: BinOp::LtEq,
                                lit: v.clone(),
                            },
                        ));
                    }
                }
            }
        }
        _ => {}
    }
}

/// Swap sides of a comparison: `lit op col` → `col flip(op) lit`.
fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::LtEq => BinOp::GtEq,
        BinOp::Gt => BinOp::Lt,
        BinOp::GtEq => BinOp::LtEq,
        other => other,
    }
}

fn cmp_matches(op: BinOp, ord: Ordering) -> bool {
    match op {
        BinOp::Eq => ord == Ordering::Equal,
        BinOp::NotEq => ord != Ordering::Equal,
        BinOp::Lt => ord == Ordering::Less,
        BinOp::LtEq => ord != Ordering::Greater,
        BinOp::Gt => ord == Ordering::Greater,
        BinOp::GtEq => ord != Ordering::Less,
        // `compile_conjunct` only builds `PredOp::Cmp` from comparison
        // ops (and BETWEEN's GtEq/LtEq), so no other op can reach here.
        // The screen is an early-reject in front of the full filter
        // evaluation, so passing the row through is always sound.
        _ => true,
    }
}

/// Recognize `lit%` / `%lit` patterns whose literal part has no
/// wildcards — those match with one slice comparison on raw bytes.
fn like_shape(pattern: &str) -> LikeShape {
    let b = pattern.as_bytes();
    if b.len() >= 2 && b.ends_with(b"%") {
        let lit = &b[..b.len() - 1];
        if !lit.is_empty() && !lit.iter().any(|&c| c == b'%' || c == b'_') {
            return LikeShape::Prefix(lit.to_vec());
        }
    }
    if b.len() >= 2 && b.starts_with(b"%") {
        let lit = &b[1..];
        if !lit.is_empty() && !lit.iter().any(|&c| c == b'%' || c == b'_') {
            return LikeShape::Suffix(lit.to_vec());
        }
    }
    LikeShape::General
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(i: usize) -> BoundExpr {
        BoundExpr::Col(i)
    }

    fn lit(v: Value) -> BoundExpr {
        BoundExpr::Lit(v)
    }

    fn cmp(op: BinOp, l: BoundExpr, r: BoundExpr) -> BoundExpr {
        BoundExpr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    #[test]
    fn compiles_comparisons_both_ways() {
        let filters = vec![
            cmp(BinOp::Lt, col(1), lit(Value::Int64(5))),
            cmp(BinOp::Gt, lit(Value::Int64(3)), col(0)),
        ];
        let p = ScanPredicate::compile(&filters, &[2, 7], |_| DataType::Int64).unwrap();
        assert_eq!(p.max_attr(), 7);
        assert_eq!(p.items().len(), 2);
        assert_eq!(p.items()[0].attr, 7);
        // `3 > c0` flips to `c0 < 3`.
        assert_eq!(
            p.items()[1].op,
            PredOp::Cmp {
                op: BinOp::Lt,
                lit: Value::Int64(3)
            }
        );
    }

    #[test]
    fn null_literals_and_complex_shapes_stay_residual() {
        let filters = vec![
            cmp(BinOp::Eq, col(0), lit(Value::Null)),
            cmp(BinOp::Eq, col(0), col(1)),
        ];
        assert!(ScanPredicate::compile(&filters, &[0, 1], |_| DataType::Int64).is_none());
    }

    #[test]
    fn like_compiles_only_on_text_columns() {
        let like = BoundExpr::Like {
            expr: Box::new(col(0)),
            pattern: Box::new(lit(Value::Text("PROMO%".into()))),
            negated: false,
        };
        let p =
            ScanPredicate::compile(std::slice::from_ref(&like), &[4], |_| DataType::Text).unwrap();
        assert!(matches!(
            &p.items()[0].op,
            PredOp::Like {
                shape: LikeShape::Prefix(pfx),
                ..
            } if pfx == b"PROMO"
        ));
        assert!(
            ScanPredicate::compile(std::slice::from_ref(&like), &[4], |_| DataType::Int64)
                .is_none()
        );
    }

    #[test]
    fn like_shapes_recognized() {
        assert_eq!(like_shape("abc%"), LikeShape::Prefix(b"abc".to_vec()));
        assert_eq!(like_shape("%abc"), LikeShape::Suffix(b"abc".to_vec()));
        for general in ["a%c", "%a%", "a_c%", "%", "abc", "%%"] {
            assert_eq!(like_shape(general), LikeShape::General, "{general}");
        }
    }

    #[test]
    fn between_expands_to_bound_checks() {
        let between = BoundExpr::Between {
            expr: Box::new(col(0)),
            low: Box::new(lit(Value::Int64(2))),
            high: Box::new(lit(Value::Int64(9))),
            negated: false,
        };
        let p = ScanPredicate::compile(std::slice::from_ref(&between), &[3], |_| DataType::Int64)
            .unwrap();
        assert_eq!(p.items().len(), 2);
    }
}
