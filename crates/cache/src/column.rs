//! Partial columnar cache entries.

use nodb_common::{DataType, Date, Value};

/// Typed dense storage for one block of one attribute. Rows that are not
/// present hold a default slot; the presence bitmap is authoritative.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// 32-bit integers.
    I32(Vec<i32>),
    /// 64-bit integers.
    I64(Vec<i64>),
    /// 64-bit floats.
    F64(Vec<f64>),
    /// Dates as day numbers.
    Date(Vec<i32>),
    /// Booleans.
    Bool(Vec<bool>),
    /// Strings.
    Text(Vec<String>),
}

impl ColumnData {
    fn with_len(dtype: DataType, n: usize) -> ColumnData {
        match dtype {
            DataType::Int32 => ColumnData::I32(vec![0; n]),
            DataType::Int64 => ColumnData::I64(vec![0; n]),
            DataType::Float64 => ColumnData::F64(vec![0.0; n]),
            DataType::Date => ColumnData::Date(vec![0; n]),
            DataType::Bool => ColumnData::Bool(vec![false; n]),
            DataType::Text => ColumnData::Text(vec![String::new(); n]),
        }
    }

    fn value(&self, i: usize) -> Value {
        match self {
            ColumnData::I32(v) => Value::Int32(v[i]),
            ColumnData::I64(v) => Value::Int64(v[i]),
            ColumnData::F64(v) => Value::Float64(v[i]),
            ColumnData::Date(v) => Value::Date(Date(v[i])),
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Text(v) => Value::Text(v[i].clone()),
        }
    }

    /// Store `value` at `i`; returns false on a type mismatch.
    fn set(&mut self, i: usize, value: &Value) -> bool {
        match (self, value) {
            (ColumnData::I32(v), Value::Int32(x)) => v[i] = *x,
            (ColumnData::I64(v), Value::Int64(x)) => v[i] = *x,
            (ColumnData::F64(v), Value::Float64(x)) => v[i] = *x,
            (ColumnData::Date(v), Value::Date(d)) => v[i] = d.0,
            (ColumnData::Bool(v), Value::Bool(b)) => v[i] = *b,
            (ColumnData::Text(v), Value::Text(s)) => v[i] = s.clone(),
            _ => return false,
        }
        true
    }

    fn bytes(&self) -> usize {
        match self {
            ColumnData::I32(v) => v.len() * 4,
            ColumnData::I64(v) => v.len() * 8,
            ColumnData::F64(v) => v.len() * 8,
            ColumnData::Date(v) => v.len() * 4,
            ColumnData::Bool(v) => v.len(),
            ColumnData::Text(v) => v
                .iter()
                .map(|s| std::mem::size_of::<String>() + s.capacity())
                .sum(),
        }
    }
}

/// Simple fixed-size bitmap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Bitmap {
    words: Vec<u64>,
    ones: usize,
}

impl Bitmap {
    pub(crate) fn new(bits: usize) -> Bitmap {
        Bitmap {
            words: vec![0; bits.div_ceil(64)],
            ones: 0,
        }
    }

    pub(crate) fn set(&mut self, i: usize) {
        let w = &mut self.words[i / 64];
        let m = 1u64 << (i % 64);
        if *w & m == 0 {
            *w |= m;
            self.ones += 1;
        }
    }

    pub(crate) fn get(&self, i: usize) -> bool {
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    pub(crate) fn count(&self) -> usize {
        self.ones
    }

    pub(crate) fn bytes(&self) -> usize {
        self.words.len() * 8
    }
}

/// One cached (block × attribute) column, possibly partial.
#[derive(Debug, Clone)]
pub struct CachedColumn {
    /// Block ordinal (same alignment as the positional map).
    pub block: u64,
    /// Attribute file ordinal.
    pub attr: u32,
    /// Value type.
    pub dtype: DataType,
    rows: usize,
    present: Bitmap,
    nulls: Bitmap,
    data: ColumnData,
    bytes: usize,
}

impl CachedColumn {
    /// Number of rows the block covers.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of rows with a cached value (incl. NULLs).
    pub fn present_count(&self) -> usize {
        self.present.count()
    }

    /// Whether every row of the block is cached.
    pub fn is_complete(&self) -> bool {
        self.present.count() == self.rows
    }

    /// Cached value for a block-local row: `None` when the row was never
    /// parsed (a *hole* left by selective parsing) or lies beyond the
    /// rows this column covered when built (e.g. after an append);
    /// `Some(Value::Null)` for a cached NULL.
    pub fn get(&self, local_row: usize) -> Option<Value> {
        if local_row >= self.rows || !self.present.get(local_row) {
            return None;
        }
        if self.nulls.get(local_row) {
            return Some(Value::Null);
        }
        Some(self.data.value(local_row))
    }

    /// Approximate memory footprint.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Merge another (newer) partial column for the same block/attr,
    /// filling holes. Values already present are kept (they are equal by
    /// construction — both came from parsing the same file bytes). When
    /// the newer column covers *more* rows (the block grew through an
    /// append, §4.5), the column grows to the new extent.
    pub fn absorb(&mut self, other: &CachedColumn) {
        debug_assert_eq!(self.block, other.block);
        debug_assert_eq!(self.attr, other.attr);
        if self.dtype != other.dtype {
            return;
        }
        if other.rows > self.rows {
            // Grow: start from the wider column, pull in our old values.
            let mut grown = other.clone();
            for i in 0..self.rows {
                if !grown.present.get(i) && self.present.get(i) {
                    if self.nulls.get(i) {
                        grown.nulls.set(i);
                    } else {
                        grown.data.set(i, &self.data.value(i));
                    }
                    grown.present.set(i);
                }
            }
            *self = grown;
        } else {
            for i in 0..other.rows.min(self.rows) {
                if !self.present.get(i) && other.present.get(i) {
                    if other.nulls.get(i) {
                        self.nulls.set(i);
                    } else {
                        self.data.set(i, &other.data.value(i));
                    }
                    self.present.set(i);
                }
            }
        }
        self.bytes = self.data.bytes() + self.present.bytes() + self.nulls.bytes() + 64;
    }
}

/// Builds a [`CachedColumn`] while a scan converts values.
#[derive(Debug)]
pub struct ColumnBuilder {
    col: CachedColumn,
}

impl ColumnBuilder {
    /// Start a column for `rows` tuples of `block`.
    pub fn new(block: u64, attr: u32, dtype: DataType, rows: usize) -> ColumnBuilder {
        ColumnBuilder {
            col: CachedColumn {
                block,
                attr,
                dtype,
                rows,
                present: Bitmap::new(rows),
                nulls: Bitmap::new(rows),
                data: ColumnData::with_len(dtype, rows),
                bytes: 0,
            },
        }
    }

    /// Record the converted value for a block-local row. Type mismatches
    /// are ignored (the scan validated types already; defensive no-op).
    pub fn set(&mut self, local_row: usize, value: &Value) {
        if local_row >= self.col.rows {
            return;
        }
        match value {
            Value::Null => {
                self.col.nulls.set(local_row);
                self.col.present.set(local_row);
            }
            v => {
                if self.col.data.set(local_row, v) {
                    self.col.present.set(local_row);
                }
            }
        }
    }

    /// Number of values recorded.
    pub fn filled(&self) -> usize {
        self.col.present.count()
    }

    /// Finish, computing byte accounting.
    pub fn build(mut self) -> CachedColumn {
        self.col.bytes =
            self.col.data.bytes() + self.col.present.bytes() + self.col.nulls.bytes() + 64;
        self.col
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_column_distinguishes_holes_from_nulls() {
        let mut b = ColumnBuilder::new(0, 3, DataType::Int32, 8);
        b.set(1, &Value::Int32(42));
        b.set(4, &Value::Null);
        let c = b.build();
        assert_eq!(c.get(0), None); // hole
        assert_eq!(c.get(1), Some(Value::Int32(42)));
        assert_eq!(c.get(4), Some(Value::Null)); // cached NULL
        assert_eq!(c.present_count(), 2);
        assert!(!c.is_complete());
    }

    #[test]
    fn complete_column() {
        let mut b = ColumnBuilder::new(0, 0, DataType::Float64, 3);
        for i in 0..3 {
            b.set(i, &Value::Float64(i as f64 * 0.5));
        }
        let c = b.build();
        assert!(c.is_complete());
        assert_eq!(c.get(2), Some(Value::Float64(1.0)));
    }

    #[test]
    fn type_mismatch_is_ignored() {
        let mut b = ColumnBuilder::new(0, 0, DataType::Int32, 2);
        b.set(0, &Value::Text("oops".into()));
        let c = b.build();
        assert_eq!(c.get(0), None);
    }

    #[test]
    fn absorb_fills_holes_only() {
        let mut a = {
            let mut b = ColumnBuilder::new(0, 0, DataType::Int32, 4);
            b.set(0, &Value::Int32(1));
            b.build()
        };
        let other = {
            let mut b = ColumnBuilder::new(0, 0, DataType::Int32, 4);
            b.set(0, &Value::Int32(99)); // ignored: already present
            b.set(2, &Value::Int32(3));
            b.set(3, &Value::Null);
            b.build()
        };
        a.absorb(&other);
        assert_eq!(a.get(0), Some(Value::Int32(1)));
        assert_eq!(a.get(1), None);
        assert_eq!(a.get(2), Some(Value::Int32(3)));
        assert_eq!(a.get(3), Some(Value::Null));
    }

    #[test]
    fn text_bytes_account_for_capacity() {
        let mut b = ColumnBuilder::new(0, 0, DataType::Text, 2);
        b.set(0, &Value::Text("hello world".into()));
        let c = b.build();
        assert!(c.bytes() > 11);
    }

    #[test]
    fn bitmap_counts() {
        let mut bm = Bitmap::new(130);
        bm.set(0);
        bm.set(64);
        bm.set(129);
        bm.set(129);
        assert_eq!(bm.count(), 3);
        assert!(bm.get(64));
        assert!(!bm.get(65));
    }
}
