//! Runtime values flowing through the engine.

use std::cmp::Ordering;
use std::fmt;

use crate::date::Date;
use crate::error::{NoDbError, Result};
use crate::types::DataType;

/// A single dynamically-typed value.
///
/// `Value` is the unit the Volcano operators exchange. The in-situ scan
/// produces them by converting raw ASCII fields (the paper's "data type
/// conversion" cost); the loaded engine decodes them from binary pages.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL (empty CSV field).
    Null,
    /// 32-bit integer.
    Int32(i32),
    /// 64-bit integer.
    Int64(i64),
    /// 64-bit float.
    Float64(f64),
    /// Text.
    Text(String),
    /// Calendar date.
    Date(Date),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// The logical type of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int32(_) => Some(DataType::Int32),
            Value::Int64(_) => Some(DataType::Int64),
            Value::Float64(_) => Some(DataType::Float64),
            Value::Text(_) => Some(DataType::Text),
            Value::Date(_) => Some(DataType::Date),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// True when this value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view as `f64`, if the value is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int32(v) => Some(*v as f64),
            Value::Int64(v) => Some(*v as f64),
            Value::Float64(v) => Some(*v),
            _ => None,
        }
    }

    /// Integer view as `i64`, if the value is an integer or date.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int32(v) => Some(*v as i64),
            Value::Int64(v) => Some(*v),
            Value::Date(d) => Some(d.days() as i64),
            _ => None,
        }
    }

    /// Text view, if the value is text.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view, if the value is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL comparison with NULL propagation: returns `None` when either
    /// side is NULL or the types are incomparable. Numeric types compare
    /// cross-width (e.g. `Int32` vs `Float64`).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Text(a), Text(b)) => Some(a.as_str().cmp(b.as_str())),
            (Date(a), Date(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Int32(a), Int32(b)) => Some(a.cmp(b)),
            (Int64(a), Int64(b)) => Some(a.cmp(b)),
            (Int32(a), Int64(b)) => Some((*a as i64).cmp(b)),
            (Int64(a), Int32(b)) => Some(a.cmp(&(*b as i64))),
            _ => {
                let a = self.as_f64()?;
                let b = other.as_f64()?;
                a.partial_cmp(&b)
            }
        }
    }

    /// Total order for sorting: NULLs first, then by [`Value::sql_cmp`];
    /// incomparable pairs fall back to a type-rank order so sorts never
    /// panic on heterogeneous data.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        match (self.is_null(), other.is_null()) {
            (true, true) => return Ordering::Equal,
            (true, false) => return Ordering::Less,
            (false, true) => return Ordering::Greater,
            _ => {}
        }
        self.sql_cmp(other)
            .unwrap_or_else(|| type_rank(self).cmp(&type_rank(other)))
    }

    /// Approximate heap footprint for cache byte accounting.
    pub fn heap_size(&self) -> usize {
        match self {
            Value::Text(s) => std::mem::size_of::<Value>() + s.capacity(),
            _ => std::mem::size_of::<Value>(),
        }
    }

    /// Parse a raw ASCII field into a value of `dtype`. Empty input is NULL.
    ///
    /// This is the conversion the paper identifies as a "fundamental
    /// overhead" of in-situ querying (§6, Data Type Conversion); both the
    /// in-situ scan and the bulk loader funnel through it.
    pub fn parse_field(bytes: &[u8], dtype: DataType) -> Result<Value> {
        if bytes.is_empty() {
            return Ok(Value::Null);
        }
        match dtype {
            DataType::Int32 => parse_i64(bytes).and_then(|v| {
                i32::try_from(v)
                    .map(Value::Int32)
                    .map_err(|_| NoDbError::parse("int out of range"))
            }),
            DataType::Int64 => parse_i64(bytes).map(Value::Int64),
            DataType::Float64 => std::str::from_utf8(bytes)
                .ok()
                .and_then(|s| s.trim().parse::<f64>().ok())
                .map(Value::Float64)
                .ok_or_else(|| {
                    NoDbError::parse(format!("bad float `{}`", String::from_utf8_lossy(bytes)))
                }),
            DataType::Text => Ok(Value::Text(String::from_utf8_lossy(bytes).into_owned())),
            DataType::Date => Date::parse_bytes(bytes).map(Value::Date),
            DataType::Bool => match bytes {
                b"t" | b"true" | b"T" | b"1" => Ok(Value::Bool(true)),
                b"f" | b"false" | b"F" | b"0" => Ok(Value::Bool(false)),
                _ => Err(NoDbError::parse(format!(
                    "bad bool `{}`",
                    String::from_utf8_lossy(bytes)
                ))),
            },
        }
    }

    /// Render the value in CSV form (inverse of [`Value::parse_field`]).
    pub fn to_csv_field(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Int32(v) => v.to_string(),
            Value::Int64(v) => v.to_string(),
            Value::Float64(v) => format_f64(*v),
            Value::Text(s) => s.clone(),
            Value::Date(d) => d.to_string(),
            Value::Bool(b) => (if *b { "t" } else { "f" }).to_string(),
        }
    }
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int32(_) | Value::Int64(_) | Value::Float64(_) => 2,
        Value::Date(_) => 3,
        Value::Text(_) => 4,
    }
}

/// Format a float so that `parse::<f64>` roundtrips and integral values
/// keep a trailing `.0` marker (so type inference on re-read stays stable).
fn format_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// Fast ASCII integer parser (accepts leading `-`/`+`).
fn parse_i64(bytes: &[u8]) -> Result<i64> {
    let (neg, digits) = match bytes.first() {
        Some(b'-') => (true, &bytes[1..]),
        Some(b'+') => (false, &bytes[1..]),
        _ => (false, bytes),
    };
    if digits.is_empty() || digits.len() > 19 {
        return Err(NoDbError::parse(format!(
            "bad int `{}`",
            String::from_utf8_lossy(bytes)
        )));
    }
    let mut v: i64 = 0;
    for &c in digits {
        if !c.is_ascii_digit() {
            return Err(NoDbError::parse(format!(
                "bad int `{}`",
                String::from_utf8_lossy(bytes)
            )));
        }
        v = v
            .checked_mul(10)
            .and_then(|v| v.checked_add((c - b'0') as i64))
            .ok_or_else(|| NoDbError::parse("int overflow"))?;
    }
    Ok(if neg { -v } else { v })
}

impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::Int32(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<Date> for Value {
    fn from(v: Date) -> Value {
        Value::Date(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map_or(Value::Null, Into::into)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int32(v) => write!(f, "{v}"),
            Value::Int64(v) => write!(f, "{v}"),
            Value::Float64(v) => write!(f, "{}", format_f64(*v)),
            Value::Text(s) => f.write_str(s),
            Value::Date(d) => write!(f, "{d}"),
            Value::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_field_handles_each_type() {
        assert_eq!(
            Value::parse_field(b"42", DataType::Int32).unwrap(),
            Value::Int32(42)
        );
        assert_eq!(
            Value::parse_field(b"-7", DataType::Int64).unwrap(),
            Value::Int64(-7)
        );
        assert_eq!(
            Value::parse_field(b"3.5", DataType::Float64).unwrap(),
            Value::Float64(3.5)
        );
        assert_eq!(
            Value::parse_field(b"hi", DataType::Text).unwrap(),
            Value::Text("hi".into())
        );
        assert_eq!(
            Value::parse_field(b"1996-03-13", DataType::Date).unwrap(),
            Value::Date(Date::parse("1996-03-13").unwrap())
        );
        assert_eq!(
            Value::parse_field(b"t", DataType::Bool).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn empty_field_is_null_for_every_type() {
        for dt in [
            DataType::Int32,
            DataType::Int64,
            DataType::Float64,
            DataType::Text,
            DataType::Date,
            DataType::Bool,
        ] {
            assert_eq!(Value::parse_field(b"", dt).unwrap(), Value::Null);
        }
    }

    #[test]
    fn parse_field_rejects_garbage() {
        assert!(Value::parse_field(b"abc", DataType::Int32).is_err());
        assert!(Value::parse_field(b"12x", DataType::Int64).is_err());
        assert!(Value::parse_field(b"--3", DataType::Int32).is_err());
        assert!(Value::parse_field(b"1.2.3", DataType::Float64).is_err());
        assert!(Value::parse_field(b"maybe", DataType::Bool).is_err());
    }

    #[test]
    fn int32_range_is_enforced() {
        assert!(Value::parse_field(b"2147483647", DataType::Int32).is_ok());
        assert!(Value::parse_field(b"2147483648", DataType::Int32).is_err());
    }

    #[test]
    fn sql_cmp_propagates_null() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int32(1)), None);
        assert_eq!(Value::Int32(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_crosses_numeric_widths() {
        assert_eq!(
            Value::Int32(2).sql_cmp(&Value::Float64(1.5)),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::Int64(3).sql_cmp(&Value::Int32(3)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn total_cmp_sorts_nulls_first() {
        let mut v = vec![Value::Int32(2), Value::Null, Value::Int32(1)];
        v.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(v, vec![Value::Null, Value::Int32(1), Value::Int32(2)]);
    }

    #[test]
    fn csv_field_roundtrip_examples() {
        for (v, dt) in [
            (Value::Int32(-5), DataType::Int32),
            (Value::Float64(2.25), DataType::Float64),
            (Value::Float64(4.0), DataType::Float64),
            (Value::Text("BUILDING".into()), DataType::Text),
            (Value::Bool(false), DataType::Bool),
        ] {
            let s = v.to_csv_field();
            assert_eq!(Value::parse_field(s.as_bytes(), dt).unwrap(), v);
        }
    }

    proptest! {
        #[test]
        fn int_roundtrip(v in any::<i64>()) {
            let s = v.to_string();
            prop_assert_eq!(
                Value::parse_field(s.as_bytes(), DataType::Int64).unwrap(),
                Value::Int64(v)
            );
        }

        #[test]
        fn float_roundtrip(v in any::<i32>().prop_map(|x| x as f64 / 128.0)) {
            let s = Value::Float64(v).to_csv_field();
            let got = Value::parse_field(s.as_bytes(), DataType::Float64).unwrap();
            prop_assert_eq!(got, Value::Float64(v));
        }
    }
}
