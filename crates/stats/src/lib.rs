//! **On-the-fly statistics** (NoDB paper, §4.4).
//!
//! Conventional engines collect statistics after loading; PostgresRaw
//! "extend\[s\] the scan operator to create statistics on-the-fly",
//! feeding the native optimizer with a *sample* of the data, only for the
//! attributes a query actually reads, augmenting them incrementally as
//! later queries touch more attributes.
//!
//! This crate provides:
//!
//! * [`StatsBuilder`] — fed by the scan with sampled values; cheap enough
//!   to run inline (the paper measures ~a few % overhead on first touch).
//! * [`ColumnStats`] — min/max, null fraction, distinct-count estimate
//!   (KMV sketch + GEE sample extrapolation), equi-width histogram and
//!   most-common values.
//! * Selectivity estimation for `=`, ranges, `LIKE` prefixes and
//!   group-count estimation — the inputs the optimizer needs for join
//!   ordering and aggregate-strategy choice (the Figure 12 mechanism).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod column;
pub mod histogram;
pub mod sketch;
pub mod table;

pub use builder::StatsBuilder;
pub use column::ColumnStats;
pub use histogram::Histogram;
pub use sketch::KmvSketch;
pub use table::TableStats;

/// Default selectivity for equality predicates when nothing is known
/// (mirrors PostgreSQL's `DEFAULT_EQ_SEL`).
pub const DEFAULT_EQ_SEL: f64 = 0.005;
/// Default selectivity for inequality/range predicates when nothing is
/// known (mirrors PostgreSQL's `DEFAULT_INEQ_SEL`).
pub const DEFAULT_INEQ_SEL: f64 = 1.0 / 3.0;
/// Default selectivity for `LIKE` when nothing is known.
pub const DEFAULT_LIKE_SEL: f64 = 0.05;
