//! JSONL micro-benchmark data generator.
//!
//! The JSON Lines twin of `nodb_csv::MicroGen`: identical RNG stream,
//! identical logical values, different physical layout (`{"c0": ..}`
//! objects instead of comma-separated fields). Generating both formats
//! from the same seed gives the differential tests and the
//! `substrate_jsonl` benchmarks files with byte-different encodings of
//! the *same* table.

use std::path::Path;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nodb_common::{DataType, Field, Result, Row, Schema, Value};

use crate::writer::{JsonlOptions, JsonlWriter};

/// Specification of a synthetic JSONL micro-benchmark table.
#[derive(Debug, Clone)]
pub struct JsonlGen {
    /// Number of records.
    pub rows: usize,
    /// Number of attributes per record.
    pub cols: usize,
    /// RNG seed; identical specs produce identical files, and a spec
    /// equal to a `nodb_csv::MicroGen` produces the same logical rows.
    pub seed: u64,
    /// Exclusive upper bound for generated integers.
    pub max_value: u32,
}

impl Default for JsonlGen {
    fn default() -> Self {
        JsonlGen {
            rows: 10_000,
            cols: 150,
            seed: 0x6e6f_6462, // "nodb" — same default stream as MicroGen
            max_value: 1_000_000_000,
        }
    }
}

impl JsonlGen {
    /// Builder-style row count.
    pub fn rows(mut self, rows: usize) -> Self {
        self.rows = rows;
        self
    }

    /// Builder-style column count.
    pub fn cols(mut self, cols: usize) -> Self {
        self.cols = cols;
        self
    }

    /// Builder-style seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The schema of the generated file: `c0, c1, ... c{cols-1}`, all
    /// `int` (the keys of every object).
    pub fn schema(&self) -> Schema {
        Schema::new(
            (0..self.cols)
                .map(|i| Field::new(format!("c{i}"), DataType::Int32))
                .collect(),
        )
        .expect("generated names are unique")
    }

    /// Write the file to `path`, returning the number of bytes written.
    pub fn write_to(&self, path: &Path) -> Result<u64> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut w = JsonlWriter::create(path, &self.schema(), JsonlOptions::default())?;
        self.write_rows(&mut rng, &mut w, self.rows)?;
        w.finish()?;
        Ok(std::fs::metadata(path)?.len())
    }

    /// Append `extra_rows` more records (continuing from the same derived
    /// seed as `MicroGen::append_to`, for the append-update scenario).
    pub fn append_to(&self, path: &Path, extra_rows: usize) -> Result<()> {
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(0x9e37_79b9));
        let mut w = JsonlWriter::append(path, &self.schema(), JsonlOptions::default())?;
        self.write_rows(&mut rng, &mut w, extra_rows)?;
        w.finish()?;
        Ok(())
    }

    fn write_rows(&self, rng: &mut StdRng, w: &mut JsonlWriter, rows: usize) -> Result<()> {
        let mut row = Row(vec![Value::Null; self.cols]);
        for _ in 0..rows {
            for v in row.0.iter_mut() {
                *v = Value::Int32(rng.gen_range(0..self.max_value) as i32);
            }
            w.write_row(&row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodb_common::TempDir;
    use nodb_csv::MicroGen;

    #[test]
    fn generates_requested_shape() {
        let td = TempDir::new("nodb-json-gen").unwrap();
        let p = td.file("micro.jsonl");
        JsonlGen::default()
            .rows(20)
            .cols(5)
            .seed(1)
            .write_to(&p)
            .unwrap();
        let text = std::fs::read_to_string(&p).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 20);
        for l in lines {
            assert!(l.starts_with("{\"c0\":"));
            assert!(l.ends_with('}'));
            assert_eq!(l.matches(':').count(), 5);
        }
    }

    #[test]
    fn mirrors_microgen_values() {
        // Same seed/shape ⇒ the JSONL file encodes exactly the rows of
        // the CSV micro generator.
        let td = TempDir::new("nodb-json-gen").unwrap();
        let jp = td.file("m.jsonl");
        let cp = td.file("m.csv");
        JsonlGen::default()
            .rows(6)
            .cols(4)
            .seed(77)
            .write_to(&jp)
            .unwrap();
        MicroGen::default()
            .rows(6)
            .cols(4)
            .seed(77)
            .write_to(&cp)
            .unwrap();
        let json = std::fs::read_to_string(&jp).unwrap();
        let csv = std::fs::read_to_string(&cp).unwrap();
        for (jl, cl) in json.lines().zip(csv.lines()) {
            let from_csv: Vec<&str> = cl.split(',').collect();
            let mut from_json = Vec::new();
            for (i, part) in jl
                .trim_start_matches('{')
                .trim_end_matches('}')
                .split(',')
                .enumerate()
            {
                let (k, v) = part.split_once(':').unwrap();
                assert_eq!(k, format!("\"c{i}\""));
                from_json.push(v);
            }
            assert_eq!(from_json, from_csv);
        }
    }

    #[test]
    fn append_continues_like_microgen() {
        let td = TempDir::new("nodb-json-gen").unwrap();
        let p = td.file("m.jsonl");
        let spec = JsonlGen::default().rows(4).cols(2);
        spec.write_to(&p).unwrap();
        spec.append_to(&p, 3).unwrap();
        assert_eq!(std::fs::read_to_string(&p).unwrap().lines().count(), 7);
    }
}
