//! The PostgresRaw in-situ scan operator (§4).
//!
//! This operator is where the paper's techniques meet:
//!
//! * **Selective tokenizing** — sequential passes stop scanning a tuple at
//!   the last attribute the query needs.
//! * **Selective parsing** — WHERE attributes are converted first; SELECT
//!   attributes only for qualifying tuples.
//! * **Selective tuple formation** — emitted rows carry only the
//!   projected attributes.
//! * **Positional map** — once the end-of-line index covers a block, the
//!   scan jumps to known attribute positions (or the nearest indexed
//!   anchor, tokenizing forward/backward) instead of re-tokenizing from
//!   the line start; positions computed along the way are fed back.
//! * **Cache** — values converted for this query are inserted; future
//!   queries read them without touching the raw file.
//! * **Statistics** — a sample of parsed values feeds the optimizer on
//!   first touch of each attribute.
//!
//! Internally the scan works block-at-a-time (one positional-map block,
//! default 4096 tuples) for locality, but exposes the Volcano
//! one-tuple-per-call interface the host executor expects.
//!
//! # Concurrency
//!
//! The table runtime is lock-split ([`RawTableRuntime`]); any number of
//! scans may run against one table at once:
//!
//! * **Warm (map-covered) regions** are read under *shared* locks: the
//!   per-block temporary map and the cache columns are snapshotted, the
//!   locks released, and rows produced without holding anything. Freshly
//!   collected chunks/columns are merged back in short write sections.
//! * **Cold regions** run either the classic block-at-a-time sequential
//!   pass, or — with `scan_threads > 1` — a *chunked parallel* pass: the
//!   un-indexed byte range is split into line-aligned chunks
//!   ([`nodb_csv::split_line_aligned`]), a scoped worker tokenizes and
//!   parses each chunk into private staging (EOL segment, positional-map
//!   segment, cache stage, sampled statistics, qualifying rows), and the
//!   merge walks the chunks in file order so rows are emitted exactly as
//!   a single-threaded scan would emit them.
//! * Concurrent cold scans of the same region are safe: the EOL index
//!   ignores re-recorded rows, newer map chunks shadow identical older
//!   ones, and cache merges fill holes with equal values.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::Arc;

use std::sync::Arc as StdArc;

use nodb_cache::{CachedColumn, ChunkStage, ColumnBuilder};
use nodb_common::{
    ByteSource, DataType, IoBackend, LineFormat, NoDbError, Result, Row, Schema, Value,
};
use nodb_csv::lines::{split_line_aligned_src, ByteRange, LineReader, SlidingWindow};
use nodb_exec::{eval_predicate, Operator, ValueBatch};
use nodb_posmap::{AttrPositions, BlockCollector, SegmentCollector};
use nodb_sql::BoundExpr;
use nodb_stats::StatsBuilder;

use crate::pred::ScanPredicate;
use crate::profile::{self, PhaseProfile, PhaseProfileAtomic, SampledClock};
use crate::runtime::{RawTableRuntime, ScanMetrics};

/// Which auxiliary structures this scan may read and write.
#[derive(Debug, Clone, Copy)]
pub struct AuxFlags {
    /// Use/populate the positional map's attribute chunks.
    pub posmap: bool,
    /// Use/populate the binary cache.
    pub cache: bool,
    /// Keep the end-of-line index between queries (the minimal map; on
    /// for every variant except the external-files straw man).
    pub eol: bool,
    /// Collect statistics.
    pub stats: bool,
}

/// Immutable per-scan context (kept apart from the mutable scan state so
/// helpers and chunk workers can borrow it freely).
struct Ctx {
    schema: Schema,
    /// The raw file being scanned (also names error locations).
    path: PathBuf,
    /// The record tokenizer: how attribute values are located and
    /// converted on one line (CSV, JSON Lines, ...).
    format: Arc<dyn LineFormat>,
    /// Projected table attributes, ascending.
    projection: Vec<usize>,
    /// Conjuncts bound to projection-space ordinals.
    filters: Vec<BoundExpr>,
    /// Whether the file's first line is a header to skip.
    has_header: bool,
    /// Resolved I/O substrate (`Read` or `Mmap`, never `Auto`): how every
    /// reader/window this scan opens reaches the raw bytes. Purely a
    /// transport choice — results and metrics are identical across
    /// backends.
    io: IoBackend,
    where_locals: Vec<usize>,
    select_locals: Vec<usize>,
    sample_stride: u64,
    /// Compiled early-reject screen (pushdown enabled and at least one
    /// conjunct compiled). Cold passes consult it only when no auxiliary
    /// structure is being populated — see [`InSituScanOp::with_pushdown`].
    pred: Option<ScanPredicate>,
}

impl Ctx {
    fn dtype(&self, local: usize) -> DataType {
        self.schema.field(self.projection[local]).dtype
    }
}

/// Unwrap an `Option` held by a control-flow invariant (a lock guard
/// taken when a flag is set, a reader opened earlier in the pass) with a
/// located internal error instead of a panic — hot-path modules are
/// panic-free (enforced by `nodb-analyze`'s panic-path arm).
fn held<T>(opt: Option<T>, what: &'static str) -> Result<T> {
    opt.ok_or_else(|| NoDbError::internal(format!("scan invariant violated: {what}")))
}

/// The in-situ scan operator.
pub struct InSituScanOp {
    runtime: Arc<RawTableRuntime>,
    flags: AuxFlags,
    /// Cold-scan worker threads (resolved; ≥ 1).
    threads: usize,
    ctx: Ctx,

    /// The accumulator of the query this scan belongs to, captured from
    /// the thread-local installed by `Statement::execute` at operator
    /// construction time (`None` for scans built outside a query, e.g.
    /// idle-time exploitation).
    query_profile: Option<Arc<PhaseProfileAtomic>>,

    prepared: bool,
    done: bool,
    out: VecDeque<Row>,
    window: Option<SlidingWindow>,
    reader: Option<LineReader>,
    next_row: u64,
    /// Positional-map block granularity, read once in [`prepare`] (the
    /// value is fixed at runtime construction) so sequential passes
    /// never re-acquire the map lock for it mid-block.
    block_rows: u64,
    /// Byte offset of row `next_row` whenever `reader` is `None` — lets
    /// the scan continue privately if the shared EOL index is dropped or
    /// rebuilt underneath it (re-records are ignored as out-of-order).
    resume_byte: u64,
    stat_builders: Vec<(usize, StatsBuilder)>,
    /// Whether filters may be compiled into a [`ScanPredicate`]
    /// early-reject screen (off by default; see
    /// [`InSituScanOp::with_pushdown`]).
    pushdown: bool,
}

impl InSituScanOp {
    /// Create a scan. `format` is the record tokenizer for the file's
    /// physical layout; `has_header` skips the file's first line.
    /// `projection` must be ascending table ordinals; `filters` are bound
    /// against the projection layout. `threads` is the cold-scan fan-out,
    /// clamped to ≥ 1 — resolve a 0-means-auto config with
    /// [`crate::NoDbConfig::effective_scan_threads`] first. `io` is the
    /// I/O substrate; `Auto` is resolved here
    /// ([`IoBackend::resolve`]).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        runtime: Arc<RawTableRuntime>,
        path: PathBuf,
        schema: Schema,
        format: Arc<dyn LineFormat>,
        has_header: bool,
        projection: Vec<usize>,
        filters: Vec<BoundExpr>,
        flags: AuxFlags,
        sample_stride: u64,
        threads: usize,
        io: IoBackend,
    ) -> InSituScanOp {
        let threads = threads.max(1);
        InSituScanOp {
            runtime,
            flags,
            threads,
            ctx: Ctx {
                schema,
                path,
                format,
                projection,
                filters,
                has_header,
                io: io.resolve(),
                where_locals: Vec::new(),
                select_locals: Vec::new(),
                sample_stride: sample_stride.max(1),
                pred: None,
            },
            query_profile: profile::current_query(),
            prepared: false,
            done: false,
            out: VecDeque::new(),
            window: None,
            reader: None,
            next_row: 0,
            block_rows: 0,
            resume_byte: 0,
            stat_builders: Vec::new(),
            pushdown: false,
        }
    }

    /// Enable predicate pushdown into tokenization: compile eligible
    /// filter conjuncts into a [`ScanPredicate`] and, on passes that
    /// populate no auxiliary structure (no positional-map collection, no
    /// cache staging, no statistics building), tokenize each record only
    /// up to the predicate frontier, test, and skip the rest of the
    /// record on a miss. Rows, auxiliary structures, and emitted values
    /// are identical either way; the only observable differences are the
    /// `rows_rejected_early`/`fields_skipped_early` metrics and that
    /// malformed content in fields past the frontier of a rejected row
    /// no longer raises a parse error (the work that never happened).
    pub fn with_pushdown(mut self, on: bool) -> InSituScanOp {
        self.pushdown = on;
        self
    }

    fn prepare(&mut self) -> Result<()> {
        let file_len = std::fs::metadata(&self.ctx.path)?.len();
        self.runtime.observe_file_len(file_len)?;
        self.runtime.metrics.add(&ScanMetrics {
            scans: 1,
            ..ScanMetrics::default()
        });
        // Block granularity is fixed at runtime construction; read it
        // here (posmap before stats, per the lock DAG) instead of
        // re-acquiring the map lock inside the block loop.
        self.block_rows = self.runtime.posmap.read().block_rows() as u64;

        let mut where_set = std::collections::BTreeSet::new();
        for f in &self.ctx.filters {
            f.referenced_columns(&mut where_set);
        }
        self.ctx.where_locals = where_set.iter().copied().collect();
        self.ctx.select_locals = (0..self.ctx.projection.len())
            .filter(|i| !where_set.contains(i))
            .collect();

        if self.pushdown && !self.ctx.projection.is_empty() {
            let ctx = &self.ctx;
            self.ctx.pred = ScanPredicate::compile(&ctx.filters, &ctx.projection, |l| ctx.dtype(l));
        }

        // Workload log: one touch per projected attribute per scan (file
        // ordinals, not projection-local ones). Pure observation — with
        // no budget set nothing ever consults it.
        let touched: Vec<u32> = self.ctx.projection.iter().map(|&a| a as u32).collect();
        self.runtime.workload.record_touches(&touched);

        // Statistics: only for attributes whose values this scan parses
        // for *every* tuple (WHERE attributes always; SELECT attributes
        // only when there is no predicate), and without stats yet.
        if self.flags.stats {
            let candidates: Vec<usize> = if self.ctx.filters.is_empty() {
                (0..self.ctx.projection.len()).collect()
            } else {
                self.ctx.where_locals.clone()
            };
            let stats = self.runtime.stats.lock();
            for local in candidates {
                let attr = self.ctx.projection[local] as u32;
                if !stats.has_column(attr) {
                    self.stat_builders
                        .push((local, StatsBuilder::new(self.ctx.dtype(local))));
                }
            }
        }
        self.prepared = true;
        Ok(())
    }

    /// Publish a block's/pass's locally accumulated phase deltas to the
    /// table's cumulative profile and (when this scan belongs to a
    /// query) the query's.
    fn add_profile(&self, p: &PhaseProfile) {
        if p.is_empty() {
            return;
        }
        self.runtime.profile.add(p);
        if let Some(q) = &self.query_profile {
            q.add(p);
        }
    }

    /// Sequential-tokenization region: rows past the end-of-line
    /// frontier, processed one positional-map block at a time under the
    /// map's write lock. Populates the EOL index and (optionally) map,
    /// cache and statistics while emitting qualifying tuples.
    fn process_sequential_block(&mut self) -> Result<()> {
        let runtime = Arc::clone(&self.runtime);
        // Scans that maintain no positional state (the external-files /
        // baseline profile) have nothing to write into the map: skip the
        // write lock so concurrent baseline queries never serialize on
        // state they do not touch.
        let mut pm = if self.flags.eol || self.flags.posmap {
            Some(runtime.posmap.write())
        } else {
            None
        };
        if self.reader.is_none() && self.flags.eol {
            // Re-check under the write lock: a concurrent scan may have
            // indexed past us while we waited, in which case the mapped
            // path (or the done check) takes over on the next pump turn.
            if held(pm.as_ref(), "eol flag implies posmap lock")?
                .eol()
                .indexed_rows()
                > self.next_row
            {
                return Ok(());
            }
        }
        let block_rows = self.block_rows;
        let max_attr = self.ctx.projection.last().copied().unwrap_or(0);
        let block = self.next_row / block_rows;
        let block_end = (block + 1) * block_rows;

        if self.reader.is_none() {
            let start = match pm.as_ref() {
                // The shared EOL index was dropped/rebuilt underneath us
                // (e.g. `drop_aux` mid-query): continue privately from
                // our own offset; records from here are out-of-order for
                // the fresh index and ignored.
                Some(pm) if self.flags.eol && pm.eol().indexed_rows() < self.next_row => {
                    self.resume_byte
                }
                Some(pm) => pm.eol().frontier(),
                None => 0,
            };
            let mut reader = LineReader::open_at_with(&self.ctx.path, start, self.ctx.io)?;
            if self.ctx.has_header && start == 0 {
                // Skip the header line; anchor the EOL base past it so
                // that data row 0 starts after the header.
                let mut hdr = Vec::new();
                if reader.next_line(&mut hdr)?.is_some() && self.flags.eol {
                    held(pm.as_mut(), "eol flag implies posmap lock")?
                        .eol_mut()
                        .set_base(reader.offset());
                }
            }
            self.reader = Some(reader);
        }
        let mut metrics = ScanMetrics::default();
        let mut prof = PhaseProfile::default();
        let mut clock = SampledClock::default();
        let mut line = Vec::new();
        let mut starts: Vec<u32> = Vec::with_capacity(max_attr + 1);
        // Keep every position tokenized along the way (§4.2, "all
        // positions from 1 to 15 may be kept"). Chunk storage is
        // anchored at block starts, so a pass resuming mid-block (the
        // tail of an appended file) must not collect — the mapped path
        // re-collects the grown block from its start later.
        let mut collector = if self.flags.posmap
            && !self.ctx.projection.is_empty()
            && self.next_row.is_multiple_of(block_rows)
        {
            Some(BlockCollector::new(block, (0..=max_attr as u32).collect()))
        } else {
            None
        };
        // Values are staged and sized to the rows actually seen (the last
        // block of a file is short; preallocating full columns would
        // inflate cache accounting).
        let mut staged: Vec<Vec<(u32, Value)>> =
            (0..self.ctx.projection.len()).map(|_| Vec::new()).collect();
        let mut row_buf: Vec<Value> = vec![Value::Null; self.ctx.projection.len()];
        // Early rejection is only sound when this pass populates no
        // auxiliary structure: map collection and cache staging need
        // every row's full attribute frontier, statistics need every
        // row's WHERE values.
        let lean = collector.is_none() && !self.flags.cache && self.stat_builders.is_empty();

        while self.next_row < block_end {
            let reader = held(self.reader.as_mut(), "reader opened above")?;
            clock.start(self.next_row);
            let fetched = reader.next_line(&mut line)?;
            clock.stop(&mut prof.io_ns);
            let Some(line_start) = fetched else {
                // Completing fixes the row count, so only do it when our
                // records actually reached the index (not when we were
                // continuing privately past a dropped index).
                if self.flags.eol {
                    let pm = held(pm.as_mut(), "eol flag implies posmap lock")?;
                    if pm.eol().indexed_rows() == self.next_row {
                        pm.eol_mut().set_complete();
                    }
                }
                self.done = true;
                break;
            };
            let next_start = reader.offset();
            if self.flags.eol {
                held(pm.as_mut(), "eol flag implies posmap lock")?
                    .eol_mut()
                    .record(self.next_row, line_start, next_start);
            }
            metrics.bytes_tokenized += line.len() as u64 + 1;
            if self.ctx.projection.is_empty() {
                // Pure row counting (e.g. COUNT(*)): nothing to tokenize.
                self.out.push_back(Row::new());
                metrics.rows_emitted += 1;
                self.next_row += 1;
                continue;
            }
            starts.clear();
            // Pushdown fast path: tokenize only up to the predicate
            // frontier, test, and skip the rest of the record on a miss.
            let mut prefix_found = None;
            if let Some(pred) = self.ctx.pred.as_ref().filter(|_| lean) {
                clock.start(self.next_row);
                let pfound = self
                    .ctx
                    .format
                    .positions_upto(&line, pred.max_attr(), &mut starts)
                    .map_err(|e| {
                        e.at_raw_location(&self.ctx.path, Some(self.next_row), Some(line_start))
                    })?;
                clock.stop(&mut prof.tokenize_ns);
                if pfound < pred.max_attr() + 1 {
                    return Err(NoDbError::parse(format!(
                        "record has {pfound} fields, need at least {}",
                        pred.max_attr() + 1
                    ))
                    .at_raw_location(
                        &self.ctx.path,
                        Some(self.next_row),
                        Some(line_start),
                    ));
                }
                metrics.fields_tokenized += pfound as u64;
                clock.start(self.next_row);
                let ctx = &self.ctx;
                let row_id = self.next_row;
                let keep = pred.matches(&*ctx.format, &line, &starts, &mut |local, start| {
                    parse_value(
                        ctx,
                        &line,
                        start,
                        local,
                        Some(row_id),
                        line_start,
                        &mut metrics,
                    )
                })?;
                clock.stop(&mut prof.parse_ns);
                if !keep {
                    metrics.rows_rejected_early += 1;
                    metrics.fields_skipped_early += (max_attr - pred.max_attr()) as u64;
                    self.next_row += 1;
                    continue;
                }
                prefix_found = Some(pfound);
            }
            clock.start(self.next_row);
            let found = match prefix_found {
                // The row survived the screen: grow tokenization from
                // the predicate frontier to the projection frontier.
                Some(pfound) => {
                    let total = self
                        .ctx
                        .format
                        .positions_extend(&line, max_attr, &mut starts)
                        .map_err(|e| {
                            e.at_raw_location(&self.ctx.path, Some(self.next_row), Some(line_start))
                        })?;
                    metrics.fields_tokenized += total.saturating_sub(pfound) as u64;
                    total
                }
                None => self
                    .ctx
                    .format
                    .positions_upto(&line, max_attr, &mut starts)
                    .map_err(|e| {
                        e.at_raw_location(&self.ctx.path, Some(self.next_row), Some(line_start))
                    })?,
            };
            clock.stop(&mut prof.tokenize_ns);
            if found < max_attr + 1 {
                return Err(NoDbError::parse(format!(
                    "record has {found} fields, need at least {}",
                    max_attr + 1
                ))
                .at_raw_location(
                    &self.ctx.path,
                    Some(self.next_row),
                    Some(line_start),
                ));
            }
            if prefix_found.is_none() {
                metrics.fields_tokenized += found as u64;
            }
            if let Some(c) = collector.as_mut() {
                c.push_row(&starts);
            }

            // Selective parsing: WHERE attributes first.
            let local_row = (self.next_row % block_rows) as usize;
            for v in row_buf.iter_mut() {
                *v = Value::Null;
            }
            clock.start(self.next_row);
            let mut ok = true;
            for li in 0..self.ctx.where_locals.len() {
                let local = self.ctx.where_locals[li];
                let start = starts[self.ctx.projection[local]];
                let v = parse_value(
                    &self.ctx,
                    &line,
                    start,
                    local,
                    Some(self.next_row),
                    line_start,
                    &mut metrics,
                )?;
                if self.flags.cache {
                    staged[local].push((local_row as u32, v.clone()));
                }
                offer_stat(&self.ctx, &mut self.stat_builders, local, self.next_row, &v);
                row_buf[local] = v;
            }
            // Evaluate every conjunct against the buffer itself (moved
            // into a `Row` shell and back) — no per-conjunct clone.
            let probe = Row(std::mem::take(&mut row_buf));
            for f in &self.ctx.filters {
                if !eval_predicate(f, &probe)? {
                    ok = false;
                    break;
                }
            }
            row_buf = probe.0;
            if ok {
                for li in 0..self.ctx.select_locals.len() {
                    let local = self.ctx.select_locals[li];
                    let start = starts[self.ctx.projection[local]];
                    let v = parse_value(
                        &self.ctx,
                        &line,
                        start,
                        local,
                        Some(self.next_row),
                        line_start,
                        &mut metrics,
                    )?;
                    if self.flags.cache {
                        staged[local].push((local_row as u32, v.clone()));
                    }
                    offer_stat(&self.ctx, &mut self.stat_builders, local, self.next_row, &v);
                    row_buf[local] = v;
                }
                self.out.push_back(Row(row_buf.clone()));
                metrics.rows_emitted += 1;
            }
            clock.stop(&mut prof.parse_ns);
            self.next_row += 1;
        }

        let rows_seen = (self.next_row - block * block_rows) as usize;
        if let Some(c) = collector {
            if c.rows() > 0 {
                held(pm.as_mut(), "posmap flag implies posmap lock")?.insert(c.build());
            }
        }
        drop(pm);
        if self.flags.cache && rows_seen > 0 {
            let mut cache = runtime.cache.write();
            for (local, vals) in staged.into_iter().enumerate() {
                if vals.is_empty() {
                    continue;
                }
                let attr = self.ctx.projection[local];
                let mut b = ColumnBuilder::new(
                    block,
                    attr as u32,
                    self.ctx.schema.field(attr).dtype,
                    rows_seen,
                );
                for (r, v) in vals {
                    b.set(r as usize, &v);
                }
                cache.insert(b.build());
            }
        }
        // Sequential tokenization reads exactly the bytes it tokenizes.
        prof.io_bytes = metrics.bytes_tokenized;
        prof.tokenize_bytes = metrics.bytes_tokenized;
        prof.parse_values = metrics.fields_parsed;
        self.add_profile(&prof);
        runtime.metrics.add(&metrics);
        Ok(())
    }

    /// Chunked parallel pass over the whole un-indexed tail of the file:
    /// split into line-aligned byte ranges, scan each on a scoped worker
    /// thread into private staging, then merge in file order.
    fn process_parallel_tail(&mut self) -> Result<()> {
        let runtime = Arc::clone(&self.runtime);
        // One source for the whole pass: opened (and, on the mmap
        // backend, mapped) once; the boundary probe and every chunk
        // worker slice the same handle, and the length snapshot keeps
        // split and workers consistent under concurrent appends.
        let src = Arc::new(ByteSource::open(&self.ctx.path, self.ctx.io)?);
        let file_len = src.len();
        let (mut start_byte, first_row, block_rows) = {
            let pm = runtime.posmap.read();
            (
                pm.eol().frontier(),
                pm.eol().indexed_rows(),
                pm.block_rows(),
            )
        };
        if self.flags.eol && first_row != self.next_row {
            // Raced with a concurrent scan (index grew past us → mapped
            // path) or an invalidation (index shrank → private sequential
            // resume); pump re-dispatches either way.
            return Ok(());
        }
        if self.ctx.has_header && start_byte == 0 && first_row == 0 {
            // Locate the end of the header line before chunking.
            let mut r = LineReader::from_source(
                Arc::clone(&src),
                ByteRange {
                    start: 0,
                    end: u64::MAX,
                },
            );
            let mut hdr = Vec::new();
            if r.next_line(&mut hdr)?.is_some() {
                start_byte = r.offset();
                if self.flags.eol {
                    runtime.posmap.write().eol_mut().set_base(start_byte);
                }
            }
        }
        let ranges = split_line_aligned_src(&src, start_byte, file_len, self.threads)?;
        if ranges.is_empty() {
            if self.flags.eol {
                let mut pm = runtime.posmap.write();
                // Completing fixes the row count, so only do it when the
                // index still holds exactly the rows we observed (a
                // concurrent drop_aux may have cleared it since).
                if pm.eol().indexed_rows() == first_row {
                    pm.eol_mut().set_complete();
                }
            }
            self.done = true;
            return Ok(());
        }

        // Fan out: one scoped worker per chunk, each with private staging.
        let stat_locals: Vec<usize> = self.stat_builders.iter().map(|(l, _)| *l).collect();
        let ctx = &self.ctx;
        let flags = self.flags;
        let results: Vec<Result<ChunkScan>> = std::thread::scope(|s| {
            let handles: Vec<_> = ranges
                .iter()
                .map(|&range| {
                    let stat_locals = &stat_locals;
                    let src = Arc::clone(&src);
                    s.spawn(move || scan_chunk(ctx, src, range, flags, stat_locals))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| Err(NoDbError::internal("scan worker panicked")))
                })
                .collect()
        });
        let mut outputs = Vec::with_capacity(results.len());
        for r in results {
            outputs.push(r?);
        }

        // Merge in file order: EOL segments and emitted rows first (one
        // write section), then block-aligned map chunks and cache
        // columns.
        let mut metrics = ScanMetrics::default();
        let mut prof = PhaseProfile::default();
        let mut seg_acc: Option<SegmentCollector> = None;
        let mut stage_acc: Option<ChunkStage> = None;
        let mut rows_so_far: u64 = 0;
        {
            let mut pm = (self.flags.eol || self.flags.posmap).then(|| runtime.posmap.write());
            for o in outputs {
                let base_row = first_row + rows_so_far;
                let n_rows = o.line_starts.len() as u64;
                if self.flags.eol {
                    if let Some(pm) = pm.as_mut() {
                        pm.eol_mut().absorb_segment(base_row, &o.line_starts, o.end);
                    }
                }
                if let Some(seg) = o.posmap {
                    match seg_acc.as_mut() {
                        Some(acc) => acc.append(seg),
                        None => seg_acc = Some(seg),
                    }
                }
                if let Some(stage) = o.cache {
                    match stage_acc.as_mut() {
                        Some(acc) => acc.append(stage, rows_so_far as u32),
                        None => stage_acc = Some(stage),
                    }
                }
                for (i, samples) in o.stat_samples.into_iter().enumerate() {
                    for v in samples {
                        self.stat_builders[i].1.offer(&v);
                    }
                }
                self.out.extend(o.emitted);
                metrics.merge(&o.metrics);
                prof.merge(&o.profile);
                rows_so_far += n_rows;
            }
            if let Some(pm) = pm.as_mut() {
                // Same guard as the sequential EOF path: only fix the row
                // count when our segments actually reached the index — a
                // drop_aux between fan-out and merge gap-ignores them,
                // and completing an emptied index would freeze row_count
                // at 0 for every other query.
                if self.flags.eol && pm.eol().indexed_rows() == first_row + rows_so_far {
                    pm.eol_mut().set_complete();
                }
                if let Some(seg) = seg_acc.take() {
                    for chunk in seg.into_chunks(first_row, block_rows) {
                        pm.insert(chunk);
                    }
                }
            }
        }
        if let Some(stage) = stage_acc.take() {
            if !stage.is_empty() {
                let cols = stage.into_columns(first_row, rows_so_far, block_rows);
                let mut cache = runtime.cache.write();
                for c in cols {
                    cache.insert(c);
                }
            }
        }
        self.add_profile(&prof);
        runtime.metrics.add(&metrics);
        self.next_row = first_row + rows_so_far;
        self.done = true;
        Ok(())
    }

    /// Map-assisted region: the EOL index covers these rows. Everything
    /// the block needs is snapshotted under shared locks; rows are then
    /// produced without holding any lock.
    fn process_mapped_block(&mut self) -> Result<()> {
        let runtime = Arc::clone(&self.runtime);
        let mut metrics = ScanMetrics::default();
        let mut prof = PhaseProfile::default();
        let mut clock = SampledClock::default();
        let needed: Vec<u32> = self.ctx.projection.iter().map(|&a| a as u32).collect();

        struct Snapshot {
            block: u64,
            block_start: u64,
            cov_end: u64,
            rows: usize,
            line_starts: Vec<u64>,
            end_bound: u64,
            /// `None` when a needed chunk is spilled (write-lock reload
            /// required).
            entries: Option<Vec<AttrPositions>>,
            collect: bool,
        }
        let snap = {
            let pm = runtime.posmap.read();
            let block_rows = pm.block_rows() as u64;
            let block = pm.block_of(self.next_row);
            let block_start = block * block_rows;
            let covered = pm.eol().indexed_rows();
            if self.next_row >= covered {
                // Raced with an invalidation; pump re-dispatches.
                return Ok(());
            }
            let cov_end = covered.min(block_start + block_rows);
            let rows = (cov_end - block_start) as usize;
            let line_starts: Vec<u64> = pm
                .eol()
                .starts(block_start, cov_end)
                .ok_or_else(|| NoDbError::internal("EOL coverage changed mid-scan"))?
                .to_vec();
            let end_bound = pm
                .eol()
                .start_of(cov_end)
                .unwrap_or_else(|| pm.eol().frontier());
            let (entries, collect) = if self.flags.posmap && !needed.is_empty() {
                // Re-collect when the combination rule fires *or* the
                // block grew past existing chunks (append, §4.5).
                let collect = pm.should_collect(block, &needed)
                    || needed
                        .iter()
                        .any(|&a| (pm.covered_rows(block, a) as u64) < (cov_end - block_start));
                (
                    pm.fetch_block_shared(block, &needed).map(|v| v.entries),
                    collect,
                )
            } else {
                (Some(vec![AttrPositions::None; needed.len()]), false)
            };
            Snapshot {
                block,
                block_start,
                cov_end,
                rows,
                line_starts,
                end_bound,
                entries,
                collect,
            }
        };
        let Snapshot {
            block,
            block_start,
            cov_end,
            rows,
            line_starts,
            end_bound,
            entries,
            collect,
        } = snap;
        debug_assert!(rows > 0, "mapped block must cover at least one row");
        // Spilled chunks are reloaded under the write lock.
        let entries = match entries {
            Some(e) => e,
            None => runtime.posmap.write().fetch_block(block, &needed).entries,
        };
        let cached: Vec<Option<StdArc<CachedColumn>>> = if self.flags.cache {
            let cache = runtime.cache.read();
            needed.iter().map(|&a| cache.get_shared(block, a)).collect()
        } else {
            vec![None; needed.len()]
        };

        let mut collector = if collect {
            Some(BlockCollector::new(block, needed.clone()))
        } else {
            None
        };
        // Cache columns are only (re)built for attributes the file must
        // supply; fully cached columns add no write-back work — warm
        // queries must not pay for the cache they benefit from.
        let mut cache_builders: Vec<Option<ColumnBuilder>> = (0..needed.len())
            .map(|i| {
                let complete = cached[i].as_ref().is_some_and(|c| c.is_complete());
                if self.flags.cache && !complete {
                    Some(ColumnBuilder::new(
                        block,
                        needed[i],
                        self.ctx.dtype(i),
                        rows,
                    ))
                } else {
                    None
                }
            })
            .collect();
        // Early rejection in the warm path: sound only when nothing is
        // being collected, cached, or sampled this block (same condition
        // as the cold passes, evaluated against this block's builders).
        let lean =
            !collect && self.stat_builders.is_empty() && cache_builders.iter().all(|b| b.is_none());
        // When every needed column is completely cached (or the query
        // needs no columns at all — COUNT(*) over an indexed region) and
        // no chunk is being collected, the raw file is not touched — the
        // paper's "avoid raw file access altogether" (§4.3).
        let all_cached = !collect
            && (needed.is_empty()
                || cached
                    .iter()
                    .all(|c| c.as_ref().is_some_and(|c| c.is_complete())));
        let mut row_buf: Vec<Value> = vec![Value::Null; needed.len()];
        let mut positions: Vec<u32> = vec![0; needed.len()];
        let mut line_buf: Vec<u8> = Vec::new();

        if self.window.is_none() && !all_cached {
            self.window = Some(SlidingWindow::open_with(&self.ctx.path, self.ctx.io)?);
        }

        for r in 0..rows {
            let line_start = line_starts[r];
            if !all_cached {
                let line_end = if r + 1 < rows {
                    line_starts[r + 1]
                } else {
                    end_bound
                };
                line_buf.clear();
                clock.start(r as u64);
                let w = held(self.window.as_mut(), "window opened above")?;
                let s = w.slice(line_start, (line_end - line_start) as usize)?;
                line_buf.extend_from_slice(s);
                clock.stop(&mut prof.io_ns);
                prof.io_bytes += line_end - line_start;
                while matches!(line_buf.last(), Some(b'\n') | Some(b'\r')) {
                    line_buf.pop();
                }
            }
            let line: &[u8] = &line_buf;
            clock.start(r as u64);

            // When collecting a new combination chunk, positions for all
            // needed attributes are resolved up front (the paper's
            // pre-computed temporary map); otherwise lazily.
            if collector.is_some() {
                for i in 0..needed.len() {
                    positions[i] =
                        resolve_position(&self.ctx, line, &needed, i, &entries[i], r, &mut metrics)
                            .map_err(|e| {
                                e.at_raw_location(
                                    &self.ctx.path,
                                    Some(block_start + r as u64),
                                    Some(line_start),
                                )
                            })?;
                }
                if let Some(c) = collector.as_mut() {
                    c.push_row(&positions);
                }
            }

            for v in row_buf.iter_mut() {
                *v = Value::Null;
            }
            let row_id = block_start + r as u64;
            let mut ok = true;
            // Compiled-predicate screen: convert only the tested columns
            // (cache first, then map-assisted positions) and skip the
            // row's remaining WHERE/SELECT conversions on a miss.
            if let Some(pred) = self.ctx.pred.as_ref().filter(|_| lean) {
                for item in pred.items() {
                    let (v, _) = value_for(
                        &self.ctx,
                        line,
                        &needed,
                        item.local,
                        &entries,
                        &cached,
                        r,
                        None,
                        row_id,
                        line_start,
                        &mut metrics,
                    )?;
                    if !item.op.test_value(&v)? {
                        ok = false;
                        break;
                    }
                }
                if !ok {
                    metrics.rows_rejected_early += 1;
                    clock.stop(&mut prof.parse_ns);
                    continue;
                }
            }
            for li in 0..self.ctx.where_locals.len() {
                let local = self.ctx.where_locals[li];
                let (v, from_cache) = value_for(
                    &self.ctx,
                    line,
                    &needed,
                    local,
                    &entries,
                    &cached,
                    r,
                    collect.then_some(&positions),
                    row_id,
                    line_start,
                    &mut metrics,
                )?;
                if !from_cache {
                    if let Some(b) = cache_builders[local].as_mut() {
                        b.set(r, &v);
                    }
                    offer_stat(&self.ctx, &mut self.stat_builders, local, row_id, &v);
                }
                row_buf[local] = v;
            }
            let probe = Row(std::mem::take(&mut row_buf));
            for f in &self.ctx.filters {
                if !eval_predicate(f, &probe)? {
                    ok = false;
                    break;
                }
            }
            row_buf = probe.0;
            if !ok {
                clock.stop(&mut prof.parse_ns);
                continue;
            }
            for li in 0..self.ctx.select_locals.len() {
                let local = self.ctx.select_locals[li];
                let (v, from_cache) = value_for(
                    &self.ctx,
                    line,
                    &needed,
                    local,
                    &entries,
                    &cached,
                    r,
                    collect.then_some(&positions),
                    row_id,
                    line_start,
                    &mut metrics,
                )?;
                if !from_cache {
                    if let Some(b) = cache_builders[local].as_mut() {
                        b.set(r, &v);
                    }
                    offer_stat(&self.ctx, &mut self.stat_builders, local, row_id, &v);
                }
                row_buf[local] = v;
            }
            self.out.push_back(Row(row_buf.clone()));
            metrics.rows_emitted += 1;
            clock.stop(&mut prof.parse_ns);
        }

        if let Some(c) = collector {
            if c.rows() > 0 {
                runtime.posmap.write().insert(c.build());
            }
        }
        if self.flags.cache {
            let builders: Vec<ColumnBuilder> = cache_builders
                .into_iter()
                .flatten()
                .filter(|b| b.filled() > 0)
                .collect();
            if !builders.is_empty() {
                let mut cache = runtime.cache.write();
                for b in builders {
                    cache.insert(b.build());
                }
            }
        }
        prof.parse_values = metrics.fields_parsed;
        self.add_profile(&prof);
        runtime.metrics.add(&metrics);
        self.next_row = cov_end;
        self.resume_byte = end_bound;
        Ok(())
    }

    fn finish_stats(&mut self) {
        if !self.flags.stats || self.stat_builders.is_empty() {
            return;
        }
        let row_count = self.runtime.posmap.read().eol().row_count();
        let mut stats = self.runtime.stats.lock();
        if let Some(n) = row_count {
            stats.set_row_count(n);
        }
        let hint = row_count.map(|n| n as f64);
        for (local, b) in self.stat_builders.drain(..) {
            let attr = self.ctx.projection[local] as u32;
            if !stats.has_column(attr) && b.offered() > 0 {
                stats.set_column(attr, b.finalize(hint));
            }
        }
    }

    fn pump(&mut self) -> Result<()> {
        if !self.prepared {
            self.prepare()?;
        }
        while self.out.is_empty() && !self.done {
            let (complete, row_count, indexed) = {
                let pm = self.runtime.posmap.read();
                (
                    pm.eol().is_complete(),
                    pm.eol().row_count(),
                    pm.eol().indexed_rows(),
                )
            };
            if complete && Some(self.next_row) == row_count {
                self.done = true;
                break;
            }
            if self.flags.eol && self.next_row < indexed {
                // A sequential reader opened earlier is stale once the
                // map covers our position; remember where it stood so a
                // later private resume starts at the right byte (the
                // mapped path keeps `resume_byte` current from there).
                if let Some(r) = self.reader.take() {
                    self.resume_byte = r.offset();
                }
                self.process_mapped_block()?;
            } else if self.threads > 1
                && self.reader.is_none()
                && (!self.flags.eol || indexed == self.next_row)
            {
                self.process_parallel_tail()?;
            } else {
                self.process_sequential_block()?;
            }
        }
        if self.done {
            self.finish_stats();
        }
        Ok(())
    }
}

impl Operator for InSituScanOp {
    fn next_row(&mut self) -> Result<Option<Row>> {
        loop {
            if let Some(r) = self.out.pop_front() {
                return Ok(Some(r));
            }
            if self.done {
                return Ok(None);
            }
            self.pump()?;
            if self.out.is_empty() && self.done {
                return Ok(None);
            }
        }
    }

    /// Vectorized pull: hand out whatever qualifying rows the last block
    /// pump produced, up to `max_rows`, as one column-major batch. Work
    /// granularity is unchanged — a pump still tokenizes exactly one
    /// positional-map block (or staged tail) like the row path, so scan
    /// metrics and auxiliary-structure contents stay bit-identical; only
    /// the per-row virtual-call/`Option` shuffle between operators is
    /// amortized.
    fn next_batch(&mut self, max_rows: usize) -> Result<Option<ValueBatch>> {
        let max = max_rows.max(1);
        loop {
            if !self.out.is_empty() {
                let take = self.out.len().min(max);
                let rows: Vec<Row> = self.out.drain(..take).collect();
                return Ok(Some(ValueBatch::from_rows(rows)));
            }
            if self.done {
                return Ok(None);
            }
            self.pump()?;
            if self.out.is_empty() && self.done {
                return Ok(None);
            }
        }
    }
}

// ----- chunk workers (parallel cold path) --------------------------------

/// Everything one worker produced from its byte chunk. Global row ids are
/// unknown while workers run; the merge supplies them chunk by chunk.
struct ChunkScan {
    /// Absolute line-start offsets, in order.
    line_starts: Vec<u64>,
    /// Chunk end byte (frontier contribution).
    end: u64,
    /// Qualifying rows, in order.
    emitted: Vec<Row>,
    /// Staged positional-map rows (attrs `0..=max_attr`).
    posmap: Option<SegmentCollector>,
    /// Staged cache values (one column per projected attribute).
    cache: Option<ChunkStage>,
    /// Sampled values per stat builder (parallel to the op's
    /// `stat_builders`).
    stat_samples: Vec<Vec<Value>>,
    /// Work done by this worker.
    metrics: ScanMetrics,
    /// Phase timings/volumes accumulated by this worker.
    profile: PhaseProfile,
}

/// Tokenize/parse one line-aligned chunk into private staging. Runs on a
/// worker thread; touches no shared state. `src` is the pass-wide shared
/// source — the file was opened (and possibly mapped) once by the
/// dispatcher, and each worker slices its own `range` out of it.
fn scan_chunk(
    ctx: &Ctx,
    src: Arc<ByteSource>,
    range: ByteRange,
    flags: AuxFlags,
    stat_locals: &[usize],
) -> Result<ChunkScan> {
    let max_attr = ctx.projection.last().copied().unwrap_or(0);
    let mut reader = LineReader::from_source(src, range);
    let mut out = ChunkScan {
        line_starts: Vec::new(),
        end: range.end,
        emitted: Vec::new(),
        posmap: (flags.posmap && !ctx.projection.is_empty())
            .then(|| SegmentCollector::new((0..=max_attr as u32).collect())),
        cache: flags.cache.then(|| {
            ChunkStage::new(
                ctx.projection
                    .iter()
                    .map(|&a| (a as u32, ctx.schema.field(a).dtype))
                    .collect(),
            )
        }),
        stat_samples: vec![Vec::new(); stat_locals.len()],
        metrics: ScanMetrics::default(),
        profile: PhaseProfile::default(),
    };
    let mut clock = SampledClock::default();
    let mut line = Vec::new();
    let mut starts: Vec<u32> = Vec::with_capacity(max_attr + 1);
    let mut row_buf: Vec<Value> = vec![Value::Null; ctx.projection.len()];
    let mut local_row: u32 = 0;
    // Same soundness condition as the sequential pass: early rejection
    // only when this worker stages no auxiliary structure.
    let lean = out.posmap.is_none() && out.cache.is_none() && stat_locals.is_empty();
    loop {
        clock.start(local_row as u64);
        let fetched = reader.next_line(&mut line)?;
        clock.stop(&mut out.profile.io_ns);
        let Some(line_start) = fetched else { break };
        out.line_starts.push(line_start);
        out.metrics.bytes_tokenized += line.len() as u64 + 1;
        if ctx.projection.is_empty() {
            out.emitted.push(Row::new());
            out.metrics.rows_emitted += 1;
            local_row += 1;
            continue;
        }
        starts.clear();
        let mut prefix_found = None;
        if let Some(pred) = ctx.pred.as_ref().filter(|_| lean) {
            clock.start(local_row as u64);
            let pfound = ctx
                .format
                .positions_upto(&line, pred.max_attr(), &mut starts)
                .map_err(|e| e.at_raw_location(&ctx.path, None, Some(line_start)))?;
            clock.stop(&mut out.profile.tokenize_ns);
            if pfound < pred.max_attr() + 1 {
                return Err(NoDbError::parse(format!(
                    "record has {pfound} fields, need at least {}",
                    pred.max_attr() + 1
                ))
                .at_raw_location(&ctx.path, None, Some(line_start)));
            }
            out.metrics.fields_tokenized += pfound as u64;
            clock.start(local_row as u64);
            let metrics = &mut out.metrics;
            let keep = pred.matches(&*ctx.format, &line, &starts, &mut |local, start| {
                parse_value(ctx, &line, start, local, None, line_start, metrics)
            })?;
            clock.stop(&mut out.profile.parse_ns);
            if !keep {
                out.metrics.rows_rejected_early += 1;
                out.metrics.fields_skipped_early += (max_attr - pred.max_attr()) as u64;
                local_row += 1;
                continue;
            }
            prefix_found = Some(pfound);
        }
        clock.start(local_row as u64);
        let found = match prefix_found {
            Some(pfound) => {
                let total = ctx
                    .format
                    .positions_extend(&line, max_attr, &mut starts)
                    .map_err(|e| e.at_raw_location(&ctx.path, None, Some(line_start)))?;
                out.metrics.fields_tokenized += total.saturating_sub(pfound) as u64;
                total
            }
            None => ctx
                .format
                .positions_upto(&line, max_attr, &mut starts)
                .map_err(|e| e.at_raw_location(&ctx.path, None, Some(line_start)))?,
        };
        clock.stop(&mut out.profile.tokenize_ns);
        if found < max_attr + 1 {
            return Err(NoDbError::parse(format!(
                "record has {found} fields, need at least {}",
                max_attr + 1
            ))
            .at_raw_location(&ctx.path, None, Some(line_start)));
        }
        if prefix_found.is_none() {
            out.metrics.fields_tokenized += found as u64;
        }
        if let Some(c) = out.posmap.as_mut() {
            c.push_row(&starts);
        }

        for v in row_buf.iter_mut() {
            *v = Value::Null;
        }
        clock.start(local_row as u64);
        let mut ok = true;
        for li in 0..ctx.where_locals.len() {
            let local = ctx.where_locals[li];
            let v = parse_value(
                ctx,
                &line,
                starts[ctx.projection[local]],
                local,
                None,
                line_start,
                &mut out.metrics,
            )?;
            stage_chunk_value(ctx, stat_locals, &mut out, local, local_row, &v);
            row_buf[local] = v;
        }
        let probe = Row(std::mem::take(&mut row_buf));
        for f in &ctx.filters {
            if !eval_predicate(f, &probe)? {
                ok = false;
                break;
            }
        }
        row_buf = probe.0;
        if ok {
            for li in 0..ctx.select_locals.len() {
                let local = ctx.select_locals[li];
                let v = parse_value(
                    ctx,
                    &line,
                    starts[ctx.projection[local]],
                    local,
                    None,
                    line_start,
                    &mut out.metrics,
                )?;
                stage_chunk_value(ctx, stat_locals, &mut out, local, local_row, &v);
                row_buf[local] = v;
            }
            out.emitted.push(Row(row_buf.clone()));
            out.metrics.rows_emitted += 1;
        }
        clock.stop(&mut out.profile.parse_ns);
        local_row += 1;
    }
    out.profile.io_bytes = out.metrics.bytes_tokenized;
    out.profile.tokenize_bytes = out.metrics.bytes_tokenized;
    out.profile.parse_values = out.metrics.fields_parsed;
    Ok(out)
}

/// Stage a converted value into the worker's cache stage and statistics
/// samples.
fn stage_chunk_value(
    ctx: &Ctx,
    stat_locals: &[usize],
    out: &mut ChunkScan,
    local: usize,
    local_row: u32,
    v: &Value,
) {
    if let Some(stage) = out.cache.as_mut() {
        stage.push(local, local_row, v.clone());
    }
    if (local_row as u64).is_multiple_of(ctx.sample_stride) {
        for (i, l) in stat_locals.iter().enumerate() {
            if *l == local {
                out.stat_samples[i].push(v.clone());
            }
        }
    }
}

// ----- free helpers (disjoint borrows of scan state) ---------------------

/// Convert one attribute value via the record format, decorating parse
/// failures with the column name and the raw-file location (`row_id` is
/// `None` inside chunk workers, which do not know global row ids).
fn parse_value(
    ctx: &Ctx,
    line: &[u8],
    start: u32,
    local: usize,
    row_id: Option<u64>,
    line_start: u64,
    metrics: &mut ScanMetrics,
) -> Result<Value> {
    metrics.fields_parsed += 1;
    ctx.format
        .parse_at(line, start, ctx.dtype(local))
        .map_err(|e| {
            let e = match e {
                NoDbError::Parse(m) => NoDbError::parse(format!(
                    "column `{}`: {m}",
                    ctx.schema.field(ctx.projection[local]).name
                )),
                other => other,
            };
            e.at_raw_location(&ctx.path, row_id, Some(line_start))
        })
}

fn offer_stat(
    ctx: &Ctx,
    builders: &mut [(usize, StatsBuilder)],
    local: usize,
    row_id: u64,
    v: &Value,
) {
    if builders.is_empty() || !row_id.is_multiple_of(ctx.sample_stride) {
        return;
    }
    for (l, b) in builders.iter_mut() {
        if *l == local {
            b.offer(v);
        }
    }
}

/// Fetch one attribute's value for a row: cache first, then the raw file
/// via the best positional information. The boolean reports whether the
/// cache supplied it (so callers skip write-back and stats for values
/// that never touched the file).
#[allow(clippy::too_many_arguments)]
fn value_for(
    ctx: &Ctx,
    line: &[u8],
    needed: &[u32],
    local: usize,
    entries: &[AttrPositions],
    cached: &[Option<StdArc<CachedColumn>>],
    r: usize,
    precomputed: Option<&Vec<u32>>,
    row_id: u64,
    line_start: u64,
    metrics: &mut ScanMetrics,
) -> Result<(Value, bool)> {
    if let Some(col) = &cached[local] {
        if let Some(v) = col.get(r) {
            metrics.fields_from_cache += 1;
            return Ok((v, true));
        }
    }
    let start = match precomputed {
        Some(p) => p[local],
        None => resolve_position(ctx, line, needed, local, &entries[local], r, metrics)
            .map_err(|e| e.at_raw_location(&ctx.path, Some(row_id), Some(line_start)))?,
    };
    parse_value(ctx, line, start, local, Some(row_id), line_start, metrics).map(|v| (v, false))
}

/// Locate the start of attribute `needed[i]` on a line using the best
/// positional information, counting the work class in `metrics`. Errors
/// carry no location; callers decorate with file/row/byte context.
fn resolve_position(
    ctx: &Ctx,
    line: &[u8],
    needed: &[u32],
    i: usize,
    entry: &AttrPositions,
    r: usize,
    metrics: &mut ScanMetrics,
) -> Result<u32> {
    let attr = needed[i] as usize;
    match entry {
        // Position arrays may cover fewer rows than the block after an
        // append (§4.5); rows past the indexed extent fall back to full
        // tokenization from the line start.
        AttrPositions::Exact(col) => match col.get(r) {
            Some(&p) => {
                metrics.fields_via_map += 1;
                Ok(p)
            }
            None => tokenize_to(ctx, line, attr, metrics),
        },
        AttrPositions::Anchor {
            anchor_attr,
            positions,
        } => {
            let Some(&anchor) = positions.get(r) else {
                return tokenize_to(ctx, line, attr, metrics);
            };
            metrics.fields_via_anchor += 1;
            ctx.format
                .advance(line, anchor, *anchor_attr as usize, attr)
        }
        AttrPositions::None => tokenize_to(ctx, line, attr, metrics),
    }
}

/// Tokenize from the line start up to `attr` (the no-positional-help
/// path).
fn tokenize_to(ctx: &Ctx, line: &[u8], attr: usize, metrics: &mut ScanMetrics) -> Result<u32> {
    let mut starts = Vec::with_capacity(attr + 1);
    let found = ctx.format.positions_upto(line, attr, &mut starts)?;
    metrics.fields_tokenized += found as u64;
    if found < attr + 1 {
        return Err(NoDbError::parse(format!(
            "record has {found} fields, need at least {}",
            attr + 1
        )));
    }
    Ok(starts[attr])
}
