//! Differential proof that vectorized batch execution is an *identity*
//! transformation on everything observable: for a shared query corpus,
//! an engine running the batch pull path (`batch_rows > 0`) must produce
//! rows **bit-identical** to the classic row-at-a-time Volcano pull
//! (`batch_rows = 0`) — and must do exactly the same *work*: the full
//! [`ScanMetrics`] counter set and the auxiliary-structure footprint
//! (positional-map pointers/bytes, cache bytes, analyzed attributes)
//! have to match counter for counter, across
//!
//! * CSV and JSON Lines physical layouts,
//! * cold (structure-building) and warm (structure-serving) scans,
//! * 1 and 4 cold-scan worker threads,
//! * both I/O substrates (`Read` and `Mmap`),
//! * batch sizes that divide the row count and ones that straddle
//!   positional-map block boundaries (3, 1024),
//! * prepared statements re-executed with bound parameters, and
//! * the query server with concurrent clients.
//!
//! This is the acceptance gate for the batch path: any divergence —
//! a float summed in a different order, a row tokenized that the row
//! path skipped, a LIMIT that pumped one block too many — fails here.

use std::path::PathBuf;
use std::sync::Arc;

use nodb::common::{IoBackend, Row, Schema, TempDir, Value};
use nodb::core::{AccessMode, NoDb, NoDbConfig, Params, ScanMetrics};
use nodb::csv::{CsvOptions, CsvWriter};
use nodb::json::{JsonlOptions, JsonlWriter};
use nodb::server::{NodbClient, NodbServer, ServerConfig};

const SCHEMA: &str = "id int, grp text, score double, flag bool, note text, big bigint";
const U_SCHEMA: &str = "uid int, bonus int";
const ROWS: usize = 997; // prime: no batch size divides it evenly

/// Every operator the engine lowers: selective scans, plain and grouped
/// aggregation (both strategies reachable), projection expressions,
/// short-circuiting predicates over nullable columns, sort, LIMIT
/// (early-exit), DISTINCT, join, EXISTS.
const QUERIES: &[&str] = &[
    "select id, note from t where score > 6.0",
    "select count(*) from t",
    "select grp, count(*), sum(score), min(big) from t group by grp order by grp",
    "select sum(score), max(score), count(big) from t where id >= 100",
    "select id, score * 2.0 + 1.0 from t where flag order by id limit 17",
    "select count(*) from t where grp is null or score < 3.0",
    "select count(*) from t where id <> 0 and big / id > 0",
    "select distinct grp from t order by grp",
    "select id, bonus from t join u on id = uid where bonus > 50 order by id, bonus",
    "select count(*) from t where exists (select * from u where uid = id)",
    "select id from t where note like 'with%' order by id",
    "select id, case when score > 9.0 then 'hi' when score > 4.0 then 'mid' else 'lo' end \
     from t where id < 40 order by id",
];

fn t_rows(n: usize) -> Vec<Row> {
    let groups = ["alpha", "beta", "gamma", "delta"];
    let notes = ["plain", "with \"quotes\"", "back\\slash", "caf\u{e9}", ""];
    (0..n)
        .map(|i| {
            let null = |k: usize| i % k == k - 1;
            Row(vec![
                Value::Int32(i as i32),
                if null(13) {
                    Value::Null
                } else {
                    Value::Text(groups[i % groups.len()].into())
                },
                if null(7) {
                    Value::Null
                } else {
                    Value::Float64((i % 100) as f64 / 8.0)
                },
                if null(17) {
                    Value::Null
                } else {
                    Value::Bool(i % 3 == 0)
                },
                if null(5) {
                    Value::Null
                } else {
                    Value::Text(notes[i % notes.len()].into())
                },
                Value::Int64(1_000_000_000_000 + i as i64 * 37),
            ])
        })
        .collect()
}

fn u_rows(n: usize) -> Vec<Row> {
    (0..n)
        .map(|i| {
            Row(vec![
                Value::Int32((i * 2) as i32),
                Value::Int32((i % 120) as i32),
            ])
        })
        .collect()
}

struct Fixture {
    _td: TempDir,
    t_csv: PathBuf,
    t_jsonl: PathBuf,
    u_csv: PathBuf,
    schema: Schema,
    u_schema: Schema,
}

fn fixture() -> Fixture {
    let td = TempDir::new("nodb-batch-eq").unwrap();
    let schema = Schema::parse(SCHEMA).unwrap();
    let u_schema = Schema::parse(U_SCHEMA).unwrap();
    let t = t_rows(ROWS);
    let u = u_rows(ROWS / 2);
    let f = Fixture {
        t_csv: td.file("t.csv"),
        t_jsonl: td.file("t.jsonl"),
        u_csv: td.file("u.csv"),
        schema,
        u_schema,
        _td: td,
    };
    let mut w = CsvWriter::create(&f.t_csv, CsvOptions::default()).unwrap();
    for r in &t {
        w.write_row(r).unwrap();
    }
    w.finish().unwrap();
    let mut w = JsonlWriter::create(&f.t_jsonl, &f.schema, JsonlOptions::default()).unwrap();
    for r in &t {
        w.write_row(r).unwrap();
    }
    w.finish().unwrap();
    let mut w = CsvWriter::create(&f.u_csv, CsvOptions::default()).unwrap();
    for r in &u {
        w.write_row(r).unwrap();
    }
    w.finish().unwrap();
    f
}

fn config(batch_rows: usize, scan_threads: usize, io: IoBackend) -> NoDbConfig {
    let mut cfg = NoDbConfig::postgres_raw();
    cfg.batch_rows = batch_rows;
    cfg.scan_threads = scan_threads;
    cfg.io_backend = io;
    // Small map blocks so batches straddle block boundaries and the
    // 4-thread runs cut real chunks out of this corpus.
    cfg.posmap_block_rows = 128;
    cfg
}

fn engine(f: &Fixture, cfg: NoDbConfig, jsonl: bool) -> NoDb {
    let mut db = NoDb::new(cfg).unwrap();
    if jsonl {
        db.register_jsonl("t", &f.t_jsonl, f.schema.clone(), AccessMode::InSitu)
            .unwrap();
    } else {
        db.register_csv(
            "t",
            &f.t_csv,
            f.schema.clone(),
            CsvOptions::default(),
            AccessMode::InSitu,
        )
        .unwrap();
    }
    db.register_csv(
        "u",
        &f.u_csv,
        f.u_schema.clone(),
        CsvOptions::default(),
        AccessMode::InSitu,
    )
    .unwrap();
    db
}

/// The whole observable state of a table after some queries: every work
/// counter plus the auxiliary-structure footprint.
fn observe(db: &NoDb, table: &str) -> (ScanMetrics, usize, u64, usize, usize) {
    let m = db.metrics(table).unwrap();
    let a = db.aux_info(table).unwrap();
    (
        m,
        a.posmap_bytes,
        a.posmap_pointers,
        a.cache_bytes,
        a.stats_attrs,
    )
}

fn assert_lockstep(row_db: &NoDb, batch_db: &NoDb, ctx: &str) {
    for q in QUERIES {
        // Run the same query on both engines, then compare rows *and*
        // the cumulative observable state, so divergence is pinned to
        // the first query (and pass) that caused it.
        let want = row_db.query(q).unwrap();
        let got = batch_db.query(q).unwrap();
        assert_eq!(want.rows, got.rows, "{ctx}: rows differ for `{q}`");
        for table in ["t", "u"] {
            assert_eq!(
                observe(row_db, table),
                observe(batch_db, table),
                "{ctx}: work/aux state differs after `{q}` on `{table}`"
            );
        }
    }
}

/// The main differential matrix: batch vs row over format × threads ×
/// I/O backend, each pair run cold then warm.
#[test]
fn batch_path_is_bit_identical_to_row_path() {
    let f = fixture();
    for jsonl in [false, true] {
        for threads in [1usize, 4] {
            for io in [IoBackend::Read, IoBackend::Mmap] {
                let row_db = engine(&f, config(0, threads, io), jsonl);
                let batch_db = engine(&f, config(1024, threads, io), jsonl);
                let ctx = format!(
                    "{} threads={threads} io={io:?}",
                    if jsonl { "jsonl" } else { "csv" }
                );
                assert_lockstep(&row_db, &batch_db, &format!("{ctx} cold"));
                assert_lockstep(&row_db, &batch_db, &format!("{ctx} warm"));
            }
        }
    }
}

/// Tiny batches maximize batch-boundary traffic: 997 rows in batches of
/// 3 exercises the "queue bigger than one batch" and "tail smaller than
/// one batch" paths on every scan, and aggregation drains see hundreds
/// of partial batches. Must still be an identity.
#[test]
fn tiny_batches_are_bit_identical_too() {
    let f = fixture();
    let row_db = engine(&f, config(0, 1, IoBackend::Read), false);
    let batch_db = engine(&f, config(3, 1, IoBackend::Read), false);
    assert_lockstep(&row_db, &batch_db, "csv tiny-batch cold");
    assert_lockstep(&row_db, &batch_db, "csv tiny-batch warm");
}

/// Prepared statements re-executed with bound parameters run the same
/// cached plan through the batched cursor; results and work counters
/// must match a row-mode engine executing the identical sequence.
#[test]
fn prepared_statements_match_under_batch_mode() {
    let f = fixture();
    let row_db = engine(&f, config(0, 1, IoBackend::Read), false);
    let batch_db = engine(&f, config(1024, 1, IoBackend::Read), false);
    let sql = "select grp, count(*), sum(score) from t where id >= ? and score < ? \
               group by grp order by grp";
    let row_stmt = row_db.prepare(sql).unwrap();
    let batch_stmt = batch_db.prepare(sql).unwrap();
    for (lo, hi) in [(0i64, 100.0f64), (250, 9.5), (700, 3.25), (0, 100.0)] {
        let params = Params::from(vec![Value::Int64(lo), Value::Float64(hi)]);
        let want = row_stmt.execute(&params).unwrap().collect().unwrap();
        let got = batch_stmt.execute(&params).unwrap().collect().unwrap();
        assert_eq!(want.rows, got.rows, "prepared ({lo}, {hi})");
        assert_eq!(
            observe(&row_db, "t"),
            observe(&batch_db, "t"),
            "prepared ({lo}, {hi}): work/aux state"
        );
    }
}

/// LIMIT under batch mode must keep its early exit: the cursor only
/// requests as many rows as the limit needs, so a cold scan stops after
/// the same prefix of the file as the row path (identical byte and
/// tokenization counters prove it — not just identical rows).
#[test]
fn limit_early_exit_is_preserved() {
    let f = fixture();
    let row_db = engine(&f, config(0, 1, IoBackend::Read), false);
    let batch_db = engine(&f, config(1024, 1, IoBackend::Read), false);
    let sql = "select id, note from t limit 5";
    assert_eq!(
        row_db.query(sql).unwrap().rows,
        batch_db.query(sql).unwrap().rows
    );
    let (m_row, ..) = observe(&row_db, "t");
    let (m_batch, ..) = observe(&batch_db, "t");
    assert_eq!(m_row, m_batch, "LIMIT work counters");
    // And it really was early exit, not a full scan on both sides.
    let full = std::fs::metadata(&f.t_csv).unwrap().len();
    assert!(
        m_batch.bytes_tokenized < full,
        "LIMIT 5 tokenized the whole file ({} of {full} bytes)",
        m_batch.bytes_tokenized
    );
}

/// The server serves batched engines to concurrent clients: answers on
/// the wire must be bit-identical to an embedded row-mode engine.
#[test]
fn server_under_batch_mode_serves_identical_answers() {
    const CLIENTS: usize = 4;
    const REPS: usize = 3;
    let f = fixture();
    let reference = engine(&f, config(0, 1, IoBackend::Read), false);
    let expected: Vec<nodb::core::QueryResult> = QUERIES
        .iter()
        .map(|q| reference.query(q).unwrap())
        .collect();

    let shared = Arc::new(engine(&f, config(1024, 1, IoBackend::Read), false));
    let server = NodbServer::bind_tcp(
        Arc::clone(&shared),
        "127.0.0.1:0",
        ServerConfig {
            max_inflight: CLIENTS,
            max_connections: CLIENTS + 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.handle();
    let serving = std::thread::spawn(move || server.serve());

    let expected = Arc::new(expected);
    let workers: Vec<_> = (0..CLIENTS)
        .map(|w| {
            let addr = addr.clone();
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let mut client = NodbClient::connect(&addr).unwrap();
                for _rep in 0..REPS {
                    for step in 0..QUERIES.len() {
                        let qi = (step + w) % QUERIES.len();
                        let got = client.query(QUERIES[qi]).unwrap();
                        assert_eq!(got.rows, expected[qi].rows, "client {w}: `{}`", QUERIES[qi]);
                    }
                }
                client.close().unwrap();
            })
        })
        .collect();
    for worker in workers {
        worker.join().unwrap();
    }
    handle.shutdown();
    let stats = serving.join().unwrap().unwrap();
    assert_eq!(stats.queries_failed, 0);
    assert_eq!(
        stats.queries_executed,
        (CLIENTS * REPS * QUERIES.len()) as u64
    );
}

/// `NODB_BATCH_ROWS` typos fail loudly at engine construction, exactly
/// like `NODB_IO_BACKEND` — a broken CI matrix entry cannot silently
/// flip the execution style. (Env mutation: keep this in one test so
/// nothing else in this binary races it.)
#[test]
fn malformed_batch_rows_env_fails_at_construction() {
    let path = path_to_self_env();
    let out = std::process::Command::new(path)
        .env("NODB_BATCH_ROWS", "many")
        .args([
            "--ignored",
            "--exact",
            "env_probe_constructs_engine",
            "--nocapture",
        ])
        .output()
        .unwrap();
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        text.contains("invalid NODB_BATCH_ROWS"),
        "expected a loud config error, got:\n{text}"
    );
}

/// Helper target for the subprocess test above: constructing an engine
/// under the poisoned environment must error, and we print that error.
#[test]
#[ignore]
fn env_probe_constructs_engine() {
    match NoDb::new(NoDbConfig::postgres_raw()) {
        Ok(_) => println!("engine constructed"),
        Err(e) => println!("construction failed: {e}"),
    }
}

fn path_to_self_env() -> PathBuf {
    // The running test binary re-invokes itself with a poisoned env.
    std::env::current_exe().unwrap()
}
