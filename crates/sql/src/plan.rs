//! Logical query plans.

use std::fmt;

use nodb_common::{DataType, Schema, Value};

use crate::expr::{AggExpr, BoundExpr};

/// Join kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Inner equi-join (plus residual filter).
    Inner,
    /// Left semi-join (EXISTS).
    Semi,
    /// Left anti-join (NOT EXISTS).
    Anti,
}

/// Aggregation strategy, chosen by the optimizer from estimated group
/// counts — the mechanism behind the paper's Figure 12 (with statistics
/// the planner picks hash aggregation; without, it must assume many
/// groups and sort).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggStrategy {
    /// No GROUP BY: a single accumulator.
    Plain,
    /// Hash aggregation (few groups expected).
    Hash,
    /// Sort-based aggregation (group count unknown or huge).
    Sort,
}

/// One sort key over the input's output ordinals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortKey {
    /// Column ordinal in the input schema.
    pub col: usize,
    /// Descending?
    pub desc: bool,
}

/// A logical plan node. Children are boxed; leaves are scans.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Leaf: scan of a registered table.
    ///
    /// `projection` lists the table-schema ordinals produced, in
    /// ascending file order (selective tuple formation starts here).
    /// `filters` are conjuncts over the *projected* ordinals, pushed down
    /// for selective parsing.
    Scan {
        /// Registered table name.
        table: String,
        /// Projected table-column ordinals (ascending).
        projection: Vec<usize>,
        /// Pushed-down conjuncts, bound to projection-space ordinals.
        filters: Vec<BoundExpr>,
        /// Output schema (the projected fields).
        schema: Schema,
        /// Estimated output rows (filled by the optimizer; used by tests
        /// and EXPLAIN output).
        estimated_rows: f64,
    },
    /// Residual filter.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Predicate over the input schema.
        predicate: BoundExpr,
    },
    /// Join of two inputs. Output layout = left columns ++ right columns
    /// (Inner); Semi/Anti output only left columns.
    Join {
        /// Build/left input.
        left: Box<LogicalPlan>,
        /// Probe/right input.
        right: Box<LogicalPlan>,
        /// Equi-join key pairs `(left ordinal, right ordinal)`.
        on: Vec<(usize, usize)>,
        /// Residual predicate over the concatenated layout.
        residual: Option<BoundExpr>,
        /// Join kind.
        kind: JoinKind,
        /// Output schema.
        schema: Schema,
        /// Estimated output rows.
        estimated_rows: f64,
    },
    /// Aggregation. Output layout = group keys ++ aggregate results.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Group-key ordinals in the input schema.
        group: Vec<usize>,
        /// Aggregate calls (args bound to the input schema).
        aggs: Vec<AggExpr>,
        /// Execution strategy.
        strategy: AggStrategy,
        /// Output schema.
        schema: Schema,
    },
    /// Projection: compute expressions over the input.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Output expressions.
        exprs: Vec<BoundExpr>,
        /// Output schema (names from aliases).
        schema: Schema,
    },
    /// Sort by keys over the input's output ordinals.
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort keys, major first.
        keys: Vec<SortKey>,
    },
    /// Row-count limit.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Maximum rows.
        n: u64,
    },
    /// Duplicate elimination over complete output rows (SELECT DISTINCT).
    Distinct {
        /// Input plan.
        input: Box<LogicalPlan>,
    },
}

impl LogicalPlan {
    /// Output schema of this node.
    pub fn schema(&self) -> &Schema {
        match self {
            LogicalPlan::Scan { schema, .. } => schema,
            LogicalPlan::Filter { input, .. } => input.schema(),
            LogicalPlan::Join { schema, .. } => schema,
            LogicalPlan::Aggregate { schema, .. } => schema,
            LogicalPlan::Project { schema, .. } => schema,
            LogicalPlan::Sort { input, .. } => input.schema(),
            LogicalPlan::Limit { input, .. } => input.schema(),
            LogicalPlan::Distinct { input } => input.schema(),
        }
    }

    /// Deep-copy this plan with every [`BoundExpr::Param`] replaced by
    /// the corresponding constant from `params` — the execute-time half
    /// of a prepared statement. Structure, join order and schemas are
    /// untouched; only expressions change.
    pub fn substitute_params(&self, params: &[Value]) -> LogicalPlan {
        let sub = |e: &BoundExpr| e.substitute_params(params);
        match self {
            LogicalPlan::Scan {
                table,
                projection,
                filters,
                schema,
                estimated_rows,
            } => LogicalPlan::Scan {
                table: table.clone(),
                projection: projection.clone(),
                filters: filters.iter().map(sub).collect(),
                schema: schema.clone(),
                estimated_rows: *estimated_rows,
            },
            LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
                input: Box::new(input.substitute_params(params)),
                predicate: sub(predicate),
            },
            LogicalPlan::Join {
                left,
                right,
                on,
                residual,
                kind,
                schema,
                estimated_rows,
            } => LogicalPlan::Join {
                left: Box::new(left.substitute_params(params)),
                right: Box::new(right.substitute_params(params)),
                on: on.clone(),
                residual: residual.as_ref().map(sub),
                kind: *kind,
                schema: schema.clone(),
                estimated_rows: *estimated_rows,
            },
            LogicalPlan::Aggregate {
                input,
                group,
                aggs,
                strategy,
                schema,
            } => LogicalPlan::Aggregate {
                input: Box::new(input.substitute_params(params)),
                group: group.clone(),
                aggs: aggs
                    .iter()
                    .map(|a| AggExpr {
                        func: a.func,
                        arg: a.arg.as_ref().map(sub),
                    })
                    .collect(),
                strategy: *strategy,
                schema: schema.clone(),
            },
            LogicalPlan::Project {
                input,
                exprs,
                schema,
            } => LogicalPlan::Project {
                input: Box::new(input.substitute_params(params)),
                exprs: exprs.iter().map(sub).collect(),
                schema: schema.clone(),
            },
            LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
                input: Box::new(input.substitute_params(params)),
                keys: keys.clone(),
            },
            LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
                input: Box::new(input.substitute_params(params)),
                n: *n,
            },
            LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
                input: Box::new(input.substitute_params(params)),
            },
        }
    }

    /// Bind-time inferred types of the statement's parameters, indexed
    /// by parameter slot (`None` = no context hint; execute-time values
    /// pass through unchecked).
    pub fn param_types(&self, count: usize) -> Vec<Option<DataType>> {
        let mut out = vec![None; count];
        self.collect_param_types(&mut out);
        out
    }

    fn collect_param_types(&self, out: &mut [Option<DataType>]) {
        match self {
            LogicalPlan::Scan { filters, .. } => {
                for f in filters {
                    f.collect_param_types(out);
                }
            }
            LogicalPlan::Filter { input, predicate } => {
                predicate.collect_param_types(out);
                input.collect_param_types(out);
            }
            LogicalPlan::Join {
                left,
                right,
                residual,
                ..
            } => {
                if let Some(r) = residual {
                    r.collect_param_types(out);
                }
                left.collect_param_types(out);
                right.collect_param_types(out);
            }
            LogicalPlan::Aggregate { input, aggs, .. } => {
                for a in aggs {
                    if let Some(arg) = &a.arg {
                        arg.collect_param_types(out);
                    }
                }
                input.collect_param_types(out);
            }
            LogicalPlan::Project { input, exprs, .. } => {
                for e in exprs {
                    e.collect_param_types(out);
                }
                input.collect_param_types(out);
            }
            LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Distinct { input } => input.collect_param_types(out),
        }
    }

    /// Multi-line indented EXPLAIN-style rendering.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.fmt_indent(&mut out, 0);
        out
    }

    fn fmt_indent(&self, out: &mut String, depth: usize) {
        use std::fmt::Write as _;
        let pad = "  ".repeat(depth);
        match self {
            LogicalPlan::Scan {
                table,
                projection,
                filters,
                estimated_rows,
                ..
            } => {
                let _ = write!(out, "{pad}Scan {table} proj={projection:?}");
                if !filters.is_empty() {
                    let _ = write!(out, " filters=[");
                    for (i, f) in filters.iter().enumerate() {
                        if i > 0 {
                            let _ = write!(out, ", ");
                        }
                        let _ = write!(out, "{f}");
                    }
                    let _ = write!(out, "]");
                }
                let _ = writeln!(out, " (~{estimated_rows:.0} rows)");
            }
            LogicalPlan::Filter { input, predicate } => {
                let _ = writeln!(out, "{pad}Filter {predicate}");
                input.fmt_indent(out, depth + 1);
            }
            LogicalPlan::Join {
                left,
                right,
                on,
                residual,
                kind,
                estimated_rows,
                ..
            } => {
                let _ = write!(out, "{pad}{kind:?}Join on={on:?}");
                if let Some(r) = residual {
                    let _ = write!(out, " residual={r}");
                }
                let _ = writeln!(out, " (~{estimated_rows:.0} rows)");
                left.fmt_indent(out, depth + 1);
                right.fmt_indent(out, depth + 1);
            }
            LogicalPlan::Aggregate {
                input,
                group,
                aggs,
                strategy,
                ..
            } => {
                let _ = writeln!(
                    out,
                    "{pad}{strategy:?}Aggregate group={group:?} aggs={}",
                    aggs.len()
                );
                input.fmt_indent(out, depth + 1);
            }
            LogicalPlan::Project { input, exprs, .. } => {
                let _ = write!(out, "{pad}Project [");
                for (i, e) in exprs.iter().enumerate() {
                    if i > 0 {
                        let _ = write!(out, ", ");
                    }
                    let _ = write!(out, "{e}");
                }
                let _ = writeln!(out, "]");
                input.fmt_indent(out, depth + 1);
            }
            LogicalPlan::Sort { input, keys } => {
                let _ = write!(out, "{pad}Sort [");
                for (i, k) in keys.iter().enumerate() {
                    if i > 0 {
                        let _ = write!(out, ", ");
                    }
                    let _ = write!(out, "#{}{}", k.col, if k.desc { " desc" } else { "" });
                }
                let _ = writeln!(out, "]");
                input.fmt_indent(out, depth + 1);
            }
            LogicalPlan::Limit { input, n } => {
                let _ = writeln!(out, "{pad}Limit {n}");
                input.fmt_indent(out, depth + 1);
            }
            LogicalPlan::Distinct { input } => {
                let _ = writeln!(out, "{pad}Distinct");
                input.fmt_indent(out, depth + 1);
            }
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.explain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodb_common::{DataType, Value};

    #[test]
    fn explain_renders_tree() {
        let scan = LogicalPlan::Scan {
            table: "t".into(),
            projection: vec![0, 2],
            filters: vec![BoundExpr::Binary {
                op: crate::expr::BinOp::Lt,
                left: Box::new(BoundExpr::Col(0)),
                right: Box::new(BoundExpr::Lit(Value::Int64(5))),
            }],
            schema: Schema::from_pairs(&[("a", DataType::Int32), ("c", DataType::Int32)]).unwrap(),
            estimated_rows: 42.0,
        };
        let plan = LogicalPlan::Limit {
            input: Box::new(scan),
            n: 10,
        };
        let s = plan.explain();
        assert!(s.contains("Limit 10"));
        assert!(s.contains("Scan t proj=[0, 2]"));
        assert!(s.contains("(#0 < 5)"));
        assert!(s.contains("~42 rows"));
    }
}
