//! SQL tokenizer.

use nodb_common::{NoDbError, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (normalized to lowercase; originals carry no
    /// case significance in this dialect).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `?` — a positional parameter placeholder (index assigned by the
    /// parser in order of appearance).
    Question,
    /// `$N` — an explicitly numbered parameter placeholder (1-based).
    Param(u32),
    /// `.`
    Dot,
}

impl Token {
    /// Is this the keyword `kw` (case-insensitive; `kw` must be lowercase)?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s == kw)
    }
}

/// Tokenize SQL text. Comments (`-- …`) are skipped.
pub fn lex(sql: &str) -> Result<Vec<Token>> {
    let b = sql.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if i + 1 < b.len() && b[i + 1] == b'-' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                out.push(Token::LParen);
                i += 1;
            }
            b')' => {
                out.push(Token::RParen);
                i += 1;
            }
            b',' => {
                out.push(Token::Comma);
                i += 1;
            }
            b';' => {
                out.push(Token::Semi);
                i += 1;
            }
            b'+' => {
                out.push(Token::Plus);
                i += 1;
            }
            b'-' => {
                out.push(Token::Minus);
                i += 1;
            }
            b'*' => {
                out.push(Token::Star);
                i += 1;
            }
            b'/' => {
                out.push(Token::Slash);
                i += 1;
            }
            b'=' => {
                out.push(Token::Eq);
                i += 1;
            }
            b'!' if i + 1 < b.len() && b[i + 1] == b'=' => {
                out.push(Token::NotEq);
                i += 2;
            }
            b'<' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    out.push(Token::LtEq);
                    i += 2;
                } else if i + 1 < b.len() && b[i + 1] == b'>' {
                    out.push(Token::NotEq);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            b'>' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    out.push(Token::GtEq);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            b'?' => {
                out.push(Token::Question);
                i += 1;
            }
            b'$' => {
                let start = i + 1;
                let mut j = start;
                while j < b.len() && b[j].is_ascii_digit() {
                    j += 1;
                }
                if j == start {
                    return Err(NoDbError::sql(
                        "expected a parameter number after `$` (e.g. `$1`)",
                    ));
                }
                let text = std::str::from_utf8(&b[start..j]).unwrap();
                let n: u32 = text
                    .parse()
                    .map_err(|_| NoDbError::sql(format!("bad parameter number `${text}`")))?;
                if n == 0 {
                    return Err(NoDbError::sql("parameter numbers start at $1"));
                }
                out.push(Token::Param(n));
                i = j;
            }
            b'\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= b.len() {
                        return Err(NoDbError::sql("unterminated string literal"));
                    }
                    if b[i] == b'\'' {
                        if i + 1 < b.len() && b[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(b[i] as char);
                        i += 1;
                    }
                }
                out.push(Token::Str(s));
            }
            b'.' if i + 1 < b.len() && b[i + 1].is_ascii_digit() => {
                // .5 style float
                let start = i;
                i += 1;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                let text = std::str::from_utf8(&b[start..i]).unwrap();
                let v: f64 = text
                    .parse()
                    .map_err(|_| NoDbError::sql(format!("bad number `{text}`")))?;
                out.push(Token::Float(v));
            }
            b'.' => {
                out.push(Token::Dot);
                i += 1;
            }
            b'0'..=b'9' => {
                let start = i;
                let mut is_float = false;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                if i < b.len() && b[i] == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                } else if i < b.len() && b[i] == b'.' {
                    // `1.` style
                    is_float = true;
                    i += 1;
                }
                if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
                    is_float = true;
                    i += 1;
                    if i < b.len() && (b[i] == b'+' || b[i] == b'-') {
                        i += 1;
                    }
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = std::str::from_utf8(&b[start..i]).unwrap();
                if is_float {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| NoDbError::sql(format!("bad number `{text}`")))?;
                    out.push(Token::Float(v));
                } else {
                    match text.parse::<i64>() {
                        Ok(v) => out.push(Token::Int(v)),
                        Err(_) => {
                            let v: f64 = text
                                .parse()
                                .map_err(|_| NoDbError::sql(format!("bad number `{text}`")))?;
                            out.push(Token::Float(v));
                        }
                    }
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let text = std::str::from_utf8(&b[start..i]).unwrap();
                out.push(Token::Ident(text.to_ascii_lowercase()));
            }
            other => {
                return Err(NoDbError::sql(format!(
                    "unexpected character `{}`",
                    other as char
                )));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_keywords_and_operators() {
        let toks = lex("SELECT a, b FROM t WHERE x <= 5 AND y <> 'it''s'").unwrap();
        assert_eq!(toks[0], Token::Ident("select".into()));
        assert!(toks.contains(&Token::LtEq));
        assert!(toks.contains(&Token::NotEq));
        assert!(toks.contains(&Token::Str("it's".into())));
    }

    #[test]
    fn lexes_numbers() {
        let toks = lex("1 2.5 100.00 .5 1e3 3.2e-2").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Int(1),
                Token::Float(2.5),
                Token::Float(100.0),
                Token::Float(0.5),
                Token::Float(1000.0),
                Token::Float(0.032),
            ]
        );
    }

    #[test]
    fn minus_is_a_token_not_a_sign() {
        let toks = lex("1-2").unwrap();
        assert_eq!(toks, vec![Token::Int(1), Token::Minus, Token::Int(2)]);
    }

    #[test]
    fn skips_comments() {
        let toks = lex("select -- comment here\n 1").unwrap();
        assert_eq!(toks, vec![Token::Ident("select".into()), Token::Int(1)]);
    }

    #[test]
    fn qualified_names_use_dot() {
        let toks = lex("t.col").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("t".into()),
                Token::Dot,
                Token::Ident("col".into())
            ]
        );
    }

    #[test]
    fn rejects_bad_input() {
        assert!(lex("select 'unterminated").is_err());
        assert!(lex("select @").is_err());
    }

    #[test]
    fn lexes_parameter_placeholders() {
        let toks = lex("a = ? and b = $2").unwrap();
        assert!(toks.contains(&Token::Question));
        assert!(toks.contains(&Token::Param(2)));
        // `$` needs digits, and numbering is 1-based.
        assert!(lex("a = $").is_err());
        assert!(lex("a = $0").is_err());
        assert!(lex("a = $x").is_err());
    }
}
