//! The adaptive positional map proper: directory, budget, LRU, spilling.

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use nodb_common::{ByteSize, Result, WorkloadLog};

use crate::chunk::Chunk;
use crate::eol::EolIndex;

/// Configuration of a per-table positional map.
#[derive(Debug, Clone)]
pub struct PosMapConfig {
    /// Tuples per horizontal block. Chunks are aligned to block
    /// boundaries so that any attribute is covered by at most one chunk
    /// per block; the default keeps a chunk of a few attributes well
    /// inside the CPU caches ("each chunk fits comfortably in the CPU
    /// caches", §4.2).
    pub block_rows: usize,
    /// Storage threshold for attribute chunks. `None` = unlimited. The
    /// end-of-line index is accounted separately (it is the minimal map
    /// the cache-only variant also keeps).
    pub budget: Option<ByteSize>,
    /// When set, evicted chunks are written here and transparently
    /// reloaded on access instead of being re-built by re-parsing (§4.2,
    /// "writing parts of the positional map from memory to disk").
    pub spill_dir: Option<PathBuf>,
    /// Per-attribute access-frequency log. When present, budget
    /// evictions pick the chunk whose hottest attribute is coldest
    /// (recency breaking ties) instead of pure LRU, so the map retains
    /// what the workload actually navigates by.
    pub workload: Option<Arc<WorkloadLog>>,
}

impl Default for PosMapConfig {
    fn default() -> Self {
        PosMapConfig {
            block_rows: 4096,
            budget: None,
            spill_dir: None,
            workload: None,
        }
    }
}

/// Counters exposed for experiments and tests.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MapStats {
    /// Chunks inserted.
    pub inserts: u64,
    /// Chunks dropped entirely (no spill configured or spill failed).
    pub drops: u64,
    /// Chunks written to the spill directory.
    pub spills: u64,
    /// Spilled chunks read back on access.
    pub reloads: u64,
}

/// Positional information the map can offer for one attribute over one
/// block — the entries of the paper's per-query *temporary map*.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrPositions {
    /// The attribute itself is indexed: line-relative start offsets, one
    /// per row of the block.
    Exact(Vec<u32>),
    /// A neighbouring attribute is indexed; the scan should jump there and
    /// tokenize forward (`anchor_attr < attr`) or backward
    /// (`anchor_attr > attr`) — §4.2 "incremental parsing can occur in
    /// both directions".
    Anchor {
        /// File ordinal of the indexed neighbour.
        anchor_attr: u32,
        /// Its line-relative offsets, one per row.
        positions: Vec<u32>,
    },
    /// Nothing indexed for this block; tokenize from the line start.
    None,
}

impl AttrPositions {
    /// True when the map offers no help.
    pub fn is_none(&self) -> bool {
        matches!(self, AttrPositions::None)
    }
}

/// The pre-fetched positional information for one block and one query —
/// the paper's temporary map (§4.2, "Pre-fetching"). Dropped when the
/// batch has been parsed.
#[derive(Debug)]
pub struct BlockView {
    /// Block ordinal.
    pub block: u64,
    /// One entry per requested attribute, in request order.
    pub entries: Vec<AttrPositions>,
    /// Rows covered by the chunks backing this view (0 when nothing is
    /// indexed for the block).
    pub rows: u32,
}

#[derive(Debug)]
enum SlotState {
    InMem(Chunk),
    Spilled {
        path: PathBuf,
        bytes: usize,
        rows: u32,
    },
    Free,
}

#[derive(Debug)]
struct Slot {
    state: SlotState,
    /// LRU recency stamp. Atomic so that read-locked (`&self`) block
    /// fetches from concurrent warm scans still update recency.
    last_touch: AtomicU64,
}

/// The adaptive positional map for a single raw file.
///
/// See the crate docs for the faithful-behaviour summary. All methods are
/// infallible except those that touch the spill directory.
#[derive(Debug)]
pub struct PositionalMap {
    cfg: PosMapConfig,
    eol: EolIndex,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// block → (attr → slot).
    dir: HashMap<u64, BTreeMap<u32, usize>>,
    /// LRU clock; atomic so shared-lock readers can tick it.
    clock: AtomicU64,
    bytes_in_mem: usize,
    spill_seq: u64,
    stats: MapStats,
}

impl PositionalMap {
    /// Create an empty map.
    pub fn new(cfg: PosMapConfig) -> PositionalMap {
        PositionalMap {
            cfg,
            eol: EolIndex::new(),
            slots: Vec::new(),
            free: Vec::new(),
            dir: HashMap::new(),
            clock: AtomicU64::new(0),
            bytes_in_mem: 0,
            spill_seq: 0,
            stats: MapStats::default(),
        }
    }

    /// Tuples per block.
    pub fn block_rows(&self) -> usize {
        self.cfg.block_rows
    }

    /// Block ordinal containing `row`.
    pub fn block_of(&self, row: u64) -> u64 {
        row / self.cfg.block_rows as u64
    }

    /// The end-of-line index (shared with the cache-only variant).
    pub fn eol(&self) -> &EolIndex {
        &self.eol
    }

    /// Mutable access to the end-of-line index (populated by scans).
    pub fn eol_mut(&mut self) -> &mut EolIndex {
        &mut self.eol
    }

    /// Bytes of attribute chunks currently held in memory.
    pub fn bytes_in_memory(&self) -> usize {
        self.bytes_in_mem
    }

    /// Total pointers held in memory (attribute positions + line starts).
    pub fn pointer_count(&self) -> u64 {
        let chunk_ptrs: u64 = self
            .slots
            .iter()
            .map(|s| match &s.state {
                SlotState::InMem(c) => c.pointer_count(),
                _ => 0,
            })
            .sum();
        chunk_ptrs + self.eol.pointer_count()
    }

    /// Counters for tests and experiments.
    pub fn stats(&self) -> MapStats {
        self.stats
    }

    /// Insert a chunk built by a scan. Newer chunks shadow older ones in
    /// the directory for the attributes they cover; the budget is enforced
    /// afterwards with LRU eviction (spilling when configured).
    pub fn insert(&mut self, chunk: Chunk) {
        if chunk.rows == 0 || chunk.attrs.is_empty() {
            return;
        }
        let now = self.tick();
        let bytes = chunk.bytes();
        let block = chunk.block;
        let attrs = chunk.attrs.clone();
        let slot_id = self.alloc_slot(Slot {
            state: SlotState::InMem(chunk),
            last_touch: AtomicU64::new(now),
        });
        let block_dir = self.dir.entry(block).or_default();
        for a in attrs {
            block_dir.insert(a, slot_id);
        }
        self.bytes_in_mem += bytes;
        self.stats.inserts += 1;
        self.enforce_budget(slot_id);
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Pre-fetch positional information for `attrs` over `block` — builds
    /// the temporary map for one batch. Access order inside the scan is
    /// up to the caller (WHERE attributes first; see nodb-core). Spilled
    /// chunks are reloaded from disk, which is why this needs `&mut`; the
    /// common warm-path alternative is [`PositionalMap::fetch_block_shared`].
    pub fn fetch_block(&mut self, block: u64, attrs: &[u32]) -> BlockView {
        let clock = self.tick();
        let mut entries = Vec::with_capacity(attrs.len());
        let mut rows = 0u32;
        for &attr in attrs {
            let hit = self.dir.get(&block).and_then(|bd| bd.get(&attr).copied());
            let entry = match hit {
                Some(slot) => match self.column_of(slot, attr, clock) {
                    Some(col) => {
                        // CAST: columns hold ≤ block_rows (u32) positions; len fits u32.
                        rows = rows.max(col.len() as u32);
                        AttrPositions::Exact(col)
                    }
                    None => AttrPositions::None,
                },
                None => {
                    // Nearest indexed neighbour within the block.
                    match self.nearest_attr(block, attr) {
                        Some((anchor_attr, slot)) => {
                            match self.column_of(slot, anchor_attr, clock) {
                                Some(col) => {
                                    // CAST: columns hold ≤ block_rows (u32) positions; len fits u32.
                                    rows = rows.max(col.len() as u32);
                                    AttrPositions::Anchor {
                                        anchor_attr,
                                        positions: col,
                                    }
                                }
                                None => AttrPositions::None,
                            }
                        }
                        None => AttrPositions::None,
                    }
                }
            };
            entries.push(entry);
        }
        BlockView {
            block,
            entries,
            rows,
        }
    }

    /// Shared-lock variant of [`PositionalMap::fetch_block`]: concurrent
    /// warm scans call this under a read lock. Recency still advances
    /// (the LRU stamps are atomic). Returns `None` when any needed chunk
    /// is spilled to disk — reloading mutates the map, so the caller must
    /// retry with a write lock and `fetch_block`.
    pub fn fetch_block_shared(&self, block: u64, attrs: &[u32]) -> Option<BlockView> {
        let clock = self.tick();
        let mut entries = Vec::with_capacity(attrs.len());
        let mut rows = 0u32;
        for &attr in attrs {
            let hit = self.dir.get(&block).and_then(|bd| bd.get(&attr).copied());
            let entry = match hit {
                Some(slot) => match self.column_of_shared(slot, attr, clock)? {
                    Some(col) => {
                        // CAST: columns hold ≤ block_rows (u32) positions; len fits u32.
                        rows = rows.max(col.len() as u32);
                        AttrPositions::Exact(col)
                    }
                    None => AttrPositions::None,
                },
                None => match self.nearest_attr(block, attr) {
                    Some((anchor_attr, slot)) => {
                        match self.column_of_shared(slot, anchor_attr, clock)? {
                            Some(col) => {
                                // CAST: columns hold ≤ block_rows (u32) positions; len fits u32.
                                rows = rows.max(col.len() as u32);
                                AttrPositions::Anchor {
                                    anchor_attr,
                                    positions: col,
                                }
                            }
                            None => AttrPositions::None,
                        }
                    }
                    None => AttrPositions::None,
                },
            };
            entries.push(entry);
        }
        Some(BlockView {
            block,
            entries,
            rows,
        })
    }

    /// `column_of` without the reload path: outer `None` means "spilled,
    /// needs a write lock"; inner `None` means the slot does not cover
    /// the attribute.
    #[allow(clippy::option_option)]
    fn column_of_shared(&self, slot_id: usize, attr: u32, clock: u64) -> Option<Option<Vec<u32>>> {
        let slot = &self.slots[slot_id];
        match &slot.state {
            SlotState::Spilled { .. } => None,
            SlotState::InMem(c) => {
                slot.last_touch.store(clock, Ordering::Relaxed);
                Some(
                    c.attrs
                        .iter()
                        .position(|&a| a == attr)
                        .map(|pos| c.attr_column(pos)),
                )
            }
            SlotState::Free => Some(None),
        }
    }

    /// Rows covered by the chunk indexing `attr` in `block` (0 when
    /// unindexed; spilled chunks report their recorded extent). Used to
    /// detect blocks that grew through appends (§4.5).
    pub fn covered_rows(&self, block: u64, attr: u32) -> u32 {
        let Some(&slot) = self.dir.get(&block).and_then(|bd| bd.get(&attr)) else {
            return 0;
        };
        match &self.slots[slot].state {
            SlotState::InMem(c) => c.rows,
            SlotState::Spilled { rows, .. } => *rows,
            SlotState::Free => 0,
        }
    }

    /// The paper's re-combination rule (§4.2, "Adaptive Behavior"): a new
    /// combined chunk for `attrs` is collected when the requested
    /// attributes all live in *different* chunks (or are partially
    /// uncovered).
    pub fn should_collect(&self, block: u64, attrs: &[u32]) -> bool {
        let Some(bd) = self.dir.get(&block) else {
            return true;
        };
        let mut slots = Vec::with_capacity(attrs.len());
        for &a in attrs {
            match bd.get(&a) {
                None => return true, // uncovered attribute
                Some(&s) => slots.push(s),
            }
        }
        if attrs.len() <= 1 {
            return false;
        }
        slots.sort_unstable();
        slots.dedup();
        slots.len() == attrs.len()
    }

    /// Drop everything (the map is auxiliary; §4.2 "may be dropped fully
    /// or partly at any time without any loss of critical information").
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            if let SlotState::Spilled { path, .. } = &slot.state {
                let _ = std::fs::remove_file(path);
            }
            slot.state = SlotState::Free;
        }
        self.slots.clear();
        self.free.clear();
        self.dir.clear();
        self.bytes_in_mem = 0;
        self.eol.clear();
    }

    fn alloc_slot(&mut self, slot: Slot) -> usize {
        if let Some(id) = self.free.pop() {
            self.slots[id] = slot;
            id
        } else {
            self.slots.push(slot);
            self.slots.len() - 1
        }
    }

    /// Copy one attribute's offsets out of a slot, reloading from spill if
    /// needed. Returns `None` when the slot no longer covers the attr.
    fn column_of(&mut self, slot_id: usize, attr: u32, clock: u64) -> Option<Vec<u32>> {
        // Reload first if spilled.
        let need_reload = matches!(self.slots[slot_id].state, SlotState::Spilled { .. });
        if need_reload && self.reload(slot_id).is_err() {
            return None;
        }
        let slot = &mut self.slots[slot_id];
        slot.last_touch.store(clock, Ordering::Relaxed);
        match &slot.state {
            SlotState::InMem(c) => {
                let pos = c.attrs.iter().position(|&a| a == attr)?;
                Some(c.attr_column(pos))
            }
            _ => None,
        }
    }

    fn nearest_attr(&self, block: u64, attr: u32) -> Option<(u32, usize)> {
        let bd = self.dir.get(&block)?;
        let left = bd.range(..attr).next_back().map(|(&a, &s)| (a, s));
        let right = bd.range(attr + 1..).next().map(|(&a, &s)| (a, s));
        match (left, right) {
            (None, None) => None,
            (Some(l), None) => Some(l),
            (None, Some(r)) => Some(r),
            (Some(l), Some(r)) => {
                // Prefer the closer anchor; ties go left (forward
                // tokenization is cheaper than backward: no re-scan of the
                // target field).
                if attr - l.0 <= r.0 - attr {
                    Some(l)
                } else {
                    Some(r)
                }
            }
        }
    }

    fn reload(&mut self, slot_id: usize) -> Result<()> {
        let (path, bytes) = match &self.slots[slot_id].state {
            SlotState::Spilled { path, bytes, .. } => (path.clone(), *bytes),
            _ => return Ok(()),
        };
        let chunk = Chunk::load_from(&path)?;
        let _ = std::fs::remove_file(&path);
        self.slots[slot_id].state = SlotState::InMem(chunk);
        self.bytes_in_mem += bytes;
        self.stats.reloads += 1;
        // Reloading may push us over budget again; evict others (the
        // just-reloaded slot is the most recently touched).
        self.enforce_budget(slot_id);
        Ok(())
    }

    fn enforce_budget(&mut self, protect: usize) {
        let Some(budget) = self.cfg.budget else {
            return;
        };
        let budget = budget.bytes() as usize;
        // One heat snapshot per enforcement pass (the log is shared and
        // briefly locked per call).
        let heats: Option<Vec<u64>> = self.cfg.workload.as_ref().map(|w| w.heats());
        while self.bytes_in_mem > budget {
            // Find the next victim among in-memory chunks, excluding
            // `protect` unless it is the only one left. Without a
            // workload log the victim is the LRU chunk; with one it is
            // the chunk whose hottest attribute is coldest (recency
            // breaking ties).
            let mut victim: Option<(usize, (u64, u64))> = None;
            let mut in_mem = 0usize;
            for (id, s) in self.slots.iter().enumerate() {
                if let SlotState::InMem(c) = &s.state {
                    in_mem += 1;
                    if id != protect {
                        let touch = s.last_touch.load(Ordering::Relaxed);
                        let key = match &heats {
                            Some(h) => {
                                let heat = c
                                    .attrs
                                    .iter()
                                    .map(|&a| h.get(a as usize).copied().unwrap_or(0))
                                    .max()
                                    .unwrap_or(0);
                                (heat + 1, touch)
                            }
                            None => (touch, 0),
                        };
                        match victim {
                            Some((_, k)) if k <= key => {}
                            _ => victim = Some((id, key)),
                        }
                    }
                }
            }
            let victim = match victim {
                Some((id, _)) => id,
                None if in_mem > 0 => protect, // protect is the only chunk
                None => return,
            };
            self.evict(victim);
            if victim == protect {
                return; // nothing else to do; budget smaller than one chunk
            }
        }
    }

    fn evict(&mut self, slot_id: usize) {
        let state = std::mem::replace(&mut self.slots[slot_id].state, SlotState::Free);
        let SlotState::InMem(chunk) = state else {
            self.slots[slot_id].state = state;
            return;
        };
        let bytes = chunk.bytes();
        self.bytes_in_mem -= bytes;
        if let Some(dir) = self.cfg.spill_dir.clone() {
            let _ = std::fs::create_dir_all(&dir);
            self.spill_seq += 1;
            let path = dir.join(format!("chunk-{:08}.pm", self.spill_seq));
            if chunk.spill_to(&path).is_ok() {
                self.stats.spills += 1;
                self.slots[slot_id].state = SlotState::Spilled {
                    path,
                    bytes,
                    rows: chunk.rows,
                };
                return;
            }
        }
        // Dropped outright: remove directory entries pointing at this slot.
        self.stats.drops += 1;
        if let Some(bd) = self.dir.get_mut(&chunk.block) {
            bd.retain(|_, &mut s| s != slot_id);
            if bd.is_empty() {
                self.dir.remove(&chunk.block);
            }
        }
        self.free.push(slot_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::BlockCollector;
    use nodb_common::TempDir;

    fn chunk(block: u64, attrs: &[u32], rows: u32, base: u32) -> Chunk {
        let mut c = BlockCollector::new(block, attrs.to_vec());
        for r in 0..rows {
            let offs: Vec<u32> = attrs.iter().map(|&a| base + a * 10 + r).collect();
            c.push_row(&offs);
        }
        c.build()
    }

    #[test]
    fn exact_hit_returns_column() {
        let mut m = PositionalMap::new(PosMapConfig::default());
        m.insert(chunk(0, &[4, 7], 3, 100));
        let v = m.fetch_block(0, &[7]);
        assert_eq!(v.entries[0], AttrPositions::Exact(vec![170, 171, 172]));
        assert_eq!(v.rows, 3);
    }

    #[test]
    fn anchor_prefers_closer_neighbour() {
        let mut m = PositionalMap::new(PosMapConfig::default());
        m.insert(chunk(0, &[2, 12], 2, 0));
        // Attr 10: distance 8 to the left (2), 2 to the right (12).
        match &m.fetch_block(0, &[10]).entries[0] {
            AttrPositions::Anchor { anchor_attr, .. } => assert_eq!(*anchor_attr, 12),
            other => panic!("expected anchor, got {other:?}"),
        }
        // Attr 3: left anchor 2 wins.
        match &m.fetch_block(0, &[3]).entries[0] {
            AttrPositions::Anchor { anchor_attr, .. } => assert_eq!(*anchor_attr, 2),
            other => panic!("expected anchor, got {other:?}"),
        }
    }

    #[test]
    fn uncovered_block_has_no_positions() {
        let mut m = PositionalMap::new(PosMapConfig::default());
        m.insert(chunk(0, &[1], 2, 0));
        assert!(m.fetch_block(5, &[1]).entries[0].is_none());
    }

    #[test]
    fn newer_chunk_shadows_older() {
        let mut m = PositionalMap::new(PosMapConfig::default());
        m.insert(chunk(0, &[4], 2, 100));
        m.insert(chunk(0, &[4, 5], 2, 500));
        match &m.fetch_block(0, &[4]).entries[0] {
            AttrPositions::Exact(col) => assert_eq!(col[0], 540),
            other => panic!("expected exact, got {other:?}"),
        }
    }

    #[test]
    fn should_collect_matches_paper_rule() {
        let mut m = PositionalMap::new(PosMapConfig::default());
        // Nothing indexed: collect.
        assert!(m.should_collect(0, &[1, 2]));
        m.insert(chunk(0, &[1, 2], 2, 0));
        // Both in the same chunk: no need.
        assert!(!m.should_collect(0, &[1, 2]));
        // Partially uncovered: collect.
        assert!(m.should_collect(0, &[1, 9]));
        m.insert(chunk(0, &[9], 2, 0));
        // 1 and 9 now live in different chunks: collect the combination.
        assert!(m.should_collect(0, &[1, 9]));
        // Single attribute, covered: no need.
        assert!(!m.should_collect(0, &[9]));
    }

    #[test]
    fn budget_evicts_lru() {
        // One chunk here is ~84 bytes (16 u16 offsets + directory
        // overhead); a 200-byte budget holds two.
        let cfg = PosMapConfig {
            budget: Some(ByteSize(200)),
            ..Default::default()
        };
        let mut m = PositionalMap::new(cfg);
        m.insert(chunk(0, &[1], 16, 0));
        m.insert(chunk(1, &[1], 16, 0));
        // Touch block 0 so block 1 becomes LRU.
        let _ = m.fetch_block(0, &[1]);
        m.insert(chunk(2, &[1], 16, 0));
        assert!(m.bytes_in_memory() <= 200);
        assert!(m.stats().drops > 0);
        // Block 0 was kept hot; block 1 was the victim.
        assert!(matches!(
            m.fetch_block(0, &[1]).entries[0],
            AttrPositions::Exact(_)
        ));
        assert!(m.fetch_block(1, &[1]).entries[0].is_none());
    }

    #[test]
    fn workload_heat_overrides_lru() {
        let log = Arc::new(WorkloadLog::new());
        for _ in 0..50 {
            log.record_touches(&[1]); // attr 1 is hot
        }
        log.record_touches(&[2]); // attr 2 is cold
        let cfg = PosMapConfig {
            budget: Some(ByteSize(200)),
            workload: Some(Arc::clone(&log)),
            ..Default::default()
        };
        let mut m = PositionalMap::new(cfg);
        m.insert(chunk(0, &[1], 16, 0)); // hot attribute
        m.insert(chunk(1, &[2], 16, 0)); // cold attribute
                                         // Touch the cold chunk so pure LRU would evict the hot one.
        let _ = m.fetch_block(1, &[2]);
        m.insert(chunk(2, &[1], 16, 0));
        assert!(m.bytes_in_memory() <= 200);
        assert!(
            matches!(m.fetch_block(0, &[1]).entries[0], AttrPositions::Exact(_)),
            "chunk of the hot attribute survives"
        );
        assert!(
            m.fetch_block(1, &[2]).entries[0].is_none(),
            "chunk of the cold attribute evicted despite recency"
        );
    }

    #[test]
    fn spill_and_reload_preserves_positions() {
        let td = TempDir::new("nodb-pm").unwrap();
        let cfg = PosMapConfig {
            budget: Some(ByteSize(100)),
            spill_dir: Some(td.path().to_path_buf()),
            ..Default::default()
        };
        let mut m = PositionalMap::new(cfg);
        m.insert(chunk(0, &[1], 16, 7));
        m.insert(chunk(1, &[1], 16, 9)); // evicts block 0 to disk
        assert!(m.stats().spills >= 1);
        // Access block 0 again: reloaded from spill, same positions.
        match &m.fetch_block(0, &[1]).entries[0] {
            AttrPositions::Exact(col) => assert_eq!(col[0], 17),
            other => panic!("expected exact after reload, got {other:?}"),
        }
        assert!(m.stats().reloads >= 1);
    }

    #[test]
    fn clear_removes_everything_including_spill_files() {
        let td = TempDir::new("nodb-pm").unwrap();
        let cfg = PosMapConfig {
            budget: Some(ByteSize(100)),
            spill_dir: Some(td.path().to_path_buf()),
            ..Default::default()
        };
        let mut m = PositionalMap::new(cfg);
        m.insert(chunk(0, &[1], 16, 0));
        m.insert(chunk(1, &[1], 16, 0));
        assert!(m.stats().spills >= 1, "setup must actually spill");
        m.eol_mut().record(0, 0, 10);
        m.clear();
        assert_eq!(m.bytes_in_memory(), 0);
        assert_eq!(m.pointer_count(), 0);
        assert!(m.fetch_block(0, &[1]).entries[0].is_none());
        let leftover = std::fs::read_dir(td.path()).unwrap().count();
        assert_eq!(leftover, 0);
    }

    #[test]
    fn pointer_count_tracks_chunks_and_eol() {
        let mut m = PositionalMap::new(PosMapConfig::default());
        m.insert(chunk(0, &[1, 2], 4, 0)); // 8 pointers
        m.eol_mut().record(0, 0, 10);
        m.eol_mut().record(1, 10, 20);
        assert_eq!(m.pointer_count(), 10);
    }
}
