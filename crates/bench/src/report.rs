//! Result reporting: aligned stdout tables + one CSV per figure.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::PathBuf;

/// Collects one figure's series and writes them out.
pub struct Report {
    figure: String,
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
    out_dir: PathBuf,
}

impl Report {
    /// Start a report for `figure` (e.g. `"fig5"`).
    pub fn new(figure: &str, title: &str, columns: &[&str], out_dir: &std::path::Path) -> Report {
        Report {
            figure: figure.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            out_dir: out_dir.to_path_buf(),
        }
    }

    /// Add one data row.
    pub fn row(&mut self, values: &[String]) {
        assert_eq!(values.len(), self.columns.len(), "column count mismatch");
        self.rows.push(values.to_vec());
    }

    /// Convenience: format mixed values.
    pub fn rowf(&mut self, values: &[&dyn std::fmt::Display]) {
        let vals: Vec<String> = values.iter().map(|v| format!("{v}")).collect();
        self.row(&vals);
    }

    /// Print the table and write `<out_dir>/<figure>.csv`.
    pub fn finish(self) -> std::io::Result<PathBuf> {
        // Column widths.
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for r in &self.rows {
            for (i, v) in r.iter().enumerate() {
                widths[i] = widths[i].max(v.len());
            }
        }
        let mut table = String::new();
        let _ = writeln!(table, "\n== {} — {}", self.figure, self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
            .collect();
        let _ = writeln!(table, "  {}", header.join("  "));
        for r in &self.rows {
            let line: Vec<String> = r
                .iter()
                .enumerate()
                .map(|(i, v)| format!("{v:>w$}", w = widths[i]))
                .collect();
            let _ = writeln!(table, "  {}", line.join("  "));
        }
        print!("{table}");

        std::fs::create_dir_all(&self.out_dir)?;
        let path = self.out_dir.join(format!("{}.csv", self.figure));
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "{}", self.columns.join(","))?;
        for r in &self.rows {
            writeln!(f, "{}", r.join(","))?;
        }
        println!("  -> {}", path.display());
        Ok(path)
    }
}

/// Format seconds with sensible precision.
pub fn secs(s: f64) -> String {
    if s >= 10.0 {
        format!("{s:.1}")
    } else if s >= 0.1 {
        format!("{s:.2}")
    } else {
        format!("{s:.4}")
    }
}
