//! Seeded violation for the `cast` arm (this file is configured as an
//! offset-arithmetic module): an unexplained narrowing `as` cast.

pub fn narrow(x: usize) -> u16 {
    x as u16
}

pub fn widen(x: u16) -> u64 {
    x as u64
}

pub fn explained(x: usize) -> u32 {
    // CAST: x is a block-local offset < 2^16 by construction.
    x as u32
}
