//! Budget enforcement, spilling and update handling across the public
//! API (paper §4.2 maintenance, §4.3 cache sizing, §4.5 updates).

use std::path::PathBuf;

use nodb_common::{ByteSize, Schema, TempDir, Value};
use nodb_core::{AccessMode, NoDb, NoDbConfig};
use nodb_csv::{CsvOptions, MicroGen};

fn micro(rows: usize, cols: usize) -> (TempDir, PathBuf, Schema) {
    let td = TempDir::new("nodb-aux").unwrap();
    let p = td.file("t.csv");
    let spec = MicroGen::default().rows(rows).cols(cols).seed(17);
    spec.write_to(&p).unwrap();
    let schema = spec.schema();
    (td, p, schema)
}

fn engine(cfg: NoDbConfig, p: &std::path::Path, s: &Schema) -> NoDb {
    let mut db = NoDb::new(cfg).unwrap();
    db.register_csv("t", p, s.clone(), CsvOptions::default(), AccessMode::InSitu)
        .unwrap();
    db
}

#[test]
fn posmap_budget_holds_under_shifting_workload() {
    let (_td, p, s) = micro(4000, 40);
    let mut cfg = NoDbConfig::pm_only();
    cfg.posmap_budget = Some(ByteSize::kb(48));
    cfg.posmap_block_rows = 1024;
    let db = engine(cfg, &p, &s);
    for c in (0..40).step_by(3) {
        db.query(&format!("select c{c} from t")).unwrap();
        let info = db.aux_info("t").unwrap();
        assert!(
            info.posmap_bytes <= 48_000,
            "map budget violated at column {c}: {}",
            info.posmap_bytes
        );
    }
    // Queries remain correct under eviction pressure.
    let r = db
        .query("select count(*) from t where c0 < 500000000")
        .unwrap();
    let n = r.rows[0].get(0).as_i64().unwrap();
    assert!((1000..3000).contains(&n), "plausible selectivity: {n}");
}

#[test]
fn posmap_spill_to_disk_restores_evicted_chunks() {
    let (_td, p, s) = micro(4000, 30);
    let spill = TempDir::new("nodb-spill").unwrap();
    let mut cfg = NoDbConfig::pm_only();
    cfg.posmap_budget = Some(ByteSize::kb(24));
    cfg.posmap_block_rows = 1024;
    cfg.posmap_spill_dir = Some(spill.path().to_path_buf());
    let db = engine(cfg, &p, &s);
    // Touch enough attribute groups to force spilling.
    for c in (0..30).step_by(2) {
        db.query(&format!("select c{c} from t")).unwrap();
    }
    let spilled = std::fs::read_dir(spill.path()).unwrap().count();
    assert!(spilled > 0, "budget pressure must spill chunks to disk");
    // Revisit the first attribute: the spilled chunk is reloaded and the
    // query still answers correctly (no re-tokenization *error* path).
    let r = db.query("select count(*) from t where c0 >= 0").unwrap();
    assert_eq!(r.rows[0].get(0), &Value::Int64(4000));
}

#[test]
fn cache_budget_evicts_but_never_corrupts() {
    let (_td, p, s) = micro(3000, 24);
    let mut cfg = NoDbConfig::postgres_raw();
    cfg.cache_budget = Some(ByteSize::kb(40));
    let db = engine(cfg.clone(), &p, &s);
    let reference = {
        let mut db2 = NoDb::new(NoDbConfig::baseline()).unwrap();
        db2.register_csv(
            "t",
            &p,
            s.clone(),
            CsvOptions::default(),
            AccessMode::ExternalFiles,
        )
        .unwrap();
        db2
    };
    for round in 0..3 {
        for c in (0..24).step_by(5) {
            let sql = format!("select sum(c{c}) from t");
            let a = db.query(&sql).unwrap().rows;
            let b = reference.query(&sql).unwrap().rows;
            assert_eq!(a, b, "round {round}, column {c}");
            assert!(db.aux_info("t").unwrap().cache_bytes <= 40_000);
        }
    }
}

#[test]
fn append_extends_all_structures_without_invalidation() {
    let td = TempDir::new("nodb-aux").unwrap();
    let p = td.file("t.csv");
    let spec = MicroGen::default().rows(1000).cols(6).seed(2);
    spec.write_to(&p).unwrap();
    let s = spec.schema();
    let db = engine(NoDbConfig::postgres_raw(), &p, &s);

    db.query("select c0, c3 from t").unwrap();
    let m_before = db.metrics("t").unwrap();
    let ptr_before = db.aux_info("t").unwrap().posmap_pointers;

    spec.append_to(&p, 500).unwrap();
    let r = db.query("select count(*) from t").unwrap();
    assert_eq!(r.rows[0].get(0), &Value::Int64(1500));

    // Only the appended region was tokenized.
    let m_after = db.metrics("t").unwrap();
    let new_bytes = m_after.bytes_tokenized - m_before.bytes_tokenized;
    let file_len = std::fs::metadata(&p).unwrap().len();
    assert!(
        new_bytes < file_len / 2,
        "append must not re-tokenize the old region: {new_bytes} of {file_len}"
    );
    // The map grew to cover the appended rows.
    db.query("select c0, c3 from t").unwrap();
    let ptr_after = db.aux_info("t").unwrap().posmap_pointers;
    assert!(ptr_after > ptr_before);
}

#[test]
fn shrunken_file_invalidates_and_recovers() {
    let td = TempDir::new("nodb-aux").unwrap();
    let p = td.file("t.csv");
    std::fs::write(&p, "1,100\n2,200\n3,300\n4,400\n").unwrap();
    let s = Schema::parse("a int, b int").unwrap();
    let db = engine(NoDbConfig::postgres_raw(), &p, &s);
    assert_eq!(
        db.query("select count(*) from t").unwrap().rows[0].get(0),
        &Value::Int64(4)
    );
    std::fs::write(&p, "9,900\n8,800\n").unwrap();
    assert_eq!(
        db.query("select count(*) from t").unwrap().rows[0].get(0),
        &Value::Int64(2)
    );
    let r = db.query("select b from t where a = 9").unwrap();
    assert_eq!(r.rows[0].get(0), &Value::Int32(900));
}

#[test]
fn fits_provider_plugs_into_the_engine() {
    use nodb_fits::{FitsProvider, FitsTableWriter, FitsType};

    let td = TempDir::new("nodb-fits-it").unwrap();
    let path = td.file("sky.fits");
    let mut w = FitsTableWriter::create(
        &path,
        vec![
            ("objid".into(), FitsType::J),
            ("ra".into(), FitsType::D),
            ("dec".into(), FitsType::D),
            ("mag".into(), FitsType::D),
        ],
    )
    .unwrap();
    for i in 0..5000 {
        w.write_row(&nodb_common::Row(vec![
            Value::Int32(i),
            Value::Float64(i as f64 * 0.072),
            Value::Float64(-30.0 + (i % 120) as f64),
            Value::Float64(12.0 + (i % 90) as f64 / 10.0),
        ]))
        .unwrap();
    }
    w.finish().unwrap();

    let provider = FitsProvider::open(&path, None, true).unwrap();
    let schema = provider.table().schema().unwrap();
    let mut db = NoDb::new(NoDbConfig::postgres_raw()).unwrap();
    db.register_provider("sky", schema, Box::new(provider))
        .unwrap();

    let r = db
        .query("select min(mag), max(mag), avg(mag) from sky where dec > 0")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    let min = r.rows[0].get(0).as_f64().unwrap();
    let max = r.rows[0].get(1).as_f64().unwrap();
    let avg = r.rows[0].get(2).as_f64().unwrap();
    assert!(min >= 12.0 && max <= 21.0 && avg > min && avg < max);

    // SQL over FITS vs the procedural baseline.
    let mut proc = nodb_fits::ProceduralFits::open(&path).unwrap();
    let pmax = proc
        .aggregate("mag", nodb_fits::procedural::ProcAgg::Max)
        .unwrap();
    let smax = db.query("select max(mag) from sky").unwrap().rows[0]
        .get(0)
        .as_f64()
        .unwrap();
    assert_eq!(pmax, smax);
}
