//! Column-major row batches for vectorized execution.
//!
//! The Volcano row-at-a-time pull ("each tuple is then passed one-by-one
//! through the operators", §3) pays a virtual call and a `Vec` allocation
//! per tuple. A [`ValueBatch`] amortizes both: operators exchange up to
//! [`DEFAULT_BATCH_ROWS`] rows at a time, stored column-major so
//! predicate evaluation, projection, and aggregation run tight per-column
//! loops (see `eval::eval_batch`).
//!
//! Batches carry exactly the same [`Value`]s the row path would produce —
//! the batch pull path is required to be bit-identical to `next_row`, and
//! `tests/batch_equivalence.rs` holds it to that.

use nodb_common::{Row, Value};

/// Default number of rows per batch (the `NoDbConfig::batch_rows`
/// default; 0 there selects the row-at-a-time path).
pub const DEFAULT_BATCH_ROWS: usize = 1024;

/// A column-major batch of rows.
///
/// All columns have length [`num_rows`](ValueBatch::num_rows); a batch
/// may have zero columns and still carry a row count (a `COUNT(*)` scan
/// projects no columns).
#[derive(Debug, Clone, PartialEq)]
pub struct ValueBatch {
    cols: Vec<Vec<Value>>,
    rows: usize,
}

impl ValueBatch {
    /// An empty batch of `n_cols` columns with room for `cap` rows each.
    pub fn with_capacity(n_cols: usize, cap: usize) -> ValueBatch {
        ValueBatch {
            cols: (0..n_cols).map(|_| Vec::with_capacity(cap)).collect(),
            rows: 0,
        }
    }

    /// Build from pre-filled columns (all of length `rows`).
    pub fn from_cols(cols: Vec<Vec<Value>>, rows: usize) -> ValueBatch {
        debug_assert!(cols.iter().all(|c| c.len() == rows));
        ValueBatch { cols, rows }
    }

    /// Transpose a row-major vector (all rows the same width).
    pub fn from_rows(rows: Vec<Row>) -> ValueBatch {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, Row::len);
        let mut cols: Vec<Vec<Value>> = (0..n_cols).map(|_| Vec::with_capacity(n_rows)).collect();
        for row in rows {
            debug_assert_eq!(row.len(), n_cols);
            for (col, v) in cols.iter_mut().zip(row.0) {
                col.push(v);
            }
        }
        ValueBatch { cols, rows: n_rows }
    }

    /// Number of rows in the batch.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns in the batch.
    pub fn num_cols(&self) -> usize {
        self.cols.len()
    }

    /// No rows?
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The values of column `i` (panics if out of range, like `Row::get`).
    pub fn col(&self, i: usize) -> &[Value] {
        &self.cols[i]
    }

    /// Append one row by moving its values in.
    pub fn push_row(&mut self, row: Row) {
        debug_assert_eq!(row.len(), self.cols.len());
        for (col, v) in self.cols.iter_mut().zip(row.0) {
            col.push(v);
        }
        self.rows += 1;
    }

    /// Append one row by cloning a value slice (scan emission reuses its
    /// row buffer across rows).
    pub fn push_row_cloned(&mut self, vals: &[Value]) {
        debug_assert_eq!(vals.len(), self.cols.len());
        for (col, v) in self.cols.iter_mut().zip(vals) {
            col.push(v.clone());
        }
        self.rows += 1;
    }

    /// The values of row `r`, cloned (scalar-eval fallbacks).
    pub fn row_values(&self, r: usize) -> Vec<Value> {
        self.cols.iter().map(|c| c[r].clone()).collect()
    }

    /// Transpose back to rows, moving the values out.
    pub fn into_rows(self) -> Vec<Row> {
        let mut rows: Vec<Row> = (0..self.rows)
            .map(|_| Row::with_capacity(self.cols.len()))
            .collect();
        for col in self.cols {
            for (row, v) in rows.iter_mut().zip(col) {
                row.push(v);
            }
        }
        rows
    }

    /// Keep only the rows where `keep` is true (`kept` = number of
    /// trues, precounted by the caller to size the output exactly).
    pub fn retain_rows(self, keep: &[bool], kept: usize) -> ValueBatch {
        debug_assert_eq!(keep.len(), self.rows);
        let cols = self
            .cols
            .into_iter()
            .map(|col| {
                let mut out = Vec::with_capacity(kept);
                for (v, &k) in col.into_iter().zip(keep) {
                    if k {
                        out.push(v);
                    }
                }
                out
            })
            .collect();
        ValueBatch { cols, rows: kept }
    }

    /// Drop all rows past the first `n` (no-op when `n >= num_rows`).
    pub fn truncate(&mut self, n: usize) {
        if n < self.rows {
            for col in &mut self.cols {
                col.truncate(n);
            }
            self.rows = n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> ValueBatch {
        ValueBatch::from_rows(vec![
            Row(vec![Value::Int64(1), Value::Text("a".into())]),
            Row(vec![Value::Int64(2), Value::Text("b".into())]),
            Row(vec![Value::Int64(3), Value::Text("c".into())]),
        ])
    }

    #[test]
    fn round_trips_rows() {
        let b = batch();
        assert_eq!(b.num_rows(), 3);
        assert_eq!(b.num_cols(), 2);
        assert_eq!(b.col(0)[1], Value::Int64(2));
        let rows = b.into_rows();
        assert_eq!(rows[2], Row(vec![Value::Int64(3), Value::Text("c".into())]));
    }

    #[test]
    fn zero_column_batches_carry_row_counts() {
        let b = ValueBatch::from_rows(vec![Row::new(), Row::new()]);
        assert_eq!(b.num_rows(), 2);
        assert_eq!(b.num_cols(), 0);
        assert_eq!(b.into_rows(), vec![Row::new(), Row::new()]);
    }

    #[test]
    fn retain_and_truncate() {
        let b = batch().retain_rows(&[true, false, true], 2);
        assert_eq!(b.num_rows(), 2);
        assert_eq!(b.col(0), &[Value::Int64(1), Value::Int64(3)]);
        let mut b = batch();
        b.truncate(1);
        assert_eq!(b.num_rows(), 1);
        assert_eq!(b.col(1), &[Value::Text("a".into())]);
    }

    #[test]
    fn push_row_variants_agree() {
        let mut a = ValueBatch::with_capacity(1, 2);
        a.push_row(Row(vec![Value::Int64(7)]));
        a.push_row_cloned(&[Value::Int64(8)]);
        assert_eq!(a.num_rows(), 2);
        assert_eq!(a.col(0), &[Value::Int64(7), Value::Int64(8)]);
        assert_eq!(a.row_values(1), vec![Value::Int64(8)]);
    }
}
