//! Lint configuration: which files each lint arm covers, the lock DAG,
//! the designated counter modules, and where the committed allowlists
//! live.
//!
//! The configuration is plain data so the fixture tests can point the
//! same lint engine at a seeded violation corpus; [`Config::for_workspace`]
//! is the committed policy for the real tree.

use std::path::{Path, PathBuf};

/// Full lint policy for one tree.
#[derive(Debug, Clone)]
pub struct Config {
    /// Tree root (workspace root for the real run).
    pub root: PathBuf,
    /// Subdirectories of `root` to scan for `.rs` files.
    pub subdirs: Vec<String>,
    /// Committed unsafe audit file, relative to `root`.
    pub audit_path: PathBuf,
    /// Committed waiver file, relative to `root` (optional: a tree with
    /// no waivers needs no file).
    pub waivers_path: PathBuf,
    /// Hot-path modules (relative paths) where the panic lint forbids
    /// `unwrap`/`expect`/`panic!`/literal-index outside `#[cfg(test)]`.
    pub hot_files: Vec<String>,
    /// Files whose `Ordering::Relaxed` sites are designated counters and
    /// need no per-site justification, with the designation's reason.
    pub atomic_designated: Vec<(String, String)>,
    /// Files covered by the lossy-`as`-cast arm.
    pub cast_files: Vec<String>,
    /// Path prefixes covered by the lock-order arm.
    pub lock_prefixes: Vec<String>,
    /// Lock acquisition DAG, outermost first: a lock may only be
    /// acquired while holding locks that appear *earlier* in this list.
    pub lock_dag: Vec<String>,
    /// The set of valid `NODB_*` environment variables (the live knob
    /// registry for the real tree).
    pub knob_envs: Vec<String>,
    /// `(env, flag)` pairs the README must mention.
    pub knob_docs: Vec<(String, String)>,
    /// README path relative to `root` (checked by the knob arm when the
    /// file exists).
    pub readme: PathBuf,
}

impl Config {
    /// The committed policy for the NoDB workspace rooted at `root`.
    pub fn for_workspace(root: &Path) -> Config {
        let knobs = nodb_common::knob::all();
        Config {
            root: root.to_path_buf(),
            subdirs: ["crates", "src", "tools", "shims", "tests", "examples"]
                .map(String::from)
                .to_vec(),
            audit_path: PathBuf::from("analyze/unsafe_audit.toml"),
            waivers_path: PathBuf::from("analyze/waivers.toml"),
            hot_files: [
                // The in-situ scan pump and its pushed-down predicate
                // evaluator: a malformed record must surface as a typed,
                // located NoDbError, never panic a server worker.
                "crates/core/src/scan.rs",
                "crates/core/src/pred.rs",
                // The per-record tokenizers both formats run per line.
                "crates/csv/src/tokenize.rs",
                "crates/json/src/tokenize.rs",
                // The vectorized batch path of the executor.
                "crates/exec/src/batch.rs",
            ]
            .map(String::from)
            .to_vec(),
            atomic_designated: vec![
                (
                    "crates/core/src/runtime.rs".into(),
                    "ScanMetricsAtomic: monotonic work counters, read only by \
                     snapshot() observers; no ordering with other memory"
                        .into(),
                ),
                (
                    "crates/core/src/profile.rs".into(),
                    "PhaseProfileAtomic: cumulative phase timers/byte counters, \
                     same single-location counter shape as ScanMetricsAtomic"
                        .into(),
                ),
                (
                    "crates/server/src/server.rs".into(),
                    "ServerStats: connection/query tallies surfaced over the \
                     stats frame; approximate cross-counter consistency is fine"
                        .into(),
                ),
                (
                    "crates/posmap/src/map.rs".into(),
                    "LRU recency stamps: monotonically increasing hints for \
                     eviction ranking; staleness only costs eviction quality"
                        .into(),
                ),
                (
                    "crates/cache/src/store.rs".into(),
                    "cache recency stamps and hit counters: eviction-ranking \
                     hints and observability tallies, never synchronization"
                        .into(),
                ),
            ],
            cast_files: [
                "crates/server/src/protocol.rs",
                "crates/posmap/src/chunk.rs",
                "crates/posmap/src/eol.rs",
                "crates/posmap/src/map.rs",
            ]
            .map(String::from)
            .to_vec(),
            lock_prefixes: vec!["crates/core/src/".into()],
            lock_dag: ["file_len_seen", "posmap", "cache", "stats"]
                .map(String::from)
                .to_vec(),
            knob_envs: knobs.iter().map(|k| k.env.to_string()).collect(),
            knob_docs: knobs
                .iter()
                .map(|k| (k.env.to_string(), k.flag.to_string()))
                .collect(),
            readme: PathBuf::from("README.md"),
        }
    }

    /// A bare-bones policy for a fixture tree: no designated files, no
    /// README check, a caller-supplied knob registry, and every lint arm
    /// pointed at the fixture's own files.
    pub fn for_fixture(root: &Path) -> Config {
        Config {
            root: root.to_path_buf(),
            subdirs: vec!["src".into()],
            audit_path: PathBuf::from("unsafe_audit.toml"),
            waivers_path: PathBuf::from("waivers.toml"),
            hot_files: Vec::new(),
            atomic_designated: Vec::new(),
            cast_files: Vec::new(),
            lock_prefixes: vec!["src/".into()],
            lock_dag: ["file_len_seen", "posmap", "cache", "stats"]
                .map(String::from)
                .to_vec(),
            knob_envs: Vec::new(),
            knob_docs: Vec::new(),
            readme: PathBuf::from("README.md"),
        }
    }
}
