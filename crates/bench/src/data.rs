//! Shared data-file management: generated inputs are cached on disk and
//! reused across figures (keyed by their generation parameters).

use std::path::{Path, PathBuf};

use nodb_common::{Result, Row, Schema, Value};
use nodb_csv::MicroGen;
use nodb_fits::{FitsTableWriter, FitsType};
use nodb_tpch::TpchGen;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Where generated inputs live (removed by `cargo clean` via target/, or
/// manually).
pub fn data_dir() -> PathBuf {
    let base = std::env::var_os("NODB_BENCH_DATA")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/nodb-bench-data"));
    std::fs::create_dir_all(&base).expect("create bench data dir");
    base
}

/// Generate (or reuse) the micro-benchmark file.
pub fn micro_file(rows: usize, cols: usize, pad: Option<usize>) -> Result<(PathBuf, Schema)> {
    let name = match pad {
        Some(w) => format!("micro-{rows}x{cols}-w{w}.csv"),
        None => format!("micro-{rows}x{cols}.csv"),
    };
    let path = data_dir().join(name);
    let mut spec = MicroGen::default().rows(rows).cols(cols).seed(0xbead);
    if let Some(w) = pad {
        spec = spec.pad_width(w);
    }
    if !path.exists() {
        spec.write_to(&path)?;
    }
    Ok((path, spec.schema()))
}

/// Generate (or reuse) a TPC-H directory at `sf`.
pub fn tpch_dir(sf: f64) -> Result<PathBuf> {
    let dir = data_dir().join(format!("tpch-{sf}"));
    let marker = dir.join(".complete");
    if !marker.exists() {
        TpchGen::new(sf, 0xcafe).generate_all(&dir)?;
        std::fs::write(&marker, b"ok")?;
    }
    Ok(dir)
}

/// Generate (or reuse) the FITS table: 10 float columns (the paper's
/// workload aggregates float columns), plus an id.
pub fn fits_file(rows: usize) -> Result<PathBuf> {
    let path = data_dir().join(format!("sky-{rows}.fits"));
    if path.exists() {
        return Ok(path);
    }
    let mut cols: Vec<(String, FitsType)> = vec![("objid".into(), FitsType::K)];
    for i in 0..10 {
        cols.push((format!("f{i}"), FitsType::D));
    }
    let mut w = FitsTableWriter::create(&path, cols)?;
    let mut rng = StdRng::seed_from_u64(0xf175);
    for i in 0..rows {
        let mut vals = vec![Value::Int64(i as i64)];
        for _ in 0..10 {
            vals.push(Value::Float64(rng.gen_range(-1000.0..1000.0)));
        }
        w.write_row(&Row(vals))?;
    }
    w.finish()?;
    Ok(path)
}

/// Remove a cached input (used when an experiment mutates its file).
pub fn scratch_copy(src: &Path, tag: &str) -> Result<PathBuf> {
    let dst = data_dir().join(format!(
        "scratch-{tag}-{}",
        src.file_name().and_then(|s| s.to_str()).unwrap_or("file")
    ));
    std::fs::copy(src, &dst)?;
    Ok(dst)
}
