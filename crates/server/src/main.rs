//! `nodb-server` — serve in-situ SQL over raw files to many clients.
//!
//! ```text
//! $ nodb-server --listen 127.0.0.1:5433 \
//!       --register events ./events.csv "day date, user text, ms int"
//! nodb-server listening on 127.0.0.1:5433 (io backend: read)
//! ```
//!
//! One shared engine serves every connection, so the positional maps,
//! caches and statistics built by one client's queries speed up all the
//! others. Stop it with `shutdown` on stdin, end-of-input, or SIGTERM
//! via your process manager — all paths drain in-flight queries.

use std::io::BufRead;
use std::path::Path;
use std::sync::Arc;

use nodb_common::{knob, Schema};
use nodb_core::{AccessMode, NoDb, NoDbConfig};
use nodb_csv::CsvOptions;
use nodb_server::{NodbServer, ServerConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = NoDbConfig::postgres_raw();
    let mut server_config = ServerConfig::default();
    let mut listen: Option<String> = None;
    let mut unix: Option<String> = None;
    // (name, path, schema) triples from repeated --register flags.
    let mut tables: Vec<(String, String, String)> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                print_help();
                return;
            }
            "--listen" => {
                i += 1;
                listen = Some(require(&args, i, "--listen needs host:port"));
            }
            "--unix" => {
                i += 1;
                unix = Some(require(&args, i, "--unix needs a socket path"));
            }
            "--max-inflight" => {
                i += 1;
                server_config.max_inflight = require(&args, i, "--max-inflight needs a count")
                    .parse()
                    .unwrap_or_else(|_| die("--max-inflight needs a count"));
            }
            "--max-connections" => {
                i += 1;
                server_config.max_connections =
                    require(&args, i, "--max-connections needs a count")
                        .parse()
                        .unwrap_or_else(|_| die("--max-connections needs a count"));
            }
            "--register" => {
                let name = require(&args, i + 1, "--register needs NAME PATH SCHEMA");
                let path = require(&args, i + 2, "--register needs NAME PATH SCHEMA");
                let schema = require(&args, i + 3, "--register needs NAME PATH SCHEMA");
                tables.push((name, path, schema));
                i += 3;
            }
            // Engine knobs come from the shared registry
            // (`nodb_common::knob`): one parser for the flag and its
            // environment variable, loud errors for typos in either.
            flag => match knob::find_flag(flag) {
                Some(k) => {
                    i += 1;
                    let raw = require(&args, i, "flag needs a value");
                    if let Err(e) = config.set_knob(k.name, &raw) {
                        die(&e.to_string());
                    }
                }
                None => {
                    eprintln!("{} (see --help)", knob::unknown_flag_error(flag));
                    std::process::exit(2);
                }
            },
        }
        i += 1;
    }

    if listen.is_some() == unix.is_some() {
        die("exactly one of --listen host:port or --unix PATH is required");
    }

    let io = config.effective_io_backend();
    let mut db = match NoDb::new(config) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("failed to start engine: {e}");
            std::process::exit(1);
        }
    };
    for (name, path, schema) in &tables {
        if let Err(e) = register(&mut db, name, path, schema) {
            eprintln!("failed to register `{name}`: {e}");
            std::process::exit(1);
        }
        println!("registered `{name}` -> {path}");
    }
    let db = Arc::new(db);

    let server = match &listen {
        Some(addr) => NodbServer::bind_tcp(Arc::clone(&db), addr.as_str(), server_config),
        None => NodbServer::bind_unix(
            Arc::clone(&db),
            unix.as_deref().expect("validated above"),
            server_config,
        ),
    };
    let server = match server {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to bind: {e}");
            std::process::exit(1);
        }
    };

    let where_ = match (&listen, &unix) {
        (Some(_), _) => server
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_default(),
        (None, Some(p)) => format!("unix:{p}"),
        _ => unreachable!(),
    };
    println!("nodb-server listening on {where_} (io backend: {io})");

    let handle = server.handle();
    let serving = std::thread::spawn(move || server.serve());

    // Block on stdin: `shutdown` (or EOF) begins the graceful drain.
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if l.trim() == "shutdown" => break,
            Ok(l) if l.trim() == "stats" => {
                let s = handle.stats();
                println!(
                    "connections: {} served, {} rejected; queries: {} run, {} busy, {} failed",
                    s.connections_served,
                    s.connections_rejected,
                    s.queries_executed,
                    s.queries_rejected,
                    s.queries_failed
                );
            }
            Ok(_) => println!("commands: stats, shutdown (or EOF)"),
            Err(_) => break,
        }
    }

    handle.shutdown();
    match serving.join() {
        Ok(Ok(stats)) => {
            println!(
                "drained; served {} connection(s), {} query(ies)",
                stats.connections_served, stats.queries_executed
            );
        }
        Ok(Err(e)) => {
            eprintln!("server error: {e}");
            std::process::exit(1);
        }
        Err(_) => {
            eprintln!("server thread panicked");
            std::process::exit(1);
        }
    }
}

fn register(
    db: &mut NoDb,
    name: &str,
    path: &str,
    schema: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    let p = Path::new(path);
    let schema = Schema::parse(schema)?;
    if path.ends_with(".jsonl") || path.ends_with(".ndjson") {
        db.register_jsonl(name, p, schema, AccessMode::InSitu)?;
    } else {
        db.register_csv(name, p, schema, CsvOptions::default(), AccessMode::InSitu)?;
    }
    Ok(())
}

fn require(args: &[String], i: usize, msg: &str) -> String {
    args.get(i).cloned().unwrap_or_else(|| die(msg))
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn print_help() {
    println!(
        "nodb-server — concurrent in-situ SQL server over raw files

usage: nodb-server (--listen HOST:PORT | --unix PATH) [options]

options:
  --listen HOST:PORT        TCP listen address (port 0 = OS-assigned)
  --unix PATH               unix-domain socket path (instead of --listen)
  --register NAME PATH \"SCHEMA\"
                            serve a raw file as table NAME (repeatable);
                            format by extension: .jsonl/.ndjson, else CSV
  --max-inflight N          queries running concurrently before Busy (default 8)
  --max-connections N       open connections before Busy-at-accept (default 64)

engine knobs (flag wins over its environment variable):
{}
stdin commands while serving: stats, shutdown (EOF also shuts down)",
        NoDbConfig::knob_help()
    );
}
