//! File access paths for the in-situ scan.
//!
//! Two access patterns exist in PostgresRaw:
//!
//! * **Sequential tokenization** of every line — the first query on a file,
//!   or any region the positional map does not cover. [`LineReader`] serves
//!   this with a reused line buffer (one allocation amortized over the
//!   whole file).
//! * **Position-driven access** — the map knows where tuples/attributes
//!   live, and the scan touches only those byte ranges, in increasing file
//!   order. [`SlidingWindow`] serves monotonically-ordered range reads from
//!   a single buffered window so that the underlying I/O stays sequential.

use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom};
use std::path::Path;

use nodb_common::Result;

/// Default I/O buffer: large enough to make syscall overhead irrelevant,
/// small enough to stay cache-friendly.
pub const DEFAULT_BUF: usize = 1 << 20;

/// Sequential line reader with explicit byte offsets.
pub struct LineReader {
    inner: BufReader<File>,
    /// Byte offset of the *next* line to be returned.
    offset: u64,
}

impl LineReader {
    /// Open a file for sequential line reading.
    pub fn open(path: &Path) -> Result<LineReader> {
        Ok(LineReader {
            inner: BufReader::with_capacity(DEFAULT_BUF, File::open(path)?),
            offset: 0,
        })
    }

    /// Open and skip to `offset` (e.g. resume after a header or an append
    /// high-water mark). `offset` must be a line start.
    pub fn open_at(path: &Path, offset: u64) -> Result<LineReader> {
        let mut f = File::open(path)?;
        f.seek(SeekFrom::Start(offset))?;
        Ok(LineReader {
            inner: BufReader::with_capacity(DEFAULT_BUF, f),
            offset,
        })
    }

    /// Byte offset where the *next* line starts (equivalently: one past
    /// the end of the last line returned, including its newline bytes).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Read the next line into `buf` (cleared first; newline stripped).
    ///
    /// Returns the byte offset of the line start, or `None` at EOF.
    /// A final line without a trailing newline is returned normally.
    pub fn next_line(&mut self, buf: &mut Vec<u8>) -> Result<Option<u64>> {
        buf.clear();
        let start = self.offset;
        let n = read_until(&mut self.inner, b'\n', buf)?;
        if n == 0 {
            return Ok(None);
        }
        self.offset += n as u64;
        if buf.last() == Some(&b'\n') {
            buf.pop();
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
        }
        Ok(Some(start))
    }
}

fn read_until(r: &mut BufReader<File>, byte: u8, buf: &mut Vec<u8>) -> std::io::Result<usize> {
    use std::io::BufRead;
    r.read_until(byte, buf)
}

/// Buffered random access for byte ranges requested in non-decreasing
/// start order.
///
/// The positional map turns a scan into "jump to these positions"; ranges
/// arrive sorted because tuples are processed in file order, so a single
/// forward-moving window suffices and the disk never seeks backwards.
pub struct SlidingWindow {
    file: File,
    file_len: u64,
    buf: Vec<u8>,
    /// File offset of `buf[0]`.
    buf_start: u64,
    /// Valid bytes in `buf`.
    buf_len: usize,
    min_read: usize,
}

impl SlidingWindow {
    /// Open a file for windowed access.
    pub fn open(path: &Path) -> Result<SlidingWindow> {
        Self::with_capacity(path, DEFAULT_BUF)
    }

    /// Open with a specific minimum read size.
    pub fn with_capacity(path: &Path, min_read: usize) -> Result<SlidingWindow> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        Ok(SlidingWindow {
            file,
            file_len,
            buf: Vec::new(),
            buf_start: 0,
            buf_len: 0,
            min_read: min_read.max(4096),
        })
    }

    /// Total file length in bytes.
    pub fn len(&self) -> u64 {
        self.file_len
    }

    /// True when the file is empty.
    pub fn is_empty(&self) -> bool {
        self.file_len == 0
    }

    /// Bytes `[start, start + len)`, clamped to the file end.
    ///
    /// `start` must be ≥ the `start` of the previous call (monotonic
    /// access); violating this is a logic error that returns an internal
    /// error rather than corrupting the window.
    pub fn slice(&mut self, start: u64, len: usize) -> Result<&[u8]> {
        if start < self.buf_start {
            return Err(nodb_common::NoDbError::internal(format!(
                "SlidingWindow accessed backwards: {start} < {}",
                self.buf_start
            )));
        }
        let len = len.min((self.file_len.saturating_sub(start)) as usize);
        let end = start + len as u64;
        if end > self.buf_start + self.buf_len as u64 {
            self.refill(start, len)?;
        }
        let rel = (start - self.buf_start) as usize;
        Ok(&self.buf[rel..rel + len])
    }

    /// The rest of the line starting at `start`: bytes up to (not
    /// including) the next `\n`, or end of file.
    pub fn line_at(&mut self, start: u64) -> Result<&[u8]> {
        // Probe in growing windows until a newline is found.
        let mut probe = 256usize;
        loop {
            let max = (self.file_len - start) as usize;
            let want = probe.min(max);
            // Find newline inside the probed slice without holding the
            // borrow across the loop iteration.
            let pos = {
                let s = self.slice(start, want)?;
                s.iter().position(|&b| b == b'\n')
            };
            match pos {
                Some(p) => {
                    let mut end = p;
                    let s = self.slice(start, want)?;
                    if end > 0 && s[end - 1] == b'\r' {
                        end -= 1;
                    }
                    return self.slice(start, end);
                }
                None if want == max => return self.slice(start, max),
                None => probe *= 4,
            }
        }
    }

    fn refill(&mut self, start: u64, len: usize) -> Result<()> {
        let read_len = len.max(self.min_read);
        let read_len = read_len.min((self.file_len - start) as usize);
        // Keep any overlapping tail? Simpler: re-read from `start`.
        self.buf.resize(read_len, 0);
        self.file.seek(SeekFrom::Start(start))?;
        let mut done = 0;
        while done < read_len {
            let n = self.file.read(&mut self.buf[done..])?;
            if n == 0 {
                break;
            }
            done += n;
        }
        self.buf.truncate(done);
        self.buf_start = start;
        self.buf_len = done;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodb_common::TempDir;

    fn write_file(lines: &[&str]) -> (TempDir, std::path::PathBuf) {
        let td = TempDir::new("nodb-csv").unwrap();
        let p = td.file("data.csv");
        std::fs::write(&p, lines.join("\n")).unwrap();
        (td, p)
    }

    #[test]
    fn line_reader_tracks_offsets() {
        let (_td, p) = write_file(&["abc", "de", "", "fgh"]);
        let mut r = LineReader::open(&p).unwrap();
        let mut buf = Vec::new();
        let mut got = Vec::new();
        while let Some(off) = r.next_line(&mut buf).unwrap() {
            got.push((off, String::from_utf8(buf.clone()).unwrap()));
        }
        assert_eq!(
            got,
            vec![
                (0, "abc".to_string()),
                (4, "de".to_string()),
                (7, "".to_string()),
                (8, "fgh".to_string()),
            ]
        );
    }

    #[test]
    fn line_reader_handles_trailing_newline_and_crlf() {
        let td = TempDir::new("nodb-csv").unwrap();
        let p = td.file("d.csv");
        std::fs::write(&p, "a\r\nb\n").unwrap();
        let mut r = LineReader::open(&p).unwrap();
        let mut buf = Vec::new();
        assert_eq!(r.next_line(&mut buf).unwrap(), Some(0));
        assert_eq!(buf, b"a");
        assert_eq!(r.next_line(&mut buf).unwrap(), Some(3));
        assert_eq!(buf, b"b");
        assert_eq!(r.next_line(&mut buf).unwrap(), None);
    }

    #[test]
    fn open_at_resumes_mid_file() {
        let (_td, p) = write_file(&["abc", "de"]);
        let mut r = LineReader::open_at(&p, 4).unwrap();
        let mut buf = Vec::new();
        assert_eq!(r.next_line(&mut buf).unwrap(), Some(4));
        assert_eq!(buf, b"de");
    }

    #[test]
    fn sliding_window_serves_monotonic_ranges() {
        let (_td, p) = write_file(&["0123456789abcdefghij"]);
        let mut w = SlidingWindow::with_capacity(&p, 4096).unwrap();
        assert_eq!(w.slice(0, 3).unwrap(), b"012");
        assert_eq!(w.slice(2, 4).unwrap(), b"2345");
        assert_eq!(w.slice(10, 5).unwrap(), b"abcde");
        // Clamped at EOF.
        assert_eq!(w.slice(18, 10).unwrap(), b"ij");
        // Backwards access is rejected.
        assert!(w.slice(0, 1).is_err() || w.buf_start == 0);
    }

    #[test]
    fn sliding_window_small_buffer_refills() {
        let (_td, p) = write_file(&["0123456789abcdefghij"]);
        let mut w = SlidingWindow::with_capacity(&p, 1).unwrap();
        // min_read clamps to 4096 internally, so force tiny by direct len.
        assert_eq!(w.slice(0, 2).unwrap(), b"01");
        assert_eq!(w.slice(15, 5).unwrap(), b"fghij");
    }

    #[test]
    fn line_at_stops_at_newline() {
        let (_td, p) = write_file(&["first,line", "second"]);
        let mut w = SlidingWindow::open(&p).unwrap();
        assert_eq!(w.line_at(0).unwrap(), b"first,line");
        assert_eq!(w.line_at(11).unwrap(), b"second");
    }

    #[test]
    fn line_at_handles_crlf_and_long_lines() {
        let td = TempDir::new("nodb-csv").unwrap();
        let p = td.file("d.csv");
        let long = "x".repeat(5000);
        std::fs::write(&p, format!("{long}\r\ntail")).unwrap();
        let mut w = SlidingWindow::open(&p).unwrap();
        assert_eq!(w.line_at(0).unwrap().len(), 5000);
    }
}
