//! Recursive-descent parser for the supported SQL subset.

use nodb_common::{Date, NoDbError, Result, Value};

use crate::ast::*;
use crate::lexer::{lex, Token};

/// Parse one SELECT statement (a trailing `;` is allowed).
pub fn parse(sql: &str) -> Result<SelectStmt> {
    let tokens = lex(sql)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        next_param: 0,
        saw_dollar_param: false,
    };
    let stmt = p.select_stmt()?;
    p.accept(&Token::Semi);
    if !p.at_end() {
        return Err(NoDbError::sql(format!(
            "unexpected trailing tokens near {:?}",
            p.peek()
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Next index assigned to a `?` placeholder (they number themselves
    /// in order of appearance, statement-wide).
    next_param: usize,
    /// Whether an explicit `$N` placeholder has been seen (the two
    /// styles cannot be mixed — `?` numbering would become ambiguous).
    saw_dollar_param: bool,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn accept(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn accept_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token, ctx: &str) -> Result<()> {
        if self.accept(t) {
            Ok(())
        } else {
            Err(NoDbError::sql(format!(
                "expected {t:?} {ctx}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.accept_kw(kw) {
            Ok(())
        } else {
            Err(NoDbError::sql(format!(
                "expected `{kw}`, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_ident(&mut self, ctx: &str) -> Result<String> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(NoDbError::sql(format!(
                "expected identifier {ctx}, found {other:?}"
            ))),
        }
    }

    fn select_stmt(&mut self) -> Result<SelectStmt> {
        self.expect_kw("select")?;
        let distinct = self.accept_kw("distinct");
        let mut projections = Vec::new();
        loop {
            if self.accept(&Token::Star) {
                projections.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.accept_kw("as") {
                    Some(self.expect_ident("after AS")?)
                } else if let Some(Token::Ident(s)) = self.peek() {
                    // Bare alias, unless it's a clause keyword.
                    if matches!(
                        s.as_str(),
                        "from" | "where" | "group" | "having" | "order" | "limit"
                    ) {
                        None
                    } else {
                        let s = s.clone();
                        self.pos += 1;
                        Some(s)
                    }
                } else {
                    None
                };
                projections.push(SelectItem::Expr { expr, alias });
            }
            if !self.accept(&Token::Comma) {
                break;
            }
        }

        self.expect_kw("from")?;
        let mut from = Vec::new();
        let mut join_filter: Option<AstExpr> = None;
        from.push(self.table_ref()?);
        loop {
            if self.accept(&Token::Comma) {
                from.push(self.table_ref()?);
            } else if self.peek().is_some_and(|t| t.is_kw("join"))
                || (self.peek().is_some_and(|t| t.is_kw("inner"))
                    && self.peek2().is_some_and(|t| t.is_kw("join")))
            {
                self.accept_kw("inner");
                self.expect_kw("join")?;
                from.push(self.table_ref()?);
                if self.accept_kw("on") {
                    let on = self.expr()?;
                    join_filter = Some(AstExpr::and_opt(join_filter, on));
                }
            } else {
                break;
            }
        }

        let mut where_clause = if self.accept_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        if let Some(jf) = join_filter {
            where_clause = Some(AstExpr::and_opt(where_clause, jf));
        }

        let mut group_by = Vec::new();
        if self.accept_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.accept(&Token::Comma) {
                    break;
                }
            }
        }

        let having = if self.accept_kw("having") {
            Some(self.expr()?)
        } else {
            None
        };

        let mut order_by = Vec::new();
        if self.accept_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.accept_kw("desc") {
                    true
                } else {
                    self.accept_kw("asc");
                    false
                };
                order_by.push(OrderByItem { expr, desc });
                if !self.accept(&Token::Comma) {
                    break;
                }
            }
        }

        let limit = if self.accept_kw("limit") {
            match self.bump() {
                Some(Token::Int(n)) if n >= 0 => Some(n as u64),
                other => {
                    return Err(NoDbError::sql(format!(
                        "expected integer after LIMIT, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };

        Ok(SelectStmt {
            distinct,
            projections,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let name = self.expect_ident("as table name")?;
        let alias = if self.accept_kw("as") {
            Some(self.expect_ident("after AS")?)
        } else if let Some(Token::Ident(s)) = self.peek() {
            if matches!(
                s.as_str(),
                "where" | "group" | "having" | "order" | "limit" | "join" | "inner" | "on"
            ) {
                None
            } else {
                let s = s.clone();
                self.pos += 1;
                Some(s)
            }
        } else {
            None
        };
        Ok(TableRef { name, alias })
    }

    // --- expressions: or > and > not > predicate > additive > mult > unary

    fn expr(&mut self) -> Result<AstExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<AstExpr> {
        let mut left = self.and_expr()?;
        while self.accept_kw("or") {
            let right = self.and_expr()?;
            left = AstExpr::Binary {
                op: AstBinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<AstExpr> {
        let mut left = self.not_expr()?;
        while self.accept_kw("and") {
            let right = self.not_expr()?;
            left = AstExpr::Binary {
                op: AstBinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<AstExpr> {
        if self.accept_kw("not") {
            Ok(AstExpr::Not(Box::new(self.not_expr()?)))
        } else {
            self.predicate()
        }
    }

    fn predicate(&mut self) -> Result<AstExpr> {
        let left = self.additive()?;
        // Comparison operators.
        let op = match self.peek() {
            Some(Token::Eq) => Some(AstBinOp::Eq),
            Some(Token::NotEq) => Some(AstBinOp::NotEq),
            Some(Token::Lt) => Some(AstBinOp::Lt),
            Some(Token::LtEq) => Some(AstBinOp::LtEq),
            Some(Token::Gt) => Some(AstBinOp::Gt),
            Some(Token::GtEq) => Some(AstBinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            return Ok(AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            });
        }
        // [NOT] BETWEEN / IN / LIKE, IS [NOT] NULL.
        let negated = if self.peek().is_some_and(|t| t.is_kw("not"))
            && self
                .peek2()
                .is_some_and(|t| t.is_kw("between") || t.is_kw("in") || t.is_kw("like"))
        {
            self.pos += 1;
            true
        } else {
            false
        };
        if self.accept_kw("between") {
            let low = self.additive()?;
            self.expect_kw("and")?;
            let high = self.additive()?;
            return Ok(AstExpr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.accept_kw("in") {
            self.expect(&Token::LParen, "after IN")?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.accept(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen, "after IN list")?;
            return Ok(AstExpr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.accept_kw("like") {
            let pattern = self.additive()?;
            return Ok(AstExpr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if negated {
            return Err(NoDbError::sql("dangling NOT before predicate"));
        }
        if self.accept_kw("is") {
            let negated = self.accept_kw("not");
            self.expect_kw("null")?;
            return Ok(AstExpr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<AstExpr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => AstBinOp::Add,
                Some(Token::Minus) => AstBinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<AstExpr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => AstBinOp::Mul,
                Some(Token::Slash) => AstBinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<AstExpr> {
        if self.accept(&Token::Minus) {
            // Fold negative literals immediately.
            return match self.unary()? {
                AstExpr::Literal(Value::Int64(v)) => Ok(AstExpr::Literal(Value::Int64(-v))),
                AstExpr::Literal(Value::Float64(v)) => Ok(AstExpr::Literal(Value::Float64(-v))),
                e => Ok(AstExpr::Neg(Box::new(e))),
            };
        }
        if self.accept(&Token::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<AstExpr> {
        match self.peek().cloned() {
            Some(Token::Int(v)) => {
                self.pos += 1;
                Ok(AstExpr::Literal(Value::Int64(v)))
            }
            Some(Token::Float(v)) => {
                self.pos += 1;
                Ok(AstExpr::Literal(Value::Float64(v)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(AstExpr::Literal(Value::Text(s)))
            }
            Some(Token::Question) => {
                self.pos += 1;
                if self.saw_dollar_param {
                    return Err(NoDbError::sql(
                        "cannot mix `?` and `$N` parameter placeholders in one statement",
                    ));
                }
                let idx = self.next_param;
                self.next_param += 1;
                Ok(AstExpr::Param(idx))
            }
            Some(Token::Param(n)) => {
                self.pos += 1;
                if self.next_param > 0 {
                    return Err(NoDbError::sql(
                        "cannot mix `?` and `$N` parameter placeholders in one statement",
                    ));
                }
                self.saw_dollar_param = true;
                Ok(AstExpr::Param(n as usize - 1))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&Token::RParen, "to close parenthesis")?;
                Ok(e)
            }
            Some(Token::Ident(id)) => self.ident_expr(id),
            other => Err(NoDbError::sql(format!(
                "unexpected token in expression: {other:?}"
            ))),
        }
    }

    fn ident_expr(&mut self, id: String) -> Result<AstExpr> {
        match id.as_str() {
            // Soft keyword: `date '…'`. A bare `date` identifier (no string
            // literal following) still parses as a column reference below.
            "date" if matches!(self.peek2(), Some(Token::Str(_))) => {
                self.pos += 1; // consume `date`
                match self.bump() {
                    Some(Token::Str(s)) => {
                        let d = Date::parse(&s)
                            .map_err(|e| NoDbError::sql(format!("in DATE literal: {e}")))?;
                        Ok(AstExpr::Literal(Value::Date(d)))
                    }
                    other => Err(NoDbError::sql(format!(
                        "expected string after DATE, found {other:?}"
                    ))),
                }
            }
            "interval" => {
                self.pos += 1;
                let n = match self.bump() {
                    Some(Token::Str(s)) => s
                        .trim()
                        .parse::<i64>()
                        .map_err(|_| NoDbError::sql(format!("bad INTERVAL count `{s}`")))?,
                    Some(Token::Int(v)) => v,
                    other => {
                        return Err(NoDbError::sql(format!(
                            "expected count after INTERVAL, found {other:?}"
                        )))
                    }
                };
                let unit_name = self.expect_ident("as interval unit")?;
                let unit = match unit_name.as_str() {
                    "day" | "days" => IntervalUnit::Day,
                    "month" | "months" => IntervalUnit::Month,
                    "year" | "years" => IntervalUnit::Year,
                    other => {
                        return Err(NoDbError::sql(format!("unknown interval unit `{other}`")))
                    }
                };
                Ok(AstExpr::Interval { n, unit })
            }
            "case" => {
                self.pos += 1;
                let mut branches = Vec::new();
                while self.accept_kw("when") {
                    let cond = self.expr()?;
                    self.expect_kw("then")?;
                    let res = self.expr()?;
                    branches.push((cond, res));
                }
                if branches.is_empty() {
                    return Err(NoDbError::sql("CASE requires at least one WHEN"));
                }
                let else_expr = if self.accept_kw("else") {
                    Some(Box::new(self.expr()?))
                } else {
                    None
                };
                self.expect_kw("end")?;
                Ok(AstExpr::Case {
                    branches,
                    else_expr,
                })
            }
            "exists" => {
                self.pos += 1;
                self.expect(&Token::LParen, "after EXISTS")?;
                let sub = self.select_stmt()?;
                self.expect(&Token::RParen, "to close EXISTS")?;
                Ok(AstExpr::Exists {
                    subquery: Box::new(sub),
                    negated: false,
                })
            }
            "count" | "sum" | "avg" | "min" | "max" if self.peek2() == Some(&Token::LParen) => {
                self.pos += 2; // func + LParen
                let func = match id.as_str() {
                    "count" => AggFuncAst::Count,
                    "sum" => AggFuncAst::Sum,
                    "avg" => AggFuncAst::Avg,
                    "min" => AggFuncAst::Min,
                    _ => AggFuncAst::Max,
                };
                let arg = if self.accept(&Token::Star) {
                    if func != AggFuncAst::Count {
                        return Err(NoDbError::sql("only COUNT accepts *"));
                    }
                    None
                } else {
                    Some(Box::new(self.expr()?))
                };
                self.expect(&Token::RParen, "to close aggregate")?;
                Ok(AstExpr::Agg { func, arg })
            }
            _ => {
                self.pos += 1;
                if self.accept(&Token::Dot) {
                    let col = self.expect_ident("after `.`")?;
                    Ok(AstExpr::Column {
                        table: Some(id),
                        name: col,
                    })
                } else {
                    Ok(AstExpr::Column {
                        table: None,
                        name: id,
                    })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_select() {
        let s = parse("select a, b from t where a < 5 limit 3;").unwrap();
        assert_eq!(s.projections.len(), 2);
        assert_eq!(s.from[0].name, "t");
        assert!(s.where_clause.is_some());
        assert_eq!(s.limit, Some(3));
    }

    #[test]
    fn parses_aliases_and_qualified_columns() {
        let s = parse("select t.a as x, b total from t1 t, t2 where t.a = t2.c").unwrap();
        match &s.projections[0] {
            SelectItem::Expr { expr, alias } => {
                assert_eq!(alias.as_deref(), Some("x"));
                assert_eq!(
                    expr,
                    &AstExpr::Column {
                        table: Some("t".into()),
                        name: "a".into()
                    }
                );
            }
            other => panic!("{other:?}"),
        }
        match &s.projections[1] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("total")),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.from[0].alias.as_deref(), Some("t"));
    }

    #[test]
    fn parses_date_and_interval_arithmetic() {
        let s = parse("select 1 from t where d <= date '1998-12-01' - interval '90' day").unwrap();
        let w = s.where_clause.unwrap();
        match w {
            AstExpr::Binary {
                op: AstBinOp::LtEq,
                right,
                ..
            } => match *right {
                AstExpr::Binary {
                    op: AstBinOp::Sub,
                    left,
                    right,
                } => {
                    assert!(matches!(*left, AstExpr::Literal(Value::Date(_))));
                    assert!(matches!(
                        *right,
                        AstExpr::Interval {
                            n: 90,
                            unit: IntervalUnit::Day
                        }
                    ));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_between_in_like_case() {
        let s = parse(
            "select sum(case when p like 'PROMO%' then x else 0 end) from t \
             where d between 0.05 and 0.07 and m in ('MAIL', 'SHIP') and q not like 'z%'",
        )
        .unwrap();
        assert!(s.where_clause.is_some());
        match &s.projections[0] {
            SelectItem::Expr { expr, .. } => assert!(expr.contains_agg()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_exists_subquery() {
        let s = parse(
            "select count(*) from orders where exists \
             (select * from lineitem where l_orderkey = o_orderkey)",
        )
        .unwrap();
        match s.where_clause.unwrap() {
            AstExpr::Exists { subquery, negated } => {
                assert!(!negated);
                assert_eq!(subquery.from[0].name, "lineitem");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn not_exists_via_not() {
        let s = parse("select 1 from t where not exists (select * from u)").unwrap();
        assert!(matches!(s.where_clause.unwrap(), AstExpr::Not(_)));
    }

    #[test]
    fn parses_group_order_desc() {
        let s = parse("select a, sum(b) rev from t group by a order by rev desc, a asc").unwrap();
        assert_eq!(s.group_by.len(), 1);
        assert!(s.order_by[0].desc);
        assert!(!s.order_by[1].desc);
    }

    #[test]
    fn parses_join_on_as_where_conjunct() {
        let s = parse("select 1 from a join b on a.x = b.y where a.z > 0").unwrap();
        assert_eq!(s.from.len(), 2);
        // ON clause folded into WHERE.
        match s.where_clause.unwrap() {
            AstExpr::Binary {
                op: AstBinOp::And, ..
            } => {}
            other => panic!("expected AND of where+on, got {other:?}"),
        }
    }

    #[test]
    fn negative_numbers_fold() {
        let s = parse("select -5, -2.5 from t").unwrap();
        match &s.projections[0] {
            SelectItem::Expr { expr, .. } => {
                assert_eq!(expr, &AstExpr::Literal(Value::Int64(-5)))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn operator_precedence_mul_before_add_before_cmp() {
        let s = parse("select 1 from t where a + b * 2 < 10").unwrap();
        match s.where_clause.unwrap() {
            AstExpr::Binary {
                op: AstBinOp::Lt,
                left,
                ..
            } => match *left {
                AstExpr::Binary {
                    op: AstBinOp::Add,
                    right,
                    ..
                } => assert!(matches!(
                    *right,
                    AstExpr::Binary {
                        op: AstBinOp::Mul,
                        ..
                    }
                )),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_sql() {
        assert!(parse("select from t").is_err());
        assert!(parse("select a t").is_err()); // missing FROM
        assert!(parse("select a from t where").is_err());
        assert!(parse("select sum(*) from t").is_err());
        assert!(parse("select a from t limit x").is_err());
        // `t extra` is a valid aliased table, but trailing tokens after a
        // complete statement are rejected.
        assert!(parse("select a from t limit 1 2").is_err());
    }

    #[test]
    fn parses_parameter_placeholders() {
        // `?` numbers itself in order of appearance.
        let s = parse("select a from t where b = ? and c < ?").unwrap();
        let mut used = std::collections::BTreeSet::new();
        s.collect_params(&mut used);
        assert_eq!(used.into_iter().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(s.param_count().unwrap(), 2);
        // `$N` is explicit and reusable.
        let s = parse("select a from t where b = $2 and c between $1 and $2").unwrap();
        assert_eq!(s.param_count().unwrap(), 2);
        // Gapped numbering is rejected at count time.
        let s = parse("select a from t where b = $3").unwrap();
        assert!(s.param_count().is_err());
        // The two styles cannot be mixed.
        assert!(parse("select a from t where b = ? and c = $1").is_err());
        assert!(parse("select a from t where b = $1 and c = ?").is_err());
        // Params inside EXISTS subqueries are statement-wide.
        let s =
            parse("select 1 from t where exists (select * from u where x = a and y = ?)").unwrap();
        assert_eq!(s.param_count().unwrap(), 1);
    }

    #[test]
    fn count_star_and_wildcard() {
        let s = parse("select * from t").unwrap();
        assert_eq!(s.projections[0], SelectItem::Wildcard);
        let s = parse("select count(*) from t").unwrap();
        match &s.projections[0] {
            SelectItem::Expr { expr, .. } => {
                assert!(matches!(
                    expr,
                    AstExpr::Agg {
                        func: AggFuncAst::Count,
                        arg: None
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
    }
}

#[cfg(test)]
mod fuzz {
    use proptest::prelude::*;

    proptest! {
        /// The parser must never panic — arbitrary garbage yields Err.
        #[test]
        fn parser_never_panics(input in "[ -~]{0,120}") {
            let _ = super::parse(&input);
        }

        /// SQL-shaped random input round-trips through the lexer/parser
        /// without panicking either.
        #[test]
        fn sqlish_never_panics(
            kw in prop_oneof![
                Just("select"), Just("from"), Just("where"), Just("group by"),
                Just("order by"), Just("and"), Just("or"), Just("between"),
                Just("case when"), Just("exists ("), Just("interval"),
                Just("date"), Just("sum("), Just("count(*)"),
            ],
            ident in "[a-z_][a-z0-9_]{0,8}",
            num in any::<i32>(),
            tail in "[ -~]{0,40}",
        ) {
            let _ = super::parse(&format!("select {ident} {kw} {num} {tail}"));
            let _ = super::parse(&format!("{kw} {ident} {num}"));
        }
    }
}

#[cfg(test)]
mod having_distinct {
    use super::*;

    #[test]
    fn parses_distinct_and_having() {
        let s = parse("select distinct a from t").unwrap();
        assert!(s.distinct);
        let s = parse("select a, count(*) from t group by a having count(*) > 2").unwrap();
        assert!(s.having.is_some());
        assert!(!s.distinct);
        // HAVING without GROUP BY parses (binder treats it as aggregate
        // context).
        assert!(parse("select count(*) from t having count(*) > 0").is_ok());
        // Qualified `t.distinct` parses as a column reference (DISTINCT
        // is a soft keyword, only special right after SELECT).
        assert!(parse("select t.distinct from t").is_ok());
    }
}
