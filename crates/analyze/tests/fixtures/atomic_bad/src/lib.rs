//! Seeded violation for the `atomic-ordering` arm: a `Relaxed` access
//! with no `// ORDERING:` justification anywhere in the function.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

pub fn justified(c: &AtomicU64) -> u64 {
    // ORDERING: observability snapshot; staleness is acceptable.
    c.load(Ordering::Relaxed)
}
