//! Panic-path lint: the hot-path modules (the scan pump, the pushed-down
//! predicate evaluator, both per-record tokenizers, the batch executor)
//! must never panic on malformed input — a panic there takes down a
//! server worker thread mid-query. Outside `#[cfg(test)]`, these files
//! may not use `.unwrap()`, `.expect(…)`, the panicking macros, or
//! fixed-offset slice indexing (`buf[0]` — a lexically provable
//! bounds-check-free pattern; computed indices derived from the
//! tokenizer's own bounds are out of lexical reach and stay allowed).

use crate::lexer::{in_spans, test_spans};
use crate::report::Finding;
use crate::scan_util::{line_text, tokens};
use crate::SourceFile;

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Run the panic-path arm over one hot-path file.
pub fn run(sf: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let toks = tokens(&sf.lexed.mask);
    let tests = test_spans(&sf.lexed.mask);
    for (i, t) in toks.iter().enumerate() {
        if in_spans(&tests, t.line) {
            continue;
        }
        let next = |k: usize| toks.get(i + k).map(|t| t.text);
        let prev = i.checked_sub(1).and_then(|k| toks.get(k)).map(|t| t.text);
        let mut hit: Option<String> = None;
        if t.text == "unwrap" && prev == Some(".") && next(1) == Some("(") && next(2) == Some(")") {
            hit = Some("`.unwrap()` — convert to a typed, located NoDbError".into());
        } else if t.text == "expect" && prev == Some(".") && next(1) == Some("(") {
            hit = Some("`.expect(…)` — convert to a typed, located NoDbError".into());
        } else if PANIC_MACROS.contains(&t.text) && next(1) == Some("!") {
            hit = Some(format!(
                "`{}!` — hot-path modules must return errors, not panic",
                t.text
            ));
        } else if t.text == "["
            && matches!(prev, Some(p) if p == ")" || p == "]"
                || p.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_'))
            && matches!(next(1), Some(n) if n.bytes().all(|b| b.is_ascii_digit()) && !n.is_empty())
            && next(2) == Some("]")
        {
            hit = Some(format!(
                "fixed-offset index `[{}]` can panic — use `.get({})` and \
                 surface a typed error",
                toks[i + 1].text,
                toks[i + 1].text
            ));
        }
        if let Some(msg) = hit {
            findings.push(Finding {
                lint: "panic-path",
                file: sf.rel.clone(),
                line: t.line,
                message: msg,
                waiver_key: Some(line_text(&sf.src, t.line)),
            });
        }
    }
    findings
}
