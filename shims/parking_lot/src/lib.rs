//! Minimal `parking_lot` API shim over `std::sync`.
//!
//! Provides `Mutex` and `RwLock` whose lock methods return guards
//! directly (no poisoning `Result`), which is the only part of the real
//! crate's API this workspace uses. Poisoning is handled by taking the
//! inner value from a poisoned lock — a panic while holding a lock does
//! not brick subsequent accesses, matching parking_lot semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with non-poisoning `lock()`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock with non-poisoning `read()`/`write()`.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}
