//! End-of-line index: tuple (line) start offsets.
//!
//! This is the minimal positional structure: with only line starts known, a
//! scan can jump to any tuple but must tokenize within the line. The
//! paper's cache-only variant ("PostgresRaw C") keeps exactly this — "an
//! additional minimal map maintaining positional information only for the
//! end of lines" (§5.1.2). The full positional map builds on top of it.

/// Index of line-start byte offsets, built incrementally in row order.
#[derive(Debug, Default)]
pub struct EolIndex {
    starts: Vec<u64>,
    /// Byte offset one past the last indexed line's end (i.e. where the
    /// next un-indexed line starts). Used to resume indexing and to detect
    /// appends.
    frontier: u64,
    /// Set when the end of file was reached, fixing the row count.
    complete: bool,
}

impl EolIndex {
    /// New empty index.
    pub fn new() -> EolIndex {
        EolIndex::default()
    }

    /// Number of rows whose start offset is known.
    pub fn indexed_rows(&self) -> u64 {
        self.starts.len() as u64
    }

    /// Whether the whole file has been indexed (row count is exact).
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Total row count, if known.
    pub fn row_count(&self) -> Option<u64> {
        self.complete.then_some(self.starts.len() as u64)
    }

    /// Offset where the next un-indexed line starts.
    pub fn frontier(&self) -> u64 {
        self.frontier
    }

    /// Record the start of row `row` and the offset one past its line end
    /// (start of the next line). Rows must be recorded in order, exactly
    /// once; out-of-order records are ignored (idempotent re-scans).
    pub fn record(&mut self, row: u64, start: u64, next_start: u64) {
        if row == self.starts.len() as u64 {
            self.starts.push(start);
            self.frontier = next_start;
        }
    }

    /// Record a contiguous segment of line starts built by a chunk
    /// worker: rows `[base_row, base_row + line_starts.len())`, with the
    /// segment's last line ending at byte `end` (the next line start /
    /// chunk end). Rows already recorded are skipped and a gap (a
    /// `base_row` beyond the indexed extent) is ignored, matching
    /// [`EolIndex::record`]'s in-order, exactly-once contract.
    pub fn absorb_segment(&mut self, base_row: u64, line_starts: &[u64], end: u64) {
        let have = self.starts.len() as u64;
        if base_row > have {
            return;
        }
        let skip = (have - base_row) as usize;
        if skip >= line_starts.len() {
            return;
        }
        self.starts.extend_from_slice(&line_starts[skip..]);
        self.frontier = end;
    }

    /// Set the resume offset of an *empty* index, so indexing starts past
    /// a prefix that holds no data rows (a header line). No-op once any
    /// row is recorded.
    pub fn set_base(&mut self, offset: u64) {
        if self.starts.is_empty() && !self.complete {
            self.frontier = offset;
        }
    }

    /// Mark the file as fully indexed.
    pub fn set_complete(&mut self) {
        self.complete = true;
    }

    /// Re-open the index for more rows (an append was detected, §4.5).
    pub fn reopen_for_append(&mut self) {
        self.complete = false;
    }

    /// Start offset of `row`, if indexed.
    pub fn start_of(&self, row: u64) -> Option<u64> {
        self.starts.get(row as usize).copied()
    }

    /// Start offsets for rows `[from, to)` as a slice, if fully indexed.
    pub fn starts(&self, from: u64, to: u64) -> Option<&[u64]> {
        let (from, to) = (from as usize, to as usize);
        if to <= self.starts.len() && from <= to {
            Some(&self.starts[from..to])
        } else {
            None
        }
    }

    /// Approximate memory footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.starts.len() * std::mem::size_of::<u64>()
    }

    /// Number of stored pointers.
    pub fn pointer_count(&self) -> u64 {
        self.starts.len() as u64
    }

    /// Forget everything (map dropped / file invalidated).
    pub fn clear(&mut self) {
        self.starts.clear();
        self.frontier = 0;
        self.complete = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_and_exposes_frontier() {
        let mut e = EolIndex::new();
        e.record(0, 0, 10);
        e.record(1, 10, 25);
        assert_eq!(e.indexed_rows(), 2);
        assert_eq!(e.frontier(), 25);
        assert_eq!(e.start_of(0), Some(0));
        assert_eq!(e.start_of(1), Some(10));
        assert_eq!(e.start_of(2), None);
    }

    #[test]
    fn out_of_order_records_are_ignored() {
        let mut e = EolIndex::new();
        e.record(0, 0, 10);
        e.record(0, 0, 10); // duplicate
        e.record(5, 99, 120); // gap
        assert_eq!(e.indexed_rows(), 1);
        assert_eq!(e.frontier(), 10);
    }

    #[test]
    fn completion_fixes_row_count() {
        let mut e = EolIndex::new();
        e.record(0, 0, 4);
        assert_eq!(e.row_count(), None);
        e.set_complete();
        assert_eq!(e.row_count(), Some(1));
        e.reopen_for_append();
        assert_eq!(e.row_count(), None);
    }

    #[test]
    fn range_slice() {
        let mut e = EolIndex::new();
        for i in 0..5u64 {
            e.record(i, i * 10, (i + 1) * 10);
        }
        assert_eq!(e.starts(1, 3), Some(&[10u64, 20][..]));
        assert_eq!(e.starts(4, 6), None);
    }

    #[test]
    fn absorb_segment_appends_and_skips_known_rows() {
        let mut e = EolIndex::new();
        e.record(0, 0, 10);
        e.record(1, 10, 25);
        // Overlapping segment: rows 0..4, only 2..4 are new.
        e.absorb_segment(0, &[0, 10, 25, 40], 55);
        assert_eq!(e.indexed_rows(), 4);
        assert_eq!(e.start_of(2), Some(25));
        assert_eq!(e.start_of(3), Some(40));
        assert_eq!(e.frontier(), 55);
        // Fully-known segment: no change.
        e.absorb_segment(0, &[0, 10], 25);
        assert_eq!(e.indexed_rows(), 4);
        assert_eq!(e.frontier(), 55);
        // Gapped segment: ignored.
        e.absorb_segment(9, &[99], 120);
        assert_eq!(e.indexed_rows(), 4);
    }

    #[test]
    fn set_base_only_moves_an_empty_index() {
        let mut e = EolIndex::new();
        e.set_base(12);
        assert_eq!(e.frontier(), 12);
        e.record(0, 12, 30);
        e.set_base(0);
        assert_eq!(e.frontier(), 30, "base is fixed once rows exist");
    }

    #[test]
    fn clear_resets() {
        let mut e = EolIndex::new();
        e.record(0, 0, 4);
        e.set_complete();
        e.clear();
        assert_eq!(e.indexed_rows(), 0);
        assert!(!e.is_complete());
        assert_eq!(e.bytes(), 0);
    }
}
