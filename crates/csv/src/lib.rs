//! CSV substrate for the NoDB reproduction.
//!
//! PostgresRaw's evaluation is built around character-delimited raw files
//! (§4: "CSV files are challenging for an in situ engine and a very common
//! data source"). This crate provides the low-level machinery the in-situ
//! scan operator is built on:
//!
//! * [`tokenize`] — field tokenization over raw bytes, including the
//!   paper's *selective tokenizing* (stop at the last attribute a query
//!   needs) and *incremental parsing* in both directions from a known
//!   position (§4.2, "Exploiting the Positional Map").
//! * [`lines`] — sequential line reading and a monotonic sliding-window
//!   reader for position-driven access.
//! * [`writer`] — a buffered CSV writer (used by loaders, tests and
//!   generators).
//! * [`generate`] — the micro-benchmark file generator (150 random-integer
//!   attributes, configurable width) used by Figures 3–8 and 13.
//!
//! Fields are taken verbatim between delimiters: no quoting or escaping is
//! interpreted, matching the flat scientific/log files the paper targets
//! (and dbgen's `.tbl` output). Generators guarantee the delimiter never
//! appears inside a field.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod format;
pub mod generate;
pub mod lines;
pub mod tokenize;
pub mod writer;

pub use format::CsvFormat;
pub use generate::MicroGen;
pub use lines::{split_line_aligned, split_line_aligned_src, ByteRange, LineReader, SlidingWindow};
pub use writer::CsvWriter;

/// Options describing the physical layout of a character-delimited file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsvOptions {
    /// Field delimiter (`,` for CSV, `|` for dbgen-style `.tbl`).
    pub delimiter: u8,
    /// Whether the first line is a header to skip.
    pub has_header: bool,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            delimiter: b',',
            has_header: false,
        }
    }
}

impl CsvOptions {
    /// dbgen-style options: pipe-delimited, no header.
    pub fn pipe() -> CsvOptions {
        CsvOptions {
            delimiter: b'|',
            has_header: false,
        }
    }
}
