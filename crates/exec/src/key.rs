//! Hashable/equatable group and join keys.
//!
//! `Value` itself is not `Eq + Hash` (floats); `GroupKey` is a normalized
//! form safe for hash tables: floats by bits (with integral floats
//! canonicalized to integers so `1.0` groups with `1`), NULL as a distinct
//! marker.

use nodb_common::Value;

/// One normalized key part.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum KeyPart {
    /// SQL NULL (groups with other NULLs, as GROUP BY does).
    Null,
    /// Any integer-valued number or date day-count.
    Int(i64),
    /// Non-integral float, by bit pattern.
    FloatBits(u64),
    /// Boolean.
    Bool(bool),
    /// Text.
    Text(String),
}

/// A composite key over several values.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GroupKey(pub Vec<KeyPart>);

impl GroupKey {
    /// Build a key from values.
    pub fn from_values<'a>(vals: impl Iterator<Item = &'a Value>) -> GroupKey {
        GroupKey(vals.map(KeyPart::from_value).collect())
    }

    /// Does any part contain NULL? (Join keys with NULL never match.)
    pub fn has_null(&self) -> bool {
        self.0.iter().any(|p| matches!(p, KeyPart::Null))
    }
}

impl KeyPart {
    /// Normalize one value.
    pub fn from_value(v: &Value) -> KeyPart {
        match v {
            Value::Null => KeyPart::Null,
            Value::Int32(x) => KeyPart::Int(*x as i64),
            Value::Int64(x) => KeyPart::Int(*x),
            Value::Date(d) => KeyPart::Int(d.days() as i64 | (1 << 62)),
            Value::Bool(b) => KeyPart::Bool(*b),
            Value::Float64(f) => {
                if f.fract() == 0.0 && f.abs() < 9e15 {
                    KeyPart::Int(*f as i64)
                } else {
                    KeyPart::FloatBits(f.to_bits())
                }
            }
            Value::Text(s) => KeyPart::Text(s.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn numeric_widths_share_keys() {
        let a = KeyPart::from_value(&Value::Int32(7));
        let b = KeyPart::from_value(&Value::Int64(7));
        let c = KeyPart::from_value(&Value::Float64(7.0));
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn dates_do_not_collide_with_ints() {
        let d = KeyPart::from_value(&Value::Date(nodb_common::Date(5)));
        let i = KeyPart::from_value(&Value::Int64(5));
        assert_ne!(d, i);
    }

    #[test]
    fn composite_keys_work_in_hashmaps() {
        let mut m: HashMap<GroupKey, usize> = HashMap::new();
        let k1 = GroupKey::from_values([Value::Text("A".into()), Value::Int32(1)].iter());
        let k2 = GroupKey::from_values([Value::Text("A".into()), Value::Int64(1)].iter());
        m.insert(k1, 10);
        assert_eq!(m.get(&k2), Some(&10));
    }

    #[test]
    fn null_detection() {
        let k = GroupKey::from_values([Value::Null, Value::Int32(1)].iter());
        assert!(k.has_null());
        let k = GroupKey::from_values([Value::Int32(1)].iter());
        assert!(!k.has_null());
    }
}
