//! Scalar expression evaluation with SQL three-valued logic.

use nodb_common::like::like_match;
use nodb_common::{NoDbError, Result, Row, Value};
use nodb_sql::{BinOp, BoundExpr, UnOp};

use crate::batch::ValueBatch;

/// Evaluate an expression against a row. NULL propagates through
/// arithmetic and comparisons; AND/OR follow Kleene logic.
pub fn eval(expr: &BoundExpr, row: &Row) -> Result<Value> {
    match expr {
        BoundExpr::Col(i) => row
            .values()
            .get(*i)
            .cloned()
            .ok_or_else(|| NoDbError::internal(format!("column #{i} out of range"))),
        BoundExpr::Lit(v) => Ok(v.clone()),
        BoundExpr::Param { idx, .. } => Err(NoDbError::internal(format!(
            "unsubstituted parameter ${} reached the executor (prepared statements must \
             substitute parameters before building the operator tree)",
            idx + 1
        ))),
        BoundExpr::Binary { op, left, right } => match op {
            BinOp::And => {
                let l = eval(left, row)?;
                // Short-circuit FALSE.
                if l == Value::Bool(false) {
                    return Ok(Value::Bool(false));
                }
                let r = eval(right, row)?;
                Ok(match (bool3(&l), bool3(&r)) {
                    (Some(false), _) | (_, Some(false)) => Value::Bool(false),
                    (Some(true), Some(true)) => Value::Bool(true),
                    _ => Value::Null,
                })
            }
            BinOp::Or => {
                let l = eval(left, row)?;
                if l == Value::Bool(true) {
                    return Ok(Value::Bool(true));
                }
                let r = eval(right, row)?;
                Ok(match (bool3(&l), bool3(&r)) {
                    (Some(true), _) | (_, Some(true)) => Value::Bool(true),
                    (Some(false), Some(false)) => Value::Bool(false),
                    _ => Value::Null,
                })
            }
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
                let l = eval(left, row)?;
                let r = eval(right, row)?;
                Ok(match l.sql_cmp(&r) {
                    None => Value::Null,
                    Some(ord) => Value::Bool(match op {
                        BinOp::Eq => ord == std::cmp::Ordering::Equal,
                        BinOp::NotEq => ord != std::cmp::Ordering::Equal,
                        BinOp::Lt => ord == std::cmp::Ordering::Less,
                        BinOp::LtEq => ord != std::cmp::Ordering::Greater,
                        BinOp::Gt => ord == std::cmp::Ordering::Greater,
                        BinOp::GtEq => ord != std::cmp::Ordering::Less,
                        _ => unreachable!("comparison ops only"),
                    }),
                })
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                let l = eval(left, row)?;
                let r = eval(right, row)?;
                arith(*op, &l, &r)
            }
        },
        BoundExpr::Unary { op, expr } => {
            let v = eval(expr, row)?;
            match op {
                UnOp::Not => Ok(match bool3(&v) {
                    Some(b) => Value::Bool(!b),
                    None => Value::Null,
                }),
                UnOp::Neg => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Int32(x) => Ok(Value::Int32(-x)),
                    Value::Int64(x) => Ok(Value::Int64(-x)),
                    Value::Float64(x) => Ok(Value::Float64(-x)),
                    other => Err(NoDbError::execution(format!("cannot negate {other}"))),
                },
            }
        }
        BoundExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval(expr, row)?;
            // Fast path: a constant pattern (the common case, and what
            // every parameterized pattern becomes after substitution)
            // is matched without re-evaluating or cloning it per row.
            let computed;
            let pat = match pattern.as_ref() {
                BoundExpr::Lit(Value::Text(p)) => p.as_str(),
                _ => match eval(pattern, row)? {
                    Value::Null => return Ok(Value::Null),
                    Value::Text(s) => {
                        computed = s;
                        computed.as_str()
                    }
                    other => {
                        return Err(NoDbError::execution(format!(
                            "LIKE pattern is non-text {other}"
                        )))
                    }
                },
            };
            match v {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => Ok(Value::Bool(like_match(&s, pat) != *negated)),
                other => Err(NoDbError::execution(format!("LIKE on non-text {other}"))),
            }
        }
        BoundExpr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval(expr, row)?;
            let lo = eval(low, row)?;
            let hi = eval(high, row)?;
            let ge = v.sql_cmp(&lo).map(|o| o != std::cmp::Ordering::Less);
            let le = v.sql_cmp(&hi).map(|o| o != std::cmp::Ordering::Greater);
            Ok(match (ge, le) {
                (Some(a), Some(b)) => Value::Bool((a && b) != *negated),
                _ => Value::Null,
            })
        }
        BoundExpr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, row)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for cand in list {
                match v.sql_cmp(cand) {
                    Some(std::cmp::Ordering::Equal) => {
                        return Ok(Value::Bool(!*negated));
                    }
                    None if cand.is_null() => saw_null = true,
                    _ => {}
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        BoundExpr::Case {
            branches,
            else_expr,
        } => {
            for (cond, res) in branches {
                if eval_predicate(cond, row)? {
                    return eval(res, row);
                }
            }
            match else_expr {
                Some(e) => eval(e, row),
                None => Ok(Value::Null),
            }
        }
        BoundExpr::IsNull { expr, negated } => {
            let v = eval(expr, row)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
    }
}

/// Evaluate as a WHERE predicate: TRUE passes; FALSE and NULL reject.
pub fn eval_predicate(expr: &BoundExpr, row: &Row) -> Result<bool> {
    Ok(eval(expr, row)? == Value::Bool(true))
}

// ----- vectorized evaluation --------------------------------------------

/// Evaluate an expression over every row of a batch, one tight loop per
/// operator node instead of one tree walk per row.
///
/// Produces exactly the values `eval` would produce row by row. The
/// short-circuit rules are preserved *per row* via selection masks: the
/// right side of an `AND` is only evaluated for rows whose left side is
/// not FALSE (so `x <> 0 AND 10 / x > 1` never divides by zero), and
/// `CASE` branch results are only evaluated for rows their condition
/// selected. The set of (row, subexpression) pairs evaluated is identical
/// to the row path's; only the *order* differs (column-wise rather than
/// row-wise), so when several rows would error, which error surfaces
/// first may differ — a query errors under batch evaluation iff it errors
/// under row evaluation.
pub fn eval_batch(expr: &BoundExpr, batch: &ValueBatch) -> Result<Vec<Value>> {
    eval_batch_masked(expr, batch, None)
}

/// Evaluate as a WHERE predicate over a whole batch: per row, TRUE passes.
pub fn eval_predicate_batch(expr: &BoundExpr, batch: &ValueBatch) -> Result<Vec<bool>> {
    Ok(eval_batch(expr, batch)?
        .into_iter()
        .map(|v| v == Value::Bool(true))
        .collect())
}

/// Is row `r` selected by the (optional) mask?
#[inline]
fn active(mask: Option<&[bool]>, r: usize) -> bool {
    mask.is_none_or(|m| m[r])
}

/// Masked batch evaluation: rows deselected by `mask` yield `Null`
/// *without being evaluated* — the mechanism behind per-row
/// short-circuiting. Callers never read deselected lanes.
fn eval_batch_masked(
    expr: &BoundExpr,
    batch: &ValueBatch,
    mask: Option<&[bool]>,
) -> Result<Vec<Value>> {
    let n = batch.num_rows();
    match expr {
        BoundExpr::Col(i) => {
            if *i >= batch.num_cols() {
                return Err(NoDbError::internal(format!("column #{i} out of range")));
            }
            let col = batch.col(*i);
            Ok((0..n)
                .map(|r| {
                    if active(mask, r) {
                        col[r].clone()
                    } else {
                        Value::Null
                    }
                })
                .collect())
        }
        BoundExpr::Lit(v) => Ok(vec![v.clone(); n]),
        BoundExpr::Param { idx, .. } => Err(NoDbError::internal(format!(
            "unsubstituted parameter ${} reached the executor (prepared statements must \
             substitute parameters before building the operator tree)",
            idx + 1
        ))),
        BoundExpr::Binary { op, left, right } => match op {
            BinOp::And => {
                let l = eval_batch_masked(left, batch, mask)?;
                // Rows whose left side is FALSE short-circuit: the right
                // side must not run for them (it may error).
                let need: Vec<bool> = (0..n)
                    .map(|r| active(mask, r) && l[r] != Value::Bool(false))
                    .collect();
                let r_vals = if need.contains(&true) {
                    eval_batch_masked(right, batch, Some(&need))?
                } else {
                    vec![Value::Null; n]
                };
                Ok((0..n)
                    .map(|r| {
                        if !active(mask, r) {
                            Value::Null
                        } else if l[r] == Value::Bool(false) {
                            Value::Bool(false)
                        } else {
                            match (bool3(&l[r]), bool3(&r_vals[r])) {
                                (Some(false), _) | (_, Some(false)) => Value::Bool(false),
                                (Some(true), Some(true)) => Value::Bool(true),
                                _ => Value::Null,
                            }
                        }
                    })
                    .collect())
            }
            BinOp::Or => {
                let l = eval_batch_masked(left, batch, mask)?;
                let need: Vec<bool> = (0..n)
                    .map(|r| active(mask, r) && l[r] != Value::Bool(true))
                    .collect();
                let r_vals = if need.contains(&true) {
                    eval_batch_masked(right, batch, Some(&need))?
                } else {
                    vec![Value::Null; n]
                };
                Ok((0..n)
                    .map(|r| {
                        if !active(mask, r) {
                            Value::Null
                        } else if l[r] == Value::Bool(true) {
                            Value::Bool(true)
                        } else {
                            match (bool3(&l[r]), bool3(&r_vals[r])) {
                                (Some(true), _) | (_, Some(true)) => Value::Bool(true),
                                (Some(false), Some(false)) => Value::Bool(false),
                                _ => Value::Null,
                            }
                        }
                    })
                    .collect())
            }
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
                let l = eval_batch_masked(left, batch, mask)?;
                let r_vals = eval_batch_masked(right, batch, mask)?;
                Ok((0..n)
                    .map(|r| {
                        if !active(mask, r) {
                            return Value::Null;
                        }
                        match l[r].sql_cmp(&r_vals[r]) {
                            None => Value::Null,
                            Some(ord) => Value::Bool(match op {
                                BinOp::Eq => ord == std::cmp::Ordering::Equal,
                                BinOp::NotEq => ord != std::cmp::Ordering::Equal,
                                BinOp::Lt => ord == std::cmp::Ordering::Less,
                                BinOp::LtEq => ord != std::cmp::Ordering::Greater,
                                BinOp::Gt => ord == std::cmp::Ordering::Greater,
                                BinOp::GtEq => ord != std::cmp::Ordering::Less,
                                _ => unreachable!("comparison ops only"),
                            }),
                        }
                    })
                    .collect())
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                let l = eval_batch_masked(left, batch, mask)?;
                let r_vals = eval_batch_masked(right, batch, mask)?;
                let mut out = Vec::with_capacity(n);
                for r in 0..n {
                    out.push(if active(mask, r) {
                        arith(*op, &l[r], &r_vals[r])?
                    } else {
                        Value::Null
                    });
                }
                Ok(out)
            }
        },
        BoundExpr::Unary { op, expr } => {
            let vals = eval_batch_masked(expr, batch, mask)?;
            let mut out = Vec::with_capacity(n);
            for (r, v) in vals.into_iter().enumerate() {
                if !active(mask, r) {
                    out.push(Value::Null);
                    continue;
                }
                out.push(match op {
                    UnOp::Not => match bool3(&v) {
                        Some(b) => Value::Bool(!b),
                        None => Value::Null,
                    },
                    UnOp::Neg => match v {
                        Value::Null => Value::Null,
                        Value::Int32(x) => Value::Int32(-x),
                        Value::Int64(x) => Value::Int64(-x),
                        Value::Float64(x) => Value::Float64(-x),
                        other => {
                            return Err(NoDbError::execution(format!("cannot negate {other}")))
                        }
                    },
                });
            }
            Ok(out)
        }
        BoundExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let vals = eval_batch_masked(expr, batch, mask)?;
            // Constant pattern (the common case) matches straight off the
            // literal; otherwise the pattern column is evaluated per row
            // exactly like the scalar path.
            let pat_vals = match pattern.as_ref() {
                BoundExpr::Lit(Value::Text(_)) => None,
                _ => Some(eval_batch_masked(pattern, batch, mask)?),
            };
            let mut out = Vec::with_capacity(n);
            for (r, v) in vals.into_iter().enumerate() {
                if !active(mask, r) {
                    out.push(Value::Null);
                    continue;
                }
                let pat: &str = match (pattern.as_ref(), &pat_vals) {
                    (BoundExpr::Lit(Value::Text(p)), _) => p.as_str(),
                    (_, Some(pv)) => match &pv[r] {
                        Value::Null => {
                            out.push(Value::Null);
                            continue;
                        }
                        Value::Text(s) => s.as_str(),
                        other => {
                            return Err(NoDbError::execution(format!(
                                "LIKE pattern is non-text {other}"
                            )))
                        }
                    },
                    _ => unreachable!("pat_vals is Some for non-literal patterns"),
                };
                out.push(match v {
                    Value::Null => Value::Null,
                    Value::Text(s) => Value::Bool(like_match(&s, pat) != *negated),
                    other => return Err(NoDbError::execution(format!("LIKE on non-text {other}"))),
                });
            }
            Ok(out)
        }
        BoundExpr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let vals = eval_batch_masked(expr, batch, mask)?;
            let lo = eval_batch_masked(low, batch, mask)?;
            let hi = eval_batch_masked(high, batch, mask)?;
            Ok((0..n)
                .map(|r| {
                    if !active(mask, r) {
                        return Value::Null;
                    }
                    let ge = vals[r]
                        .sql_cmp(&lo[r])
                        .map(|o| o != std::cmp::Ordering::Less);
                    let le = vals[r]
                        .sql_cmp(&hi[r])
                        .map(|o| o != std::cmp::Ordering::Greater);
                    match (ge, le) {
                        (Some(a), Some(b)) => Value::Bool((a && b) != *negated),
                        _ => Value::Null,
                    }
                })
                .collect())
        }
        BoundExpr::InList {
            expr,
            list,
            negated,
        } => {
            let vals = eval_batch_masked(expr, batch, mask)?;
            Ok(vals
                .into_iter()
                .enumerate()
                .map(|(r, v)| {
                    if !active(mask, r) || v.is_null() {
                        return Value::Null;
                    }
                    let mut saw_null = false;
                    for cand in list {
                        match v.sql_cmp(cand) {
                            Some(std::cmp::Ordering::Equal) => return Value::Bool(!*negated),
                            None if cand.is_null() => saw_null = true,
                            _ => {}
                        }
                    }
                    if saw_null {
                        Value::Null
                    } else {
                        Value::Bool(*negated)
                    }
                })
                .collect())
        }
        BoundExpr::Case {
            branches,
            else_expr,
        } => {
            // Mask cascade: each branch's condition runs only for rows no
            // earlier branch took; its result runs only for rows it took.
            let mut remaining: Vec<bool> = (0..n).map(|r| active(mask, r)).collect();
            let mut out = vec![Value::Null; n];
            for (cond, res) in branches {
                if !remaining.contains(&true) {
                    break;
                }
                let c = eval_batch_masked(cond, batch, Some(&remaining))?;
                let taken: Vec<bool> = (0..n)
                    .map(|r| remaining[r] && c[r] == Value::Bool(true))
                    .collect();
                if taken.contains(&true) {
                    let vals = eval_batch_masked(res, batch, Some(&taken))?;
                    for (r, v) in vals.into_iter().enumerate() {
                        if taken[r] {
                            out[r] = v;
                            remaining[r] = false;
                        }
                    }
                }
            }
            if let Some(e) = else_expr {
                if remaining.contains(&true) {
                    let vals = eval_batch_masked(e, batch, Some(&remaining))?;
                    for (r, v) in vals.into_iter().enumerate() {
                        if remaining[r] {
                            out[r] = v;
                        }
                    }
                }
            }
            Ok(out)
        }
        BoundExpr::IsNull { expr, negated } => {
            let vals = eval_batch_masked(expr, batch, mask)?;
            Ok(vals
                .into_iter()
                .enumerate()
                .map(|(r, v)| {
                    if active(mask, r) {
                        Value::Bool(v.is_null() != *negated)
                    } else {
                        Value::Null
                    }
                })
                .collect())
        }
    }
}

fn bool3(v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

fn arith(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    // Date ± integer days.
    if let (Value::Date(d), Some(n)) = (l, r.as_i64()) {
        if !matches!(r, Value::Float64(_)) {
            match op {
                BinOp::Add => return Ok(Value::Date(d.add_days(n as i32))),
                BinOp::Sub => {
                    if let Value::Date(d2) = r {
                        return Ok(Value::Int64((d.days() - d2.days()) as i64));
                    }
                    return Ok(Value::Date(d.add_days(-(n as i32))));
                }
                _ => {}
            }
        }
    }
    let use_float =
        matches!(l, Value::Float64(_)) || matches!(r, Value::Float64(_)) || op == BinOp::Div;
    if use_float {
        let (a, b) = (
            l.as_f64()
                .ok_or_else(|| NoDbError::execution(format!("non-numeric operand {l}")))?,
            r.as_f64()
                .ok_or_else(|| NoDbError::execution(format!("non-numeric operand {r}")))?,
        );
        let v = match op {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => {
                if b == 0.0 {
                    return Err(NoDbError::execution("division by zero"));
                }
                a / b
            }
            _ => unreachable!("arith ops only"),
        };
        Ok(Value::Float64(v))
    } else {
        let (a, b) = (
            l.as_i64()
                .ok_or_else(|| NoDbError::execution(format!("non-numeric operand {l}")))?,
            r.as_i64()
                .ok_or_else(|| NoDbError::execution(format!("non-numeric operand {r}")))?,
        );
        let v = match op {
            BinOp::Add => a.checked_add(b),
            BinOp::Sub => a.checked_sub(b),
            BinOp::Mul => a.checked_mul(b),
            _ => unreachable!("arith ops only"),
        }
        .ok_or_else(|| NoDbError::execution("integer overflow"))?;
        Ok(Value::Int64(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodb_common::Date;

    fn row() -> Row {
        Row(vec![
            Value::Int32(10),
            Value::Float64(2.5),
            Value::Text("PROMO ANODIZED".into()),
            Value::Null,
            Value::Date(Date::parse("1994-06-15").unwrap()),
        ])
    }

    fn col(i: usize) -> BoundExpr {
        BoundExpr::Col(i)
    }

    fn lit(v: Value) -> BoundExpr {
        BoundExpr::Lit(v)
    }

    fn bin(op: BinOp, l: BoundExpr, r: BoundExpr) -> BoundExpr {
        BoundExpr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    #[test]
    fn arithmetic_coerces_and_divides_as_float() {
        let r = row();
        assert_eq!(
            eval(&bin(BinOp::Mul, col(0), col(1)), &r).unwrap(),
            Value::Float64(25.0)
        );
        assert_eq!(
            eval(&bin(BinOp::Add, col(0), lit(Value::Int64(5))), &r).unwrap(),
            Value::Int64(15)
        );
        assert_eq!(
            eval(
                &bin(BinOp::Div, lit(Value::Int64(7)), lit(Value::Int64(2))),
                &r
            )
            .unwrap(),
            Value::Float64(3.5)
        );
    }

    #[test]
    fn division_by_zero_errors() {
        let r = row();
        assert!(eval(
            &bin(BinOp::Div, lit(Value::Int64(1)), lit(Value::Int64(0))),
            &r
        )
        .is_err());
    }

    #[test]
    fn null_propagates_through_arith_and_cmp() {
        let r = row();
        assert_eq!(
            eval(&bin(BinOp::Add, col(3), col(0)), &r).unwrap(),
            Value::Null
        );
        assert_eq!(
            eval(&bin(BinOp::Eq, col(3), col(0)), &r).unwrap(),
            Value::Null
        );
        assert!(!eval_predicate(&bin(BinOp::Eq, col(3), col(0)), &r).unwrap());
    }

    #[test]
    fn three_valued_and_or() {
        let r = row();
        let null = col(3);
        let t = lit(Value::Bool(true));
        let f = lit(Value::Bool(false));
        assert_eq!(
            eval(&bin(BinOp::And, f.clone(), null.clone()), &r).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            eval(&bin(BinOp::And, t.clone(), null.clone()), &r).unwrap(),
            Value::Null
        );
        assert_eq!(
            eval(&bin(BinOp::Or, t.clone(), null.clone()), &r).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval(&bin(BinOp::Or, f.clone(), null.clone()), &r).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn like_between_inlist() {
        let r = row();
        let like = BoundExpr::Like {
            expr: Box::new(col(2)),
            pattern: Box::new(lit(Value::Text("PROMO%".into()))),
            negated: false,
        };
        assert_eq!(eval(&like, &r).unwrap(), Value::Bool(true));
        // Non-literal pattern: evaluated per row; NULL pattern -> NULL.
        let like_col = BoundExpr::Like {
            expr: Box::new(col(2)),
            pattern: Box::new(col(2)),
            negated: false,
        };
        assert_eq!(eval(&like_col, &r).unwrap(), Value::Bool(true));
        let like_null = BoundExpr::Like {
            expr: Box::new(col(2)),
            pattern: Box::new(lit(Value::Null)),
            negated: false,
        };
        assert_eq!(eval(&like_null, &r).unwrap(), Value::Null);
        let between = BoundExpr::Between {
            expr: Box::new(col(0)),
            low: Box::new(lit(Value::Int64(5))),
            high: Box::new(lit(Value::Int64(10))),
            negated: false,
        };
        assert_eq!(eval(&between, &r).unwrap(), Value::Bool(true));
        let inlist = BoundExpr::InList {
            expr: Box::new(col(0)),
            list: vec![Value::Int64(1), Value::Int64(10)],
            negated: false,
        };
        assert_eq!(eval(&inlist, &r).unwrap(), Value::Bool(true));
        let notin = BoundExpr::InList {
            expr: Box::new(col(0)),
            list: vec![Value::Int64(1)],
            negated: true,
        };
        assert_eq!(eval(&notin, &r).unwrap(), Value::Bool(true));
    }

    #[test]
    fn case_falls_through_to_else() {
        let r = row();
        let case = BoundExpr::Case {
            branches: vec![(
                bin(BinOp::Gt, col(0), lit(Value::Int64(100))),
                lit(Value::Int64(1)),
            )],
            else_expr: Some(Box::new(lit(Value::Int64(0)))),
        };
        assert_eq!(eval(&case, &r).unwrap(), Value::Int64(0));
        let no_else = BoundExpr::Case {
            branches: vec![(
                bin(BinOp::Gt, col(0), lit(Value::Int64(100))),
                lit(Value::Int64(1)),
            )],
            else_expr: None,
        };
        assert_eq!(eval(&no_else, &r).unwrap(), Value::Null);
    }

    #[test]
    fn date_minus_date_and_date_plus_days() {
        let r = row();
        let base = Date::parse("1994-06-15").unwrap();
        assert_eq!(
            eval(&bin(BinOp::Add, col(4), lit(Value::Int64(10))), &r).unwrap(),
            Value::Date(base.add_days(10))
        );
        assert_eq!(
            eval(
                &bin(BinOp::Sub, col(4), lit(Value::Date(base.add_days(-5)))),
                &r
            )
            .unwrap(),
            Value::Int64(5)
        );
    }

    #[test]
    fn is_null_checks() {
        let r = row();
        let isnull = BoundExpr::IsNull {
            expr: Box::new(col(3)),
            negated: false,
        };
        assert_eq!(eval(&isnull, &r).unwrap(), Value::Bool(true));
        let isnotnull = BoundExpr::IsNull {
            expr: Box::new(col(0)),
            negated: true,
        };
        assert_eq!(eval(&isnotnull, &r).unwrap(), Value::Bool(true));
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;

    fn col(i: usize) -> BoundExpr {
        BoundExpr::Col(i)
    }

    fn lit(v: Value) -> BoundExpr {
        BoundExpr::Lit(v)
    }

    fn bin(op: BinOp, l: BoundExpr, r: BoundExpr) -> BoundExpr {
        BoundExpr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    fn sample_batch() -> ValueBatch {
        ValueBatch::from_rows(vec![
            Row(vec![Value::Int64(0), Value::Text("PROMO A".into())]),
            Row(vec![Value::Int64(4), Value::Null]),
            Row(vec![Value::Null, Value::Text("ECONOMY".into())]),
            Row(vec![Value::Int64(-3), Value::Text("PROMO B".into())]),
        ])
    }

    /// Batch evaluation must equal row-at-a-time evaluation value for
    /// value on every expression shape.
    fn assert_matches_row_eval(e: &BoundExpr) {
        let b = sample_batch();
        let got = eval_batch(e, &b).unwrap();
        for r in 0..b.num_rows() {
            let row = Row(b.row_values(r));
            assert_eq!(got[r], eval(e, &row).unwrap(), "row {r} of {e:?}");
        }
    }

    #[test]
    fn batch_matches_row_eval_across_shapes() {
        let shapes = vec![
            col(0),
            lit(Value::Int64(7)),
            bin(BinOp::Gt, col(0), lit(Value::Int64(1))),
            bin(BinOp::Add, col(0), col(0)),
            bin(
                BinOp::And,
                bin(BinOp::Gt, col(0), lit(Value::Int64(0))),
                bin(BinOp::Lt, col(0), lit(Value::Int64(10))),
            ),
            bin(
                BinOp::Or,
                bin(BinOp::Lt, col(0), lit(Value::Int64(0))),
                bin(BinOp::Gt, col(0), lit(Value::Int64(3))),
            ),
            BoundExpr::Unary {
                op: UnOp::Neg,
                expr: Box::new(col(0)),
            },
            BoundExpr::Unary {
                op: UnOp::Not,
                expr: Box::new(bin(BinOp::Eq, col(0), lit(Value::Int64(4)))),
            },
            BoundExpr::Like {
                expr: Box::new(col(1)),
                pattern: Box::new(lit(Value::Text("PROMO%".into()))),
                negated: false,
            },
            BoundExpr::Like {
                expr: Box::new(col(1)),
                pattern: Box::new(col(1)),
                negated: true,
            },
            BoundExpr::Between {
                expr: Box::new(col(0)),
                low: Box::new(lit(Value::Int64(0))),
                high: Box::new(lit(Value::Int64(4))),
                negated: false,
            },
            BoundExpr::InList {
                expr: Box::new(col(0)),
                list: vec![Value::Int64(4), Value::Null],
                negated: false,
            },
            BoundExpr::Case {
                branches: vec![
                    (
                        bin(BinOp::Gt, col(0), lit(Value::Int64(0))),
                        lit(Value::Text("pos".into())),
                    ),
                    (
                        bin(BinOp::Lt, col(0), lit(Value::Int64(0))),
                        lit(Value::Text("neg".into())),
                    ),
                ],
                else_expr: Some(Box::new(lit(Value::Text("zero".into())))),
            },
            BoundExpr::IsNull {
                expr: Box::new(col(1)),
                negated: false,
            },
        ];
        for e in &shapes {
            assert_matches_row_eval(e);
        }
    }

    #[test]
    fn and_short_circuit_skips_errors_per_row() {
        // x <> 0 AND 10 / x > 1: the row with x = 0 must not divide.
        let e = bin(
            BinOp::And,
            bin(BinOp::NotEq, col(0), lit(Value::Int64(0))),
            bin(
                BinOp::Gt,
                bin(BinOp::Div, lit(Value::Int64(10)), col(0)),
                lit(Value::Int64(1)),
            ),
        );
        assert_matches_row_eval(&e);
        // ... and OR short-circuits the same way.
        let e = bin(
            BinOp::Or,
            bin(BinOp::Eq, col(0), lit(Value::Int64(0))),
            bin(
                BinOp::Gt,
                bin(BinOp::Div, lit(Value::Int64(10)), col(0)),
                lit(Value::Int64(1)),
            ),
        );
        assert_matches_row_eval(&e);
    }

    #[test]
    fn batch_errors_when_any_active_row_errors() {
        let b = sample_batch();
        // Unguarded division: row 0 has x = 0, so the batch must error
        // just as the row path does when it reaches that row.
        let e = bin(BinOp::Div, lit(Value::Int64(10)), col(0));
        assert!(eval_batch(&e, &b).is_err());
    }

    #[test]
    fn predicate_batch_matches_row_predicate() {
        let b = sample_batch();
        let e = bin(BinOp::Gt, col(0), lit(Value::Int64(0)));
        let got = eval_predicate_batch(&e, &b).unwrap();
        for r in 0..b.num_rows() {
            let row = Row(b.row_values(r));
            assert_eq!(got[r], eval_predicate(&e, &row).unwrap());
        }
    }

    #[test]
    fn out_of_range_column_errors() {
        let b = sample_batch();
        assert!(eval_batch(&col(9), &b).is_err());
    }
}
