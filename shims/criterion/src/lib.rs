//! Minimal `criterion` API shim.
//!
//! Runs each registered benchmark and reports mean wall-clock time per
//! iteration. Two modes, matching how cargo drives real criterion:
//!
//! - **bench mode** (`cargo bench` passes `--bench`): a short warm-up,
//!   then `sample_size` timed samples; mean/min are printed.
//! - **test mode** (`cargo bench -- --test`, or `cargo test --benches`
//!   which runs the harness with no `--bench` flag): every benchmark
//!   body executes exactly once so CI catches rot cheaply.
//!
//! Two harness extensions the real criterion does not have (both used by
//! CI):
//!
//! - `--skip PATTERN` excludes benchmarks whose full name contains
//!   `PATTERN` (the complement of the positional filter), so a job can
//!   fast-fail one group first and then run the rest without repeating
//!   it.
//! - When the `NODB_BENCH_JSON` environment variable names a file, every
//!   measurement is **appended** to it as one JSON object per line
//!   (`{"name":...,"mode":...,"mean_ns":...,"min_ns":...,"iters":...}`),
//!   and test-mode bodies run **three** times instead of once so the
//!   recorded `min_ns` is a usable single-machine estimate rather than a
//!   one-shot roll of the dice. `tools/bench_check` compares such files
//!   against the committed baseline to gate regressions in CI.
//!
//! No statistics, plots, or cross-run analysis beyond that — this shim
//! exists so the bench harness compiles and smoke-runs without crates.io
//! access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// How a batched benchmark's setup output is sized. Accepted and
/// ignored: the shim always materializes one batch per iteration.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Throughput annotation for a benchmark group. Recorded for display.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Passed to benchmark closures; drives the iteration loop.
pub struct Bencher<'a> {
    mode: Mode,
    sample_size: usize,
    /// Executions per body in test mode: 1 normally, 3 when measurements
    /// are being recorded to the `NODB_BENCH_JSON` sink — the recorded
    /// minimum of three runs is far less noisy than a single shot, and
    /// that is what the CI baseline gate compares.
    smoke_iters: usize,
    result: &'a mut Option<Sample>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Bench,
    Test,
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    mean: Duration,
    min: Duration,
    iters: u64,
}

impl Bencher<'_> {
    /// Times `routine`, running it repeatedly in bench mode and exactly
    /// once in test mode.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Test => {
                let mut total = Duration::ZERO;
                let mut min = Duration::MAX;
                let n = self.smoke_iters.max(1) as u32;
                for _ in 0..n {
                    let start = Instant::now();
                    std::hint::black_box(routine());
                    let dt = start.elapsed();
                    total += dt;
                    min = min.min(dt);
                }
                *self.result = Some(Sample {
                    mean: total / n,
                    min,
                    iters: n as u64,
                });
            }
            Mode::Bench => {
                // Warm-up: run until ~10ms spent or 3 iterations.
                let warm = Instant::now();
                let mut warm_iters = 0u64;
                while warm_iters < 3 || warm.elapsed() < Duration::from_millis(10) {
                    std::hint::black_box(routine());
                    warm_iters += 1;
                    if warm_iters >= 1000 {
                        break;
                    }
                }
                let mut total = Duration::ZERO;
                let mut min = Duration::MAX;
                let samples = self.sample_size.max(1) as u64;
                for _ in 0..samples {
                    let start = Instant::now();
                    std::hint::black_box(routine());
                    let dt = start.elapsed();
                    total += dt;
                    min = min.min(dt);
                }
                *self.result = Some(Sample {
                    mean: total / samples as u32,
                    min,
                    iters: samples,
                });
            }
        }
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let samples = match self.mode {
            Mode::Test => self.smoke_iters.max(1),
            Mode::Bench => self.sample_size.max(1),
        };
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
        }
        *self.result = Some(Sample {
            mean: total / samples as u32,
            min,
            iters: samples as u64,
        });
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark (bench mode).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Records the per-iteration throughput for display.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut result = None;
        let mut b = Bencher {
            mode: self.criterion.mode,
            sample_size: self.sample_size,
            smoke_iters: self.criterion.smoke_iters(),
            result: &mut result,
        };
        f(&mut b);
        self.criterion.report(&full, self.throughput, result);
        self
    }

    /// Finishes the group. (No cross-benchmark analysis in the shim.)
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
    skips: Vec<String>,
    json_sink: Option<std::path::PathBuf>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo passes `--bench` when invoked as `cargo bench`; under
        // `cargo test --benches` the flag is absent, and criterion's
        // convention is `--test` forces test mode even under bench.
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut is_test = false;
        let mut is_bench = false;
        let mut filter = None;
        let mut skips = Vec::new();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--test" => is_test = true,
                "--bench" => is_bench = true,
                "--skip" => {
                    i += 1;
                    if let Some(p) = args.get(i) {
                        skips.push(p.clone());
                    }
                }
                a if !a.starts_with("--") => filter = Some(a.to_string()),
                _ => {}
            }
            i += 1;
        }
        let json_sink = std::env::var_os("NODB_BENCH_JSON").map(std::path::PathBuf::from);
        Criterion {
            mode: if is_bench && !is_test {
                Mode::Bench
            } else {
                Mode::Test
            },
            filter,
            skips,
            json_sink,
        }
    }
}

impl Criterion {
    /// Begins a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let full = id.to_string();
        if !self.matches(&full) {
            return self;
        }
        let mut result = None;
        let mut b = Bencher {
            mode: self.mode,
            sample_size: 10,
            smoke_iters: self.smoke_iters(),
            result: &mut result,
        };
        f(&mut b);
        self.report(&full, None, result);
        self
    }

    /// Test-mode executions per body: 3 when measurements feed the
    /// `NODB_BENCH_JSON` sink (the gate compares the min), 1 otherwise.
    fn smoke_iters(&self) -> usize {
        if self.json_sink.is_some() {
            3
        } else {
            1
        }
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
            && !self.skips.iter().any(|s| name.contains(s))
    }

    fn report(&self, name: &str, throughput: Option<Throughput>, sample: Option<Sample>) {
        let Some(s) = sample else {
            println!("{name:<60} (no measurement)");
            return;
        };
        self.emit_json(name, &s);
        match self.mode {
            Mode::Test => println!("{name:<60} ok ({:?})", s.mean),
            Mode::Bench => {
                let thr = match throughput {
                    Some(Throughput::Bytes(b)) if s.min > Duration::ZERO => {
                        let gbps = b as f64 / s.min.as_secs_f64() / 1e9;
                        format!("  {gbps:7.3} GB/s")
                    }
                    Some(Throughput::Elements(e)) if s.min > Duration::ZERO => {
                        let meps = e as f64 / s.min.as_secs_f64() / 1e6;
                        format!("  {meps:7.3} Melem/s")
                    }
                    _ => String::new(),
                };
                println!(
                    "{name:<60} mean {:>12?}  min {:>12?}  ({} samples){thr}",
                    s.mean, s.min, s.iters
                );
            }
        }
    }

    /// Append one machine-readable measurement line to the
    /// `NODB_BENCH_JSON` sink (JSON object per line). Benchmark names
    /// contain no quotes or backslashes, but escape them anyway so the
    /// output is always valid JSON.
    fn emit_json(&self, name: &str, s: &Sample) {
        let Some(path) = &self.json_sink else {
            return;
        };
        let escaped: String = name
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                c => vec![c],
            })
            .collect();
        let mode = match self.mode {
            Mode::Test => "test",
            Mode::Bench => "bench",
        };
        let line = format!(
            "{{\"name\":\"{escaped}\",\"mode\":\"{mode}\",\"mean_ns\":{},\"min_ns\":{},\"iters\":{}}}\n",
            s.mean.as_nanos(),
            s.min.as_nanos(),
            s.iters
        );
        use std::io::Write;
        let res = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| f.write_all(line.as_bytes()));
        if let Err(e) = res {
            eprintln!("warning: could not append to NODB_BENCH_JSON sink {path:?}: {e}");
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the harness `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
