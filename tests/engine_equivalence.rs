//! Property-based cross-engine equivalence: for randomly generated
//! select-project queries, every engine variant must return exactly what
//! the straw-man external-files scan returns.
//!
//! This is the load-bearing invariant of the reproduction — the paper's
//! performance claims are only meaningful because all systems compute the
//! same answers.

use std::path::PathBuf;
use std::sync::OnceLock;

use proptest::prelude::*;

use nodb_common::{Schema, TempDir, Value};
use nodb_core::{AccessMode, NoDb, NoDbConfig};
use nodb_csv::{CsvOptions, MicroGen};

const COLS: usize = 20;
const ROWS: usize = 700;

/// One shared generated file for the whole property run (generation
/// dominates runtime otherwise).
fn shared_file() -> &'static (TempDir, PathBuf, Schema) {
    static FILE: OnceLock<(TempDir, PathBuf, Schema)> = OnceLock::new();
    FILE.get_or_init(|| {
        let td = TempDir::new("nodb-prop").unwrap();
        let p = td.file("t.csv");
        let spec = MicroGen::default().rows(ROWS).cols(COLS).seed(99);
        spec.write_to(&p).unwrap();
        let schema = spec.schema();
        (td, p, schema)
    })
}

fn engine(config: NoDbConfig, mode: AccessMode) -> NoDb {
    let (_td, p, schema) = shared_file();
    let mut db = NoDb::new(config).unwrap();
    db.register_csv("t", p, schema.clone(), CsvOptions::default(), mode)
        .unwrap();
    db
}

/// A random query description.
#[derive(Debug, Clone)]
struct QuerySpec {
    select_cols: Vec<usize>,
    predicate: Option<(usize, &'static str, u32)>,
    aggregate: bool,
}

fn query_strategy() -> impl Strategy<Value = QuerySpec> {
    (
        proptest::collection::vec(0..COLS, 1..5),
        proptest::option::of((
            0..COLS,
            prop_oneof![
                Just("<"),
                Just("<="),
                Just(">"),
                Just(">="),
                Just("="),
                Just("<>")
            ],
            0u32..1_000_000_000,
        )),
        any::<bool>(),
    )
        .prop_map(|(mut select_cols, predicate, aggregate)| {
            select_cols.sort_unstable();
            select_cols.dedup();
            QuerySpec {
                select_cols,
                predicate,
                aggregate,
            }
        })
}

fn render(q: &QuerySpec) -> String {
    let select = if q.aggregate {
        q.select_cols
            .iter()
            .map(|c| format!("sum(c{c}), max(c{c})"))
            .collect::<Vec<_>>()
            .join(", ")
    } else {
        q.select_cols
            .iter()
            .map(|c| format!("c{c}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut sql = format!("select {select} from t");
    if let Some((col, op, lit)) = &q.predicate {
        sql.push_str(&format!(" where c{col} {op} {lit}"));
    }
    sql
}

fn canon(rows: &[nodb_common::Row]) -> Vec<String> {
    let mut v: Vec<String> = rows
        .iter()
        .map(|r| {
            r.values()
                .iter()
                .map(|v| match v {
                    Value::Float64(f) => format!("{f:.4}"),
                    other => other.to_string(),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case runs several engines × 2 passes over the file
        ..ProptestConfig::default()
    })]

    #[test]
    fn all_variants_compute_identical_answers(q in query_strategy()) {
        let sql = render(&q);
        let reference = engine(NoDbConfig::baseline(), AccessMode::ExternalFiles)
            .query(&sql)
            .unwrap();
        let expect = canon(&reference.rows);
        for (label, cfg) in [
            ("pm+c", NoDbConfig::postgres_raw()),
            ("pm", NoDbConfig::pm_only()),
            ("c", NoDbConfig::cache_only()),
        ] {
            let db = engine(cfg, AccessMode::InSitu);
            // Two passes: cold (builds structures) and warm (uses them).
            let cold = canon(&db.query(&sql).unwrap().rows);
            let warm = canon(&db.query(&sql).unwrap().rows);
            prop_assert_eq!(&cold, &expect, "{} cold: {}", label, sql);
            prop_assert_eq!(&warm, &expect, "{} warm: {}", label, sql);
        }
    }

    #[test]
    fn loaded_mode_matches_in_situ(q in query_strategy()) {
        let sql = render(&q);
        let insitu = engine(NoDbConfig::postgres_raw(), AccessMode::InSitu);
        let mut loaded = engine(NoDbConfig::postgres_raw(), AccessMode::Loaded);
        loaded.load_table("t").unwrap();
        let a = canon(&insitu.query(&sql).unwrap().rows);
        let b = canon(&loaded.query(&sql).unwrap().rows);
        prop_assert_eq!(a, b, "{}", sql);
    }
}

/// Interleaving different queries must not corrupt the structures a prior
/// query built (regression guard for partial cache columns).
#[test]
fn interleaved_queries_stay_consistent() {
    let db = engine(NoDbConfig::postgres_raw(), AccessMode::InSitu);
    let reference = engine(NoDbConfig::baseline(), AccessMode::ExternalFiles);
    let queries = [
        "select c3 from t where c1 < 250000000",
        "select c1, c5, c9 from t",
        "select c3 from t where c1 >= 250000000",
        "select sum(c3) from t",
        "select c5 from t where c3 = 0",
        "select c0, c19 from t where c9 between 100000000 and 500000000",
        "select c3 from t where c1 < 250000000",
    ];
    for (i, sql) in queries.iter().enumerate() {
        let got = canon(&db.query(sql).unwrap().rows);
        let want = canon(&reference.query(sql).unwrap().rows);
        assert_eq!(got, want, "query #{i}: {sql}");
    }
}
