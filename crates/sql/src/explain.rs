//! Typed EXPLAIN output.
//!
//! [`ExplainPlan`] is a structured mirror of a bound
//! [`LogicalPlan`]: one node per plan
//! operator carrying its estimates, pushed-down predicates and shape,
//! plus the list of rewrite rules that fired. Tests assert on the tree;
//! humans get the exact same text the pre-typed API produced, via
//! [`ExplainPlan::render`] / `Display`.

use std::fmt;
use std::fmt::Write as _;

use crate::plan::LogicalPlan;

/// A full EXPLAIN result: the operator tree plus the rewrite rules the
/// [`RulePipeline`](crate::rewrite::RulePipeline) applied while
/// planning (empty when rewriting was off or nothing fired).
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainPlan {
    /// Root of the operator tree.
    pub root: ExplainNode,
    /// Names of the rewrite rules that changed the plan, in first-
    /// application order.
    pub applied_rules: Vec<String>,
}

/// One operator in an [`ExplainPlan`]. Expressions are carried in their
/// display form (`(#0 < 5)`); structure — children, ordinals, row
/// estimates, strategies — is typed.
#[derive(Debug, Clone, PartialEq)]
pub enum ExplainNode {
    /// In-situ scan leaf.
    Scan {
        /// Table name.
        table: String,
        /// Raw-file attribute ordinals the scan parses.
        projection: Vec<usize>,
        /// Pushed-down predicates, evaluated during the scan.
        pushed_filters: Vec<String>,
        /// Estimated output rows (stats-driven when available).
        estimated_rows: f64,
    },
    /// Residual row filter.
    Filter {
        /// The predicate, in display form.
        predicate: String,
        /// Input operator.
        child: Box<ExplainNode>,
    },
    /// Hash join.
    Join {
        /// `"Inner"`, `"Semi"` or `"Anti"`.
        kind: String,
        /// Equi-join column pairs (left ordinal, right ordinal).
        on: Vec<(usize, usize)>,
        /// Non-equi residual predicate, if any.
        residual: Option<String>,
        /// Estimated output rows.
        estimated_rows: f64,
        /// Build/probe inputs.
        left: Box<ExplainNode>,
        /// Right input.
        right: Box<ExplainNode>,
    },
    /// Aggregation.
    Aggregate {
        /// `"Plain"`, `"Hash"` or `"Sort"` — the Figure 12 choice.
        strategy: String,
        /// Group-key input ordinals.
        group: Vec<usize>,
        /// Number of aggregate expressions.
        aggs: usize,
        /// Input operator.
        child: Box<ExplainNode>,
    },
    /// Expression projection.
    Project {
        /// Output expressions, in display form.
        exprs: Vec<String>,
        /// Input operator.
        child: Box<ExplainNode>,
    },
    /// Sort.
    Sort {
        /// `(column, descending)` sort keys.
        keys: Vec<(usize, bool)>,
        /// Input operator.
        child: Box<ExplainNode>,
    },
    /// Row-count limit.
    Limit {
        /// Maximum rows.
        n: u64,
        /// Input operator.
        child: Box<ExplainNode>,
    },
    /// Duplicate elimination.
    Distinct {
        /// Input operator.
        child: Box<ExplainNode>,
    },
}

impl ExplainPlan {
    /// Build the typed tree for `plan`, recording `applied_rules`.
    pub fn from_plan(plan: &LogicalPlan, applied_rules: Vec<&'static str>) -> ExplainPlan {
        ExplainPlan {
            root: ExplainNode::from_plan(plan),
            applied_rules: applied_rules.into_iter().map(String::from).collect(),
        }
    }

    /// The classic indented text rendering — byte-identical to what
    /// `LogicalPlan::explain` produced before EXPLAIN became typed.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.root.fmt_indent(&mut out, 0);
        out
    }
}

impl fmt::Display for ExplainPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl ExplainNode {
    /// Build one node (and its subtree) from a plan operator.
    pub fn from_plan(plan: &LogicalPlan) -> ExplainNode {
        match plan {
            LogicalPlan::Scan {
                table,
                projection,
                filters,
                estimated_rows,
                ..
            } => ExplainNode::Scan {
                table: table.clone(),
                projection: projection.clone(),
                pushed_filters: filters.iter().map(|f| f.to_string()).collect(),
                estimated_rows: *estimated_rows,
            },
            LogicalPlan::Filter { input, predicate } => ExplainNode::Filter {
                predicate: predicate.to_string(),
                child: Box::new(ExplainNode::from_plan(input)),
            },
            LogicalPlan::Join {
                left,
                right,
                on,
                residual,
                kind,
                estimated_rows,
                ..
            } => ExplainNode::Join {
                kind: format!("{kind:?}"),
                on: on.clone(),
                residual: residual.as_ref().map(|r| r.to_string()),
                estimated_rows: *estimated_rows,
                left: Box::new(ExplainNode::from_plan(left)),
                right: Box::new(ExplainNode::from_plan(right)),
            },
            LogicalPlan::Aggregate {
                input,
                group,
                aggs,
                strategy,
                ..
            } => ExplainNode::Aggregate {
                strategy: format!("{strategy:?}"),
                group: group.clone(),
                aggs: aggs.len(),
                child: Box::new(ExplainNode::from_plan(input)),
            },
            LogicalPlan::Project { input, exprs, .. } => ExplainNode::Project {
                exprs: exprs.iter().map(|e| e.to_string()).collect(),
                child: Box::new(ExplainNode::from_plan(input)),
            },
            LogicalPlan::Sort { input, keys } => ExplainNode::Sort {
                keys: keys.iter().map(|k| (k.col, k.desc)).collect(),
                child: Box::new(ExplainNode::from_plan(input)),
            },
            LogicalPlan::Limit { input, n } => ExplainNode::Limit {
                n: *n,
                child: Box::new(ExplainNode::from_plan(input)),
            },
            LogicalPlan::Distinct { input } => ExplainNode::Distinct {
                child: Box::new(ExplainNode::from_plan(input)),
            },
        }
    }

    /// The operator's display name (`"Scan"`, `"InnerJoin"`,
    /// `"HashAggregate"`, …).
    pub fn label(&self) -> String {
        match self {
            ExplainNode::Scan { .. } => "Scan".into(),
            ExplainNode::Filter { .. } => "Filter".into(),
            ExplainNode::Join { kind, .. } => format!("{kind}Join"),
            ExplainNode::Aggregate { strategy, .. } => format!("{strategy}Aggregate"),
            ExplainNode::Project { .. } => "Project".into(),
            ExplainNode::Sort { .. } => "Sort".into(),
            ExplainNode::Limit { .. } => "Limit".into(),
            ExplainNode::Distinct { .. } => "Distinct".into(),
        }
    }

    /// Child nodes, left to right.
    pub fn children(&self) -> Vec<&ExplainNode> {
        match self {
            ExplainNode::Scan { .. } => Vec::new(),
            ExplainNode::Filter { child, .. }
            | ExplainNode::Aggregate { child, .. }
            | ExplainNode::Project { child, .. }
            | ExplainNode::Sort { child, .. }
            | ExplainNode::Limit { child, .. }
            | ExplainNode::Distinct { child } => vec![child],
            ExplainNode::Join { left, right, .. } => vec![left, right],
        }
    }

    /// Per-node row estimate, where the operator carries one.
    pub fn estimated_rows(&self) -> Option<f64> {
        match self {
            ExplainNode::Scan { estimated_rows, .. } | ExplainNode::Join { estimated_rows, .. } => {
                Some(*estimated_rows)
            }
            _ => None,
        }
    }

    fn fmt_indent(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            ExplainNode::Scan {
                table,
                projection,
                pushed_filters,
                estimated_rows,
            } => {
                let _ = write!(out, "{pad}Scan {table} proj={projection:?}");
                if !pushed_filters.is_empty() {
                    let _ = write!(out, " filters=[");
                    for (i, f) in pushed_filters.iter().enumerate() {
                        if i > 0 {
                            let _ = write!(out, ", ");
                        }
                        let _ = write!(out, "{f}");
                    }
                    let _ = write!(out, "]");
                }
                let _ = writeln!(out, " (~{estimated_rows:.0} rows)");
            }
            ExplainNode::Filter { predicate, child } => {
                let _ = writeln!(out, "{pad}Filter {predicate}");
                child.fmt_indent(out, depth + 1);
            }
            ExplainNode::Join {
                kind,
                on,
                residual,
                estimated_rows,
                left,
                right,
            } => {
                let _ = write!(out, "{pad}{kind}Join on={on:?}");
                if let Some(r) = residual {
                    let _ = write!(out, " residual={r}");
                }
                let _ = writeln!(out, " (~{estimated_rows:.0} rows)");
                left.fmt_indent(out, depth + 1);
                right.fmt_indent(out, depth + 1);
            }
            ExplainNode::Aggregate {
                strategy,
                group,
                aggs,
                child,
            } => {
                let _ = writeln!(out, "{pad}{strategy}Aggregate group={group:?} aggs={aggs}");
                child.fmt_indent(out, depth + 1);
            }
            ExplainNode::Project { exprs, child } => {
                let _ = write!(out, "{pad}Project [");
                for (i, e) in exprs.iter().enumerate() {
                    if i > 0 {
                        let _ = write!(out, ", ");
                    }
                    let _ = write!(out, "{e}");
                }
                let _ = writeln!(out, "]");
                child.fmt_indent(out, depth + 1);
            }
            ExplainNode::Sort { keys, child } => {
                let _ = write!(out, "{pad}Sort [");
                for (i, (col, desc)) in keys.iter().enumerate() {
                    if i > 0 {
                        let _ = write!(out, ", ");
                    }
                    let _ = write!(out, "#{}{}", col, if *desc { " desc" } else { "" });
                }
                let _ = writeln!(out, "]");
                child.fmt_indent(out, depth + 1);
            }
            ExplainNode::Limit { n, child } => {
                let _ = writeln!(out, "{pad}Limit {n}");
                child.fmt_indent(out, depth + 1);
            }
            ExplainNode::Distinct { child } => {
                let _ = writeln!(out, "{pad}Distinct");
                child.fmt_indent(out, depth + 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, BoundExpr};
    use nodb_common::{DataType, Schema, Value};

    fn sample_plan() -> LogicalPlan {
        let scan = LogicalPlan::Scan {
            table: "t".into(),
            projection: vec![0, 2],
            filters: vec![BoundExpr::Binary {
                op: BinOp::Lt,
                left: Box::new(BoundExpr::Col(0)),
                right: Box::new(BoundExpr::Lit(Value::Int64(5))),
            }],
            schema: Schema::from_pairs(&[("a", DataType::Int32), ("c", DataType::Int32)]).unwrap(),
            estimated_rows: 42.0,
        };
        LogicalPlan::Limit {
            input: Box::new(scan),
            n: 10,
        }
    }

    #[test]
    fn render_matches_legacy_text_exactly() {
        let plan = sample_plan();
        let typed = ExplainPlan::from_plan(&plan, vec!["simplify_bool"]);
        assert_eq!(typed.render(), plan.explain());
        assert_eq!(typed.to_string(), plan.explain());
    }

    #[test]
    fn tree_is_assertable_without_string_matching() {
        let typed = ExplainPlan::from_plan(&sample_plan(), vec!["push_down_predicates"]);
        assert_eq!(typed.applied_rules, vec!["push_down_predicates"]);
        let ExplainNode::Limit { n, child } = &typed.root else {
            panic!("expected Limit root, got {:?}", typed.root);
        };
        assert_eq!(*n, 10);
        let ExplainNode::Scan {
            table,
            projection,
            pushed_filters,
            estimated_rows,
        } = child.as_ref()
        else {
            panic!("expected Scan leaf, got {child:?}");
        };
        assert_eq!(table, "t");
        assert_eq!(projection.as_slice(), &[0, 2]);
        assert_eq!(pushed_filters.as_slice(), &["(#0 < 5)".to_string()]);
        assert_eq!(*estimated_rows, 42.0);
        assert_eq!(typed.root.label(), "Limit");
        assert_eq!(typed.root.children()[0].estimated_rows(), Some(42.0));
    }
}
